// cyclops-lint — repo-specific invariants that generic linters cannot know.
//
//   cyclops-lint <path>...        lint files / recurse directories
//   cyclops-lint --rules          list the rules and exit
//
// Exit code 0 = clean, 1 = findings, 2 = usage or I/O error. Findings print
// as `file:line: [rule] message`, one per line, in path order. The rule
// engine lives in tools/lint_core.hpp and is unit-tested against fixture
// files in tests/lint_fixtures/; CI runs this binary over src/cyclops as a
// gate.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || name.rfind("build-", 0) == 0 || name == ".git" ||
         name == "lint_fixtures" || name == "third_party";
}

std::vector<std::string> collect(const std::string& arg) {
  std::vector<std::string> files;
  const fs::path root(arg);
  if (fs::is_regular_file(root)) {
    files.push_back(root.string());
    return files;
  }
  if (!fs::is_directory(root)) return files;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_rules() {
  std::printf(
      "determinism     no rand()/srand()/time()/std::random_device in engine code\n"
      "unordered-wire  no unordered_{map,set} iteration feeding the wire\n"
      "raw-thread      no std::thread/std::mutex/std::condition_variable outside common/\n"
      "wire-narrowing  no 8/16-bit narrowing casts on wire calls\n"
      "lock-across-wire  no wire calls while a lock may still be held\n"
      "csr-outside-graph  no concrete graph::Csr outside src/cyclops/graph/\n"
      "outbox-outside-runtime  no direct fabric outbox() access outside runtime/ and sim/\n"
      "delta-outside-ingest  no TopologyDelta::apply() outside core/ and ingest/\n"
      "\nsuppress with: // cyclops-lint: allow(<rule>)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: cyclops-lint <path>... | --rules\n");
    return 2;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      print_rules();
      return 0;
    }
    if (!fs::exists(arg)) {
      std::fprintf(stderr, "cyclops-lint: no such path: %s\n", arg.c_str());
      return 2;
    }
    for (std::string& f : collect(arg)) files.push_back(std::move(f));
  }

  std::size_t total = 0;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cyclops-lint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto findings = cyclops::lint::lint_file(file, buf.str());
    for (const cyclops::lint::Finding& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    total += findings.size();
  }
  if (total > 0) {
    std::fprintf(stderr, "cyclops-lint: %zu finding%s in %zu file%s scanned\n", total,
                 total == 1 ? "" : "s", files.size(), files.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
