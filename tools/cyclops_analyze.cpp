// cyclops-analyze — token-level multi-pass static analyzer for the repo's
// architecture and phase/ownership disciplines. Successor to cyclops-lint:
// same 8 repo-invariant rules, now on a real token stream (multi-line
// declarations, true brace scopes), plus the include-layering DAG pass,
// file-granularity include cycle detection, and the static frozen-view pass
// mirroring the CYCLOPS_VERIFY EngineChecker.
//
//   cyclops-analyze [options] <path>...   analyze files / recurse directories
//     --rules              list rules and exit
//     --jobs=N             scanning threads (0 = hardware, default; 1 = serial)
//     --sarif=FILE         also write findings as SARIF 2.1.0 to FILE
//     --baseline=FILE      suppress findings acknowledged in FILE
//     --write-baseline=FILE  write current findings to FILE and exit 0
//     --budget-ms=N        fail (exit 3) when analysis wall time exceeds N
//
// Exit codes: 0 clean, 1 unbaselined findings, 2 usage/IO error, 3 budget
// exceeded. Text findings print as `file:line: [rule] message` in path
// order, like cyclops-lint. The ctest gate `analyze_tree` runs this binary
// over src/ tools/ tests/ with the checked-in tools/analyze_baseline.txt and
// a runtime budget, so the analyzer stays both clean and fast enough to run
// on every PR.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || name.rfind("build-", 0) == 0 || name == ".git" ||
         name == "lint_fixtures" || name == "third_party";
}

std::vector<std::string> collect(const std::string& arg) {
  std::vector<std::string> files;
  const fs::path root(arg);
  if (fs::is_regular_file(root)) {
    files.push_back(root.string());
    return files;
  }
  if (!fs::is_directory(root)) return files;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_rules() {
  for (const cyclops::analyze::RuleInfo& r : cyclops::analyze::kRules) {
    std::printf("%-22s  %.*s\n", std::string(r.id).c_str(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  std::printf(
      "\nsuppress with: // cyclops-lint: allow(<rule>)   (same line or line "
      "above;\n  cyclops-analyze: allow(<rule>) is accepted too)\n"
      "baseline: --baseline=FILE with lines `path:line: [rule]`\n");
}

bool parse_flag(const char* arg, const char* name, std::string& value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  value = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::string> roots;
  std::string sarif_path, baseline_path, write_baseline_path;
  long jobs = 0;
  long budget_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--rules") {
      print_rules();
      return 0;
    }
    if (parse_flag(argv[i], "--jobs", value)) {
      jobs = std::strtol(value.c_str(), nullptr, 10);
      continue;
    }
    if (parse_flag(argv[i], "--sarif", value)) {
      sarif_path = value;
      continue;
    }
    if (parse_flag(argv[i], "--baseline", value)) {
      baseline_path = value;
      continue;
    }
    if (parse_flag(argv[i], "--write-baseline", value)) {
      write_baseline_path = value;
      continue;
    }
    if (parse_flag(argv[i], "--budget-ms", value)) {
      budget_ms = std::strtol(value.c_str(), nullptr, 10);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cyclops-analyze: unknown option %s\n", arg.c_str());
      return 2;
    }
    if (!fs::exists(arg)) {
      std::fprintf(stderr, "cyclops-analyze: no such path: %s\n", arg.c_str());
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: cyclops-analyze [--rules] [--jobs=N] [--sarif=FILE] "
                 "[--baseline=FILE]\n"
                 "                       [--write-baseline=FILE] "
                 "[--budget-ms=N] <path>...\n");
    return 2;
  }

  std::vector<cyclops::analyze::SourceFile> files;
  for (const std::string& root : roots) {
    for (std::string& f : collect(root)) {
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cyclops-analyze: cannot read %s\n", f.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back(cyclops::analyze::SourceFile{std::move(f), buf.str()});
    }
  }

  cyclops::analyze::AnalyzeOptions opt;
  opt.jobs = jobs < 0 ? 1 : static_cast<std::size_t>(jobs);
  std::vector<cyclops::analyze::Finding> findings =
      cyclops::analyze::analyze_files(files, opt);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cyclops-analyze: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << cyclops::analyze::write_baseline(findings);
    std::fprintf(stderr, "cyclops-analyze: wrote %zu baseline entr%s to %s\n",
                 findings.size(), findings.size() == 1 ? "y" : "ies",
                 write_baseline_path.c_str());
    return 0;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cyclops-analyze: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    cyclops::analyze::Baseline baseline =
        cyclops::analyze::parse_baseline(buf.str());
    for (const std::string& err : baseline.parse_errors) {
      std::fprintf(stderr, "cyclops-analyze: %s\n", err.c_str());
    }
    if (!baseline.parse_errors.empty()) return 2;
    findings = cyclops::analyze::apply_baseline(findings, baseline);
    for (const cyclops::analyze::BaselineEntry* e :
         cyclops::analyze::stale_entries(baseline)) {
      std::fprintf(stderr,
                   "cyclops-analyze: stale baseline entry %s:%d: [%s] — the "
                   "finding no longer occurs; delete the line\n",
                   e->path.c_str(), e->line, e->rule.c_str());
    }
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cyclops-analyze: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << cyclops::analyze::to_sarif(findings);
  }

  for (const cyclops::analyze::Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::fprintf(stderr,
               "cyclops-analyze: %zu finding%s in %zu file%s, %lld ms\n",
               findings.size(), findings.size() == 1 ? "" : "s", files.size(),
               files.size() == 1 ? "" : "s",
               static_cast<long long>(elapsed));
  if (budget_ms > 0 && elapsed > budget_ms) {
    std::fprintf(stderr,
                 "cyclops-analyze: budget exceeded (%lld ms > %ld ms); the "
                 "analyzer must stay fast enough to run on every PR\n",
                 static_cast<long long>(elapsed), budget_ms);
    return 3;
  }
  return findings.empty() ? 0 : 1;
}
