// cyclops-cli — command-line driver for the whole stack: pick an algorithm,
// an engine, a partitioner, a dataset (file or generator), a cluster shape,
// and get the run summary (and optionally per-superstep CSV) on stdout.
//
//   cyclops-cli --algo pr --engine cyclops --graph gen:gweb --workers 48
//   cyclops-cli --algo sssp --engine hama --graph road.txt --workers 8
//   cyclops-cli --algo pr --engine mt --threads 8 --receivers 2
//               --partitioner multilevel --csv series.csv
//   cyclops-cli --serve workload.txt --graph gen:gweb --serve-workers 4
//
// Run with --help for the full flag list.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cyclops/algorithms/als.hpp"
#include "cyclops/common/args.hpp"
#include "cyclops/common/sync.hpp"
#include "cyclops/algorithms/cc.hpp"
#include "cyclops/algorithms/cd.hpp"
#include "cyclops/algorithms/datasets.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/gstats.hpp"
#include "cyclops/graph/loader.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/ingest/incremental.hpp"
#include "cyclops/ingest/ingestor.hpp"
#include "cyclops/metrics/reporter.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/ldg.hpp"
#include "cyclops/partition/multilevel.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "cyclops/runtime/recovery.hpp"
#include "cyclops/service/service.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/sim/sched.hpp"
#include "cyclops/verify/race.hpp"

namespace {

using namespace cyclops;

struct Options {
  std::string algo = "pr";          // pr | sssp | cd | cc | als
  std::string engine = "cyclops";   // hama | cyclops | mt | gas
  std::string graph = "gen:gweb";   // file path or gen:<name>
  std::string partitioner = "hash"; // hash | ldg | multilevel
  WorkerId workers = 8;
  MachineId machines = 4;
  unsigned threads = 4;
  unsigned receivers = 2;
  double epsilon = 1e-9;
  Superstep max_supersteps = 100;
  VertexId source = 0;       // sssp
  VertexId num_users = 0;    // als (0 = infer for generated datasets)
  unsigned rounds = 10;      // als
  double scale = 1.0;        // generator scale factor
  args::StoreArgs store;     // --store / --mem-cap / --spill-dir
  std::string csv;           // per-superstep series output path
  bool stats_only = false;   // print graph stats and exit
  bool verify_report = false;  // print the invariant checker's summary line
  unsigned race_seeds = 0;   // --race[=N]: happens-before sweep over N schedules

  // Multi-tenant serve mode: replay a scripted workload file against the
  // epoch-versioned service instead of running a single job.
  std::string serve;               // workload script path ("" = classic mode)
  std::size_t serve_workers = 4;   // concurrent job slots
  std::size_t serve_queue = 64;    // bounded admission queue
  std::size_t tenant_limit = 2;    // max running jobs per tenant
  double realize_modeled = 0.0;    // modeled-comm -> wall-clock sleep factor

  // Streaming ingestion mode: replay a mutation trace through the batching
  // ingestor while incremental engines re-converge per published epoch,
  // optionally under concurrent scripted query load (--serve).
  std::string ingest;                      // trace path or synth:<ops>
  std::size_t ingest_batch = 64;           // batching bound: staged-op count
  double ingest_delay_s = 0.05;            // batching bound: oldest-op wall time
  std::string ingest_algos = "pr,sssp,cc"; // incremental engines to keep warm
  unsigned ingest_hops = 2;                // delta-PR re-activation radius
  std::uint64_t ingest_seed = 1;           // synth:<ops> trace seed
  bool overlay = false;                    // structural-sharing publication
  double compact_threshold = 0.25;         // overlay-entries/|E| compaction bound

  // Fault tolerance: any armed flag routes the run through the automated
  // checkpoint/recovery runtime (runtime::run_with_recovery).
  Superstep checkpoint_every = 0;       // 0 = no periodic checkpoints
  std::string checkpoint_mode;          // light | heavy ("" = engine default)
  Superstep fail_at = sim::kNeverCrash; // crash a machine at this superstep
  MachineId fail_machine = 0;
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  std::uint64_t fault_seed = 0;
  args::RecoveryArgs rec;               // --recovery / --log-store / --detection-timeout-us

  [[nodiscard]] sim::FaultPlan fault_plan() const {
    sim::FaultPlan plan;
    plan.seed = fault_seed;
    plan.crash_at = fail_at;
    plan.crash_machine = fail_machine;
    plan.drop_rate = drop_rate;
    plan.corrupt_rate = corrupt_rate;
    plan.detection_timeout_us = rec.detection_timeout_us;
    return plan;
  }
  [[nodiscard]] bool fault_tolerant() const {
    return checkpoint_every > 0 || fault_plan().any_armed();
  }
  [[nodiscard]] runtime::RecoveryMode recovery_mode() const {
    runtime::RecoveryMode m = runtime::RecoveryMode::kRollback;
    (void)runtime::parse_recovery_mode(rec.recovery, m);  // validated at parse
    return m;
  }
  [[nodiscard]] sim::LogStoreKind log_store_kind() const {
    return rec.log_store == "spill" ? sim::LogStoreKind::kSpill
                                    : sim::LogStoreKind::kMemory;
  }
  [[nodiscard]] runtime::CheckpointMode mode_or(runtime::CheckpointMode dflt) const {
    if (checkpoint_mode == "light") return runtime::CheckpointMode::kLightweight;
    if (checkpoint_mode == "heavy") return runtime::CheckpointMode::kHeavyweight;
    return dflt;
  }
};

[[noreturn]] void usage(int code) {
  std::puts(
      "cyclops-cli — run a graph algorithm on one of the reproduced engines\n"
      "\n"
      "  --algo pr|sssp|cd|cc|als    algorithm (default pr)\n"
      "  --engine hama|cyclops|mt|gas  engine (default cyclops; gas = pr/sssp only)\n"
      "  --graph PATH|gen:NAME       edge-list file, or generator: amazon, gweb,\n"
      "                              ljournal, wiki, syn-gl, dblp, roadca (default gen:gweb)\n"
      "  --partitioner hash|ldg|multilevel   edge-cut partitioner (default hash)\n"
      "  --workers N --machines M    cluster shape (default 8 workers / 4 machines)\n"
      "  --threads T --receivers R   CyclopsMT thread configuration\n"
      "  --epsilon E                 convergence epsilon (default 1e-9)\n"
      "  --max-supersteps N          superstep cap (default 100)\n"
      "  --source V                  SSSP source vertex (default 0)\n"
      "  --users N --rounds K        ALS bipartite split / training rounds\n"
      "  --scale F                   generator scale factor (default 1.0)\n"
      "  --store memory|compact|stream  graph store backend (default memory):\n"
      "                              compact = varint/delta compressed CSR,\n"
      "                              stream = out-of-core shards under --mem-cap\n"
      "  --mem-cap MB                stream-store resident budget (default 64)\n"
      "  --spill-dir PATH            stream-store scratch dir (default /tmp)\n"
      "  --csv PATH                  write per-superstep series as CSV\n"
      "  --stats                     print graph statistics and exit\n"
      "  --verify                    print the immutable-view invariant checker\n"
      "                              summary (needs -DCYCLOPS_VERIFY=ON build)\n"
      "  --race[=N]                  sweep N schedule-explorer seeds (default 8)\n"
      "                              through the happens-before race analyzer;\n"
      "                              one fresh engine per seed, prints a [race]\n"
      "                              line per seed and any race reports, exits\n"
      "                              nonzero on races or wire-digest divergence\n"
      "                              (detection needs -DCYCLOPS_VERIFY=ON)\n"
      "\n"
      "serve mode (multi-tenant service replaying a scripted workload):\n"
      "  --serve FILE                workload script; lines are\n"
      "                                job <tenant> <prio> <algo> <engine>\n"
      "                                add <u> <v> [w] | remove <u> <v>\n"
      "                                commit | wait | # comment\n"
      "  --serve-workers N           concurrent job slots (default 4)\n"
      "  --serve-queue N             admission queue bound (default 64)\n"
      "  --tenant-limit N            max running jobs per tenant (default 2)\n"
      "  --realize F                 sleep F x modeled comm time per job, so\n"
      "                              cross-tenant wire-wait overlaps (default 0)\n"
      "\n"
      "ingest mode (streaming mutation epochs with incremental recompute):\n"
      "  --ingest FILE|synth:N       mutation trace ('<at_s> add|remove <u> <v>'\n"
      "                              lines) or a deterministic synthetic trace of\n"
      "                              N ops over the base graph's vertices\n"
      "  --ingest-batch N            publish after N staged ops (default 64)\n"
      "  --ingest-delay S            publish when the oldest staged op has waited\n"
      "                              S seconds (default 0.05)\n"
      "  --ingest-algos LIST         comma list of pr,sssp,cc kept incrementally\n"
      "                              converged across epochs (default all three;\n"
      "                              --engine cyclops|mt only)\n"
      "  --ingest-hops K             delta-PR re-activation radius (default 2)\n"
      "  --ingest-seed S             synth:N trace seed (default 1)\n"
      "  --overlay                   publish epochs as structural-sharing\n"
      "                              DeltaOverlay patches instead of flat copies\n"
      "  --compact-threshold F       flatten the overlay chain once patch entries\n"
      "                              exceed F x base |E| (default 0.25)\n"
      "                              with --serve FILE, the script's job/wait\n"
      "                              lines replay concurrently as query load\n"
      "\n"
      "fault tolerance (any of these routes through automated recovery):\n"
      "  --checkpoint-every N        checkpoint every N supersteps (default off)\n"
      "  --checkpoint-mode light|heavy  override the engine's natural mode\n"
      "  --fail-at S                 crash a machine at superstep S\n"
      "  --fail-machine M            which machine dies (default 0)\n"
      "  --drop-rate P               package drop probability (retransmitted)\n"
      "  --corrupt-rate P            package bit-flip probability (CRC-caught)\n"
      "  --fault-seed S              deterministic fault schedule seed\n"
      "  --recovery rollback|log|log-parallel  recovery mode (default rollback):\n"
      "                              rollback = global rollback-and-replay,\n"
      "                              log = message-logged localized replay,\n"
      "                              log-parallel = re-partitioned parallel replay\n"
      "  --log-store memory|spill    message-log backing (default memory)\n"
      "  --detection-timeout-us T    failure-detection timeout (default 500000)\n");
  std::exit(code);  // NOLINT(concurrency-mt-unsafe) — single-threaded startup
}

Options parse(int argc, char** argv) {
  // --race carries an optional inline count (--race=N), which the
  // consume-style Parser cannot express; strip it out up front.
  Options o;
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--race") == 0) {
      o.race_seeds = 8;
      continue;
    }
    if (std::strncmp(argv[i], "--race=", 7) == 0) {
      char* end = nullptr;
      const long n = std::strtol(argv[i] + 7, &end, 10);
      if (n <= 0 || end == argv[i] + 7 || *end != '\0') {
        args::Parser::fail("--race needs a positive seed count");
      }
      o.race_seeds = static_cast<unsigned>(n);
      continue;
    }
    rest.push_back(argv[i]);
  }
  args::Parser p(static_cast<int>(rest.size()), rest.data());
  if (p.flag("--help") || p.flag("-h")) usage(0);
  o.algo = p.get("--algo", o.algo);
  o.engine = p.get("--engine", o.engine);
  o.graph = p.get("--graph", o.graph);
  o.partitioner = p.get("--partitioner", o.partitioner);
  o.workers = p.get("--workers", o.workers);
  o.machines = p.get("--machines", o.machines);
  o.threads = p.get("--threads", o.threads);
  o.receivers = p.get("--receivers", o.receivers);
  o.epsilon = p.get("--epsilon", o.epsilon);
  o.max_supersteps = p.get("--max-supersteps", o.max_supersteps);
  o.source = p.get("--source", o.source);
  o.num_users = p.get("--users", o.num_users);
  o.rounds = p.get("--rounds", o.rounds);
  o.scale = p.get("--scale", o.scale);
  o.store = args::store_args(p);
  o.csv = p.get("--csv", o.csv);
  o.stats_only = p.flag("--stats");
  o.verify_report = p.flag("--verify");
  o.serve = p.get("--serve", o.serve);
  o.serve_workers = p.get("--serve-workers", o.serve_workers);
  o.serve_queue = p.get("--serve-queue", o.serve_queue);
  o.tenant_limit = p.get("--tenant-limit", o.tenant_limit);
  o.realize_modeled = p.get("--realize", o.realize_modeled);
  o.ingest = p.get("--ingest", o.ingest);
  o.ingest_batch = p.get("--ingest-batch", o.ingest_batch);
  o.ingest_delay_s = p.get("--ingest-delay", o.ingest_delay_s);
  o.ingest_algos = p.get("--ingest-algos", o.ingest_algos);
  o.ingest_hops = p.get("--ingest-hops", o.ingest_hops);
  o.ingest_seed = p.get("--ingest-seed", o.ingest_seed);
  o.overlay = p.flag("--overlay");
  o.compact_threshold = p.get("--compact-threshold", o.compact_threshold);
  o.checkpoint_every = p.get("--checkpoint-every", o.checkpoint_every);
  o.checkpoint_mode = p.get("--checkpoint-mode", o.checkpoint_mode);
  o.fail_at = p.get("--fail-at", o.fail_at);
  o.fail_machine = p.get("--fail-machine", o.fail_machine);
  o.drop_rate = p.get("--drop-rate", o.drop_rate);
  o.corrupt_rate = p.get("--corrupt-rate", o.corrupt_rate);
  o.fault_seed = p.get("--fault-seed", o.fault_seed);
  o.rec = args::recovery_args(p);
  p.finish();
  if (o.workers == 0 || o.machines == 0 || o.workers % o.machines != 0) {
    std::fprintf(stderr, "--workers must be a positive multiple of --machines\n");
    std::exit(2);  // NOLINT(concurrency-mt-unsafe) — single-threaded startup
  }
  if (o.engine != "hama" && o.engine != "cyclops" && o.engine != "mt" &&
      o.engine != "gas") {
    args::Parser::fail("unknown engine '" + o.engine + "'");
  }
  // Serve-mode scripts carry their own algo/engine per job line; classic mode
  // rejects unsupported combinations up front instead of falling back.
  if (o.serve.empty() && o.engine == "gas" && o.algo != "pr" && o.algo != "sssp") {
    args::Parser::fail("--engine gas supports pr and sssp only");
  }
  if (!o.checkpoint_mode.empty() && o.checkpoint_mode != "light" &&
      o.checkpoint_mode != "heavy") {
    std::fprintf(stderr, "--checkpoint-mode must be light or heavy\n");
    std::exit(2);  // NOLINT(concurrency-mt-unsafe) — single-threaded startup
  }
  if (o.fail_at != sim::kNeverCrash && o.checkpoint_every == 0) {
    std::fprintf(stderr,
                 "note: --fail-at without --checkpoint-every replays from scratch\n");
  }
  if (o.race_seeds > 0 && !o.serve.empty()) {
    args::Parser::fail("--race is not supported in --serve mode");
  }
  if (!o.ingest.empty()) {
    if (o.engine != "cyclops" && o.engine != "mt") {
      args::Parser::fail("--ingest keeps incremental engines warm; use --engine cyclops|mt");
    }
    if (o.race_seeds > 0 || o.fault_tolerant()) {
      args::Parser::fail("--ingest cannot combine with --race or fault flags");
    }
    if (o.ingest_batch == 0) args::Parser::fail("--ingest-batch must be positive");
  }
  if (o.race_seeds > 0 && o.fault_tolerant()) {
    args::Parser::fail("--race runs fault-free engines; drop the fault flags");
  }
  try {
    (void)graph::parse_store_kind(o.store.kind);
  } catch (const std::exception& e) {
    args::Parser::fail(e.what());
  }
  return o;
}

graph::EdgeList load_graph(Options& o) {
  if (o.graph.rfind("gen:", 0) != 0) {
    graph::LoadOptions lo;
    lo.undirected = (o.algo == "cd" || o.algo == "als");
    return graph::load_edge_list_file(o.graph, lo);
  }
  const std::string name = o.graph.substr(4);
  algo::DatasetScale scale;
  scale.factor = o.scale;
  algo::Dataset d;
  if (name == "amazon") d = algo::make_amazon(scale);
  else if (name == "gweb") d = algo::make_gweb(scale);
  else if (name == "ljournal") d = algo::make_ljournal(scale);
  else if (name == "wiki") d = algo::make_wiki(scale);
  else if (name == "syn-gl") d = algo::make_syn_gl(scale);
  else if (name == "dblp") d = algo::make_dblp(scale);
  else if (name == "roadca") d = algo::make_road_ca(scale);
  else {
    std::fprintf(stderr, "unknown generator '%s'\n", name.c_str());
    std::exit(2);  // NOLINT(concurrency-mt-unsafe) — single-threaded startup
  }
  if (o.num_users == 0) o.num_users = d.num_users;
  std::printf("dataset: %s\n", d.describe().c_str());
  return std::move(d.edges);
}

partition::EdgeCutPartition make_partition(const Options& o, const graph::GraphStore& g) {
  if (o.partitioner == "hash") return partition::HashPartitioner{}.partition(g, o.workers);
  if (o.partitioner == "ldg") return partition::LdgPartitioner{}.partition(g, o.workers);
  if (o.partitioner == "multilevel") {
    return partition::MultilevelPartitioner{}.partition(g, o.workers);
  }
  std::fprintf(stderr, "unknown partitioner '%s'\n", o.partitioner.c_str());
  std::exit(2);  // NOLINT(concurrency-mt-unsafe) — single-threaded startup
}

void emit_csv(const Options& o, const metrics::RunStats& stats) {
  if (o.csv.empty()) return;
  std::ofstream out(o.csv);
  out << metrics::superstep_series_csv(stats);
  std::printf("wrote per-superstep series to %s\n", o.csv.c_str());
}

/// One seed's outcome inside a race sweep: the fabric's wire digest plus the
/// number of accesses the happens-before analyzer actually checked (zero in
/// non-verify builds — the figure EXPERIMENTS.md cites as "checker work").
struct SweepRun {
  std::uint64_t wire = 0;
  std::uint64_t accesses = 0;
};

/// Sweeps o.race_seeds schedule-explorer seeds through the happens-before
/// analyzer: one fresh engine per seed, each pinned to that seed's permuted
/// task schedule, each collecting race reports. Any race, or any wire-digest
/// divergence across schedules, fails the sweep. `run_one(explorer, reports)`
/// builds the engine (with cfg.schedule = explorer), attaches a collecting
/// handler, runs to termination, and returns the fabric's wire digest plus
/// the analyzer's accesses-checked count.
template <typename RunOne>
int race_sweep(const Options& o, const std::string& label, RunOne&& run_one) {
  if constexpr (!verify::kEnabled) {
    std::printf("[race] %s: built without -DCYCLOPS_VERIFY — schedule sweep only, "
                "races cannot be observed\n", label.c_str());
  }
  int bad_seeds = 0;
  bool diverged = false;
  std::optional<std::uint64_t> first_wire;
  for (unsigned seed = 0; seed < o.race_seeds; ++seed) {
    auto explorer = std::make_shared<sim::ScheduleExplorer>(seed);
    std::vector<std::string> reports;
    verify::race::enable(true);
    const SweepRun run = run_one(explorer, reports);
    verify::race::enable(false);
    const std::uint64_t wire = run.wire;
    std::printf("[race] %s seed=%u schedule=0x%016llx races=%zu checked=%llu "
                "wire=0x%016llx\n",
                label.c_str(), seed,
                static_cast<unsigned long long>(explorer->digest()), reports.size(),
                static_cast<unsigned long long>(run.accesses),
                static_cast<unsigned long long>(wire));
    for (const std::string& r : reports) std::printf("%s\n", r.c_str());
    if (!reports.empty()) ++bad_seeds;
    if (!first_wire) {
      first_wire = wire;
    } else if (*first_wire != wire) {
      std::printf("[race] %s seed=%u wire digest diverged from seed 0 "
                  "(0x%016llx vs 0x%016llx): schedule-dependent traffic\n",
                  label.c_str(), seed, static_cast<unsigned long long>(wire),
                  static_cast<unsigned long long>(*first_wire));
      diverged = true;
    }
  }
  std::printf("[race] %s: %u seeds, %d with races%s\n", label.c_str(), o.race_seeds,
              bad_seeds, diverged ? ", wire digest DIVERGED" : "");
  return (bad_seeds > 0 || diverged) ? 1 : 0;
}

/// Runs an engine factory through the automated checkpoint/recovery runtime
/// and prints the recovery summary next to the usual run summary. `log` is
/// the shared message log for log-based modes (the same object the factory's
/// Config installs into the fabric); nullptr for rollback.
template <typename MakeEngine>
int run_fault_tolerant(const Options& o, const std::string& label,
                       runtime::CheckpointMode natural_mode,
                       sim::FaultInjector* faults, sim::MessageLog* log,
                       MakeEngine&& make_engine) {
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = o.checkpoint_every;
  opts.mode = o.mode_or(natural_mode);
  opts.recovery = o.recovery_mode();
  opts.log = log;
  auto outcome =
      runtime::run_with_recovery(std::forward<MakeEngine>(make_engine), opts, faults);
  std::printf("%s\n", metrics::run_summary(label, outcome.run).c_str());
  std::printf("%s\n", metrics::recovery_summary(outcome.recovery).c_str());
  emit_csv(o, outcome.run);
  return 0;
}

/// Shared message log for log-based recovery modes; null for rollback (no
/// logging overhead when nothing will replay from it).
std::shared_ptr<sim::MessageLog> make_message_log(const Options& o) {
  if (o.recovery_mode() == runtime::RecoveryMode::kRollback) return nullptr;
  return std::make_shared<sim::MessageLog>(o.log_store_kind(), o.store.spill_dir);
}

template <typename Prog>
int run_bsp(const Options& o, const graph::GraphStore& g, Prog prog) {
  bsp::Config cfg;
  cfg.topo = sim::Topology{o.machines, o.workers / o.machines};
  cfg.max_supersteps = o.max_supersteps;
  const auto part = make_partition(o, g);
  if (o.race_seeds > 0) {
    return race_sweep(o, "hama/" + o.algo,
                      [&](std::shared_ptr<sim::ScheduleExplorer> sched,
                          std::vector<std::string>& reports) {
                        bsp::Config rcfg = cfg;
                        rcfg.schedule = std::move(sched);
                        bsp::Engine<Prog> engine(g, part, prog, rcfg);
                        engine.verifier().racer().set_handler(
                            [&reports](const verify::race::Report& r) {
                              reports.push_back(r.describe());
                            });
                        engine.run();
                        return SweepRun{engine.fabric().wire_digest(),
                                        engine.verifier().racer().accesses_checked()};
                      });
  }
  if (o.fault_tolerant()) {
    cfg.faults = std::make_shared<sim::FaultInjector>(o.fault_plan());
    cfg.message_log = make_message_log(o);
    return run_fault_tolerant(
        o, "hama/" + o.algo, runtime::CheckpointMode::kHeavyweight, cfg.faults.get(),
        cfg.message_log.get(),
        [&] { return std::make_unique<bsp::Engine<Prog>>(g, part, prog, cfg); });
  }
  bsp::Engine<Prog> engine(g, part, prog, cfg);
  const auto stats = engine.run();
  std::printf("%s\n", metrics::run_summary("hama/" + o.algo, stats).c_str());
  if (o.verify_report) std::printf("%s\n", engine.verifier().summary().c_str());
  std::printf("%s\n", metrics::phase_breakdown_row("breakdown", stats, true).c_str());
  emit_csv(o, stats);
  return 0;
}

template <typename Prog>
int run_cyclops(const Options& o, const graph::GraphStore& g, Prog prog, bool mt) {
  core::Config cfg = mt ? core::Config::cyclops_mt(o.machines, o.threads, o.receivers)
                        : core::Config::cyclops(o.machines, o.workers / o.machines);
  cfg.max_supersteps = o.max_supersteps;
  const WorkerId parts = cfg.topo.total_workers();
  Options po = o;
  po.workers = parts;
  const std::string label = (mt ? "cyclops-mt/" : "cyclops/") + o.algo;
  const auto part = make_partition(po, g);
  if (o.race_seeds > 0) {
    return race_sweep(o, label,
                      [&](std::shared_ptr<sim::ScheduleExplorer> sched,
                          std::vector<std::string>& reports) {
                        core::Config rcfg = cfg;
                        rcfg.schedule = std::move(sched);
                        core::Engine<Prog> engine(g, part, prog, rcfg);
                        engine.verifier().racer().set_handler(
                            [&reports](const verify::race::Report& r) {
                              reports.push_back(r.describe());
                            });
                        engine.run();
                        return SweepRun{engine.fabric().wire_digest(),
                                        engine.verifier().racer().accesses_checked()};
                      });
  }
  if (o.fault_tolerant()) {
    cfg.faults = std::make_shared<sim::FaultInjector>(o.fault_plan());
    cfg.message_log = make_message_log(o);
    return run_fault_tolerant(
        o, label, runtime::CheckpointMode::kLightweight, cfg.faults.get(),
        cfg.message_log.get(),
        [&] { return std::make_unique<core::Engine<Prog>>(g, part, prog, cfg); });
  }
  core::Engine<Prog> engine(g, part, prog, cfg);
  const auto stats = engine.run();
  std::printf("%s\n", metrics::run_summary(label, stats).c_str());
  if (o.verify_report) std::printf("%s\n", engine.verifier().summary().c_str());
  std::printf("replication factor: %.2f, ingress %.3fs\n",
              engine.layout().replication_factor(g.num_vertices()), stats.ingress_s);
  std::printf("%s\n", metrics::phase_breakdown_row("breakdown", stats, true).c_str());
  emit_csv(o, stats);
  return 0;
}

template <typename Prog>
int run_gas(const Options& o, const graph::GraphStore& g, Prog prog) {
  gas::Config cfg;
  cfg.topo = sim::Topology{o.machines, 1};
  cfg.max_iterations = o.max_supersteps;
  const auto cut = partition::RandomVertexCut{}.partition(g, o.machines);
  if (o.race_seeds > 0) {
    return race_sweep(o, "powergraph/" + o.algo,
                      [&](std::shared_ptr<sim::ScheduleExplorer> sched,
                          std::vector<std::string>& reports) {
                        gas::Config rcfg = cfg;
                        rcfg.schedule = std::move(sched);
                        gas::Engine<Prog> engine(g, cut, prog, rcfg);
                        engine.verifier().racer().set_handler(
                            [&reports](const verify::race::Report& r) {
                              reports.push_back(r.describe());
                            });
                        engine.run();
                        return SweepRun{engine.fabric().wire_digest(),
                                        engine.verifier().racer().accesses_checked()};
                      });
  }
  if (o.fault_tolerant()) {
    cfg.faults = std::make_shared<sim::FaultInjector>(o.fault_plan());
    cfg.message_log = make_message_log(o);
    return run_fault_tolerant(
        o, "powergraph/" + o.algo, runtime::CheckpointMode::kLightweight,
        cfg.faults.get(), cfg.message_log.get(),
        [&] { return std::make_unique<gas::Engine<Prog>>(g, cut, prog, cfg); });
  }
  gas::Engine<Prog> engine(g, cut, prog, cfg);
  const auto stats = engine.run();
  std::printf("%s\n", metrics::run_summary("powergraph/" + o.algo, stats).c_str());
  if (o.verify_report) std::printf("%s\n", engine.verifier().summary().c_str());
  emit_csv(o, stats);
  return 0;
}

// Replays a scripted multi-tenant workload against the service: `job` lines
// submit against the newest epoch, `add`/`remove` stage a delta, `commit`
// publishes it as a new epoch, `wait` drains in-flight jobs. One
// metrics::job_summary line per job and the service summary print at the end.
int run_serve(const Options& o, graph::EdgeList edges) {
  std::ifstream in(o.serve);
  if (!in) {
    std::fprintf(stderr, "cannot open workload script '%s'\n", o.serve.c_str());
    return 2;
  }

  service::ServiceConfig cfg;
  cfg.snapshot.machines = o.machines;
  cfg.snapshot.workers_per_machine = o.workers / o.machines;
  cfg.snapshot.partitioner = o.partitioner;
  cfg.snapshot.store = graph::parse_store_kind(o.store.kind);
  cfg.snapshot.mem_cap_mb = o.store.mem_cap_mb;
  cfg.snapshot.spill_dir = o.store.spill_dir;
  cfg.scheduler.workers = o.serve_workers;
  cfg.scheduler.max_queue = o.serve_queue;
  cfg.scheduler.per_tenant_running = o.tenant_limit;
  cfg.scheduler.realize_modeled_factor = o.realize_modeled;
  service::Service svc(std::move(edges), cfg);

  core::TopologyDelta delta;
  std::string line;
  std::size_t lineno = 0;
  auto bad = [&](const char* why) {
    std::fprintf(stderr, "%s:%zu: %s\n", o.serve.c_str(), lineno, why);
    return 2;
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd) || cmd[0] == '#') continue;
    if (cmd == "job") {
      service::JobSpec spec;
      std::string algo, engine;
      if (!(ss >> spec.tenant >> spec.priority >> algo >> engine)) {
        return bad("expected: job <tenant> <prio> <algo> <engine>");
      }
      if (!service::parse_algo(algo, spec.algo)) return bad("unknown algorithm");
      if (!service::parse_engine(engine, spec.engine)) return bad("unknown engine");
      spec.epsilon = o.epsilon;
      spec.max_supersteps = o.max_supersteps;
      spec.mt_threads = o.threads;
      spec.mt_receivers = o.receivers;
      spec.source = o.source;
      spec.num_users = o.num_users;
      spec.rounds = o.rounds;
      const auto sub = svc.submit(spec);
      if (sub.accepted) {
        std::printf("submitted job #%llu: %s/%s for %s (epoch %llu)\n",
                    static_cast<unsigned long long>(sub.id), engine.c_str(),
                    algo.c_str(), spec.tenant.c_str(),
                    static_cast<unsigned long long>(svc.snapshots().current_epoch()));
      } else {
        std::printf("rejected %s/%s for %s: %s\n", engine.c_str(), algo.c_str(),
                    spec.tenant.c_str(), sub.reason.c_str());
      }
    } else if (cmd == "add") {
      VertexId u = 0, v = 0;
      double w = 1.0;
      if (!(ss >> u >> v)) return bad("expected: add <u> <v> [w]");
      ss >> w;
      delta.add_edge(u, v, w);
    } else if (cmd == "remove") {
      VertexId u = 0, v = 0;
      if (!(ss >> u >> v)) return bad("expected: remove <u> <v>");
      delta.remove_edge(u, v);
    } else if (cmd == "commit") {
      if (delta.empty()) return bad("commit with no staged mutations");
      const std::size_t staged = delta.size();
      const auto epoch = svc.apply_delta(delta);
      delta = core::TopologyDelta{};
      std::printf("committed epoch %llu (%zu mutations, built in %.3fs)\n",
                  static_cast<unsigned long long>(epoch), staged,
                  svc.snapshots().stats().last_build_s);
    } else if (cmd == "wait") {
      svc.wait_all();
    } else {
      return bad("unknown workload command");
    }
  }
  if (!delta.empty()) {
    std::fprintf(stderr, "warning: %zu staged mutations never committed\n",
                 delta.size());
  }
  svc.wait_all();
  for (const auto& js : svc.scheduler().all_stats()) {
    std::printf("%s\n", metrics::job_summary(js).c_str());
  }
  std::printf("%s\n", svc.summary().c_str());
  svc.shutdown();
  return 0;
}

// Replays only the job/wait lines of a serve script — the concurrent query
// load half of ingest mode. Mutations must come from the trace (the snapshot
// store is single-writer), so add/remove/commit lines are rejected.
int replay_query_load(const Options& o, service::Service& svc) {
  std::ifstream in(o.serve);
  if (!in) {
    std::fprintf(stderr, "cannot open workload script '%s'\n", o.serve.c_str());
    return 2;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd) || cmd[0] == '#') continue;
    if (cmd == "job") {
      service::JobSpec spec;
      std::string algo, engine;
      if (!(ss >> spec.tenant >> spec.priority >> algo >> engine) ||
          !service::parse_algo(algo, spec.algo) ||
          !service::parse_engine(engine, spec.engine)) {
        std::fprintf(stderr, "%s:%zu: bad job line\n", o.serve.c_str(), lineno);
        return 2;
      }
      spec.epsilon = o.epsilon;
      spec.max_supersteps = o.max_supersteps;
      spec.mt_threads = o.threads;
      spec.mt_receivers = o.receivers;
      spec.source = o.source;
      (void)svc.submit(spec);  // rejection (queue full) is valid load-shedding
    } else if (cmd == "wait") {
      svc.wait_all();
    } else {
      std::fprintf(stderr,
                   "%s:%zu: only job/wait allowed under --ingest "
                   "(mutations come from the trace)\n",
                   o.serve.c_str(), lineno);
      return 2;
    }
  }
  return 0;
}

/// Totals one incremental engine accumulates across all published epochs.
struct IngestTally {
  std::uint64_t supersteps = 0;
  std::uint64_t messages = 0;
  double modeled_s = 0;  ///< measured phase time + modeled wire/barrier
  std::size_t resets = 0;
  std::size_t activated = 0;
};

double modeled_run_s(const metrics::RunStats& run) {
  return run.phase_totals().total_s() + run.modeled_comm_total_s();
}

// Streaming ingestion mode: replay a mutation trace through the batching
// MutationIngestor; on every published epoch the requested incremental
// engines re-target the new snapshot and re-converge from their carried
// state. Ends with an incremental-vs-from-scratch comparison per algorithm
// on the final snapshot — exits nonzero if any incremental result diverges
// (SSSP/CC bit-identical, PageRank within fixpoint tolerance).
int run_ingest(const Options& o, graph::EdgeList edges) {
  const bool mt = o.engine == "mt";
  bool want_pr = false, want_sssp = false, want_cc = false;
  {
    std::istringstream ss(o.ingest_algos);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok == "pr") want_pr = true;
      else if (tok == "sssp") want_sssp = true;
      else if (tok == "cc") want_cc = true;
      else if (!tok.empty()) {
        std::fprintf(stderr, "--ingest-algos: unknown algorithm '%s'\n", tok.c_str());
        return 2;
      }
    }
  }
  if (!want_pr && !want_sssp && !want_cc) {
    std::fprintf(stderr, "--ingest-algos selected no algorithms\n");
    return 2;
  }

  service::ServiceConfig cfg;
  cfg.snapshot.machines = o.machines;
  cfg.snapshot.workers_per_machine = o.workers / o.machines;
  cfg.snapshot.partitioner = o.partitioner;
  cfg.snapshot.store = graph::parse_store_kind(o.store.kind);
  cfg.snapshot.mem_cap_mb = o.store.mem_cap_mb;
  cfg.snapshot.spill_dir = o.store.spill_dir;
  cfg.snapshot.overlay_publish = o.overlay;
  cfg.snapshot.compact_overlay_fraction = o.compact_threshold;
  cfg.scheduler.workers = o.serve_workers;
  cfg.scheduler.max_queue = o.serve_queue;
  cfg.scheduler.per_tenant_running = o.tenant_limit;
  cfg.scheduler.realize_modeled_factor = o.realize_modeled;
  service::Service svc(std::move(edges), cfg);
  const service::SnapshotRef base = svc.snapshots().current();

  std::vector<ingest::MutationOp> ops;
  try {
    if (o.ingest.rfind("synth:", 0) == 0) {
      ingest::TraceSpec spec;
      spec.ops = static_cast<std::size_t>(std::strtoull(o.ingest.c_str() + 6, nullptr, 10));
      if (spec.ops == 0) {
        std::fprintf(stderr, "--ingest synth:N needs a positive op count\n");
        return 2;
      }
      spec.num_vertices = base->store().num_vertices();
      spec.undirected = want_cc;  // CC expects both directions stored
      spec.seed = o.ingest_seed;
      ops = ingest::synth_trace(spec);
    } else {
      ops = ingest::load_trace(o.ingest);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("[ingest] trace: %zu ops, batch bound %zu, delay bound %.3fs, %s publication\n",
              ops.size(), o.ingest_batch, o.ingest_delay_s,
              o.overlay ? "overlay" : "flat");

  ingest::IncrementalConfig icfg = ingest::make_incremental_config(
      cfg.snapshot, mt, o.threads, o.receivers, o.max_supersteps);
  icfg.pr_hops = o.ingest_hops;

  std::optional<ingest::IncrementalPageRank> ipr;
  std::optional<ingest::IncrementalSssp> isssp;
  std::optional<ingest::IncrementalCc> icc;
  if (want_pr) {
    algo::PageRankCyclops prog;
    prog.epsilon = o.epsilon;
    ipr.emplace(base, prog, icfg);
    std::printf("%s\n", metrics::run_summary("ingest-cold/pr", ipr->cold_run()).c_str());
  }
  if (want_sssp) {
    if (o.source >= base->store().num_vertices()) {
      std::fprintf(stderr, "--source out of range\n");
      return 2;
    }
    algo::SsspCyclops prog;
    prog.source = o.source;
    isssp.emplace(base, prog, icfg);
    std::printf("%s\n", metrics::run_summary("ingest-cold/sssp", isssp->cold_run()).c_str());
  }
  if (want_cc) {
    icc.emplace(base, algo::CcCyclops{}, icfg);
    std::printf("%s\n", metrics::run_summary("ingest-cold/cc", icc->cold_run()).c_str());
  }

  IngestTally tpr, tsssp, tcc;
  std::uint64_t epochs_advanced = 0;
  ingest::MutationIngestor ingestor(svc.snapshots(),
                                    ingest::IngestConfig{o.ingest_batch, o.ingest_delay_s});
  ingestor.set_epoch_hook([&](service::Epoch epoch, const core::TopologyDelta& delta) {
    const service::SnapshotRef snap = svc.snapshots().current();
    ++epochs_advanced;
    const auto step = [&](auto& eng, IngestTally& t, const char* name) {
      if (!eng) return;
      const ingest::EpochAdvance adv = eng->advance(snap, delta);
      t.supersteps += adv.run.supersteps.size();
      t.messages += adv.run.net_totals().total_messages();
      t.modeled_s += modeled_run_s(adv.run);
      t.resets += adv.reset_vertices;
      t.activated += adv.activated_vertices;
      std::printf("[ingest] epoch %llu %s: %zu supersteps, %zu resets, %zu activated\n",
                  static_cast<unsigned long long>(epoch), name, adv.run.supersteps.size(),
                  adv.reset_vertices, adv.activated_vertices);
    };
    step(ipr, tpr, "pr");
    step(isssp, tsssp, "sssp");
    step(icc, tcc, "cc");
  });

  // Optional concurrent query load: scheduler jobs pin epochs while the
  // ingestor publishes new ones — the apply-vs-pinning concurrency the
  // service was built for.
  Thread load;
  std::atomic<int> load_rc{0};
  if (!o.serve.empty()) {
    load = Thread([&] { load_rc = replay_query_load(o, svc); });
  }
  for (const ingest::MutationOp& op : ops) ingestor.offer(op);
  ingestor.flush();
  if (load.joinable()) load.join();
  svc.wait_all();

  const auto& is = ingestor.stats();
  const auto& ss = svc.snapshots().stats();
  std::printf("[ingest] %llu ops -> %llu epochs: %.0f mutations/s, staleness mean "
              "%.1fms max %.1fms, publish %.3fs total\n",
              static_cast<unsigned long long>(is.ops),
              static_cast<unsigned long long>(is.batches), is.mutations_per_s(),
              1e3 * is.mean_staleness_s(), 1e3 * is.max_staleness_s, is.publish_s);
  const service::SnapshotRef fin = svc.snapshots().current();
  const auto mem = fin->store().memory();
  std::printf("[ingest] store: %s, %u vertices, %zu edges, %.1f KiB resident%s\n",
              graph::store_kind_name(fin->store().kind()).data(),
              fin->store().num_vertices(), fin->store().num_edges(),
              static_cast<double>(mem.resident_bytes) / 1024.0,
              fin->is_overlay() ? " (overlay patch only; base shared)" : "");
  std::printf("[ingest] epochs published %llu (%llu overlay, %llu compactions), "
              "last build %.3fs\n",
              static_cast<unsigned long long>(ss.epochs_published),
              static_cast<unsigned long long>(ss.overlay_epochs),
              static_cast<unsigned long long>(ss.compactions), ss.last_build_s);

  // Final verdict: a cold engine on the final snapshot must agree with each
  // incrementally-maintained result.
  bool ok = true;
  const auto compare = [&](const char* name, const IngestTally& t, std::uint64_t cold_ss,
                           std::uint64_t cold_msgs, double cold_modeled_s, bool match,
                           double max_diff) {
    const double e = static_cast<double>(std::max<std::uint64_t>(1, epochs_advanced));
    std::printf("[ingest] %s: incremental avg/epoch %.1f supersteps, %.0f msgs, %.4fs "
                "modeled vs cold %llu supersteps, %llu msgs, %.4fs modeled — %s"
                " (max |diff| %.2e)\n",
                name, static_cast<double>(t.supersteps) / e,
                static_cast<double>(t.messages) / e, t.modeled_s / e,
                static_cast<unsigned long long>(cold_ss),
                static_cast<unsigned long long>(cold_msgs), cold_modeled_s,
                match ? "EQUIVALENT" : "DIVERGED", max_diff);
    ok = ok && match;
  };
  if (ipr) {
    algo::PageRankCyclops prog;
    prog.epsilon = o.epsilon;
    core::Engine<algo::PageRankCyclops> cold(
        fin->store(), mt ? fin->mt_edge_cut() : fin->edge_cut(), prog, icfg.engine);
    const auto cs = cold.run();
    const auto a = ipr->values();
    const auto b = cold.values();
    double diff = a.size() == b.size() ? 0.0 : algo::kInfDistance;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      diff = std::max(diff, std::abs(a[i] - b[i]));
    }
    // Threshold convergence is O(epsilon x update rounds) accurate: a vertex
    // with residual <= epsilon does not rebroadcast, so stale shares drift
    // by up to epsilon per round — in the cold run and, cumulatively, across
    // incremental epochs alike. Scale the tolerance accordingly; tight
    // equivalence needs a tight --epsilon (the test suite uses 1e-15).
    const double tol = std::max(
        1e-12, o.epsilon * static_cast<double>(tpr.supersteps + cs.supersteps.size() + 1));
    compare("pr", tpr, cs.supersteps.size(), cs.net_totals().total_messages(),
            modeled_run_s(cs), diff <= tol, diff);
  }
  if (isssp) {
    algo::SsspCyclops prog;
    prog.source = o.source;
    core::Engine<algo::SsspCyclops> cold(
        fin->store(), mt ? fin->mt_edge_cut() : fin->edge_cut(), prog, icfg.engine);
    const auto cs = cold.run();
    const auto a = isssp->values();
    const auto b = cold.values();
    double diff = a == b ? 0.0 : algo::kInfDistance;
    compare("sssp", tsssp, cs.supersteps.size(), cs.net_totals().total_messages(),
            modeled_run_s(cs), a == b, diff);
  }
  if (icc) {
    core::Engine<algo::CcCyclops> cold(
        fin->store(), mt ? fin->mt_edge_cut() : fin->edge_cut(), algo::CcCyclops{},
        icfg.engine);
    const auto cs = cold.run();
    const auto a = icc->values();
    const auto b = cold.values();
    compare("cc", tcc, cs.supersteps.size(), cs.net_totals().total_messages(),
            modeled_run_s(cs), a == b, a == b ? 0.0 : 1.0);
  }

  if (!o.serve.empty()) {
    for (const auto& js : svc.scheduler().all_stats()) {
      std::printf("%s\n", metrics::job_summary(js).c_str());
    }
    std::printf("%s\n", svc.summary().c_str());
  }
  svc.shutdown();
  if (load_rc != 0) return load_rc;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  graph::EdgeList loaded = load_graph(o);
  if (!o.ingest.empty()) return run_ingest(o, std::move(loaded));
  if (!o.serve.empty()) return run_serve(o, std::move(loaded));
  const graph::EdgeList edges = std::move(loaded);
  const auto store = graph::make_store(
      edges, graph::make_store_options(o.store.kind, o.store.mem_cap_mb, o.store.spill_dir));
  const graph::GraphStore& g = *store;
  std::printf("graph: %u vertices, %zu edges (%s store)\n", g.num_vertices(),
              g.num_edges(), graph::store_kind_name(g.kind()).data());

  if (o.stats_only) {
    const auto s = graph::compute_stats(g);
    std::printf("avg degree %.2f | out-degree max %.0f p99 %.0f | isolated %zu | "
                "power-law slope %.2f\n",
                s.avg_degree, s.out_degree.max, s.out_degree.p99, s.isolated_vertices,
                graph::powerlaw_exponent(g));
    return 0;
  }

  const bool mt = o.engine == "mt";
  if (o.algo == "pr") {
    if (o.engine == "gas") {
      algo::PageRankGas prog;
      prog.num_vertices = g.num_vertices();
      prog.epsilon = o.epsilon;
      return run_gas(o, g, prog);
    }
    if (o.engine == "hama") {
      algo::PageRankBsp prog;
      prog.epsilon = o.epsilon;
      return run_bsp(o, g, prog);
    }
    algo::PageRankCyclops prog;
    prog.epsilon = o.epsilon;
    return run_cyclops(o, g, prog, mt);
  }
  if (o.algo == "sssp") {
    if (o.source >= g.num_vertices()) {
      std::fprintf(stderr, "--source out of range\n");
      return 2;
    }
    if (o.engine == "gas") {
      algo::SsspGas prog;
      prog.source = o.source;
      return run_gas(o, g, prog);
    }
    if (o.engine == "hama") {
      algo::SsspBsp prog;
      prog.source = o.source;
      return run_bsp(o, g, prog);
    }
    algo::SsspCyclops prog;
    prog.source = o.source;
    return run_cyclops(o, g, prog, mt);
  }
  if (o.algo == "cd") {
    if (o.engine == "hama") {
      algo::CdBsp prog;
      return run_bsp(o, g, prog);
    }
    algo::CdCyclops prog;
    return run_cyclops(o, g, prog, mt);
  }
  if (o.algo == "cc") {
    if (o.engine == "hama") {
      algo::CcBsp prog;
      return run_bsp(o, g, prog);
    }
    algo::CcCyclops prog;
    return run_cyclops(o, g, prog, mt);
  }
  if (o.algo == "als") {
    if (o.num_users == 0) {
      std::fprintf(stderr, "--users required for ALS on file graphs\n");
      return 2;
    }
    if (o.engine == "hama") {
      algo::AlsBsp prog;
      prog.num_users = o.num_users;
      prog.rounds = o.rounds;
      return run_bsp(o, g, prog);
    }
    algo::AlsCyclops prog;
    prog.num_users = o.num_users;
    prog.rounds = o.rounds;
    return run_cyclops(o, g, prog, mt);
  }
  std::fprintf(stderr, "unknown algorithm '%s'\n", o.algo.c_str());
  return 2;
}
