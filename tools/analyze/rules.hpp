#pragma once
// The 8 repo-invariant rules, ported from lint_core.hpp's line scanner onto
// the token stream (lexer.hpp). Semantics are the same — the parity tests in
// tests/test_lint.cpp assert identical findings on the shared fixtures — but
// the structural blind spots are gone:
//
//   * declaration capture (unordered-wire ident sets, TopologyDelta idents,
//     frozen-view bindings) works across line breaks, because a declaration
//     is a token run, not a line;
//   * lock-across-wire and unordered-wire scopes are tracked by real brace
//     depth to the end of the enclosing scope, not a 60-line cap;
//   * identifier matches are exact tokens, so `resend(` never matches
//     `send(` the way a substring scan would.

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "model.hpp"

namespace cyclops::analyze {

namespace rules_detail {

inline constexpr std::string_view kWireIdents[] = {"send", "send_record",
                                                   "write_vector", "serialize"};

[[nodiscard]] inline bool is_punct(const Token& t, std::string_view text) {
  return t.kind == Tok::kPunct && t.text == text;
}
[[nodiscard]] inline bool is_ident(const Token& t, std::string_view text) {
  return t.kind == Tok::kIdent && t.text == text;
}
[[nodiscard]] inline bool is_member_access(const Token& t) {
  return is_punct(t, ".") || is_punct(t, "->");
}

/// True when tokens[i] begins a wire call: `send(`, `send_record(`,
/// `write_vector(`, `serialize(`, or a member `.write(` / `->write(`.
[[nodiscard]] inline bool is_wire_call(const std::vector<Token>& toks,
                                       std::size_t i) {
  if (toks[i].kind != Tok::kIdent) return false;
  if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) return false;
  for (const std::string_view w : kWireIdents) {
    if (toks[i].text == w) return true;
  }
  return toks[i].text == "write" && i > 0 && is_member_access(toks[i - 1]);
}

/// Collects names declared as std::unordered_{map,set}<...> anywhere in the
/// file. Multi-line declarations are captured naturally: the matching `>`
/// is found by template-bracket counting over tokens, wherever it lives.
[[nodiscard]] inline std::unordered_set<std::string> unordered_idents(
    const std::vector<Token>& toks) {
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "unordered_map") && !is_ident(toks[i], "unordered_set"))
      continue;
    if (!is_punct(toks[i + 1], "<")) continue;
    std::size_t close = match_angle(toks, i + 1);
    if (close >= toks.size()) continue;
    std::size_t j = close + 1;
    while (j < toks.size() && (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                               is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::kIdent) names.insert(toks[j].text);
  }
  return names;
}

/// Collects names declared (or bound as parameters/references) with type
/// TopologyDelta. `TopologyDelta::Canonical` contributes nothing — the next
/// token is `::`, not a declared name.
[[nodiscard]] inline std::unordered_set<std::string> delta_idents(
    const std::vector<Token>& toks) {
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "TopologyDelta")) continue;
    std::size_t j = i + 1;
    if (is_punct(toks[j], "::")) continue;
    while (j < toks.size() && (is_punct(toks[j], "&") || is_punct(toks[j], "*"))) ++j;
    if (j < toks.size() && toks[j].kind == Tok::kIdent) names.insert(toks[j].text);
  }
  return names;
}

/// Joins the tokens of a template argument / type into canonical text:
/// `std :: uint8_t` -> "std::uint8_t", `unsigned char` -> "unsigned char".
[[nodiscard]] inline std::string type_text(const std::vector<Token>& toks,
                                           std::size_t begin, std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    if (!out.empty() && toks[i].kind == Tok::kIdent &&
        toks[i - 1].kind == Tok::kIdent) {
      out += ' ';
    }
    out += toks[i].text;
  }
  return out;
}

inline constexpr std::string_view kNarrowTypes[] = {
    "std::uint8_t",  "std::int8_t",  "std::uint16_t", "std::int16_t",
    "uint8_t",       "int8_t",       "uint16_t",      "int16_t",
    "char",          "unsigned char", "short",        "unsigned short"};

inline constexpr std::string_view kGuardIdents[] = {
    "LockGuard", "lock_guard", "UniqueLock", "unique_lock", "ScopedLock",
    "scoped_lock"};

/// True when tokens[i] acquires a lock: an RAII guard template name followed
/// by `<`, or a member `.lock()` / `->lock()` call.
[[nodiscard]] inline bool takes_lock(const std::vector<Token>& toks,
                                     std::size_t i) {
  if (toks[i].kind != Tok::kIdent) return false;
  if (i + 1 < toks.size() && is_punct(toks[i + 1], "<")) {
    for (const std::string_view g : kGuardIdents) {
      if (toks[i].text == g) return true;
    }
  }
  return toks[i].text == "lock" && i > 0 && is_member_access(toks[i - 1]) &&
         i + 1 < toks.size() && is_punct(toks[i + 1], "(");
}

[[nodiscard]] inline bool is_unlock_call(const std::vector<Token>& toks,
                                         std::size_t i) {
  return is_ident(toks[i], "unlock") && i > 0 && is_member_access(toks[i - 1]) &&
         i + 1 < toks.size() && is_punct(toks[i + 1], "(");
}

}  // namespace rules_detail

/// Runs the 8 ported rules over one file's token stream.
inline void run_token_rules(const FileUnit& u, std::vector<Finding>& out) {
  namespace rd = rules_detail;
  const std::vector<Token>& toks = u.tokens();
  const FileClass& fc = u.file_class();

  const std::unordered_set<std::string> unordered = rd::unordered_idents(toks);
  const std::unordered_set<std::string> deltas = rd::delta_idents(toks);

  // Per-line dedup mirrors the line scanner's one-finding-per-line shape.
  std::unordered_set<int> det_lines, thread_lines, csr_lines, narrow_lines;
  std::unordered_set<int> wire_under_lock;  // lines already attributed

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    const int line = t.line;

    // determinism: rand( / srand( / time( and std::random_device.
    if (t.kind == Tok::kIdent &&
        (t.text == "rand" || t.text == "srand" || t.text == "time") &&
        i + 1 < toks.size() && rd::is_punct(toks[i + 1], "(") &&
        det_lines.insert(line).second) {
      u.add(out, line, "determinism",
            t.text + "() is wall-clock/global-state randomness; use a seeded "
                     "std::mt19937 so runs stay reproducible");
    }
    if (rd::is_ident(t, "std") && i + 2 < toks.size() &&
        rd::is_punct(toks[i + 1], "::") &&
        rd::is_ident(toks[i + 2], "random_device")) {
      u.add(out, line, "determinism",
            "std::random_device is nondeterministic; seed a std::mt19937 from "
            "config instead");
    }

    // raw-thread: std::{thread,mutex,condition_variable} outside common/.
    if (!fc.in_common && rd::is_ident(t, "std") && i + 2 < toks.size() &&
        rd::is_punct(toks[i + 1], "::") && toks[i + 2].kind == Tok::kIdent) {
      const std::string& name = toks[i + 2].text;
      if ((name == "thread" || name == "mutex" || name == "condition_variable") &&
          thread_lines.insert(line).second) {
        u.add(out, line, "raw-thread",
              "std::" + name + " outside common/; use the cyclops::Thread / "
                               "Mutex / CondVar aliases from common/sync.hpp");
      }
    }

    // outbox-outside-runtime: `.outbox(` / `->outbox(` grabs a raw OutBox.
    if (!fc.in_runtime && !fc.in_sim && !fc.in_tests &&
        rd::is_ident(t, "outbox") && i > 0 &&
        rd::is_member_access(toks[i - 1]) && i + 1 < toks.size() &&
        rd::is_punct(toks[i + 1], "(")) {
      u.add(out, line, "outbox-outside-runtime",
            "direct fabric outbox() access outside src/cyclops/runtime/ and "
            "src/cyclops/sim/; sends must flow through SyncChannel so the "
            "message log sees every package and replay stays faithful");
    }

    // delta-outside-ingest: `<ident>.apply(` on a TopologyDelta ident.
    if (!fc.in_core && !fc.in_ingest && !fc.in_tests &&
        rd::is_ident(t, "apply") && i >= 2 &&
        rd::is_member_access(toks[i - 1]) && toks[i - 2].kind == Tok::kIdent &&
        i + 1 < toks.size() && rd::is_punct(toks[i + 1], "(") &&
        deltas.count(toks[i - 2].text) != 0) {
      u.add(out, line, "delta-outside-ingest",
            "TopologyDelta::apply() on '" + toks[i - 2].text +
                "' outside src/cyclops/core/ and src/cyclops/ingest/ mutates "
                "an edge list in place, bypassing batched epoch publication; "
                "use applied() for a const-preserving copy or route the delta "
                "through MutationIngestor / SnapshotStore::apply");
    }

    // csr-outside-graph: the exact identifier Csr.
    if (!fc.in_graph && !fc.in_tests && rd::is_ident(t, "Csr") &&
        csr_lines.insert(line).second) {
      u.add(out, line, "csr-outside-graph",
            "concrete graph::Csr named outside src/cyclops/graph/; code above "
            "the graph layer must use the GraphStore interface "
            "(graph/store.hpp) so all store backends stay interchangeable");
    }

    // wire-narrowing: a narrowing static_cast on the same line as a wire
    // call (the line is the unit of co-occurrence, as in the line scanner).
    if (rd::is_ident(t, "static_cast") && i + 1 < toks.size() &&
        rd::is_punct(toks[i + 1], "<") && !narrow_lines.count(line)) {
      const std::size_t close = match_angle(toks, i + 1);
      if (close < toks.size()) {
        const std::string type = rd::type_text(toks, i + 2, close);
        bool narrow = false;
        for (const std::string_view nt : rd::kNarrowTypes) {
          if (type == nt) {
            narrow = true;
            break;
          }
        }
        if (narrow) {
          bool wire_on_line = false;
          for (std::size_t j = 0; j < toks.size(); ++j) {
            if (toks[j].line == line && rd::is_wire_call(toks, j)) {
              wire_on_line = true;
              break;
            }
          }
          if (wire_on_line) {
            narrow_lines.insert(line);
            u.add(out, line, "wire-narrowing",
                  "static_cast<" + type +
                      "> on a wire call truncates the value on the wire; "
                      "widen the wire field or suppress if the narrowing is "
                      "the format");
          }
        }
      }
    }

    // unordered-wire: a range-for over an unordered container whose body
    // feeds the wire. The body is the real brace scope (or the single
    // statement of a braceless for) — no line cap.
    if (rd::is_ident(t, "for") && i + 1 < toks.size() &&
        rd::is_punct(toks[i + 1], "(")) {
      const std::size_t open = i + 1;
      const std::size_t close = match_paren(toks, open);
      if (close < toks.size()) {
        // The ':' of a range-for sits at the header's own paren depth — the
        // depth the `(` token itself reports (the lexer increments before
        // pushing an opener), so nested call parens never match.
        std::size_t colon = toks.size();
        for (std::size_t j = open + 1; j < close; ++j) {
          if (rd::is_punct(toks[j], ":") &&
              toks[j].paren_depth == toks[open].paren_depth) {
            colon = j;
            break;
          }
        }
        if (colon < close) {
          // Target: the last identifier of the range expression.
          std::string target;
          for (std::size_t j = close; j > colon; --j) {
            if (toks[j - 1].kind == Tok::kIdent) {
              target = toks[j - 1].text;
              break;
            }
          }
          if (!target.empty() && unordered.count(target) != 0) {
            std::size_t body_end;
            if (close + 1 < toks.size() && rd::is_punct(toks[close + 1], "{")) {
              body_end = match_brace(toks, close + 1);
            } else {
              body_end = close + 1;
              while (body_end < toks.size() && !rd::is_punct(toks[body_end], ";"))
                ++body_end;
            }
            for (std::size_t j = close + 1;
                 j < body_end && j < toks.size(); ++j) {
              if (rd::is_wire_call(toks, j)) {
                u.add(out, line, "unordered-wire",
                      "iteration over unordered container '" + target +
                          "' feeds the wire; hash order is not deterministic "
                          "across runs — drain into a sorted vector first");
                break;
              }
            }
          }
        }
      }
    }

    // lock-across-wire: from a lock acquisition forward, flag every wire
    // call while the guard can still be held — until the enclosing scope
    // closes (real brace depth) or an .unlock() on a later line.
    if (rd::takes_lock(toks, i)) {
      const int guard_depth = t.brace_depth;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].brace_depth < guard_depth) break;  // scope exited
        if (toks[j].line > line && rd::is_unlock_call(toks, j)) break;
        if (rd::is_wire_call(toks, j) && wire_under_lock.insert(toks[j].line).second) {
          u.add(out, toks[j].line, "lock-across-wire",
                "wire call while a lock taken at line " + std::to_string(line) +
                    " may still be held; sending under a lock serializes wire "
                    "traffic behind host contention — stage the payload and "
                    "send after releasing");
        }
      }
    }
  }
}

}  // namespace cyclops::analyze
