#pragma once
// SARIF 2.1.0 serialization for cyclops-analyze findings. Machine-readable
// output lets CI annotate PRs and archive runs; the golden test in
// tests/test_lint.cpp pins the exact shape, so keep the output byte-stable:
// fixed key order, 2-space indent, sorted findings in, no timestamps.

#include <string>
#include <string_view>
#include <vector>

#include "model.hpp"

namespace cyclops::analyze {

namespace sarif_detail {

[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace sarif_detail

/// Renders findings (already sorted; see finding_less) as a SARIF 2.1.0 log
/// with one run. Paths are normalized repo-relative so the artifact is
/// stable across checkouts.
[[nodiscard]] inline std::string to_sarif(const std::vector<Finding>& findings) {
  using sarif_detail::json_escape;
  std::string s;
  s += "{\n";
  s += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  s += "  \"version\": \"2.1.0\",\n";
  s += "  \"runs\": [\n";
  s += "    {\n";
  s += "      \"tool\": {\n";
  s += "        \"driver\": {\n";
  s += "          \"name\": \"cyclops-analyze\",\n";
  s += "          \"informationUri\": \"https://example.invalid/cyclops\",\n";
  s += "          \"version\": \"1.0.0\",\n";
  s += "          \"rules\": [\n";
  {
    bool first = true;
    for (const RuleInfo& r : kRules) {
      if (!first) s += ",\n";
      first = false;
      s += "            {\n";
      s += "              \"id\": \"" + std::string(r.id) + "\",\n";
      s += "              \"shortDescription\": { \"text\": \"" +
           json_escape(r.summary) + "\" }\n";
      s += "            }";
    }
  }
  s += "\n          ]\n";
  s += "        }\n";
  s += "      },\n";
  s += "      \"results\": [\n";
  {
    bool first = true;
    for (const Finding& f : findings) {
      if (!first) s += ",\n";
      first = false;
      s += "        {\n";
      s += "          \"ruleId\": \"" + json_escape(f.rule) + "\",\n";
      s += "          \"level\": \"error\",\n";
      s += "          \"message\": { \"text\": \"" + json_escape(f.message) +
           "\" },\n";
      s += "          \"locations\": [\n";
      s += "            {\n";
      s += "              \"physicalLocation\": {\n";
      s += "                \"artifactLocation\": { \"uri\": \"" +
           json_escape(repo_relative(f.file)) + "\" },\n";
      s += "                \"region\": { \"startLine\": " +
           std::to_string(f.line) + " }\n";
      s += "              }\n";
      s += "            }\n";
      s += "          ]\n";
      s += "        }";
    }
  }
  if (!findings.empty()) s += "\n";
  s += "      ]\n";
  s += "    }\n";
  s += "  ]\n";
  s += "}\n";
  return s;
}

}  // namespace cyclops::analyze
