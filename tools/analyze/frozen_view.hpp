#pragma once
// Static frozen-view pass: the compile-time mirror of the CYCLOPS_VERIFY
// EngineChecker's frozen-compute-view invariant (verify/verify.hpp). The
// runtime checker catches a write to the frozen view only on schedules a
// test actually exercises; this pass catches the *code shape* of such a
// write in paths no test reaches — which is the guarantee layer the hybrid
// sync/async engine (ROADMAP item 1) needs before it can relax the interior
// write rule.
//
// What it tracks: identifiers bound to a `const <ViewType>&` / `const
// <ViewType>*` (or a SnapshotRef, which is shared_ptr-to-const by
// definition) where ViewType is one of the frozen view types — the
// GraphStore family plus the service snapshot. Tracking is scope-aware via
// the lexer's real brace depths: a local binding ends with its enclosing
// block, a parameter binding ends with its function body, and a prototype
// parameter binds nothing — so an unrelated variable reusing the name in a
// later function is never confused with the view (shadowing a frozen name
// with a mutable one in a *nested* scope is the one residual blind spot,
// and is its own review problem).
//
// What it flags, on those identifiers:
//   * calls to known mutating members (apply, clear, add_edge, set_*, ...)
//     — the list is a closed set of mutators so the pass can never
//     false-positive on the read-only GraphStore API as it grows;
//   * assignments through the view (`v.field = x`, `v->a.b = x`,
//     `v->slots[i] = x`);
//   * any const_cast whose target type names a view type, or whose argument
//     is a tracked frozen identifier — the only way C++ lets code write
//     through these bindings at all.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "model.hpp"

namespace cyclops::analyze {

namespace frozen_detail {

inline constexpr std::string_view kViewTypes[] = {
    "GraphStore", "Csr", "CompactCsr", "StreamStore", "DeltaOverlay",
    "Snapshot"};

[[nodiscard]] inline bool is_view_type(std::string_view name) {
  for (const std::string_view v : kViewTypes) {
    if (name == v) return true;
  }
  return false;
}

/// Mutating member names. Closed set: anything here called through a frozen
/// binding is a discipline violation regardless of how it compiles (e.g.
/// via a mutable reference obtained elsewhere to the same object).
inline constexpr std::string_view kMutators[] = {
    "apply",   "clear",       "resize", "reserve",  "push_back", "pop_back",
    "insert",  "erase",       "emplace", "emplace_back", "assign", "swap",
    "add_edge", "remove_edge", "load",   "rebuild",  "compact",   "retire"};

[[nodiscard]] inline bool is_mutator(std::string_view name) {
  if (name.rfind("set_", 0) == 0) return true;
  for (const std::string_view m : kMutators) {
    if (name == m) return true;
  }
  return false;
}

struct FrozenIdent {
  std::string name;
  std::size_t decl_tok = 0;  ///< tracking starts after the declaration
  std::size_t end_tok = 0;   ///< ...and ends with the enclosing scope
};

/// Computes where a binding declared at token `name_at` goes out of scope.
/// Locals end at the first token whose brace depth drops below the
/// declaration's (the `}` closing the block reports the outer depth, so it
/// is itself the end). Parameters (paren_depth > 0 at the name) scope over
/// the function body that follows the parameter list: forward to the
/// body-opening `{` — or to a `;`, which means a prototype that binds
/// nothing — then to the body's close.
[[nodiscard]] inline std::size_t scope_end(const std::vector<Token>& toks,
                                           std::size_t name_at) {
  const int d = toks[name_at].brace_depth;
  std::size_t j = name_at + 1;
  if (toks[name_at].paren_depth > 0) {
    while (j < toks.size()) {
      if (toks[j].paren_depth == 0 && toks[j].kind == Tok::kPunct) {
        // `;` carries the surrounding depth d; an opening `{` carries the
        // depth it creates, d + 1 (the lexer increments before pushing).
        if (toks[j].text == ";" && toks[j].brace_depth == d) return j;
        if (toks[j].text == "{" && toks[j].brace_depth == d + 1) break;
      }
      if (toks[j].brace_depth < d) return j;  // malformed; fail closed
      ++j;
    }
    ++j;  // into the body, depth d + 1
    while (j < toks.size() && toks[j].brace_depth > d) ++j;
    return j;
  }
  while (j < toks.size() && toks[j].brace_depth >= d) ++j;
  return j;
}

[[nodiscard]] inline bool is_punct(const Token& t, std::string_view text) {
  return t.kind == Tok::kPunct && t.text == text;
}

/// Collects identifiers bound to const view references/pointers and
/// SnapshotRef values. Pattern (tokens, possibly spanning lines):
///   `const` [ns ::]* ViewType [&|*]+ name   — name not followed by `(`
///   `SnapshotRef` name                      — ditto
[[nodiscard]] inline std::vector<FrozenIdent> collect(
    const std::vector<Token>& toks) {
  std::vector<FrozenIdent> out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;

    std::size_t name_at = toks.size();
    if (is_view_type(toks[i].text)) {
      // Walk back over `ns ::` qualifiers to the `const`.
      std::size_t j = i;
      while (j >= 2 && is_punct(toks[j - 1], "::") &&
             toks[j - 2].kind == Tok::kIdent) {
        j -= 2;
      }
      if (j == 0 || !(toks[j - 1].kind == Tok::kIdent && toks[j - 1].text == "const"))
        continue;
      // Forward over ref/pointer declarators to the declared name.
      std::size_t k = i + 1;
      if (k < toks.size() && is_punct(toks[k], "::")) continue;  // ViewType::member
      bool ref_or_ptr = false;
      while (k < toks.size() && (is_punct(toks[k], "&") || is_punct(toks[k], "*"))) {
        ref_or_ptr = true;
        ++k;
      }
      // `const GraphStore g` by value is a copy the callee owns — only
      // reference/pointer bindings alias the frozen view.
      if (!ref_or_ptr) continue;
      name_at = k;
    } else if (toks[i].text == "SnapshotRef") {
      std::size_t k = i + 1;
      if (k < toks.size() && is_punct(toks[k], "::")) continue;
      while (k < toks.size() && (is_punct(toks[k], "&") || is_punct(toks[k], "*"))) ++k;
      name_at = k;
    } else {
      continue;
    }

    if (name_at >= toks.size() || toks[name_at].kind != Tok::kIdent) continue;
    // A following `(` means this declared a function returning the type,
    // not a variable binding.
    if (name_at + 1 < toks.size() && is_punct(toks[name_at + 1], "(")) continue;
    out.push_back(
        FrozenIdent{toks[name_at].text, name_at, scope_end(toks, name_at)});
  }
  return out;
}

[[nodiscard]] inline bool tracked_at(const std::vector<FrozenIdent>& idents,
                                     std::string_view name, std::size_t tok) {
  for (const FrozenIdent& f : idents) {
    if (f.name == name && tok > f.decl_tok && tok < f.end_tok) return true;
  }
  return false;
}

}  // namespace frozen_detail

/// Runs the frozen-view pass over one file.
inline void run_frozen_view(const FileUnit& u, std::vector<Finding>& out) {
  namespace fd = frozen_detail;
  const std::vector<Token>& toks = u.tokens();
  const std::vector<fd::FrozenIdent> idents = fd::collect(toks);

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];

    // const_cast<...>: on a view type, or on a tracked frozen identifier.
    if (t.kind == Tok::kIdent && t.text == "const_cast" && i + 1 < toks.size() &&
        fd::is_punct(toks[i + 1], "<")) {
      const std::size_t close = match_angle(toks, i + 1);
      bool on_view_type = false;
      if (close < toks.size()) {
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks[j].kind == Tok::kIdent && fd::is_view_type(toks[j].text)) {
            on_view_type = true;
            break;
          }
        }
      }
      bool on_frozen_ident = false;
      if (close + 1 < toks.size() && fd::is_punct(toks[close + 1], "(")) {
        const std::size_t arg_close = match_paren(toks, close + 1);
        for (std::size_t j = close + 2; j < arg_close && j < toks.size(); ++j) {
          if (toks[j].kind == Tok::kIdent &&
              fd::tracked_at(idents, toks[j].text, j)) {
            on_frozen_ident = true;
            break;
          }
        }
      }
      if (on_view_type || on_frozen_ident) {
        u.add(out, t.line, "frozen-view",
              on_view_type
                  ? "const_cast on a frozen view type; the compute-phase "
                    "view is immutable by contract (owner-only applies land "
                    "in the mirror, not the view) — route writes through "
                    "the engine's apply path"
                  : "const_cast on an identifier bound to a frozen view; "
                    "casting away the view's constness breaks the "
                    "phase/ownership discipline EngineChecker enforces at "
                    "runtime");
      }
      continue;
    }

    // Member access through a tracked frozen identifier.
    if (t.kind != Tok::kIdent || !fd::tracked_at(idents, t.text, i)) continue;
    if (i + 1 >= toks.size() || !(fd::is_punct(toks[i + 1], ".") ||
                                  fd::is_punct(toks[i + 1], "->"))) {
      continue;
    }
    // Skip declarations: the token before a use is never `const` or a type.
    // Walk the member chain: ident (.|->) ident [(...)|[...]] ...
    std::size_t j = i + 1;
    std::string last_member;
    while (j + 1 < toks.size() &&
           (fd::is_punct(toks[j], ".") || fd::is_punct(toks[j], "->")) &&
           toks[j + 1].kind == Tok::kIdent) {
      last_member = toks[j + 1].text;
      j += 2;
      // Subscripts between members / before an assignment.
      while (j < toks.size() && fd::is_punct(toks[j], "[")) {
        int depth = 0;
        while (j < toks.size()) {
          if (fd::is_punct(toks[j], "[")) ++depth;
          if (fd::is_punct(toks[j], "]") && --depth == 0) {
            ++j;
            break;
          }
          ++j;
        }
      }
    }
    if (last_member.empty()) continue;

    if (j < toks.size() && fd::is_punct(toks[j], "(")) {
      if (fd::is_mutator(last_member)) {
        u.add(out, t.line, "frozen-view",
              "mutating call " + last_member + "() through '" + t.text +
                  "', which is bound to a frozen compute-phase view; the "
                  "immutable-view contract allows reads only — apply "
                  "mutations through the owner's apply path");
      }
      continue;
    }
    if (j < toks.size() && fd::is_punct(toks[j], "=")) {
      u.add(out, t.line, "frozen-view",
            "assignment through '" + t.text +
                "', which is bound to a frozen compute-phase view; the view "
                "is immutable during compute — writes belong in the owner's "
                "mirror state");
    }
  }
}

}  // namespace cyclops::analyze
