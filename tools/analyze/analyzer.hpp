#pragma once
// cyclops-analyze driver: lexes every file once (in parallel, via the repo's
// own common/thread_pool), runs the per-file passes (the 8 ported rules, the
// frozen-view pass, allow()-marker validation), then the cross-file include
// pass, and returns findings in deterministic (file, line, rule) order —
// identical regardless of job count, which the tests assert.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cyclops/common/thread_pool.hpp"

#include "baseline.hpp"
#include "frozen_view.hpp"
#include "include_graph.hpp"
#include "model.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace cyclops::analyze {

struct AnalyzeOptions {
  /// Worker threads for per-file scanning. 0 = hardware concurrency,
  /// 1 = fully serial (no pool constructed).
  std::size_t jobs = 0;
  /// Cross-file include pass (layer map + cycle detection). Off only in
  /// tests that target a single per-file rule.
  bool include_pass = true;
};

/// Analyzes a set of files and returns sorted findings.
inline std::vector<Finding> analyze_files(const std::vector<SourceFile>& files,
                                          const AnalyzeOptions& opt = {}) {
  // Lex + per-file passes, one result slot per file: workers never share a
  // slot, so the merge needs no locks and the order never depends on timing.
  std::vector<std::unique_ptr<FileUnit>> units(files.size());
  std::vector<std::vector<Finding>> per_file(files.size());

  const auto scan_one = [&](std::size_t i) {
    units[i] = std::make_unique<FileUnit>(files[i].path, files[i].content);
    run_token_rules(*units[i], per_file[i]);
    run_frozen_view(*units[i], per_file[i]);
    check_markers(*units[i], per_file[i]);
  };

  if (opt.jobs == 1 || files.size() <= 1) {
    for (std::size_t i = 0; i < files.size(); ++i) scan_one(i);
  } else {
    ThreadPool pool(opt.jobs);
    pool.parallel_for(files.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) scan_one(i);
    });
  }

  std::vector<Finding> findings;
  for (std::vector<Finding>& fs : per_file) {
    for (Finding& f : fs) findings.push_back(std::move(f));
  }

  if (opt.include_pass) {
    std::vector<FileUnit> owned;
    owned.reserve(units.size());
    for (std::unique_ptr<FileUnit>& u : units) owned.push_back(std::move(*u));
    run_include_pass(owned, findings);
  }

  std::sort(findings.begin(), findings.end(), finding_less);
  return findings;
}

/// Single-file convenience for tests and spot checks (no include pass: layer
/// and cycle findings need the whole set).
inline std::vector<Finding> analyze_file(const std::string& path,
                                         const std::string& content) {
  AnalyzeOptions opt;
  opt.jobs = 1;
  opt.include_pass = false;
  return analyze_files({SourceFile{path, content}}, opt);
}

}  // namespace cyclops::analyze
