#pragma once
// Baseline (suppression file) support for cyclops-analyze. A baseline entry
// acknowledges one existing finding so the tree gate can demand *zero
// unbaselined* findings while a violation is being worked off. The format is
// the analyzer's own text output minus the message, one per line:
//
//     src/cyclops/foo/bar.hpp:42: [rule-id]
//
// `#` starts a comment. Paths match by repo-relative suffix, so a baseline
// written from the repo root matches findings produced from absolute paths.
// Entries that match nothing are reported as stale (the violation was fixed;
// delete the line) — stale entries are a warning, not a failure, so fixing
// code never breaks the gate.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "model.hpp"

namespace cyclops::analyze {

struct BaselineEntry {
  std::string path;
  int line = 0;
  std::string rule;
  bool used = false;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
  std::vector<std::string> parse_errors;  ///< malformed lines, for diagnostics
};

/// Parses baseline text. Malformed lines land in parse_errors instead of
/// being silently dropped — a typo must not quietly widen the gate.
[[nodiscard]] inline Baseline parse_baseline(std::string_view content) {
  Baseline b;
  std::size_t start = 0;
  int line_no = 0;
  while (start <= content.size()) {
    const std::size_t nl = content.find('\n', start);
    std::string_view line = nl == std::string_view::npos
                                ? content.substr(start)
                                : content.substr(start, nl - start);
    ++line_no;
    // Trim + comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
      line.remove_prefix(1);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.remove_suffix(1);
    if (!line.empty() && line.front() != '#') {
      // <path>:<line>: [<rule>]
      const std::size_t rb = line.rfind(']');
      const std::size_t lb = line.rfind('[');
      bool ok = rb != std::string_view::npos && lb != std::string_view::npos &&
                lb < rb && rb == line.size() - 1;
      if (ok) {
        const std::string rule(line.substr(lb + 1, rb - lb - 1));
        std::string_view head = line.substr(0, lb);
        while (!head.empty() && (head.back() == ' ' || head.back() == ':'))
          head.remove_suffix(1);
        const std::size_t colon = head.rfind(':');
        ok = colon != std::string_view::npos && colon + 1 < head.size();
        if (ok) {
          int ln = 0;
          for (std::size_t i = colon + 1; i < head.size(); ++i) {
            if (head[i] < '0' || head[i] > '9') {
              ok = false;
              break;
            }
            ln = ln * 10 + (head[i] - '0');
          }
          if (ok) {
            BaselineEntry e;
            e.path = repo_relative(head.substr(0, colon));
            e.line = ln;
            e.rule = rule;
            b.entries.push_back(std::move(e));
          }
        }
      }
      if (!ok) {
        b.parse_errors.push_back("baseline line " + std::to_string(line_no) +
                                 ": cannot parse '" + std::string(line) + "'");
      }
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return b;
}

/// Removes findings covered by the baseline (marking entries used) and
/// returns the rest. Matching is (repo-relative path, line, rule).
[[nodiscard]] inline std::vector<Finding> apply_baseline(
    const std::vector<Finding>& findings, Baseline& baseline) {
  std::vector<Finding> remaining;
  for (const Finding& f : findings) {
    const std::string rel = repo_relative(f.file);
    bool covered = false;
    for (BaselineEntry& e : baseline.entries) {
      if (e.line == f.line && e.rule == f.rule && e.path == rel) {
        e.used = true;
        covered = true;
        break;
      }
    }
    if (!covered) remaining.push_back(f);
  }
  return remaining;
}

[[nodiscard]] inline std::vector<const BaselineEntry*> stale_entries(
    const Baseline& baseline) {
  std::vector<const BaselineEntry*> stale;
  for (const BaselineEntry& e : baseline.entries) {
    if (!e.used) stale.push_back(&e);
  }
  return stale;
}

/// Serializes findings as a fresh baseline file.
[[nodiscard]] inline std::string write_baseline(
    const std::vector<Finding>& findings) {
  std::string out;
  out += "# cyclops-analyze baseline: acknowledged findings, one per line as\n";
  out += "# <repo-relative-path>:<line>: [rule]. Delete lines as violations\n";
  out += "# are fixed; the analyze_tree gate fails only on UNbaselined\n";
  out += "# findings and warns on stale entries.\n";
  for (const Finding& f : findings) {
    out += repo_relative(f.file) + ":" + std::to_string(f.line) + ": [" +
           f.rule + "]\n";
  }
  return out;
}

}  // namespace cyclops::analyze
