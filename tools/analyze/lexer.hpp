#pragma once
// Shared C++ token lexer for cyclops-analyze (tools/cyclops_analyze.cpp).
//
// This replaces lint_core.hpp's per-line `code_only` scans with a real token
// stream: string literals (ordinary, char, and raw with encoding prefixes),
// line and block comments, multi-character punctuators, and preprocessor
// directives are all lexed properly, and every token carries the brace/paren
// depth it was seen at. That is what lets the passes layered on top do the
// things the line scanner structurally could not:
//
//   * multi-line declarations (an `unordered_map<K,\n V> name` split across
//     lines is one token run, not two unrelated lines),
//   * real scope tracking (a lock guard's critical section ends where its
//     brace depth says it ends, not at a 60-line cap),
//   * `#include` extraction with <>-header names that never collide with
//     less-than tokens.
//
// The lexer is deliberately not a parser: no preprocessing, no template
// disambiguation beyond `>>` splitting in the template-depth helpers. Every
// pass that consumes the stream documents the approximations it makes.

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cyclops::analyze {

enum class Tok {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< pp-number (we never interpret the value)
  kString,   ///< ordinary or raw string literal; text is the marker `"`
  kChar,     ///< character literal; text is the marker `'`
  kPunct,    ///< operator / punctuator, longest-match (`::`, `->`, `>>`, ...)
  kHeader,   ///< <...> header-name inside an #include directive
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 0;         ///< 1-based
  int col = 0;          ///< 0-based byte offset in the line
  int brace_depth = 0;  ///< `{` depth *before* this token
  int paren_depth = 0;  ///< `(` depth *before* this token
};

/// One `#include` directive. `target` is the header path without delimiters;
/// `angled` distinguishes `<...>` (system/library) from `"..."` (repo).
struct IncludeDirective {
  std::string target;
  int line = 0;
  bool angled = false;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
};

namespace detail {

[[nodiscard]] inline bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] inline bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators, longest first so greedy matching is correct.
inline constexpr std::string_view kPuncts[] = {
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "##"};

}  // namespace detail

/// Lexes `content` into a token stream plus the file's #include directives.
/// Comments vanish; string/char literals collapse to a one-character marker
/// token so adjacency survives but literal bodies can never feed a rule.
inline LexedFile lex(std::string_view content) {
  LexedFile out;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  int line_start = 0;  // byte offset of the current line's first char
  int brace = 0;
  int paren = 0;
  bool line_fresh = true;  // only whitespace seen on this line so far

  const auto newline = [&](std::size_t at) {
    ++line;
    line_start = static_cast<int>(at) + 1;
    line_fresh = true;
  };

  const auto push = [&](Tok kind, std::string text, int tok_line, int tok_col) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tok_line;
    t.col = tok_col;
    t.brace_depth = brace;
    t.paren_depth = paren;
    out.tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      newline(i);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      while (i < n && content[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') newline(i);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    // Preprocessor directive at start of line: extract #include, then lex the
    // rest of the directive as ordinary tokens (rules still see e.g. #define
    // bodies, which the line scanner also saw).
    if (c == '#' && line_fresh) {
      std::size_t j = i + 1;
      while (j < n && (content[j] == ' ' || content[j] == '\t')) ++j;
      std::size_t w = j;
      while (w < n && detail::ident_char(content[w])) ++w;
      if (content.substr(j, w - j) == "include") {
        std::size_t h = w;
        while (h < n && (content[h] == ' ' || content[h] == '\t')) ++h;
        if (h < n && (content[h] == '"' || content[h] == '<')) {
          const char close = content[h] == '<' ? '>' : '"';
          const std::size_t start = h + 1;
          std::size_t e = start;
          while (e < n && content[e] != close && content[e] != '\n') ++e;
          if (e < n && content[e] == close) {
            IncludeDirective inc;
            inc.target = std::string(content.substr(start, e - start));
            inc.line = line;
            inc.angled = close == '>';
            if (inc.angled) {
              push(Tok::kHeader, inc.target, line,
                   static_cast<int>(h) - line_start);
            }
            out.includes.push_back(std::move(inc));
            i = e + 1;
            line_fresh = false;
            continue;
          }
        }
      }
      push(Tok::kPunct, "#", line, static_cast<int>(i) - line_start);
      ++i;
      line_fresh = false;
      continue;
    }

    line_fresh = false;
    const int tok_line = line;
    const int tok_col = static_cast<int>(i) - line_start;

    // Raw string literal, with optional encoding prefix (R, uR, u8R, UR, LR).
    if (detail::ident_start(c)) {
      std::size_t e = i;
      while (e < n && detail::ident_char(content[e])) ++e;
      const std::string_view word = content.substr(i, e - i);
      const bool raw_prefix = (word == "R" || word == "uR" || word == "u8R" ||
                               word == "UR" || word == "LR");
      if (raw_prefix && e < n && content[e] == '"') {
        // R"delim( ... )delim" — the only terminator is the exact close.
        std::size_t open = e + 1;
        while (open < n && content[open] != '(' && content[open] != '\n') ++open;
        const std::string delim(content.substr(e + 1, open - (e + 1)));
        const std::string close = ")" + delim + "\"";
        std::size_t body = (open < n) ? open + 1 : n;
        std::size_t end = content.find(close, body);
        if (end == std::string_view::npos) end = n;
        for (std::size_t k = i; k < end && k < n; ++k) {
          if (content[k] == '\n') newline(k);
        }
        push(Tok::kString, "\"", tok_line, tok_col);
        i = (end == n) ? n : end + close.size();
        continue;
      }
      // Ordinary string with encoding prefix (u8"...", L"...", ...): treat the
      // prefix as part of the literal so `u8"x"` is one marker token.
      const bool str_prefix =
          (word == "u" || word == "u8" || word == "U" || word == "L");
      if (str_prefix && e < n && (content[e] == '"' || content[e] == '\'')) {
        i = e;  // fall through to the literal scanner below
      } else {
        push(Tok::kIdent, std::string(word), tok_line, tok_col);
        i = e;
        continue;
      }
    }

    const char lit = content[i];
    if (lit == '"' || lit == '\'') {
      std::size_t e = i + 1;
      while (e < n && content[e] != lit) {
        if (content[e] == '\n') {
          newline(e);
          ++e;
        } else if (content[e] == '\\') {
          e += 2;  // the escaped char can never close the literal
        } else {
          ++e;
        }
      }
      push(lit == '"' ? Tok::kString : Tok::kChar, std::string(1, lit),
           tok_line, tok_col);
      i = (e < n) ? e + 1 : n;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(lit)) != 0 ||
        (lit == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])) != 0)) {
      // pp-number: digits, idents, dots, and sign chars after e/E/p/P.
      std::size_t e = i + 1;
      while (e < n) {
        const char d = content[e];
        if (detail::ident_char(d) || d == '.' || d == '\'') {
          ++e;
        } else if ((d == '+' || d == '-') &&
                   (content[e - 1] == 'e' || content[e - 1] == 'E' ||
                    content[e - 1] == 'p' || content[e - 1] == 'P')) {
          ++e;
        } else {
          break;
        }
      }
      push(Tok::kNumber, std::string(content.substr(i, e - i)), tok_line, tok_col);
      i = e;
      continue;
    }

    // Punctuator, longest match first.
    std::string_view matched;
    for (const std::string_view p : detail::kPuncts) {
      if (content.substr(i, p.size()) == p) {
        matched = p;
        break;
      }
    }
    if (matched.empty()) matched = content.substr(i, 1);
    if (matched == "{") ++brace;
    if (matched == "(") ++paren;
    push(Tok::kPunct, std::string(matched), tok_line, tok_col);
    // Depth-before semantics: the closing token itself still belongs to the
    // scope it closes, so decrement after pushing.
    if (matched == "}") {
      --brace;
      out.tokens.back().brace_depth = brace;  // `}` reports the outer depth
    }
    if (matched == ")") {
      --paren;
      out.tokens.back().paren_depth = paren;
    }
    i += matched.size();
  }
  return out;
}

/// Finds the index of the `>` matching the `<` at `open` (tokens[open] must
/// be "<"). Counts `<`/`>` and splits `>>`/`<<` as two template brackets.
/// Returns tokens.size() when unbalanced.
[[nodiscard]] inline std::size_t match_angle(const std::vector<Token>& tokens,
                                             std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (tokens[i].kind != Tok::kPunct) continue;
    if (t == "<") ++depth;
    if (t == "<<") depth += 2;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (t == ";") return tokens.size();  // a declaration never crosses `;`
    if (depth <= 0) return i;
  }
  return tokens.size();
}

/// Finds the index of the `)` matching the `(` at `open`.
[[nodiscard]] inline std::size_t match_paren(const std::vector<Token>& tokens,
                                             std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kPunct) continue;
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")" && --depth == 0) return i;
  }
  return tokens.size();
}

/// Finds the index of the `}` matching the `{` at `open`.
[[nodiscard]] inline std::size_t match_brace(const std::vector<Token>& tokens,
                                             std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kPunct) continue;
    if (tokens[i].text == "{") ++depth;
    if (tokens[i].text == "}" && --depth == 0) return i;
  }
  return tokens.size();
}

}  // namespace cyclops::analyze
