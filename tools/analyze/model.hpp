#pragma once
// Core data model for cyclops-analyze: findings, the rule registry, and the
// per-file unit (token stream + raw lines + suppression markers) every pass
// consumes. Path classification is shared with the legacy line scanner
// (lint_core.hpp) so both engines agree on which directories exempt which
// rules — that agreement is what the parity tests in tests/test_lint.cpp
// assert.

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "../lint_core.hpp"
#include "lexer.hpp"

namespace cyclops::analyze {

using lint::FileClass;
using lint::classify_path;

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

[[nodiscard]] inline bool finding_less(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

/// One file to analyze: `path` is used for reporting, layer classification,
/// and include resolution; tests feed virtual paths with in-memory content.
struct SourceFile {
  std::string path;
  std::string content;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Registry of every rule the analyzer can emit: the 8 rules ported from the
/// line scanner, the two new passes, and the marker validator. SARIF output
/// and `--rules` both render from here; allow() markers are validated
/// against it.
inline constexpr RuleInfo kRules[] = {
    {"determinism",
     "no rand()/srand()/time()/std::random_device in engine code"},
    {"unordered-wire", "no unordered_{map,set} iteration feeding the wire"},
    {"raw-thread",
     "no std::thread/std::mutex/std::condition_variable outside common/"},
    {"wire-narrowing", "no 8/16-bit narrowing casts on wire calls"},
    {"lock-across-wire", "no wire calls while a lock may still be held"},
    {"csr-outside-graph", "no concrete graph::Csr outside src/cyclops/graph/"},
    {"outbox-outside-runtime",
     "no direct fabric outbox() access outside runtime/ and sim/"},
    {"delta-outside-ingest",
     "no TopologyDelta::apply() outside core/ and ingest/"},
    {"include-layering",
     "includes must follow the architecture layer map (no upward or "
     "undeclared skip-layer edges)"},
    {"include-cycle", "no cycles in the repo include graph"},
    {"frozen-view",
     "no writes, mutator calls, or const_cast through a frozen compute-phase "
     "view (const GraphStore&/snapshot bindings)"},
    {"bad-suppression", "allow() markers must name a known rule"},
};

[[nodiscard]] inline bool known_rule(std::string_view id) {
  for (const RuleInfo& r : kRules) {
    if (r.id == id) return true;
  }
  return false;
}

/// A suppression marker found on a raw source line:
/// `cyclops-lint: allow(<rule>)` or `cyclops-analyze: allow(<rule>)`.
struct AllowMarker {
  int line = 0;  // 1-based
  std::string rule;
};

namespace detail {

[[nodiscard]] inline bool rule_name_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

/// Scans one raw line for allow() markers. Text that merely looks like a
/// marker but does not carry a plausible rule name (e.g. the documentation
/// placeholder `allow(<rule>)`) is ignored rather than rejected.
inline void scan_markers(std::string_view line, int line_no,
                         std::vector<AllowMarker>& out) {
  for (const std::string_view prefix :
       {std::string_view("cyclops-lint: allow("),
        std::string_view("cyclops-analyze: allow(")}) {
    std::size_t pos = 0;
    while ((pos = line.find(prefix, pos)) != std::string_view::npos) {
      const std::size_t start = pos + prefix.size();
      std::size_t end = start;
      while (end < line.size() && rule_name_char(line[end])) ++end;
      if (end > start && end < line.size() && line[end] == ')') {
        out.push_back(AllowMarker{line_no, std::string(line.substr(start, end - start))});
      }
      pos = start;
    }
  }
}

}  // namespace detail

/// Everything the passes need about one file, computed once: the token
/// stream, include directives, path class, and suppression markers.
class FileUnit {
 public:
  FileUnit(std::string path, const std::string& content)
      : path_(std::move(path)),
        fc_(classify_path(path_)),
        lexed_(lex(content)) {
    int line_no = 1;
    std::size_t start = 0;
    while (start <= content.size()) {
      const std::size_t nl = content.find('\n', start);
      const std::string_view line =
          nl == std::string::npos
              ? std::string_view(content).substr(start)
              : std::string_view(content).substr(start, nl - start);
      detail::scan_markers(line, line_no, markers_);
      if (nl == std::string::npos) break;
      start = nl + 1;
      ++line_no;
    }
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const FileClass& file_class() const noexcept { return fc_; }
  [[nodiscard]] const std::vector<Token>& tokens() const noexcept {
    return lexed_.tokens;
  }
  [[nodiscard]] const std::vector<IncludeDirective>& includes() const noexcept {
    return lexed_.includes;
  }
  [[nodiscard]] const std::vector<AllowMarker>& markers() const noexcept {
    return markers_;
  }

  /// True when `rule` is allowed on `line` (marker on the same line or the
  /// line above) — the same semantics the legacy scanner has always had.
  [[nodiscard]] bool suppressed(int line, std::string_view rule) const {
    for (const AllowMarker& m : markers_) {
      if (m.rule == rule && (m.line == line || m.line + 1 == line)) return true;
    }
    return false;
  }

  /// Appends a finding unless a marker suppresses it.
  void add(std::vector<Finding>& out, int line, std::string_view rule,
           std::string message) const {
    if (suppressed(line, rule)) return;
    out.push_back(Finding{path_, line, std::string(rule), std::move(message)});
  }

 private:
  std::string path_;
  FileClass fc_;
  LexedFile lexed_;
  std::vector<AllowMarker> markers_;
};

/// Validates allow() markers: a well-formed marker naming a rule the
/// registry does not know is itself a finding — a typo in a suppression
/// silently un-suppresses nothing and must not pass review unnoticed.
/// Emission goes through FileUnit::add so bad-suppression is itself
/// suppressible: test sources that quote a deliberately-broken marker can
/// acknowledge it with an adjacent allow(bad-suppression).
inline void check_markers(const FileUnit& u, std::vector<Finding>& out) {
  for (const AllowMarker& m : u.markers()) {
    if (!known_rule(m.rule)) {
      u.add(out, m.line, "bad-suppression",
            "allow(" + m.rule + ") names no known rule; run --rules for the "
            "list (the marker suppresses nothing)");
    }
  }
}

/// Strips everything before the repo-root component so findings, baselines,
/// and SARIF artifacts agree on paths regardless of where the analyzer ran.
/// `/root/repo/src/cyclops/x.hpp` and `src/cyclops/x.hpp` both normalize to
/// the latter.
[[nodiscard]] inline std::string repo_relative(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  for (const std::string_view root :
       {std::string_view("src/"), std::string_view("tools/"),
        std::string_view("tests/"), std::string_view("bench/"),
        std::string_view("examples/")}) {
    const std::size_t at = p.find(root);
    if (at == 0) return p;
    if (at != std::string::npos && p[at - 1] == '/') return p.substr(at);
  }
  return p;
}

}  // namespace cyclops::analyze
