#pragma once
// Include-graph pass: parses the `#include` edges the lexer extracted across
// src/cyclops/, then enforces two properties the architecture depends on:
//
//   1. The layer DAG. Each src/cyclops/<layer>/ directory declares, in
//      kLayerMap below, exactly which layers it may include. An include of a
//      *higher* layer is an upward edge (inverted dependency); an include of
//      a lower layer that the map does not declare is a skip-layer edge (an
//      undeclared coupling that bypasses the intended seam). Both are
//      findings — the map is the single place a new dependency gets debated.
//
//   2. Acyclicity at file granularity. Layer-level mutual edges exist by
//      design (common <-> verify: the race instrumentation hooks), but no
//      two *files* may include each other transitively; a file cycle means
//      the headers only compile by include-order accident.
//
// Files outside src/cyclops/ (tools/, tests/, bench/, examples/) have no
// layer: they may include anything, and they participate in cycle detection
// only through edges that resolve into the scanned set.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "model.hpp"

namespace cyclops::analyze {

/// One layer of the architecture DAG, lowest first. `allowed` lists every
/// layer this one may include (itself always implied). The rank order below
/// is the documentation-grade summary:
///
///   common/verify -> graph, sim -> partition, metrics -> runtime
///     -> core (cyclops), bsp, gas -> algorithms -> service -> ingest
struct LayerSpec {
  std::string_view name;
  int rank;
  std::vector<std::string_view> allowed;
};

[[nodiscard]] inline const std::vector<LayerSpec>& layer_map() {
  static const std::vector<LayerSpec> kLayerMap = {
      // verify is co-resident with common: the race/invariant hooks are
      // compiled into the base primitives (spinlock, thread pool), so the
      // two form the rank-0 instrumentation substrate together.
      {"common", 0, {"verify"}},
      {"verify", 0, {"common"}},
      {"graph", 1, {"common"}},
      {"sim", 1, {"common", "verify"}},
      {"partition", 2, {"common", "graph"}},
      {"metrics", 2, {"common", "sim"}},
      {"runtime", 3, {"common", "verify", "sim", "metrics"}},
      {"core", 4,
       {"common", "verify", "graph", "partition", "sim", "metrics", "runtime"}},
      {"bsp", 4,
       {"common", "verify", "graph", "partition", "sim", "metrics", "runtime"}},
      {"gas", 4,
       {"common", "verify", "graph", "partition", "sim", "metrics", "runtime"}},
      {"algorithms", 5,
       {"common", "verify", "graph", "partition", "sim", "metrics", "runtime",
        "core", "bsp", "gas"}},
      {"service", 6,
       {"common", "verify", "graph", "partition", "sim", "metrics", "runtime",
        "core", "bsp", "gas", "algorithms"}},
      {"ingest", 7,
       {"common", "verify", "graph", "partition", "sim", "metrics", "runtime",
        "core", "bsp", "gas", "algorithms", "service"}},
  };
  return kLayerMap;
}

namespace include_detail {

[[nodiscard]] inline const LayerSpec* find_layer(std::string_view name) {
  for (const LayerSpec& l : layer_map()) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

/// Layer of a file path: the segment after "src/cyclops/", or "" when the
/// file is outside the layered tree.
[[nodiscard]] inline std::string path_layer(std::string_view path) {
  const std::size_t at = path.find("src/cyclops/");
  if (at == std::string_view::npos) return {};
  const std::size_t start = at + std::string_view("src/cyclops/").size();
  const std::size_t slash = path.find('/', start);
  if (slash == std::string_view::npos) return {};  // a file directly in cyclops/
  return std::string(path.substr(start, slash - start));
}

/// Layer of a quoted include target ("cyclops/<layer>/...").
[[nodiscard]] inline std::string target_layer(std::string_view target) {
  if (target.rfind("cyclops/", 0) != 0) return {};
  const std::size_t start = std::string_view("cyclops/").size();
  const std::size_t slash = target.find('/', start);
  if (slash == std::string_view::npos) return {};
  return std::string(target.substr(start, slash - start));
}

/// Canonical node key for cycle detection: the path suffix from "cyclops/"
/// under src/, which is exactly how quoted includes name repo headers.
[[nodiscard]] inline std::string node_key(std::string_view path) {
  const std::size_t at = path.find("src/cyclops/");
  if (at == std::string_view::npos) return {};
  return std::string(path.substr(at + 4));  // from "cyclops/"
}

}  // namespace include_detail

/// Runs the include pass over the whole scanned set.
inline void run_include_pass(const std::vector<FileUnit>& units,
                             std::vector<Finding>& out) {
  namespace id = include_detail;

  // --- layer enforcement -------------------------------------------------
  for (const FileUnit& u : units) {
    const std::string src_layer = id::path_layer(u.path());
    if (src_layer.empty()) continue;  // unlayered: tools/tests/bench
    const LayerSpec* src = id::find_layer(src_layer);
    for (const IncludeDirective& inc : u.includes()) {
      if (inc.angled) continue;  // system/library headers are not layered
      const std::string dst_layer = id::target_layer(inc.target);
      if (dst_layer.empty()) continue;  // relative include within a dir
      if (src == nullptr) {
        u.add(out, inc.line, "include-layering",
              "directory '" + src_layer +
                  "' is not in the layer map (tools/analyze/include_graph.hpp);"
                  " add it with an explicit allowed-dependency list");
        break;  // once per file is enough for an unmapped directory
      }
      if (dst_layer == src_layer) continue;
      bool allowed = false;
      for (const std::string_view a : src->allowed) {
        if (a == dst_layer) {
          allowed = true;
          break;
        }
      }
      if (allowed) continue;
      const LayerSpec* dst = id::find_layer(dst_layer);
      std::string message;
      if (dst == nullptr) {
        message = "include of '" + inc.target + "': directory '" + dst_layer +
                  "' is not in the layer map; add it before depending on it";
      } else if (dst->rank > src->rank) {
        message = "upward include: layer '" + src_layer + "' (rank " +
                  std::to_string(src->rank) + ") must not depend on higher "
                  "layer '" + dst_layer + "' (rank " +
                  std::to_string(dst->rank) + ") — invert the dependency or "
                  "move the shared piece down the DAG";
      } else {
        message = "skip-layer include: '" + dst_layer + "' (rank " +
                  std::to_string(dst->rank) + ") is below '" + src_layer +
                  "' (rank " + std::to_string(src->rank) + ") but is not a "
                  "declared dependency of it; declare the edge in the layer "
                  "map or route through a declared layer";
      }
      u.add(out, inc.line, "include-layering", std::move(message));
    }
  }

  // --- file-granularity cycle detection ----------------------------------
  std::map<std::string, std::size_t> index;  // node key -> unit index
  for (std::size_t i = 0; i < units.size(); ++i) {
    const std::string key = id::node_key(units[i].path());
    if (!key.empty()) index.emplace(key, i);
  }
  std::vector<std::vector<std::size_t>> edges(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    for (const IncludeDirective& inc : units[i].includes()) {
      if (inc.angled) continue;
      const auto it = index.find(inc.target);
      if (it != index.end()) edges[i].push_back(it->second);
    }
  }

  // Iterative three-color DFS in deterministic (index) order; each cycle is
  // reported once, anchored at its lexicographically smallest member.
  enum class Color { kWhite, kGrey, kBlack };
  std::vector<Color> color(units.size(), Color::kWhite);
  std::vector<std::size_t> stack;      // current DFS path
  std::vector<std::string> reported;   // canonical cycle signatures

  struct Frame {
    std::size_t node;
    std::size_t next_edge = 0;
  };
  for (std::size_t root = 0; root < units.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> frames{{root, 0}};
    color[root] = Color::kGrey;
    stack.push_back(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_edge < edges[f.node].size()) {
        const std::size_t to = edges[f.node][f.next_edge++];
        if (color[to] == Color::kWhite) {
          color[to] = Color::kGrey;
          stack.push_back(to);
          frames.push_back(Frame{to, 0});
        } else if (color[to] == Color::kGrey) {
          // Back edge: the cycle is the stack suffix starting at `to`.
          std::size_t start = stack.size();
          while (start > 0 && stack[start - 1] != to) --start;
          if (start > 0) --start;
          std::vector<std::string> keys;
          for (std::size_t s = start; s < stack.size(); ++s) {
            keys.push_back(id::node_key(units[stack[s]].path()));
          }
          // Canonical signature: rotate so the smallest key leads.
          std::size_t min_at = 0;
          for (std::size_t k = 1; k < keys.size(); ++k) {
            if (keys[k] < keys[min_at]) min_at = k;
          }
          std::string sig, pretty;
          for (std::size_t k = 0; k < keys.size(); ++k) {
            const std::string& key = keys[(min_at + k) % keys.size()];
            sig += key + "|";
            pretty += key + " -> ";
          }
          pretty += keys[min_at];
          bool seen = false;
          for (const std::string& s : reported) {
            if (s == sig) {
              seen = true;
              break;
            }
          }
          if (!seen) {
            reported.push_back(sig);
            const std::size_t anchor = stack[start + min_at];
            units[anchor].add(out, 1, "include-cycle",
                              "include cycle: " + pretty +
                                  "; headers in a cycle compile only by "
                                  "include-order accident — break the cycle "
                                  "with a forward declaration or by moving "
                                  "the shared type down a layer");
          }
        }
      } else {
        color[f.node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

}  // namespace cyclops::analyze
