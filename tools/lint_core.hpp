#pragma once
// Rule engine for cyclops-lint (tools/cyclops_lint.cpp) — a line-oriented
// token scanner, deliberately not a parser: every invariant it enforces is a
// *textual* discipline this repo keeps so that simulated runs stay
// bit-deterministic and the concurrency surface stays auditable. The same 8
// rules also run on the token engine in tools/analyze/ (cyclops-analyze),
// which adds the include-layering and frozen-view passes; this scanner is
// kept as the dependency-free first gate, and tests/test_lint.cpp asserts
// both engines agree on the shared fixtures — including the former scanner
// gaps (multi-line declarations, long lock scopes), which are fixed here
// too. The rules:
//
//   determinism     rand()/srand()/time()/std::random_device in engine code
//                   breaks seeded determinism — all randomness must flow from
//                   seeded std::mt19937 instances.
//   unordered-wire  iterating an unordered_{map,set} where the loop body
//                   feeds the wire (send/send_record/serialize) lets hash
//                   iteration order decide wire layout — traffic must be
//                   bit-identical across runs (see bsp::Engine's combiner).
//   raw-thread      std::thread/std::mutex/std::condition_variable outside
//                   common/ — raw primitives live behind common/sync.hpp.
//   wire-narrowing  a narrowing cast (to 8/16-bit) on the same line as a wire
//                   call silently truncates wire-format integers.
//   lock-across-wire  a lock guard (or manual .lock()) held in the same or an
//                   enclosing scope as a wire call serializes simulated wire
//                   traffic behind a host lock — the §2.2.2 contention point
//                   Cyclops exists to remove. Release before sending, or
//                   stage under the lock and send after.
//   csr-outside-graph  naming the concrete graph::Csr outside src/cyclops/
//                   graph/ re-couples engines to one storage layout; code
//                   above the graph layer must go through the GraphStore
//                   interface (graph/store.hpp) so every backend — in-memory,
//                   compact, streaming — stays plug-compatible.
//   outbox-outside-runtime  calling fabric.outbox() outside runtime/ or sim/
//                   bypasses the SyncChannel send path, so the package never
//                   reaches the message log and log-based recovery cannot
//                   replay it — engines must send through SyncChannel.
//   delta-outside-ingest  calling TopologyDelta::apply() — the in-place edge
//                   list mutator — outside core/ and ingest/ bypasses the
//                   batching/publication discipline (staged ops become
//                   visible only when SnapshotStore publishes the epoch).
//                   Use the const-preserving applied() copy, or route the
//                   delta through MutationIngestor / SnapshotStore::apply.
//
// Suppress a finding with `// cyclops-lint: allow(<rule>)` on the same line
// or the line above. The same engine is unit-tested against fixture files in
// tests/lint_fixtures/ and run over the real tree as a ctest gate.

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cyclops::lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

namespace detail {

[[nodiscard]] inline bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Scanner state carried across lines. Block comments and raw string
/// literals both span lines; a plain bool cannot represent the latter, which
/// is how `R"(...)"` bodies used to leak into token scans (the scanner took
/// the inner `"` for a literal close and re-entered code mode mid-string).
struct ScanState {
  bool in_block = false;    ///< inside /* ... */
  bool in_raw = false;      ///< inside R"delim( ... )delim"
  std::string raw_delim;    ///< the delim of the raw literal being skipped
};

/// True when the code emitted so far ends with a raw-string prefix (R, uR,
/// u8R, UR, LR) at an identifier boundary, i.e. the `"` about to be scanned
/// opens a raw literal rather than an ordinary one.
[[nodiscard]] inline bool ends_with_raw_prefix(const std::string& out) {
  const std::size_t n = out.size();
  if (n == 0 || out[n - 1] != 'R') return false;
  std::size_t start = n - 1;  // index of 'R'
  if (start >= 2 && out[start - 2] == 'u' && out[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 &&
             (out[start - 1] == 'u' || out[start - 1] == 'U' || out[start - 1] == 'L')) {
    start -= 1;
  }
  return start == 0 || !ident_char(out[start - 1]);
}

/// Strips string literals (including raw literals), char literals, and
/// comments so token scans cannot match inside them. Multi-line constructs
/// carry state across lines via `st`.
inline std::string code_only(const std::string& line, ScanState& st) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  if (st.in_raw) {
    const std::string close = ")" + st.raw_delim + "\"";
    const std::size_t end = line.find(close);
    if (end == std::string::npos) return out;  // whole line is literal body
    st.in_raw = false;
    st.raw_delim.clear();
    i = end + close.size();
  }
  for (; i < line.size(); ++i) {
    if (st.in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        st.in_block = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      st.in_block = true;
      ++i;
      continue;
    }
    if (c == '"' && ends_with_raw_prefix(out)) {
      // R"delim( ... )delim" — no escapes inside; the only terminator is the
      // exact close sequence, possibly on a later line.
      const std::size_t open = line.find('(', i + 1);
      if (open == std::string::npos) break;  // malformed; drop the tail
      const std::string delim = line.substr(i + 1, open - i - 1);
      const std::string close = ")" + delim + "\"";
      const std::size_t end = line.find(close, open + 1);
      out.push_back('"');  // marker, as for ordinary literals
      if (end == std::string::npos) {
        st.in_raw = true;
        st.raw_delim = delim;
        return out;
      }
      i = end + close.size() - 1;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          ++i;
        } else if (line[i] == quote) {
          break;
        }
        ++i;
      }
      out.push_back(quote);  // keep a marker so adjacency checks still work
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Back-compat overload for callers that only track block comments.
inline std::string code_only(const std::string& line, bool& in_block) {
  ScanState st;
  st.in_block = in_block;
  std::string out = code_only(line, st);
  in_block = st.in_block;
  return out;
}

/// True when `needle` occurs in `code` at an identifier boundary (the char
/// before is not part of an identifier — `elapsed_time(` never matches
/// `time(`, but `std::rand(` matches `rand(`).
[[nodiscard]] inline bool has_token(std::string_view code, std::string_view needle) {
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    if (pos == 0 || !ident_char(code[pos - 1])) return true;
    pos += 1;
  }
  return false;
}

/// Identifier-boundary match on BOTH sides: `Csr` matches `graph::Csr` and
/// `Csr::build` but neither `CompactCsr` nor `CsrShim`.
[[nodiscard]] inline bool has_exact_token(std::string_view code, std::string_view needle) {
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const std::size_t after = pos + needle.size();
    const bool right_ok = after >= code.size() || !ident_char(code[after]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

[[nodiscard]] inline bool suppressed(const std::vector<std::string>& lines,
                                     std::size_t idx, std::string_view rule) {
  const std::string marker = "cyclops-lint: allow(" + std::string(rule) + ")";
  if (lines[idx].find(marker) != std::string::npos) return true;
  return idx > 0 && lines[idx - 1].find(marker) != std::string::npos;
}

/// Extracts the final identifier of the range expression in a range-for, or
/// "" when the line is not a range-for. `for (auto& x : bucket.combined)`
/// yields "combined".
[[nodiscard]] inline std::string range_for_target(std::string_view code) {
  const std::size_t f = code.find("for");
  if (f == std::string_view::npos) return {};
  if (f > 0 && ident_char(code[f - 1])) return {};
  const std::size_t open = code.find('(', f);
  if (open == std::string_view::npos) return {};
  // The ':' of a range-for (ignoring "::" scopes) and the for-header's own
  // matching ')' — NOT the line's last ')', which on a braceless one-liner
  // like `for (x : xs) send(x);` belongs to the call in the body.
  std::size_t colon = std::string_view::npos;
  std::size_t close = std::string_view::npos;
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')') {
      --depth;
      if (depth == 0) {
        close = i;
        break;
      }
    }
    if (code[i] == ':' && depth == 1 && colon == std::string_view::npos) {
      const bool scope = (i + 1 < code.size() && code[i + 1] == ':') ||
                         (i > 0 && code[i - 1] == ':');
      if (!scope) colon = i;
    }
  }
  if (colon == std::string_view::npos) return {};
  if (close == std::string_view::npos || close <= colon) return {};
  // Last identifier in the range expression.
  std::size_t end = close;
  while (end > colon && !ident_char(code[end - 1])) --end;
  std::size_t begin = end;
  while (begin > colon && ident_char(code[begin - 1])) --begin;
  if (begin == end) return {};
  return std::string(code.substr(begin, end - begin));
}

inline constexpr std::string_view kWireCalls[] = {"send(", "send_record(", ".write(",
                                                 "write_vector(", "serialize("};

[[nodiscard]] inline bool feeds_wire(std::string_view code) {
  for (const std::string_view call : kWireCalls) {
    if (code.find(call) != std::string_view::npos) return true;
  }
  return false;
}

/// Tokens that take (or declare RAII holders of) a lock. The aliases from
/// common/sync.hpp and the raw std guards both count; so does a manual
/// `.lock()` call (SpinLock or std primitives alike).
inline constexpr std::string_view kGuardTokens[] = {
    "LockGuard<",  "lock_guard<",  "UniqueLock<",  "unique_lock<",
    "ScopedLock<", "scoped_lock<", ".lock()"};

[[nodiscard]] inline bool takes_lock(std::string_view code) {
  for (const std::string_view tok : kGuardTokens) {
    if (code.find(tok) != std::string_view::npos) return true;
  }
  return false;
}

inline constexpr std::string_view kNarrowCasts[] = {
    "static_cast<std::uint8_t>",  "static_cast<std::int8_t>",
    "static_cast<std::uint16_t>", "static_cast<std::int16_t>",
    "static_cast<uint8_t>",       "static_cast<int8_t>",
    "static_cast<uint16_t>",      "static_cast<int16_t>",
    "static_cast<char>",          "static_cast<unsigned char>",
    "static_cast<short>",         "static_cast<unsigned short>"};

}  // namespace detail

struct FileClass {
  bool in_common = false;   ///< under common/: raw primitives are allowed here
  bool in_graph = false;    ///< under graph/: the one home of concrete stores
  bool in_runtime = false;  ///< under runtime/: owns the logged send path
  bool in_sim = false;      ///< under sim/: owns the fabric itself
  bool in_core = false;     ///< under core/: TopologyDelta's own home
  bool in_ingest = false;   ///< under ingest/: owns the batching front door
  bool in_tests = false;    ///< under tests/: exercises concrete layers
};

[[nodiscard]] inline FileClass classify_path(std::string_view path) {
  FileClass fc;
  fc.in_common = path.find("common/") != std::string_view::npos ||
                 path.find("common\\") != std::string_view::npos;
  fc.in_graph = path.find("graph/") != std::string_view::npos ||
                path.find("graph\\") != std::string_view::npos;
  fc.in_runtime = path.find("runtime/") != std::string_view::npos ||
                  path.find("runtime\\") != std::string_view::npos;
  fc.in_sim = path.find("sim/") != std::string_view::npos ||
              path.find("sim\\") != std::string_view::npos;
  fc.in_core = path.find("core/") != std::string_view::npos ||
               path.find("core\\") != std::string_view::npos;
  fc.in_ingest = path.find("ingest/") != std::string_view::npos ||
                 path.find("ingest\\") != std::string_view::npos;
  // Tests verify the concrete layers directly (test_graph_store.cpp *is*
  // the Csr/CompactCsr test), so the ownership rules do not apply to them —
  // but lint_fixtures/ simulate engine code and stay fully checked.
  fc.in_tests = (path.find("tests/") != std::string_view::npos ||
                 path.find("tests\\") != std::string_view::npos) &&
                path.find("lint_fixtures") == std::string_view::npos;
  return fc;
}

/// Lints one file's content. `path` is used for reporting and for the
/// common/-exemption of the raw-thread rule.
inline std::vector<Finding> lint_file(const std::string& path, const std::string& content) {
  const FileClass fc = classify_path(path);

  std::vector<std::string> lines;
  {
    std::size_t start = 0;
    while (start <= content.size()) {
      const std::size_t nl = content.find('\n', start);
      if (nl == std::string::npos) {
        lines.push_back(content.substr(start));
        break;
      }
      lines.push_back(content.substr(start, nl - start));
      start = nl + 1;
    }
  }

  std::vector<std::string> code(lines.size());
  {
    detail::ScanState st;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      code[i] = detail::code_only(lines[i], st);
    }
  }

  std::vector<Finding> findings;
  const auto add = [&](std::size_t idx, std::string_view rule, std::string message) {
    if (detail::suppressed(lines, idx, rule)) return;
    findings.push_back(Finding{path, static_cast<int>(idx + 1), std::string(rule),
                               std::move(message)});
  };

  // One flattened view of the stripped code, newline-joined: declaration
  // capture scans this instead of individual lines, so a declaration split
  // across lines (`std::unordered_map<K,\n V> name`) is one run of text.
  // Newlines count as whitespace in the name scans below. This closed the
  // scanner's documented multi-line-declaration gap; the token engine
  // (tools/analyze/) never had it, and the parity tests hold both to the
  // same fixtures.
  std::string flat;
  {
    std::size_t total = 0;
    for (const std::string& c : code) total += c.size() + 1;
    flat.reserve(total);
    for (const std::string& c : code) {
      flat += c;
      flat += '\n';
    }
  }

  // Identifiers declared as unordered containers anywhere in this file.
  std::vector<std::string> unordered_idents;
  for (const std::string_view tok : {std::string_view("unordered_map<"),
                                     std::string_view("unordered_set<")}) {
    std::size_t at = 0;
    while ((at = flat.find(tok, at)) != std::string::npos) {
      // The declared name: the identifier after the closing '>' of the
      // template args, wherever the declaration ends.
      int depth = 0;
      std::size_t i = at + tok.size() - 1;  // at '<'
      at = i;
      for (; i < flat.size(); ++i) {
        if (flat[i] == '<') ++depth;
        if (flat[i] == '>' && --depth == 0) break;
        if (flat[i] == ';') break;  // unbalanced: not a declaration
      }
      if (i >= flat.size() || flat[i] != '>') continue;
      ++i;
      while (i < flat.size() &&
             (std::isspace(static_cast<unsigned char>(flat[i])) != 0 ||
              flat[i] == '&' || flat[i] == '*')) {
        ++i;
      }
      std::size_t end = i;
      while (end < flat.size() && detail::ident_char(flat[end])) ++end;
      if (end > i) unordered_idents.push_back(flat.substr(i, end - i));
    }
  }

  // Identifiers declared (or bound as parameters/references) with type
  // TopologyDelta anywhere in this file. `TopologyDelta::Canonical canon`
  // contributes nothing: the char after the token is ':', not a declared
  // name, and Canonical is a value type with no mutating apply().
  std::vector<std::string> delta_idents;
  {
    std::size_t at = 0;
    while ((at = flat.find("TopologyDelta", at)) != std::string::npos) {
      const bool left_ok = at == 0 || !detail::ident_char(flat[at - 1]);
      const std::size_t after = at + std::string_view("TopologyDelta").size();
      at = after;
      if (!left_ok) continue;
      std::size_t i = after;
      while (i < flat.size() &&
             (std::isspace(static_cast<unsigned char>(flat[i])) != 0 ||
              flat[i] == '&' || flat[i] == '*')) {
        ++i;
      }
      std::size_t end = i;
      while (end < flat.size() && detail::ident_char(flat[end])) ++end;
      if (end > i) delta_idents.push_back(flat.substr(i, end - i));
    }
  }

  // Wire lines already attributed to a lock scope (two overlapping guards
  // must not double-report the same send).
  std::vector<bool> wire_under_lock(lines.size(), false);

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& c = code[i];
    if (c.empty()) continue;

    // determinism
    for (const std::string_view tok : {std::string_view("rand("),
                                       std::string_view("srand("),
                                       std::string_view("time(")}) {
      if (detail::has_token(c, tok)) {
        add(i, "determinism",
            std::string(tok.substr(0, tok.size() - 1)) +
                "() is wall-clock/global-state randomness; use a seeded "
                "std::mt19937 so runs stay reproducible");
        break;
      }
    }
    if (c.find("std::random_device") != std::string::npos) {
      add(i, "determinism",
          "std::random_device is nondeterministic; seed a std::mt19937 from "
          "config instead");
    }

    // raw-thread
    if (!fc.in_common) {
      for (const std::string_view tok : {std::string_view("std::thread"),
                                         std::string_view("std::mutex"),
                                         std::string_view("std::condition_variable")}) {
        const std::size_t at = c.find(tok);
        if (at == std::string::npos) continue;
        // std::this_thread and std::thread:: members (e.g. hardware_concurrency
        // via the alias) still name the raw type; only exact-token hits count.
        if (at + tok.size() < c.size() && detail::ident_char(c[at + tok.size()])) continue;
        add(i, "raw-thread",
            std::string(tok) + " outside common/; use the cyclops::Thread / "
                               "Mutex / CondVar aliases from common/sync.hpp");
        break;
      }
    }

    // outbox-outside-runtime: a member call `.outbox(` / `->outbox(` grabs a
    // raw fabric OutBox. Outside runtime/ (SyncChannel, the one logged send
    // path) and sim/ (the fabric's own home) that send would be invisible to
    // the message log, so log-based recovery could not replay it.
    if (!fc.in_runtime && !fc.in_sim && !fc.in_tests &&
        (c.find(".outbox(") != std::string::npos ||
         c.find("->outbox(") != std::string::npos)) {
      add(i, "outbox-outside-runtime",
          "direct fabric outbox() access outside src/cyclops/runtime/ and "
          "src/cyclops/sim/; sends must flow through SyncChannel so the "
          "message log sees every package and replay stays faithful");
    }

    // delta-outside-ingest: `<ident>.apply(` / `<ident>->apply(` where the
    // ident was declared TopologyDelta. The const-preserving `.applied(`
    // never matches (the char after "apply" is 'd', not '('); receivers of
    // other types (SnapshotStore::apply, a GAS program's apply) are not in
    // the ident set.
    if (!fc.in_core && !fc.in_ingest && !fc.in_tests && !delta_idents.empty()) {
      std::size_t pos = 0;
      while ((pos = c.find("apply(", pos)) != std::string::npos) {
        const std::size_t call = pos;
        pos += 1;
        if (call == 0) continue;
        std::size_t dot = call;  // start of the member access before "apply("
        if (c[call - 1] == '.') {
          dot = call - 1;
        } else if (call >= 2 && c[call - 2] == '-' && c[call - 1] == '>') {
          dot = call - 2;
        } else {
          continue;
        }
        std::size_t begin = dot;
        while (begin > 0 && detail::ident_char(c[begin - 1])) --begin;
        if (begin == dot) continue;
        const std::string recv = c.substr(begin, dot - begin);
        for (const std::string& ident : delta_idents) {
          if (ident == recv) {
            add(i, "delta-outside-ingest",
                "TopologyDelta::apply() on '" + recv +
                    "' outside src/cyclops/core/ and src/cyclops/ingest/ "
                    "mutates an edge list in place, bypassing batched epoch "
                    "publication; use applied() for a const-preserving copy "
                    "or route the delta through MutationIngestor / "
                    "SnapshotStore::apply");
            break;
          }
        }
      }
    }

    // csr-outside-graph
    if (!fc.in_graph && !fc.in_tests && detail::has_exact_token(c, "Csr")) {
      add(i, "csr-outside-graph",
          "concrete graph::Csr named outside src/cyclops/graph/; code above "
          "the graph layer must use the GraphStore interface "
          "(graph/store.hpp) so all store backends stay interchangeable");
    }

    // wire-narrowing
    if (detail::feeds_wire(c)) {
      for (const std::string_view cast : detail::kNarrowCasts) {
        if (c.find(cast) != std::string::npos) {
          add(i, "wire-narrowing",
              std::string(cast) + " on a wire call truncates the value on the "
                                  "wire; widen the wire field or suppress if "
                                  "the narrowing is the format");
          break;
        }
      }
    }

    // unordered-wire: a range-for over an unordered container whose body
    // (up to the matching close brace, 60-line cap) feeds the wire.
    const std::string target = detail::range_for_target(c);
    if (!target.empty()) {
      bool is_unordered = false;
      for (const std::string& ident : unordered_idents) {
        if (ident == target) {
          is_unordered = true;
          break;
        }
      }
      if (is_unordered) {
        int depth = 0;
        bool entered = false;
        // The loop body runs to the matching close brace, tracked by real
        // brace counting — the old 60-line cap silently stopped scanning
        // long bodies and is gone.
        for (std::size_t j = i; j < lines.size(); ++j) {
          for (const char ch : code[j]) {
            if (ch == '{') {
              ++depth;
              entered = true;
            }
            if (ch == '}') --depth;
          }
          // j == i covers the braceless same-line body: the for-header itself
          // is `for (decl : ident)` and cannot contain a call.
          if (detail::feeds_wire(code[j])) {
            add(i, "unordered-wire",
                "iteration over unordered container '" + target +
                    "' feeds the wire; hash order is not deterministic across "
                    "runs — drain into a sorted vector first");
            break;
          }
          if (entered && depth <= 0) break;
          if (!entered && j > i + 1) break;  // braceless body: for-line + 2
        }
      }
    }

    // lock-across-wire: from a guard acquisition forward, flag every wire
    // call made while the guard can still be held — same or nested scope,
    // no intervening .unlock(), until the guard's enclosing scope closes
    // (real brace tracking; the old 60-line cap let long critical sections
    // hide their sends). Findings land on the wire call's line (the fix
    // site: move the send out of the critical section).
    if (detail::takes_lock(c)) {
      int depth = 0;
      for (std::size_t j = i; j < lines.size(); ++j) {
        const std::string& cj = code[j];
        if (j > i && cj.find(".unlock()") != std::string::npos) break;
        if (detail::feeds_wire(cj) && !wire_under_lock[j]) {
          wire_under_lock[j] = true;
          add(j, "lock-across-wire",
              "wire call while a lock taken at line " + std::to_string(i + 1) +
                  " may still be held; sending under a lock serializes wire "
                  "traffic behind host contention — stage the payload and "
                  "send after releasing");
        }
        for (const char ch : cj) {
          if (ch == '{') ++depth;
          if (ch == '}') --depth;
        }
        if (depth < 0) break;  // left the scope the guard lives in
      }
    }
  }

  return findings;
}

}  // namespace cyclops::lint
