#include "cyclops/bsp/engine_base.hpp"

namespace cyclops::bsp {
static_assert(sizeof(Config) > 0);
}  // namespace cyclops::bsp
