#pragma once
// Engine-independent configuration shared by the BSP baseline. (Cyclops and
// GAS have their own configs; BSP's knobs mirror Hama's.)

#include <cstdint>
#include <memory>

#include "cyclops/common/types.hpp"
#include "cyclops/sim/cost_model.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/sim/message_log.hpp"
#include "cyclops/sim/sched.hpp"
#include "cyclops/sim/software_model.hpp"

namespace cyclops::bsp {

struct Config {
  sim::Topology topo;                         ///< workers == partitions
  sim::CostModel cost = sim::CostModel::hama_java();
  std::size_t pool_threads = 1;               ///< host threads executing the simulation
  Superstep max_supersteps = 100;
  bool use_combiner = false;                  ///< Hama's sender-side combiner
  bool track_redundant = false;               ///< Fig 3(2) instrumentation

  /// Fault schedule shared across engine incarnations of a recovering run
  /// (see sim/fault.hpp); null runs fault-free.
  std::shared_ptr<sim::FaultInjector> faults;

  /// Message log for log-based localized recovery, shared across engine
  /// incarnations like the injector (see sim/message_log.hpp); null disables
  /// logging. Requires `faults` — the log keys on the injector's clock.
  std::shared_ptr<sim::MessageLog> message_log;

  /// Seeded schedule explorer for the pool (see sim/sched.hpp); null keeps
  /// the native static schedule.
  std::shared_ptr<sim::ScheduleExplorer> schedule;

  /// Deterministic per-operation software costs (see sim/software_model.hpp).
  sim::SoftwareModel software = sim::SoftwareModel::hama_java();

  [[nodiscard]] static Config workers(WorkerId w) {
    Config c;
    c.topo = sim::Topology{w, 1};
    return c;
  }
};

}  // namespace cyclops::bsp
