#pragma once
// Hama-style Pregel/BSP engine — the baseline every speedup in Section 6 is
// measured against. Faithful to the deficiencies §2.2 identifies:
//   * pure message passing: every superstep parses (PRS), computes (CMP),
//     sends (SND), and synchronizes (SYN);
//   * a *global* in-queue per worker whose enqueue is lock-protected — the
//     receive-side contention point;
//   * push-mode: senders must stay alive to feed pull-mode algorithms, so
//     converged vertices keep computing and re-sending identical payloads;
//   * convergence detection by a global average-error aggregator.
//
// Program concept:
//   struct P {
//     using Value;                       // per-vertex state
//     using Message;                     // trivially copyable wire payload
//     Value init(VertexId v, const graph::GraphStore& g) const;
//     template <typename Ctx> void compute(Ctx& ctx, std::span<const Message> msgs) const;
//   };
// Optionally `static constexpr bool kCombinable = true` plus
// `Message combine(Message, Message) const` enables the Hama combiner.

#include <algorithm>
#include <functional>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "cyclops/bsp/engine_base.hpp"
#include "cyclops/common/bitset.hpp"
#include "cyclops/common/check.hpp"
#include "cyclops/common/exec.hpp"
#include "cyclops/common/serialize.hpp"
#include "cyclops/common/spinlock.hpp"
#include "cyclops/common/thread_pool.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/metrics/memory_model.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/partition/partition.hpp"
#include "cyclops/runtime/checkpoint.hpp"
#include "cyclops/runtime/exchange_accounting.hpp"
#include "cyclops/runtime/superstep_driver.hpp"
#include "cyclops/runtime/sync_channel.hpp"
#include "cyclops/sim/fabric.hpp"
#include "cyclops/verify/verify.hpp"

namespace cyclops::bsp {

template <typename P>
concept Combinable = requires(const P& p, typename P::Message m) {
  { p.combine(m, m) } -> std::convertible_to<typename P::Message>;
  requires P::kCombinable;
};

/// Programs may define a tolerance-aware payload comparison used by the
/// redundant-message instrumentation (Fig 3(2)); bitwise equality otherwise.
template <typename P>
concept HasNearlyEqual = requires(const P& p, typename P::Message m) {
  { p.nearly_equal(m, m) } -> std::convertible_to<bool>;
};

template <typename Program>
class Engine {
 public:
  using Value = typename Program::Value;
  using Message = typename Program::Message;
  static_assert(std::is_trivially_copyable_v<Message>,
                "messages cross simulated machines; they must be POD");

  /// Per-vertex view handed to Program::compute.
  class Context {
   public:
    Context(Engine& engine, WorkerId worker, VertexId vertex) noexcept
        : engine_(engine), worker_(worker), vertex_(vertex) {}

    [[nodiscard]] VertexId vertex() const noexcept { return vertex_; }
    [[nodiscard]] VertexId num_vertices() const noexcept {
      return engine_.graph_->num_vertices();
    }
    [[nodiscard]] Superstep superstep() const noexcept {
      return engine_.driver_.superstep();
    }

    [[nodiscard]] const Value& value() const noexcept { return engine_.values_[vertex_]; }
    void set_value(const Value& v) noexcept {
      engine_.vcheck_.on_master_stage(worker_, worker_, vertex_, CYCLOPS_VLOC);
      engine_.values_[vertex_] = v;
    }

    /// Adjacency via the worker's cursor: valid until this worker's next
    /// adjacency query (compute runs one task per worker).
    [[nodiscard]] std::span<const graph::Adj> out_edges() const {
      return engine_.graph_->out_neighbors(vertex_, engine_.cursors_[worker_]);
    }
    [[nodiscard]] std::size_t out_degree() const noexcept {
      return engine_.graph_->out_degree(vertex_);
    }

    void send_to(VertexId dst, const Message& msg) {
      engine_.note_sent(worker_, vertex_, msg, 1);
      engine_.stage_message(worker_, dst, msg);
    }
    void send_to_neighbors(const Message& msg) {
      engine_.note_sent(worker_, vertex_, msg, out_degree());
      for (const graph::Adj& a : out_edges()) engine_.stage_message(worker_, a.neighbor, msg);
    }

    void vote_to_halt() noexcept { voted_halt_ = true; }
    [[nodiscard]] bool voted_halt() const noexcept { return voted_halt_; }

    /// Contributes to the global average-error aggregator (visible next
    /// superstep via global_error()).
    void aggregate_error(double err) noexcept {
      engine_.worker_agg_[worker_].sum += err;
      engine_.worker_agg_[worker_].count += 1;
    }
    /// Average aggregated error from the previous superstep; +inf initially.
    [[nodiscard]] double global_error() const noexcept { return engine_.global_error_; }

   private:
    Engine& engine_;
    WorkerId worker_;
    VertexId vertex_;
    bool voted_halt_ = false;
  };

  /// The engine copies the partition (owner table) so callers may pass
  /// temporaries; the graph must outlive the engine.
  Engine(const graph::GraphStore& g, partition::EdgeCutPartition part, Program program,
         Config config)
      : graph_(&g),
        part_(std::move(part)),
        program_(std::move(program)),
        config_(config),
        pool_(config.pool_threads),
        fabric_(config.topo, config.cost) {
    CYCLOPS_CHECK(part_.num_parts() == config.topo.total_workers());
    CYCLOPS_CHECK(g.num_vertices() == part_.num_vertices());
    if (config_.faults) {
      fabric_.install_faults(config_.faults.get());
      driver_.set_fault_injector(config_.faults.get());
    }
    if (config_.message_log) fabric_.install_log(config_.message_log.get());
    if (config_.schedule) pool_.set_task_order(config_.schedule.get());
    driver_.set_checker(&vcheck_);
    if (const std::uint64_t budget = graph_->message_budget_bytes(); budget > 0) {
      acct_.arm_spill(budget, config_.cost.disk_byte_us);
    }
    build_local_state();
  }

  /// Runs to termination (all halted and no messages in flight, or the
  /// superstep limit).
  metrics::RunStats run() {
    return driver_.run(
        config_.max_supersteps, acct_,
        [this](metrics::SuperstepStats& step) { return run_superstep(step); },
        [this](const metrics::SuperstepStats& step) {
          if (observer_) observer_(step, std::span<const Value>(values_));
        });
  }

  [[nodiscard]] std::span<const Value> values() const noexcept { return values_; }
  [[nodiscard]] const sim::Fabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] Superstep superstep() const noexcept { return driver_.superstep(); }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Per-superstep observer: (stats, values). Used for L1 tracking.
  void set_observer(
      std::function<void(const metrics::SuperstepStats&, std::span<const Value>)> fn) {
    observer_ = std::move(fn);
  }

  /// The engine's invariant checker (no-op object unless -DCYCLOPS_VERIFY).
  [[nodiscard]] verify::EngineChecker& verifier() noexcept { return vcheck_; }
  [[nodiscard]] const verify::EngineChecker& verifier() const noexcept { return vcheck_; }

  // --- Pregel-style checkpointing (§3.6): values + activity + undelivered
  // messages, written after the global barrier. BSP cannot shed its pending
  // messages in any mode — they are not derivable from vertex state — so the
  // "lightweight" snapshot still carries the in-queues; only mode-tagging
  // differs. That is exactly the asymmetry §3.6 claims against Cyclops. The
  // snapshot is a per-machine frameset (checkpoint.hpp): each frame carries
  // the vertex slices owned by that machine's workers plus those workers'
  // in-queues, so localized recovery reloads one machine's frame. ---
  void checkpoint(ByteWriter& out,
                  runtime::CheckpointMode mode = runtime::CheckpointMode::kHeavyweight)
      const {
    runtime::write_frameset(out, config_.topo.machines,
                            [&](MachineId m, ByteWriter& frame) {
                              checkpoint_machine(m, frame, mode);
                            });
  }

  /// Throws SerializeError (recoverable) on truncated, corrupt, or
  /// wrong-shape snapshots; the engine may be left partially restored, so
  /// callers discard it on failure.
  void restore(ByteReader& in) {
    runtime::read_frameset(in, config_.topo.machines,
                           [&](MachineId m, ByteReader& frame) {
                             restore_machine(m, frame);
                           });
  }

  /// Arms a localized-recovery replay window (see runtime/recovery.hpp and
  /// core::Engine::arm_replay — same contract).
  void arm_replay(Superstep resume_at, Superstep until, MachineId dead,
                  std::uint64_t digest_seed) {
    fabric_.begin_replay(resume_at, until, dead);
    fabric_.seed_wire_digest(digest_seed);
    vcheck_.note_replay_window(resume_at, until);
  }

  /// Arms periodic checkpointing: the driver snapshots this engine through
  /// `manager` every interval supersteps. Not owned; nullptr detaches.
  void set_checkpoint_manager(runtime::CheckpointManager* manager) {
    if (manager == nullptr) {
      driver_.set_checkpointer(nullptr, {});
      return;
    }
    driver_.set_checkpointer(
        manager, [this, manager](ByteWriter& out) { checkpoint(out, manager->mode()); });
  }

  /// Total transient message-buffer bytes allocated over the run (Table 2's
  /// GC-pressure analog).
  [[nodiscard]] std::uint64_t mailbox_churn_bytes() const noexcept {
    return acct_.churn_bytes();
  }

  /// Memory behaviour for Table 2: resident graph state plus transient
  /// message churn. Hama has no replicas, but each message is materialized
  /// once on the wire, once in the global in-queue, and once in a mailbox.
  [[nodiscard]] metrics::MemoryReport memory_report() const noexcept {
    metrics::MemoryReport r;
    const graph::StoreMemory sm = graph_->memory();
    r.vertex_state_bytes = graph_->num_vertices() * sizeof(Value) + sm.resident_bytes;
    r.store_resident_bytes = sm.resident_bytes;
    r.store_on_disk_bytes = sm.on_disk_bytes;
    r.replica_bytes = 0;
    r.peak_message_bytes = acct_.peak_buffered_bytes();
    if (acct_.spill_budget_bytes() > 0) {
      r.peak_message_bytes = std::min(r.peak_message_bytes, acct_.spill_budget_bytes());
    }
    r.message_spill_bytes = acct_.spill_bytes();
    r.message_churn_bytes = acct_.churn_bytes();
    r.message_alloc_count = fabric_.totals().total_messages();
    return r;
  }
  /// Messages staged by compute before combining (combiner effectiveness).
  [[nodiscard]] std::uint64_t total_staged_messages() const noexcept {
    return acct_.staged_messages();
  }
  /// Global in-queue lock acquisitions — the contention §2.2.2 describes.
  [[nodiscard]] std::uint64_t lock_acquisitions() const noexcept {
    std::uint64_t total = 0;
    for (const auto& l : inqueue_locks_) total += l.acquisitions();
    return total;
  }

 private:
  struct WireRecord {
    VertexId dst;
    Message payload;
  };
  using Channel = runtime::SyncChannel<WireRecord>;

  struct WorkerAgg {
    double sum = 0;
    std::uint64_t count = 0;
  };

  struct StageBucket {
    std::vector<WireRecord> records;
    std::unordered_map<VertexId, Message> combined;
  };

  void build_local_state() {
    const VertexId n = graph_->num_vertices();
    const WorkerId workers = part_.num_parts();
    values_.resize(n);
    for (VertexId v = 0; v < n; ++v) values_[v] = program_.init(v, *graph_);
    mailbox_.assign(n, {});
    active_.resize(n);
    active_.set_all();
    halted_.resize(n);
    local_vertices_.assign(workers, {});
    for (VertexId v = 0; v < n; ++v) local_vertices_[part_.owner(v)].push_back(v);
    cursors_ = std::vector<graph::AdjCursor>(workers);
    staged_.assign(workers, std::vector<StageBucket>(workers));
    inqueue_.assign(workers, {});
    inqueue_locks_ = std::vector<SpinLock>(workers);
    worker_agg_.assign(workers, WorkerAgg{});
    redundant_acc_.assign(workers, 0);
    if (config_.track_redundant) {
      last_sent_hash_.assign(n, 0);
      last_payload_.assign(n, Message{});
      has_last_payload_.resize(n);
    }
    if constexpr (verify::kEnabled) {
      // Hama addresses vertices by global id, so every worker registers the
      // same slot space: slot == vertex id, owned by the partition's owner.
      vcheck_.reset();
      std::vector<VertexId> ids(n);
      std::vector<WorkerId> owners(n);
      for (VertexId v = 0; v < n; ++v) {
        ids[v] = v;
        owners[v] = part_.owner(v);
      }
      for (WorkerId w = 0; w < workers; ++w) {
        vcheck_.register_worker(w, static_cast<std::uint32_t>(n), ids, owners);
      }
    }
  }

  // Machine m's workers are the contiguous range [m*W, (m+1)*W).
  [[nodiscard]] std::pair<WorkerId, WorkerId> machine_workers(MachineId m) const noexcept {
    const WorkerId per = config_.topo.workers_per_machine;
    return {m * per, (m + 1) * per};
  }

  /// One machine's frame: engine header + superstep + aggregator + the
  /// vertex slices its workers own (deterministic ascending-id order; ids
  /// are implicit because ownership is derivable from the partition) + its
  /// workers' global in-queues. global_error_ is a broadcast aggregate, so
  /// every frame carries a copy.
  void checkpoint_machine(MachineId m, ByteWriter& out,
                          runtime::CheckpointMode mode) const {
    runtime::write_engine_header(out, runtime::EngineTag::kBsp, mode,
                                 graph_->num_vertices(), graph_->num_edges());
    out.write(driver_.superstep());
    out.write(global_error_);
    const VertexId n = graph_->num_vertices();
    std::vector<Value> vals;
    std::vector<std::uint8_t> flags;
    for (VertexId v = 0; v < n; ++v) {
      if (config_.topo.machine_of(part_.owner(v)) != m) continue;
      vals.push_back(values_[v]);
      flags.push_back(static_cast<std::uint8_t>((halted_.test(v) ? 1 : 0) |
                                                (active_.test(v) ? 2 : 0)));
    }
    out.write_vector(vals);
    out.write_vector(flags);
    const auto [begin, end] = machine_workers(m);
    for (WorkerId w = begin; w < end; ++w) out.write_vector(inqueue_[w]);
  }

  void restore_machine(MachineId m, ByteReader& in) {
    (void)runtime::read_engine_header(in, runtime::EngineTag::kBsp,
                                      graph_->num_vertices(), graph_->num_edges());
    driver_.set_superstep(in.read<Superstep>());
    global_error_ = in.read<double>();
    const auto vals = in.read_vector<Value>();
    const auto flags = in.read_vector<std::uint8_t>();
    if (vals.size() != flags.size()) {
      throw SerializeError("bsp snapshot shape mismatch");
    }
    const VertexId n = graph_->num_vertices();
    std::size_t i = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (config_.topo.machine_of(part_.owner(v)) != m) continue;
      if (i >= vals.size()) throw SerializeError("bsp snapshot shape mismatch");
      values_[v] = vals[i];
      if (flags[i] & 1) halted_.set(v); else halted_.clear(v);
      if (flags[i] & 2) active_.set(v); else active_.clear(v);
      ++i;
    }
    if (i != vals.size()) throw SerializeError("bsp snapshot shape mismatch");
    const auto [begin, end] = machine_workers(m);
    for (WorkerId w = begin; w < end; ++w) inqueue_[w] = in.read_vector<WireRecord>();
  }

  void note_sent(WorkerId worker, VertexId src, const Message& msg, std::size_t count) {
    acct_.add_staged(count);
    if (!config_.track_redundant) return;
    if constexpr (HasNearlyEqual<Program>) {
      if (has_last_payload_.test(src) && program_.nearly_equal(last_payload_[src], msg)) {
        redundant_acc_[worker] += count;
      }
      last_payload_[src] = msg;
      has_last_payload_.set(src);
    } else {
      const std::uint64_t h = payload_hash(msg);
      if (last_sent_hash_[src] == h) redundant_acc_[worker] += count;
      last_sent_hash_[src] = h;
    }
  }

  void stage_message(WorkerId from, VertexId dst, const Message& msg) {
    const WorkerId to = part_.owner(dst);
    StageBucket& bucket = staged_[from][to];
    if constexpr (Combinable<Program>) {
      if (config_.use_combiner) {
        auto [it, inserted] = bucket.combined.try_emplace(dst, msg);
        if (!inserted) it->second = program_.combine(it->second, msg);
        return;
      }
    }
    bucket.records.push_back(WireRecord{dst, msg});
  }

  static std::uint64_t payload_hash(const Message& m) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto* p = reinterpret_cast<const std::uint8_t*>(&m);
    for (std::size_t i = 0; i < sizeof(Message); ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
    return h == 0 ? 1 : h;
  }

  bool run_superstep(metrics::SuperstepStats& step) {
    const WorkerId workers = part_.num_parts();
    const sim::SoftwareModel& sw = config_.software;

    // Per-worker work counters; phase time = max over workers of the
    // worker's deterministic operation count x per-op rate (the perfectly
    // overlapped parallel wall time — see sim/software_model.hpp).
    std::vector<std::uint64_t> parsed(workers, 0);
    std::vector<std::uint64_t> computed(workers, 0);
    std::vector<std::uint64_t> consumed(workers, 0);  // messages read in compute
    std::vector<std::uint64_t> emitted(workers, 0);
    std::vector<std::uint64_t> delivered(workers, 0);
    auto max_of = [](const std::vector<std::uint64_t>& v) {
      std::uint64_t m = 0;
      for (auto x : v) m = std::max(m, x);
      return m;
    };

    // --- PRS: parse the global in-queue into per-vertex mailboxes and
    // activate recipients. ---
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kParse);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        auto& queue = inqueue_[w];
        // Read-then-clear of the global in-queue: a write stamp conflicts
        // with any unordered enqueue still in flight from the exchange.
        vcheck_.on_queue_access(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                                /*is_write=*/true, CYCLOPS_VLOC);
        parsed[w] = queue.size();
        for (const WireRecord& rec : queue) {
          vcheck_.on_master_stage(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                                  rec.dst, CYCLOPS_VLOC);
          vcheck_.on_mailbox_write(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                                   rec.dst, CYCLOPS_VLOC);
          mailbox_[rec.dst].push_back(rec.payload);
          active_.set(rec.dst);
          halted_.clear(rec.dst);
        }
        acct_.add_churn_bytes(queue.size() * sizeof(WireRecord));
        queue.clear();
        queue.shrink_to_fit();
      });
    }
    step.phases.prs_s = static_cast<double>(max_of(parsed)) *
                        (sw.msg_parse_us + 0.5 * sizeof(WireRecord) * sw.msg_byte_us) * 1e-6;

    // --- CMP: run compute on active vertices. ---
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kCompute);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        for (VertexId v : local_vertices_[w]) {
          if (!active_.test(v)) continue;
          Context ctx(*this, static_cast<WorkerId>(w), v);
          vcheck_.on_mailbox_read(static_cast<WorkerId>(w), static_cast<WorkerId>(w), v,
                                  CYCLOPS_VLOC);
          program_.compute(ctx, std::span<const Message>(mailbox_[v]));
          ++computed[w];
          consumed[w] += mailbox_[v].size();
          if (ctx.voted_halt()) {
            halted_.set(v);
            active_.clear(v);
          }
          if (!mailbox_[v].empty()) {
            vcheck_.on_mailbox_write(static_cast<WorkerId>(w), static_cast<WorkerId>(w), v,
                                     CYCLOPS_VLOC);
            std::vector<Message>().swap(mailbox_[v]);
          }
        }
      });
    }
    for (auto c : computed) step.active_vertices += c;
    step.computed_vertices = step.active_vertices;
    {
      double cmp_max = 0;
      for (WorkerId w = 0; w < workers; ++w) {
        const double us =
            static_cast<double>(computed[w]) * sw.vertex_op_us *
                sim::vertex_op_weight<Program>() +
            static_cast<double>(consumed[w]) * sw.edge_op_us * sim::edge_op_weight<Program>();
        cmp_max = std::max(cmp_max, us);
      }
      step.phases.cmp_s = cmp_max * 1e-6;
    }

    // --- SND: batch staged messages onto the wire through the typed sync
    // channel (one reserve per destination, one append per record), exchange,
    // then run the receive side: every record enqueues into the destination
    // worker's global in-queue under its lock (the §2.2.2 contention point). ---
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kSend);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        auto sender =
            Channel::sender(fabric_, static_cast<WorkerId>(w), 0, &vcheck_, CYCLOPS_VLOC);
        for (WorkerId to = 0; to < workers; ++to) {
          StageBucket& bucket = staged_[w][to];
          const std::size_t n = bucket.combined.size() + bucket.records.size();
          if (n == 0) continue;
          sender.reserve(to, n);
          if constexpr (Combinable<Program>) {
            // Drain the combiner map in ascending-dst order: unordered_map
            // iteration order is load-factor- and libstdc++-version-dependent
            // and must never decide wire layout (bit-identical traffic across
            // runs is a repo invariant; see tools/cyclops_lint.cpp).
            std::vector<WireRecord> drained;
            drained.reserve(bucket.combined.size());
            for (const auto& [dst, msg] : bucket.combined) {
              drained.push_back(WireRecord{dst, msg});
            }
            std::sort(drained.begin(), drained.end(),
                      [](const WireRecord& a, const WireRecord& b) { return a.dst < b.dst; });
            for (const WireRecord& rec : drained) sender.send(to, rec);
            bucket.combined.clear();
          }
          for (const WireRecord& rec : bucket.records) sender.send(to, rec);
          bucket.records.clear();
          emitted[w] += n;
        }
      });
    }
    for (auto& r : redundant_acc_) {
      step.redundant_messages += r;
      r = 0;
    }

    const sim::ExchangeStats xstats = fabric_.exchange(workers);
    acct_.note_exchange(xstats);

    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kExchange);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        Channel::drain(fabric_, static_cast<WorkerId>(w), [&](const WireRecord& rec) {
          inqueue_locks_[w].lock();
          // Stamped inside the critical section: the SpinLock's release/
          // acquire clock is what orders concurrent enqueuers, so an
          // unguarded push shows up as a queue-cell race.
          vcheck_.on_queue_access(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                                  /*is_write=*/true, CYCLOPS_VLOC);
          inqueue_[w].push_back(rec);
          inqueue_locks_[w].unlock();
          ++delivered[w];
        });
      });
    }
    const double per_emit_us = sw.msg_serialize_us + sizeof(WireRecord) * sw.msg_byte_us;
    const double per_deliver_us =
        sw.msg_deliver_us + 0.5 * sizeof(WireRecord) * sw.msg_byte_us;
    step.phases.snd_s = (static_cast<double>(max_of(emitted)) * per_emit_us +
                         static_cast<double>(max_of(delivered)) * per_deliver_us) *
                        1e-6;
    step.net = xstats.net;
    step.modeled_comm_s = xstats.modeled_comm_s;
    step.modeled_barrier_s = xstats.modeled_barrier_s;

    // --- SYN: merge aggregators, decide termination. ---
    verify::PhaseScope syn_scope(vcheck_, verify::Phase::kSync);
    Timer syn_timer;
    double err_sum = 0;
    std::uint64_t err_count = 0;
    for (WorkerAgg& agg : worker_agg_) {
      err_sum += agg.sum;
      err_count += agg.count;
      agg = WorkerAgg{};
    }
    global_error_ = err_count > 0 ? err_sum / static_cast<double>(err_count)
                                  : std::numeric_limits<double>::infinity();
    bool any_pending = false;
    for (WorkerId w = 0; w < workers && !any_pending; ++w) {
      any_pending = !inqueue_[w].empty();
    }
    const bool any_active = active_.any();
    step.phases.syn_s = syn_timer.elapsed_s();
    step.converged_vertices = halted_.count();
    return !any_pending && !any_active;
  }

  const graph::GraphStore* graph_;
  mutable std::vector<graph::AdjCursor> cursors_;  // one per worker task
  partition::EdgeCutPartition part_;
  Program program_;
  Config config_;
  ThreadPool pool_;
  sim::Fabric fabric_;

  std::vector<Value> values_;
  std::vector<std::vector<Message>> mailbox_;
  DenseBitset active_;
  DenseBitset halted_;
  std::vector<std::vector<VertexId>> local_vertices_;
  std::vector<std::vector<StageBucket>> staged_;  // [from][to]
  std::vector<std::vector<WireRecord>> inqueue_;  // global in-queue per worker
  std::vector<SpinLock> inqueue_locks_;
  std::vector<WorkerAgg> worker_agg_;
  std::vector<std::uint64_t> redundant_acc_;
  std::vector<std::uint64_t> last_sent_hash_;
  std::vector<Message> last_payload_;
  DenseBitset has_last_payload_;

  runtime::SuperstepDriver driver_;
  runtime::ExchangeAccounting acct_;
  verify::EngineChecker vcheck_;
  double global_error_ = std::numeric_limits<double>::infinity();
  std::function<void(const metrics::SuperstepStats&, std::span<const Value>)> observer_;
};

}  // namespace cyclops::bsp
