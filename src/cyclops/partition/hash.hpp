#pragma once
// The default Hama/Pregel partitioner: owner(v) = hash(v) mod parts.

#include "cyclops/partition/partition.hpp"

namespace cyclops::partition {

class HashPartitioner final : public EdgeCutPartitioner {
 public:
  [[nodiscard]] EdgeCutPartition partition(const graph::GraphStore& g,
                                           WorkerId num_parts) const override;
  [[nodiscard]] const char* name() const noexcept override { return "hash"; }
};

/// Contiguous ranges of vertex ids — cheap baseline with good locality on
/// generated lattices, poor on shuffled ids.
class RangePartitioner final : public EdgeCutPartitioner {
 public:
  [[nodiscard]] EdgeCutPartition partition(const graph::GraphStore& g,
                                           WorkerId num_parts) const override;
  [[nodiscard]] const char* name() const noexcept override { return "range"; }
};

}  // namespace cyclops::partition
