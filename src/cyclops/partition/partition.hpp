#pragma once
// Edge-cut partitioning: every vertex is owned by exactly one worker
// (partition); edges spanning workers induce read-only replicas in Cyclops.
// Quality metrics here drive Figure 11 (replication factor) directly.

#include <cstdint>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::partition {

/// Owner assignment for every vertex.
class EdgeCutPartition {
 public:
  EdgeCutPartition() = default;
  EdgeCutPartition(std::vector<WorkerId> owner, WorkerId num_parts);

  [[nodiscard]] WorkerId owner(VertexId v) const noexcept { return owner_[v]; }
  [[nodiscard]] WorkerId num_parts() const noexcept { return num_parts_; }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(owner_.size());
  }
  [[nodiscard]] const std::vector<WorkerId>& owners() const noexcept { return owner_; }

 private:
  std::vector<WorkerId> owner_;
  WorkerId num_parts_ = 0;
};

struct EdgeCutQuality {
  std::size_t cut_edges = 0;        ///< directed edges with owner(src) != owner(dst)
  double cut_fraction = 0;          ///< cut_edges / |E|
  double vertex_imbalance = 1.0;    ///< max/mean vertices per part
  double edge_imbalance = 1.0;      ///< max/mean out-edges per part
  /// Cyclops replication factor: average copies (master + replicas) per
  /// vertex, where a replica of v exists on worker p != owner(v) iff v has an
  /// out-neighbor owned by p (the replica both serves reads and performs
  /// distributed activation — §3.2/§3.4).
  double replication_factor = 1.0;
  std::size_t total_replicas = 0;
};

[[nodiscard]] EdgeCutQuality evaluate(const graph::GraphStore& g, const EdgeCutPartition& p);

/// Interface implemented by hash and multilevel partitioners.
class EdgeCutPartitioner {
 public:
  virtual ~EdgeCutPartitioner() = default;
  [[nodiscard]] virtual EdgeCutPartition partition(const graph::GraphStore& g,
                                                   WorkerId num_parts) const = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

}  // namespace cyclops::partition
