#pragma once
// Streaming Linear Deterministic Greedy (LDG) partitioner — the online
// partitioning family §7 cites (Pujol et al., "the little engine(s) that
// could"): vertices arrive in a stream and are placed on the part holding
// most of their already-placed neighbors, damped by a fullness penalty.
// One pass, O(E); quality sits between hash and multilevel, with none of the
// multilevel scheme's memory footprint — the practical choice for ingress-
// time partitioning of graphs too large to hold twice.

#include <cstdint>

#include "cyclops/partition/partition.hpp"

namespace cyclops::partition {

struct LdgConfig {
  std::uint64_t seed = 42;      ///< stream order shuffle seed
  double capacity_slack = 1.1;  ///< per-part capacity = slack * n / k
  bool shuffle_stream = true;   ///< randomize arrival order (false: id order)
};

class LdgPartitioner final : public EdgeCutPartitioner {
 public:
  explicit LdgPartitioner(LdgConfig config = {}) : config_(config) {}

  [[nodiscard]] EdgeCutPartition partition(const graph::GraphStore& g,
                                           WorkerId num_parts) const override;
  [[nodiscard]] const char* name() const noexcept override { return "ldg"; }

 private:
  LdgConfig config_;
};

}  // namespace cyclops::partition
