#include "cyclops/partition/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "cyclops/common/check.hpp"
#include "cyclops/common/rng.hpp"

namespace cyclops::partition {

namespace {

/// Undirected weighted working graph used across coarsening levels.
struct WGraph {
  std::vector<std::size_t> offsets;  // size n+1
  std::vector<VertexId> adj;
  std::vector<double> eweight;
  std::vector<double> vweight;

  [[nodiscard]] VertexId n() const noexcept {
    return static_cast<VertexId>(vweight.size());
  }
  [[nodiscard]] std::size_t degree(VertexId v) const noexcept {
    return offsets[v + 1] - offsets[v];
  }
};

/// Symmetrizes a directed CSR into a weighted undirected graph, merging
/// parallel edges by summing weights (edge weight = #directed edges between
/// the endpoints; the partitioner should value heavily-connected pairs).
WGraph symmetrize(const graph::GraphStore& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::unordered_map<VertexId, double>> nbr(n);
  graph::AdjCursor cur;
  for (VertexId v = 0; v < n; ++v) {
    for (const graph::Adj& a : g.out_neighbors(v, cur)) {
      if (a.neighbor == v) continue;
      nbr[v][a.neighbor] += 1.0;
      nbr[a.neighbor][v] += 1.0;
    }
  }
  WGraph w;
  w.vweight.assign(n, 1.0);
  w.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  std::size_t total = 0;
  for (VertexId v = 0; v < n; ++v) total += nbr[v].size();
  w.adj.reserve(total);
  w.eweight.reserve(total);
  for (VertexId v = 0; v < n; ++v) {
    std::vector<std::pair<VertexId, double>> sorted(nbr[v].begin(), nbr[v].end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [u, wt] : sorted) {
      w.adj.push_back(u);
      w.eweight.push_back(wt);
    }
    w.offsets[v + 1] = w.adj.size();
  }
  return w;
}

/// Heavy-edge matching: pairs each unmatched vertex with its unmatched
/// neighbor of maximum edge weight. Returns coarse-vertex ids per vertex and
/// the number of coarse vertices.
std::pair<std::vector<VertexId>, VertexId> heavy_edge_matching(const WGraph& g, Rng& rng) {
  const VertexId n = g.n();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (VertexId i = n; i > 1; --i) {  // Fisher–Yates
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<VertexId> match(n, kInvalidVertex);
  for (VertexId v : order) {
    if (match[v] != kInvalidVertex) continue;
    VertexId best = kInvalidVertex;
    double best_w = -1.0;
    for (std::size_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const VertexId u = g.adj[e];
      if (u == v || match[u] != kInvalidVertex) continue;
      if (g.eweight[e] > best_w) {
        best_w = g.eweight[e];
        best = u;
      }
    }
    if (best != kInvalidVertex) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // stays single
    }
  }
  std::vector<VertexId> coarse_id(n, kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (coarse_id[v] != kInvalidVertex) continue;
    coarse_id[v] = next;
    if (match[v] != v) coarse_id[match[v]] = next;
    ++next;
  }
  return {std::move(coarse_id), next};
}

/// Contracts g along coarse_id into a graph with nc vertices.
WGraph contract(const WGraph& g, const std::vector<VertexId>& coarse_id, VertexId nc) {
  std::vector<std::unordered_map<VertexId, double>> nbr(nc);
  WGraph c;
  c.vweight.assign(nc, 0.0);
  for (VertexId v = 0; v < g.n(); ++v) {
    const VertexId cv = coarse_id[v];
    c.vweight[cv] += g.vweight[v];
    for (std::size_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const VertexId cu = coarse_id[g.adj[e]];
      if (cu == cv) continue;
      nbr[cv][cu] += g.eweight[e];
    }
  }
  c.offsets.assign(static_cast<std::size_t>(nc) + 1, 0);
  std::size_t total = 0;
  for (VertexId v = 0; v < nc; ++v) total += nbr[v].size();
  c.adj.reserve(total);
  c.eweight.reserve(total);
  for (VertexId v = 0; v < nc; ++v) {
    std::vector<std::pair<VertexId, double>> sorted(nbr[v].begin(), nbr[v].end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [u, wt] : sorted) {
      c.adj.push_back(u);
      c.eweight.push_back(wt);
    }
    c.offsets[v + 1] = c.adj.size();
  }
  return c;
}

/// Greedy graph growing: grows k balanced regions by BFS from high-degree
/// seeds on the coarsest graph.
std::vector<WorkerId> initial_partition(const WGraph& g, WorkerId k, Rng& rng) {
  const VertexId n = g.n();
  std::vector<WorkerId> part(n, kInvalidWorker);
  const double total_weight =
      std::accumulate(g.vweight.begin(), g.vweight.end(), 0.0);
  const double target = total_weight / static_cast<double>(k);

  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });

  std::size_t seed_cursor = 0;
  std::vector<double> part_weight(k, 0.0);
  for (WorkerId p = 0; p + 1 < k; ++p) {  // last part takes the remainder
    // Seed: heaviest-degree unassigned vertex.
    while (seed_cursor < n && part[by_degree[seed_cursor]] != kInvalidWorker) ++seed_cursor;
    if (seed_cursor >= n) break;
    std::vector<VertexId> frontier{by_degree[seed_cursor]};
    part[by_degree[seed_cursor]] = p;
    part_weight[p] += g.vweight[by_degree[seed_cursor]];
    std::size_t head = 0;
    while (part_weight[p] < target && head < frontier.size()) {
      const VertexId v = frontier[head++];
      for (std::size_t e = g.offsets[v]; e < g.offsets[v + 1] && part_weight[p] < target; ++e) {
        const VertexId u = g.adj[e];
        if (part[u] != kInvalidWorker) continue;
        part[u] = p;
        part_weight[p] += g.vweight[u];
        frontier.push_back(u);
      }
    }
    // If BFS exhausted a disconnected region before reaching target weight,
    // jump to a fresh random unassigned seed.
    while (part_weight[p] < target) {
      VertexId v = static_cast<VertexId>(rng.next_below(n));
      bool found = false;
      for (VertexId probe = 0; probe < n; ++probe) {
        const VertexId candidate = static_cast<VertexId>((v + probe) % n);
        if (part[candidate] == kInvalidWorker) {
          v = candidate;
          found = true;
          break;
        }
      }
      if (!found) break;
      part[v] = p;
      part_weight[p] += g.vweight[v];
      std::vector<VertexId> extra{v};
      std::size_t h2 = 0;
      while (part_weight[p] < target && h2 < extra.size()) {
        const VertexId x = extra[h2++];
        for (std::size_t e = g.offsets[x]; e < g.offsets[x + 1] && part_weight[p] < target;
             ++e) {
          const VertexId u = g.adj[e];
          if (part[u] != kInvalidWorker) continue;
          part[u] = p;
          part_weight[p] += g.vweight[u];
          extra.push_back(u);
        }
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (part[v] == kInvalidWorker) part[v] = k - 1;
  }
  return part;
}

/// One greedy boundary refinement sweep; returns number of moves.
std::size_t refine_pass(const WGraph& g, std::vector<WorkerId>& part, WorkerId k,
                        std::vector<double>& part_weight, double max_weight, Rng& rng) {
  const VertexId n = g.n();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  for (VertexId i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<double> gain(k, 0.0);
  std::vector<WorkerId> touched;
  std::size_t moves = 0;
  for (VertexId v : order) {
    const WorkerId home = part[v];
    touched.clear();
    double internal = 0.0;
    for (std::size_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      const WorkerId p = part[g.adj[e]];
      if (p == home) {
        internal += g.eweight[e];
      } else {
        if (gain[p] == 0.0) touched.push_back(p);
        gain[p] += g.eweight[e];
      }
    }
    WorkerId best = home;
    double best_gain = 0.0;
    for (WorkerId p : touched) {
      if (gain[p] - internal > best_gain &&
          part_weight[p] + g.vweight[v] <= max_weight) {
        best_gain = gain[p] - internal;
        best = p;
      }
      gain[p] = 0.0;
    }
    if (best != home) {
      part[v] = best;
      part_weight[home] -= g.vweight[v];
      part_weight[best] += g.vweight[v];
      ++moves;
    }
  }
  return moves;
}

}  // namespace

EdgeCutPartition MultilevelPartitioner::partition(const graph::GraphStore& g,
                                                  WorkerId num_parts) const {
  CYCLOPS_CHECK(num_parts > 0);
  const VertexId n = g.num_vertices();
  if (num_parts == 1 || n == 0) {
    return EdgeCutPartition(std::vector<WorkerId>(n, 0), std::max<WorkerId>(num_parts, 1));
  }

  Rng rng(config_.seed);

  // Phase 1: coarsen.
  std::vector<WGraph> levels;
  std::vector<std::vector<VertexId>> maps;  // maps[i]: level i vertex -> level i+1
  levels.push_back(symmetrize(g));
  const VertexId stop_at =
      std::max<VertexId>(config_.coarsen_target, 8 * static_cast<VertexId>(num_parts));
  while (levels.back().n() > stop_at) {
    auto [coarse_id, nc] = heavy_edge_matching(levels.back(), rng);
    if (static_cast<double>(nc) >
        config_.min_shrink * static_cast<double>(levels.back().n())) {
      break;  // matching stalled (e.g. star graphs) — stop coarsening
    }
    WGraph next = contract(levels.back(), coarse_id, nc);
    maps.push_back(std::move(coarse_id));
    levels.push_back(std::move(next));
  }

  // Phase 2: initial partition on the coarsest level.
  std::vector<WorkerId> part = initial_partition(levels.back(), num_parts, rng);

  // Phase 3: uncoarsen with refinement at every level.
  const double total_weight =
      std::accumulate(levels.front().vweight.begin(), levels.front().vweight.end(), 0.0);
  const double max_weight =
      (1.0 + config_.balance_epsilon) * total_weight / static_cast<double>(num_parts);
  for (std::size_t level = levels.size(); level-- > 0;) {
    const WGraph& wg = levels[level];
    std::vector<double> part_weight(num_parts, 0.0);
    for (VertexId v = 0; v < wg.n(); ++v) part_weight[part[v]] += wg.vweight[v];
    for (unsigned pass = 0; pass < config_.refine_passes; ++pass) {
      if (refine_pass(wg, part, num_parts, part_weight, max_weight, rng) == 0) break;
    }
    if (level > 0) {
      // Project to the finer level.
      const std::vector<VertexId>& map = maps[level - 1];
      std::vector<WorkerId> finer(levels[level - 1].n());
      for (VertexId v = 0; v < levels[level - 1].n(); ++v) finer[v] = part[map[v]];
      part = std::move(finer);
    }
  }
  return EdgeCutPartition(std::move(part), num_parts);
}

}  // namespace cyclops::partition
