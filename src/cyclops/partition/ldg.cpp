#include "cyclops/partition/ldg.hpp"

#include <algorithm>
#include <numeric>

#include "cyclops/common/check.hpp"
#include "cyclops/common/rng.hpp"

namespace cyclops::partition {

EdgeCutPartition LdgPartitioner::partition(const graph::GraphStore& g, WorkerId num_parts) const {
  CYCLOPS_CHECK(num_parts > 0);
  const VertexId n = g.num_vertices();
  if (num_parts == 1 || n == 0) {
    return EdgeCutPartition(std::vector<WorkerId>(n, 0), std::max<WorkerId>(num_parts, 1));
  }

  std::vector<VertexId> stream(n);
  std::iota(stream.begin(), stream.end(), VertexId{0});
  if (config_.shuffle_stream) {
    Rng rng(config_.seed);
    for (VertexId i = n; i > 1; --i) {
      std::swap(stream[i - 1], stream[rng.next_below(i)]);
    }
  }

  const double capacity =
      config_.capacity_slack * static_cast<double>(n) / static_cast<double>(num_parts);
  std::vector<WorkerId> owner(n, kInvalidWorker);
  std::vector<double> load(num_parts, 0.0);
  std::vector<double> neighbors_on(num_parts, 0.0);

  graph::AdjCursor cur;
  for (VertexId v : stream) {
    std::fill(neighbors_on.begin(), neighbors_on.end(), 0.0);
    // Count placed neighbors in both directions — the edge-cut cost is
    // direction-agnostic.
    for (const graph::Adj& a : g.out_neighbors(v, cur)) {
      if (owner[a.neighbor] != kInvalidWorker) neighbors_on[owner[a.neighbor]] += 1.0;
    }
    for (const graph::Adj& a : g.in_neighbors(v, cur)) {
      if (owner[a.neighbor] != kInvalidWorker) neighbors_on[owner[a.neighbor]] += 1.0;
    }
    WorkerId best = 0;
    double best_score = -1.0;
    for (WorkerId p = 0; p < num_parts; ++p) {
      // LDG objective: |N(v) ∩ part| * (1 - load/capacity). Ties break to
      // the lightest part so a cold start spreads vertices evenly.
      const double score = (neighbors_on[p] + 1e-9) * (1.0 - load[p] / capacity);
      if (score > best_score ||
          (score == best_score && load[p] < load[best])) {
        best_score = score;
        best = p;
      }
    }
    owner[v] = best;
    load[best] += 1.0;
  }
  return EdgeCutPartition(std::move(owner), num_parts);
}

}  // namespace cyclops::partition
