#pragma once
// Vertex-cut partitioning for the PowerGraph-style GAS engine: each *edge*
// lives on exactly one worker; a vertex is replicated on every worker hosting
// one of its edges, and one replica is designated master. Implements random
// edge placement and PowerGraph's coordinated greedy heuristic.

#include <cstdint>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::partition {

class VertexCutPartition {
 public:
  VertexCutPartition() = default;
  VertexCutPartition(std::vector<WorkerId> edge_owner, std::vector<WorkerId> master,
                     WorkerId num_parts);

  /// `edge_index` is the position in the store's canonical enumeration
  /// order (GraphStore::for_each_edge: ascending src, adjacency order) —
  /// the one order shared by the partitioners, the evaluator, and the GAS
  /// layout build.
  [[nodiscard]] WorkerId edge_owner(std::size_t edge_index) const noexcept {
    return edge_owner_[edge_index];
  }
  [[nodiscard]] WorkerId master(VertexId v) const noexcept { return master_[v]; }
  [[nodiscard]] WorkerId num_parts() const noexcept { return num_parts_; }
  [[nodiscard]] const std::vector<WorkerId>& edge_owners() const noexcept {
    return edge_owner_;
  }

 private:
  std::vector<WorkerId> edge_owner_;  // parallel to for_each_edge order
  std::vector<WorkerId> master_;
  WorkerId num_parts_ = 0;
};

struct VertexCutQuality {
  /// Average number of replicas (including the master copy) per vertex.
  double replication_factor = 1.0;
  std::size_t total_replicas = 0;
  double edge_imbalance = 1.0;  ///< max/mean edges per part
};

[[nodiscard]] VertexCutQuality evaluate(const graph::GraphStore& g,
                                        const VertexCutPartition& p);

class VertexCutPartitioner {
 public:
  virtual ~VertexCutPartitioner() = default;
  [[nodiscard]] virtual VertexCutPartition partition(const graph::GraphStore& g,
                                                     WorkerId num_parts) const = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

/// Random hashing of (src, dst) pairs — PowerGraph's default.
class RandomVertexCut final : public VertexCutPartitioner {
 public:
  [[nodiscard]] VertexCutPartition partition(const graph::GraphStore& g,
                                             WorkerId num_parts) const override;
  [[nodiscard]] const char* name() const noexcept override { return "random-vcut"; }
};

/// Coordinated greedy placement (Gonzalez et al., OSDI'12): place each edge
/// on a worker already hosting both endpoints if possible, else one endpoint,
/// else the least-loaded worker. Sequential/coordinated variant.
class GreedyVertexCut final : public VertexCutPartitioner {
 public:
  explicit GreedyVertexCut(std::uint64_t seed = 42) : seed_(seed) {}
  [[nodiscard]] VertexCutPartition partition(const graph::GraphStore& g,
                                             WorkerId num_parts) const override;
  [[nodiscard]] const char* name() const noexcept override { return "greedy-vcut"; }

 private:
  std::uint64_t seed_;
};

}  // namespace cyclops::partition
