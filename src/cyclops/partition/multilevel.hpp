#pragma once
// Metis-like multilevel k-way edge-cut partitioner (§4.2 uses Metis): the
// classic three phases — heavy-edge-matching coarsening, greedy region-growing
// initial partition on the coarsest graph, and greedy boundary (FM-style)
// refinement during uncoarsening. Deterministic in the configured seed.

#include <cstdint>

#include "cyclops/partition/partition.hpp"

namespace cyclops::partition {

struct MultilevelConfig {
  std::uint64_t seed = 42;
  double balance_epsilon = 0.05;   ///< part weight may exceed average by this
  unsigned refine_passes = 4;      ///< boundary refinement sweeps per level
  VertexId coarsen_target = 256;   ///< stop coarsening near max(this, 8*k) vertices
  double min_shrink = 0.95;        ///< stop if a level shrinks less than this
};

class MultilevelPartitioner final : public EdgeCutPartitioner {
 public:
  explicit MultilevelPartitioner(MultilevelConfig config = {}) : config_(config) {}

  [[nodiscard]] EdgeCutPartition partition(const graph::GraphStore& g,
                                           WorkerId num_parts) const override;
  [[nodiscard]] const char* name() const noexcept override { return "multilevel"; }

 private:
  MultilevelConfig config_;
};

}  // namespace cyclops::partition
