#include "cyclops/partition/partition.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"
#include "cyclops/common/stats.hpp"

namespace cyclops::partition {

EdgeCutPartition::EdgeCutPartition(std::vector<WorkerId> owner, WorkerId num_parts)
    : owner_(std::move(owner)), num_parts_(num_parts) {
  CYCLOPS_CHECK(num_parts_ > 0);
  for (WorkerId w : owner_) CYCLOPS_CHECK(w < num_parts_);
}

EdgeCutQuality evaluate(const graph::GraphStore& g, const EdgeCutPartition& p) {
  CYCLOPS_CHECK(g.num_vertices() == p.num_vertices());
  EdgeCutQuality q;
  const WorkerId parts = p.num_parts();
  std::vector<double> vertices_per_part(parts, 0);
  std::vector<double> edges_per_part(parts, 0);
  // Scratch bitmap reused per-vertex to count distinct remote target workers.
  std::vector<Superstep> seen(parts, 0);
  Superstep epoch = 0;
  graph::AdjCursor cur;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const WorkerId home = p.owner(v);
    vertices_per_part[home] += 1;
    edges_per_part[home] += static_cast<double>(g.out_degree(v));
    ++epoch;
    for (const graph::Adj& a : g.out_neighbors(v, cur)) {
      const WorkerId w = p.owner(a.neighbor);
      if (w != home) {
        ++q.cut_edges;
        if (seen[w] != epoch) {
          seen[w] = epoch;
          ++q.total_replicas;
        }
      }
    }
  }
  q.cut_fraction =
      g.num_edges() > 0 ? static_cast<double>(q.cut_edges) / static_cast<double>(g.num_edges())
                        : 0.0;
  q.vertex_imbalance = imbalance(vertices_per_part);
  q.edge_imbalance = imbalance(edges_per_part);
  q.replication_factor =
      g.num_vertices() > 0
          ? 1.0 + static_cast<double>(q.total_replicas) / static_cast<double>(g.num_vertices())
          : 1.0;
  return q;
}

}  // namespace cyclops::partition
