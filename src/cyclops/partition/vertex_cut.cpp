#include "cyclops/partition/vertex_cut.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"
#include "cyclops/common/rng.hpp"
#include "cyclops/common/stats.hpp"

namespace cyclops::partition {

namespace {
/// Per-vertex bitmask of workers hosting the vertex (supports up to 64 parts,
/// which covers the paper's 48-worker maximum).
using Mask = std::uint64_t;

std::vector<WorkerId> pick_masters(const graph::GraphStore& g,
                                   const std::vector<WorkerId>& edge_owner,
                                   WorkerId num_parts) {
  const VertexId n = g.num_vertices();
  std::vector<Mask> hosted(n, 0);
  std::size_t e = 0;
  g.for_each_edge([&](VertexId src, VertexId dst, double) {
    hosted[src] |= Mask{1} << edge_owner[e];
    hosted[dst] |= Mask{1} << edge_owner[e];
    ++e;
  });
  std::vector<WorkerId> master(n);
  for (VertexId v = 0; v < n; ++v) {
    if (hosted[v] == 0) {
      master[v] = static_cast<WorkerId>(mix64(v) % num_parts);  // isolated vertex
    } else {
      // Deterministic choice: the hosting worker picked by the vertex hash.
      const unsigned count = static_cast<unsigned>(__builtin_popcountll(hosted[v]));
      unsigned pick = static_cast<unsigned>(mix64(v) % count);
      Mask m = hosted[v];
      while (pick-- > 0) m &= m - 1;
      master[v] = static_cast<WorkerId>(__builtin_ctzll(m));
    }
  }
  return master;
}
}  // namespace

VertexCutPartition::VertexCutPartition(std::vector<WorkerId> edge_owner,
                                       std::vector<WorkerId> master, WorkerId num_parts)
    : edge_owner_(std::move(edge_owner)), master_(std::move(master)), num_parts_(num_parts) {
  CYCLOPS_CHECK(num_parts_ > 0 && num_parts_ <= 64);
  for (WorkerId w : edge_owner_) CYCLOPS_CHECK(w < num_parts_);
  for (WorkerId w : master_) CYCLOPS_CHECK(w < num_parts_);
}

VertexCutQuality evaluate(const graph::GraphStore& g, const VertexCutPartition& p) {
  const VertexId n = g.num_vertices();
  std::vector<Mask> hosted(n, 0);
  std::vector<double> edges_per_part(p.num_parts(), 0.0);
  std::size_t e = 0;
  g.for_each_edge([&](VertexId src, VertexId dst, double) {
    const WorkerId w = p.edge_owner(e);
    hosted[src] |= Mask{1} << w;
    hosted[dst] |= Mask{1} << w;
    edges_per_part[w] += 1.0;
    ++e;
  });
  VertexCutQuality q;
  for (VertexId v = 0; v < n; ++v) {
    Mask m = hosted[v] | (Mask{1} << p.master(v));  // master copy always exists
    q.total_replicas += static_cast<std::size_t>(__builtin_popcountll(m));
  }
  q.replication_factor =
      n > 0 ? static_cast<double>(q.total_replicas) / static_cast<double>(n) : 1.0;
  q.edge_imbalance = imbalance(edges_per_part);
  return q;
}

VertexCutPartition RandomVertexCut::partition(const graph::GraphStore& g,
                                              WorkerId num_parts) const {
  CYCLOPS_CHECK(num_parts > 0);
  std::vector<WorkerId> owner(g.num_edges());
  std::size_t e = 0;
  g.for_each_edge([&](VertexId src, VertexId dst, double) {
    const std::uint64_t h = mix64((static_cast<std::uint64_t>(src) << 32) | dst);
    owner[e++] = static_cast<WorkerId>(h % num_parts);
  });
  auto master = pick_masters(g, owner, num_parts);
  return VertexCutPartition(std::move(owner), std::move(master), num_parts);
}

VertexCutPartition GreedyVertexCut::partition(const graph::GraphStore& g,
                                              WorkerId num_parts) const {
  CYCLOPS_CHECK(num_parts > 0 && num_parts <= 64);
  const VertexId n = g.num_vertices();
  std::vector<Mask> hosted(n, 0);
  std::vector<std::size_t> load(num_parts, 0);
  std::vector<WorkerId> owner(g.num_edges());
  Rng rng(seed_);

  auto least_loaded = [&](Mask candidates) -> WorkerId {
    WorkerId best = kInvalidWorker;
    std::size_t best_load = ~std::size_t{0};
    for (WorkerId w = 0; w < num_parts; ++w) {
      if (candidates != 0 && ((candidates >> w) & 1) == 0) continue;
      if (load[w] < best_load) {
        best_load = load[w];
        best = w;
      }
    }
    return best;
  };

  std::size_t e = 0;
  g.for_each_edge([&](VertexId src, VertexId dst, double) {
    const Mask both = hosted[src] & hosted[dst];
    const Mask either = hosted[src] | hosted[dst];
    WorkerId w;
    if (both != 0) {
      w = least_loaded(both);
    } else if (either != 0) {
      w = least_loaded(either);
    } else {
      w = least_loaded(0);
      (void)rng;
    }
    owner[e++] = w;
    hosted[src] |= Mask{1} << w;
    hosted[dst] |= Mask{1} << w;
    ++load[w];
  });
  auto master = pick_masters(g, owner, num_parts);
  return VertexCutPartition(std::move(owner), std::move(master), num_parts);
}

}  // namespace cyclops::partition
