#include "cyclops/partition/hash.hpp"

#include "cyclops/common/check.hpp"
#include "cyclops/common/rng.hpp"

namespace cyclops::partition {

EdgeCutPartition HashPartitioner::partition(const graph::GraphStore& g, WorkerId num_parts) const {
  CYCLOPS_CHECK(num_parts > 0);
  std::vector<WorkerId> owner(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    owner[v] = static_cast<WorkerId>(mix64(v) % num_parts);
  }
  return EdgeCutPartition(std::move(owner), num_parts);
}

EdgeCutPartition RangePartitioner::partition(const graph::GraphStore& g, WorkerId num_parts) const {
  CYCLOPS_CHECK(num_parts > 0);
  const VertexId n = g.num_vertices();
  std::vector<WorkerId> owner(n);
  const VertexId chunk = (n + num_parts - 1) / num_parts;
  for (VertexId v = 0; v < n; ++v) {
    owner[v] = std::min<WorkerId>(static_cast<WorkerId>(v / std::max<VertexId>(chunk, 1)),
                                  num_parts - 1);
  }
  return EdgeCutPartition(std::move(owner), num_parts);
}

}  // namespace cyclops::partition
