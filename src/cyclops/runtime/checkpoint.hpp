#pragma once
// Periodic checkpointing for the engine runtime layer (§3.6 made automatic).
// A CheckpointManager hangs off the SuperstepDriver: every N completed
// supersteps it asks the engine to serialize itself, seals the snapshot in a
// CRC-framed envelope, and hands it to a CheckpointStore (in-memory for
// simulated clusters, file-backed for durability tests). Restore goes the
// other way: open the latest frame (integrity-checked — a truncated or
// bit-flipped snapshot throws SerializeError, it never aborts), then feed the
// payload to the engine's restore().
//
// Checkpoint modes follow FTPregel's lightweight/heavyweight split:
//   * kLightweight — vertex state only. Cyclops saves just master values and
//     master shared data (replicas regenerate from the immutable view); GAS
//     saves masters (mirrors resync). BSP *cannot* shed its pending messages
//     — they are not derivable from vertex state — so its "lightweight"
//     checkpoint still carries the in-queues. That asymmetry is the paper's
//     §3.6 claim, measured by bench_recovery.
//   * kHeavyweight — full Pregel-style snapshot: everything above plus
//     replica/mirror state that could have been regenerated.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cyclops/common/crc32.hpp"
#include "cyclops/common/serialize.hpp"
#include "cyclops/common/types.hpp"

namespace cyclops::runtime {

enum class CheckpointMode : std::uint8_t { kLightweight = 0, kHeavyweight = 1 };

[[nodiscard]] inline const char* checkpoint_mode_name(CheckpointMode m) noexcept {
  return m == CheckpointMode::kLightweight ? "lightweight" : "heavyweight";
}

inline constexpr std::uint32_t kSnapshotMagic = 0x43594b50u;  // "CYKP"

/// Identifies which engine wrote a snapshot — restoring a BSP snapshot into
/// a Cyclops engine is a shape error, not a crash.
enum class EngineTag : std::uint8_t { kBsp = 1, kCyclops = 2, kGas = 3 };

/// Engine snapshot preamble: tag, mode, and the graph signature the snapshot
/// was taken against. Engines write it first so restore can fail fast (and
/// recoverably) on the wrong engine, mode, or graph.
inline void write_engine_header(ByteWriter& out, EngineTag tag, CheckpointMode mode,
                                std::uint64_t num_vertices, std::uint64_t num_edges) {
  // One-byte tag fields are the snapshot format, not accidental truncation.
  out.write(static_cast<std::uint8_t>(tag));   // cyclops-lint: allow(wire-narrowing)
  out.write(static_cast<std::uint8_t>(mode));  // cyclops-lint: allow(wire-narrowing)
  out.write(num_vertices);
  out.write(num_edges);
}

/// Validates the preamble and returns the snapshot's mode. Throws
/// SerializeError when the snapshot was written by another engine or against
/// a different graph.
[[nodiscard]] inline CheckpointMode read_engine_header(ByteReader& in, EngineTag expected,
                                                       std::uint64_t num_vertices,
                                                       std::uint64_t num_edges) {
  const auto tag = in.read<std::uint8_t>();
  if (tag != static_cast<std::uint8_t>(expected)) {
    throw SerializeError("snapshot engine tag mismatch: got " + std::to_string(tag) +
                         ", expected " + std::to_string(static_cast<int>(expected)));
  }
  const auto mode = in.read<std::uint8_t>();
  if (mode > static_cast<std::uint8_t>(CheckpointMode::kHeavyweight)) {
    throw SerializeError("snapshot mode byte corrupt");
  }
  const auto nv = in.read<std::uint64_t>();
  const auto ne = in.read<std::uint64_t>();
  if (nv != num_vertices || ne != num_edges) {
    throw SerializeError("snapshot graph mismatch: snapshot has " + std::to_string(nv) +
                         " vertices / " + std::to_string(ne) + " edges, engine has " +
                         std::to_string(num_vertices) + " / " + std::to_string(num_edges));
  }
  return static_cast<CheckpointMode>(mode);
}

// --- Per-machine framesets. An engine snapshot is not one opaque blob but a
// directory of per-machine frames, each individually CRC-stamped and
// self-describing (engine header + superstep + that machine's state slice):
//
//   [magic u32][machine_count u32] then per machine: [len u64][crc u32][frame]
//
// Localized recovery reads only the failed machine's frame (probe_frameset
// prices it without parsing engine state), and parallel re-partitioned
// recovery ships individual frames to survivors. The whole frameset is still
// sealed/opened as one snapshot at the store boundary. ---

inline constexpr std::uint32_t kFramesetMagic = 0x43594d46u;  // "CYMF"

/// Writes a frameset: `write_machine(m, frame_writer)` serializes machine
/// m's frame. Every engine's checkpoint() funnels through this so the
/// directory layout stays uniform across engines.
template <typename Fn>
void write_frameset(ByteWriter& out, MachineId machines, Fn&& write_machine) {
  out.write(kFramesetMagic);
  out.write(static_cast<std::uint32_t>(machines));
  for (MachineId m = 0; m < machines; ++m) {
    ByteWriter frame;
    write_machine(m, frame);
    const std::vector<std::uint8_t> bytes = frame.take();
    out.write(static_cast<std::uint64_t>(bytes.size()));
    out.write(crc32(bytes));
    out.write_bytes(bytes);
  }
}

/// Reads a frameset, handing each machine's integrity-checked frame to
/// `read_machine(m, frame_reader)`. Throws SerializeError on a bad magic,
/// machine-count mismatch, truncation, or per-frame CRC failure.
template <typename Fn>
void read_frameset(ByteReader& in, MachineId machines, Fn&& read_machine) {
  if (in.read<std::uint32_t>() != kFramesetMagic) {
    throw SerializeError("snapshot frameset: bad magic");
  }
  const auto count = in.read<std::uint32_t>();
  if (count != machines) {
    throw SerializeError("snapshot frameset: has " + std::to_string(count) +
                         " machine frames, engine topology has " +
                         std::to_string(machines));
  }
  for (MachineId m = 0; m < machines; ++m) {
    const auto len = in.read<std::uint64_t>();
    const auto crc = in.read<std::uint32_t>();
    if (len > in.remaining()) {
      throw SerializeError("snapshot frameset: machine " + std::to_string(m) +
                           " frame truncated");
    }
    const std::vector<std::uint8_t> bytes = in.read_bytes(len);
    if (crc32(bytes) != crc) {
      throw SerializeError("snapshot frameset: machine " + std::to_string(m) +
                           " frame corrupt (CRC mismatch)");
    }
    ByteReader frame(bytes);
    read_machine(m, frame);
  }
}

/// Frameset directory: per-machine frame payload sizes, read without parsing
/// engine state. Recovery uses it to charge a localized restore for only the
/// failed machine's frame.
struct FramesetDirectory {
  std::vector<std::uint64_t> frame_bytes;  ///< per-machine payload bytes
  std::uint64_t total_bytes = 0;           ///< sum of frame payloads
};

[[nodiscard]] inline FramesetDirectory probe_frameset(
    std::span<const std::uint8_t> payload) {
  ByteReader in(payload);
  if (in.read<std::uint32_t>() != kFramesetMagic) {
    throw SerializeError("snapshot frameset: bad magic");
  }
  const auto count = in.read<std::uint32_t>();
  FramesetDirectory dir;
  dir.frame_bytes.reserve(count);
  for (std::uint32_t m = 0; m < count; ++m) {
    const auto len = in.read<std::uint64_t>();
    (void)in.read<std::uint32_t>();  // per-frame CRC — not validated by a probe
    if (len > in.remaining()) {
      throw SerializeError("snapshot frameset: machine " + std::to_string(m) +
                           " frame truncated");
    }
    (void)in.read_bytes(len);
    dir.frame_bytes.push_back(len);
    dir.total_bytes += len;
  }
  return dir;
}

/// Wraps a raw engine snapshot in an integrity frame:
/// [magic u32][payload u64][crc32 u32][payload bytes].
[[nodiscard]] inline std::vector<std::uint8_t> seal_snapshot(
    std::vector<std::uint8_t> payload) {
  ByteWriter frame;
  frame.write(kSnapshotMagic);
  frame.write(static_cast<std::uint64_t>(payload.size()));
  frame.write(crc32(payload));
  frame.write_bytes(payload);
  return frame.take();
}

/// Validates a sealed frame and returns the payload. Throws SerializeError on
/// a bad magic, truncation, or CRC mismatch (bit flips at rest) — recovery
/// code treats that as "this checkpoint is unusable", not as fatal.
[[nodiscard]] inline std::vector<std::uint8_t> open_snapshot(
    std::span<const std::uint8_t> sealed) {
  ByteReader reader(sealed);
  if (reader.read<std::uint32_t>() != kSnapshotMagic) {
    throw SerializeError("snapshot frame: bad magic");
  }
  const auto size = reader.read<std::uint64_t>();
  const auto crc = reader.read<std::uint32_t>();
  if (size != reader.remaining()) {
    throw SerializeError("snapshot frame truncated: header says " +
                         std::to_string(size) + " payload bytes, " +
                         std::to_string(reader.remaining()) + " present");
  }
  std::vector<std::uint8_t> payload = reader.read_bytes(size);
  if (crc32(payload) != crc) {
    throw SerializeError("snapshot frame corrupt: CRC mismatch");
  }
  return payload;
}

/// Where sealed snapshots live. The store keeps only what recovery needs:
/// the most recent snapshot (rollback-and-replay never reaches further back)
/// plus write accounting for RecoveryStats.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;
  virtual void put(Superstep superstep, std::vector<std::uint8_t> sealed) = 0;
  /// Latest (superstep, sealed frame), or nullopt when nothing was saved.
  [[nodiscard]] virtual std::optional<std::pair<Superstep, std::vector<std::uint8_t>>>
  latest() const = 0;
};

class MemoryCheckpointStore final : public CheckpointStore {
 public:
  void put(Superstep superstep, std::vector<std::uint8_t> sealed) override {
    superstep_ = superstep;
    sealed_ = std::move(sealed);
    has_ = true;
  }
  [[nodiscard]] std::optional<std::pair<Superstep, std::vector<std::uint8_t>>> latest()
      const override {
    if (!has_) return std::nullopt;
    return std::make_pair(superstep_, sealed_);
  }

 private:
  bool has_ = false;
  Superstep superstep_ = 0;
  std::vector<std::uint8_t> sealed_;
};

/// One file per checkpoint under `dir`, newest replacing oldest. Used by the
/// durability tests and by the CLI when a checkpoint directory is given.
class FileCheckpointStore final : public CheckpointStore {
 public:
  explicit FileCheckpointStore(std::string dir) : dir_(std::move(dir)) {}

  void put(Superstep superstep, std::vector<std::uint8_t> sealed) override {
    const std::string path = path_for(superstep);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(sealed.data()),
              static_cast<std::streamsize>(sealed.size()));
    out.flush();
    if (!out.good()) throw SerializeError("checkpoint write failed: " + path);
    if (has_ && superstep_ != superstep) std::remove(path_for(superstep_).c_str());
    superstep_ = superstep;
    has_ = true;
  }

  [[nodiscard]] std::optional<std::pair<Superstep, std::vector<std::uint8_t>>> latest()
      const override {
    if (!has_) return std::nullopt;
    std::ifstream in(path_for(superstep_), std::ios::binary);
    if (!in.good()) return std::nullopt;
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    return std::make_pair(superstep_, std::move(bytes));
  }

  [[nodiscard]] std::string path_for(Superstep s) const {
    return dir_ + "/ckpt_" + std::to_string(s) + ".bin";
  }

 private:
  std::string dir_;
  bool has_ = false;
  Superstep superstep_ = 0;
};

/// Modeled time to persist/reload snapshots (the simulated cluster has no
/// real distributed filesystem; like the wire, stable storage is a model).
/// Defaults approximate an HDFS-style replicated write at ~100 MB/s.
struct CheckpointCostModel {
  double write_base_us = 10000.0;   ///< open/commit/replicate fixed cost
  double write_per_byte_us = 0.01;  ///< ~100 MB/s replicated write
  double read_base_us = 5000.0;
  double read_per_byte_us = 0.005;  ///< ~200 MB/s read

  [[nodiscard]] double write_us(std::size_t bytes) const noexcept {
    return write_base_us + write_per_byte_us * static_cast<double>(bytes);
  }
  [[nodiscard]] double read_us(std::size_t bytes) const noexcept {
    return read_base_us + read_per_byte_us * static_cast<double>(bytes);
  }
};

/// Policy + bookkeeping for periodic checkpoints. The SuperstepDriver calls
/// due()/commit() at superstep boundaries; run_with_recovery calls
/// load_latest() after a fault.
class CheckpointManager {
 public:
  CheckpointManager(Superstep every, CheckpointMode mode, CheckpointStore* store)
      : every_(every), mode_(mode), store_(store) {}

  [[nodiscard]] Superstep interval() const noexcept { return every_; }
  [[nodiscard]] CheckpointMode mode() const noexcept { return mode_; }
  [[nodiscard]] CheckpointCostModel& cost() noexcept { return cost_; }

  /// True at superstep boundaries that the every-N policy selects.
  [[nodiscard]] bool due(Superstep completed) const noexcept {
    return every_ > 0 && completed > 0 && completed % every_ == 0 &&
           (!has_last_ || completed != last_superstep_);
  }

  /// Seals and stores one snapshot taken at `superstep`.
  void commit(Superstep superstep, std::vector<std::uint8_t> payload) {
    const std::size_t payload_bytes = payload.size();
    store_->put(superstep, seal_snapshot(std::move(payload)));
    has_last_ = true;
    last_superstep_ = superstep;
    ++checkpoints_taken_;
    bytes_written_ += payload_bytes;
    last_checkpoint_bytes_ = payload_bytes;
    modeled_checkpoint_s_ += cost_.write_us(payload_bytes) * 1e-6;
  }

  /// Opens the newest stored snapshot: (superstep, raw engine payload).
  /// Throws SerializeError if the frame fails integrity checks.
  [[nodiscard]] std::optional<std::pair<Superstep, std::vector<std::uint8_t>>>
  load_latest() const {
    auto sealed = store_->latest();
    if (!sealed) return std::nullopt;
    return std::make_pair(sealed->first, open_snapshot(sealed->second));
  }

  [[nodiscard]] std::uint64_t checkpoints_taken() const noexcept {
    return checkpoints_taken_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  [[nodiscard]] std::uint64_t last_checkpoint_bytes() const noexcept {
    return last_checkpoint_bytes_;
  }
  [[nodiscard]] double modeled_checkpoint_s() const noexcept {
    return modeled_checkpoint_s_;
  }

 private:
  Superstep every_;
  CheckpointMode mode_;
  CheckpointStore* store_;
  CheckpointCostModel cost_;
  bool has_last_ = false;
  Superstep last_superstep_ = 0;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t last_checkpoint_bytes_ = 0;
  double modeled_checkpoint_s_ = 0;
};

}  // namespace cyclops::runtime
