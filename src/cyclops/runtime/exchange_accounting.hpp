#pragma once
// Centralized exchange-side accounting for the engine runtime layer. Every
// engine used to duplicate these as private members (peak_buffered_,
// churn_bytes_, total_sync_messages_, ...); they now live in one struct so
// memory reports and RunStats draw from the same counters regardless of
// execution model.
//
// Churn and message counters are atomics because some engines bump them from
// parallel host tasks (e.g. the BSP parse phase accounts mailbox churn per
// worker task). The peak-buffered high-water mark is only updated from the
// single-threaded exchange point, so it stays a plain integer.

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "cyclops/sim/counters.hpp"
#include "cyclops/sim/fabric.hpp"

namespace cyclops::runtime {

class ExchangeAccounting {
 public:
  /// Arms bounded-message-buffer accounting for out-of-core stores: any
  /// exchange buffering above `budget_bytes` is charged as a disk
  /// write+read at `disk_byte_us` per byte (sim::CostModel::spill_cost_us).
  void arm_spill(std::uint64_t budget_bytes, double disk_byte_us) noexcept {
    spill_budget_bytes_ = budget_bytes;
    spill_disk_byte_us_ = disk_byte_us;
  }

  /// Folds one barrier exchange into the peak-buffered high-water mark
  /// (Table 2's "max capacity" analog) and, when a spill budget is armed,
  /// into the spill totals.
  void note_exchange(const sim::ExchangeStats& x) noexcept {
    peak_buffered_bytes_ = std::max(peak_buffered_bytes_, x.peak_buffered_bytes);
    if (spill_budget_bytes_ > 0 && x.peak_buffered_bytes > spill_budget_bytes_) {
      const std::uint64_t spilled = x.peak_buffered_bytes - spill_budget_bytes_;
      spill_bytes_ += spilled;
      spill_s_ += 2.0 * static_cast<double>(spilled) * spill_disk_byte_us_ * 1e-6;
    }
  }

  /// Folds an exchange's net traffic into the churn/message totals — for
  /// engines whose transient allocation *is* the wire traffic (Cyclops' sync
  /// messages, GAS's master/mirror pattern).
  void note_net(const sim::NetSnapshot& net) noexcept {
    add_churn_bytes(net.total_bytes());
    add_messages(net.total_messages());
  }

  /// Transient allocation not visible to the fabric (e.g. BSP's per-vertex
  /// mailbox materialization). Safe to call from parallel tasks.
  void add_churn_bytes(std::uint64_t bytes) noexcept {
    churn_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_messages(std::uint64_t n) noexcept {
    messages_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Messages staged by compute before combining (combiner effectiveness).
  void add_staged(std::uint64_t n) noexcept {
    staged_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t peak_buffered_bytes() const noexcept {
    return peak_buffered_bytes_;
  }
  [[nodiscard]] std::uint64_t churn_bytes() const noexcept {
    return churn_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t staged_messages() const noexcept {
    return staged_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t spill_budget_bytes() const noexcept {
    return spill_budget_bytes_;
  }
  /// Cumulative bytes buffered above the armed budget, summed per exchange.
  [[nodiscard]] std::uint64_t spill_bytes() const noexcept { return spill_bytes_; }
  /// Modeled seconds spent writing + re-reading the spilled bytes.
  [[nodiscard]] double spill_s() const noexcept { return spill_s_; }

 private:
  std::uint64_t peak_buffered_bytes_ = 0;
  std::uint64_t spill_budget_bytes_ = 0;
  double spill_disk_byte_us_ = 0.0;
  std::uint64_t spill_bytes_ = 0;
  double spill_s_ = 0.0;
  std::atomic<std::uint64_t> churn_bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> staged_{0};
};

}  // namespace cyclops::runtime
