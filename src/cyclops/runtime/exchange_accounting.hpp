#pragma once
// Centralized exchange-side accounting for the engine runtime layer. Every
// engine used to duplicate these as private members (peak_buffered_,
// churn_bytes_, total_sync_messages_, ...); they now live in one struct so
// memory reports and RunStats draw from the same counters regardless of
// execution model.
//
// Churn and message counters are atomics because some engines bump them from
// parallel host tasks (e.g. the BSP parse phase accounts mailbox churn per
// worker task). The peak-buffered high-water mark is only updated from the
// single-threaded exchange point, so it stays a plain integer.

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "cyclops/sim/counters.hpp"
#include "cyclops/sim/fabric.hpp"

namespace cyclops::runtime {

class ExchangeAccounting {
 public:
  /// Folds one barrier exchange into the peak-buffered high-water mark
  /// (Table 2's "max capacity" analog).
  void note_exchange(const sim::ExchangeStats& x) noexcept {
    peak_buffered_bytes_ = std::max(peak_buffered_bytes_, x.peak_buffered_bytes);
  }

  /// Folds an exchange's net traffic into the churn/message totals — for
  /// engines whose transient allocation *is* the wire traffic (Cyclops' sync
  /// messages, GAS's master/mirror pattern).
  void note_net(const sim::NetSnapshot& net) noexcept {
    add_churn_bytes(net.total_bytes());
    add_messages(net.total_messages());
  }

  /// Transient allocation not visible to the fabric (e.g. BSP's per-vertex
  /// mailbox materialization). Safe to call from parallel tasks.
  void add_churn_bytes(std::uint64_t bytes) noexcept {
    churn_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_messages(std::uint64_t n) noexcept {
    messages_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Messages staged by compute before combining (combiner effectiveness).
  void add_staged(std::uint64_t n) noexcept {
    staged_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t peak_buffered_bytes() const noexcept {
    return peak_buffered_bytes_;
  }
  [[nodiscard]] std::uint64_t churn_bytes() const noexcept {
    return churn_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t staged_messages() const noexcept {
    return staged_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t peak_buffered_bytes_ = 0;
  std::atomic<std::uint64_t> churn_bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> staged_{0};
};

}  // namespace cyclops::runtime
