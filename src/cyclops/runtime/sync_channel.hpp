#pragma once
// Typed, batched sync channel over the simulated fabric. Replaces the
// per-record ByteWriter clear/write/copy dance every engine used to hand-roll
// in its SND path with a direct per-destination append into the outbox
// buffer: one reserve per destination per batch, one memcpy-style append per
// record. The single-writer-per-lane discipline (§3.4 / CyclopsMT's private
// out-queues, §5) is preserved — a Sender wraps exactly one fabric lane.
//
// Wire format is unchanged from the seed: records are laid out back-to-back
// exactly as ByteWriter serialized them, so modeled traffic (bytes, message
// counts, packages) is bit-for-bit identical; only host-side copies shrink.

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "cyclops/common/check.hpp"
#include "cyclops/common/types.hpp"
#include "cyclops/sim/fabric.hpp"
#include "cyclops/verify/verify.hpp"

namespace cyclops::runtime {

/// Reads trivially-copyable records back out of a delivered package. The
/// low-level escape hatch for streams that interleave record types (the GAS
/// apply+scatter exchange); homogeneous streams should use
/// SyncChannel::for_each / drain instead.
class PackageReader {
 public:
  explicit PackageReader(const sim::Package& pkg) noexcept : bytes_(pkg.bytes) {}
  explicit PackageReader(std::span<const std::uint8_t> bytes) noexcept : bytes_(bytes) {}

  template <typename Record>
    requires std::is_trivially_copyable_v<Record>
  [[nodiscard]] Record read() noexcept {
    CYCLOPS_DCHECK(pos_ + sizeof(Record) <= bytes_.size());
    Record rec;
    std::memcpy(&rec, bytes_.data() + pos_, sizeof(Record));
    pos_ += sizeof(Record);
    return rec;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

template <typename Record>
  requires std::is_trivially_copyable_v<Record>
class SyncChannel {
 public:
  /// Single-writer sending endpoint bound to one fabric lane. Distinct lanes
  /// may be held by distinct threads; one Sender must never be shared.
  /// With a checker attached (CYCLOPS_VERIFY), every send is phase-checked:
  /// wire traffic outside the send/exchange window is a discipline violation.
  class Sender {
   public:
    Sender(sim::Fabric& fabric, WorkerId from, std::size_t lane = 0,
           verify::EngineChecker* checker = nullptr,
           verify::SourceLoc loc = {}) noexcept
        : box_(&fabric.outbox(from, lane)), from_(from), lane_(lane),
          checker_(checker), loc_(loc) {}

    /// Pre-allocates room for `n_records` more records headed to `to`, so a
    /// batch of sends costs one buffer growth instead of one per record.
    void reserve(WorkerId to, std::size_t n_records) {
      box_->reserve(to, n_records * sizeof(Record));
    }

    /// Appends one record for `to` — counts as one logical message. The
    /// lane-aware checker hook both phase-checks the send and race-stamps
    /// the (from, lane) cell: two unordered writers sharing a lane is a
    /// happens-before violation of the single-writer-per-lane discipline.
    void send(WorkerId to, const Record& rec) {
      if (checker_ != nullptr) checker_->on_send(from_, to, lane_, loc_);
      box_->send_record(to, rec);
    }

   private:
    sim::OutBox* box_;
    WorkerId from_ = 0;
    std::size_t lane_ = 0;
    verify::EngineChecker* checker_ = nullptr;
    verify::SourceLoc loc_;
  };

  [[nodiscard]] static Sender sender(sim::Fabric& fabric, WorkerId from,
                                     std::size_t lane = 0,
                                     verify::EngineChecker* checker = nullptr,
                                     verify::SourceLoc loc = {}) noexcept {
    return Sender(fabric, from, lane, checker, loc);
  }

  /// Typed receive over one package: fn(record) per record, in send order.
  template <typename Fn>
  static void for_each(const sim::Package& pkg, Fn&& fn) {
    PackageReader reader(pkg);
    while (!reader.exhausted()) fn(reader.read<Record>());
  }

  /// Typed receive over everything delivered to `to` by the latest exchange;
  /// clears the inbox afterwards (the receive side of the seed's
  /// read-then-clear_incoming loop).
  template <typename Fn>
  static void drain(sim::Fabric& fabric, WorkerId to, Fn&& fn) {
    for (const sim::Package& pkg : fabric.incoming(to)) for_each(pkg, fn);
    fabric.clear_incoming(to);
  }
};

}  // namespace cyclops::runtime
