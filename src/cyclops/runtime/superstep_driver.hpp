#pragma once
// The engine-independent superstep skeleton. All three execution models
// (BSP/Hama, Cyclops immutable view, PowerGraph GAS) share the same outer
// loop: run one superstep, accumulate its stats, notify the observer, bump
// the counter, stop on termination or on the superstep cap. Only the body of
// a superstep — which paper phases (PRS/CMP/SND/SYN) run and how — differs,
// so the driver takes it as a callback and the engines keep just their
// genuinely distinct phase logic.
//
// The driver owns the superstep counter and the simulated-elapsed clock so
// checkpoint/restore and multi-run continuation (extend_max_supersteps,
// topology mutation) observe one authoritative position in the computation.

#include <algorithm>
#include <functional>
#include <utility>

#include "cyclops/common/serialize.hpp"
#include "cyclops/common/types.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/runtime/checkpoint.hpp"
#include "cyclops/runtime/exchange_accounting.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/verify/verify.hpp"

namespace cyclops::runtime {

class SuperstepDriver {
 public:
  /// Runs supersteps until `step` reports termination or `max_supersteps` is
  /// reached (the cap is re-read every run() so callers may extend it between
  /// runs). `step` executes one superstep into the provided SuperstepStats
  /// (its `superstep` field is pre-filled) and returns true when the
  /// computation has terminated. `notify` fires once per completed superstep,
  /// after the step's stats are folded into the run totals — engines adapt it
  /// to their observer signature.
  template <typename StepFn, typename NotifyFn>
  metrics::RunStats run(Superstep max_supersteps, const ExchangeAccounting& acct,
                        StepFn&& step, NotifyFn&& notify) {
    metrics::RunStats stats;
    bool done = false;
    while (!done) {
      if (faults_ != nullptr) faults_->begin_superstep(superstep_);
      // The invariant checker observes every superstep boundary so violation
      // reports carry the authoritative superstep counter.
      if (checker_ != nullptr) checker_->begin_superstep(superstep_);
      metrics::SuperstepStats s;
      s.superstep = superstep_;
      done = step(s);
      simulated_elapsed_s_ += s.phases.total_s();
      stats.supersteps.push_back(s);
      stats.peak_buffered_bytes =
          std::max(stats.peak_buffered_bytes, acct.peak_buffered_bytes());
      notify(stats.supersteps.back());
      ++superstep_;
      if (superstep_ >= max_supersteps) done = true;
      // Periodic checkpoint, taken at the quiescent point just after the
      // barrier — every engine's state is at a superstep boundary here.
      if (!done && checkpoint_ != nullptr && checkpoint_->due(superstep_)) {
        ByteWriter snapshot;
        save_(snapshot);
        checkpoint_->commit(superstep_, snapshot.take());
      }
    }
    stats.elapsed_s = simulated_elapsed_s_;
    return stats;
  }

  [[nodiscard]] Superstep superstep() const noexcept { return superstep_; }

  /// Repositions the computation (checkpoint restore).
  void set_superstep(Superstep s) noexcept { superstep_ = s; }

  /// Simulated work time accumulated across every run() so far.
  [[nodiscard]] double simulated_elapsed_s() const noexcept {
    return simulated_elapsed_s_;
  }

  /// Arms the driver's fault clock: the injector is repositioned at the top
  /// of every superstep so exchange-level faults know where they fire.
  /// Not owned; nullptr disarms.
  void set_fault_injector(sim::FaultInjector* injector) noexcept { faults_ = injector; }

  /// Attaches the engine's invariant checker (CYCLOPS_VERIFY builds); the
  /// driver keeps its superstep counter current. Not owned; nullptr detaches.
  void set_checker(verify::EngineChecker* checker) noexcept { checker_ = checker; }

  /// Attaches periodic checkpointing: when `manager` says a boundary is due,
  /// `save` serializes the engine into the provided writer (engines bind
  /// their checkpoint(ByteWriter&, mode) here). Not owned; nullptr detaches.
  void set_checkpointer(CheckpointManager* manager,
                        std::function<void(ByteWriter&)> save) {
    checkpoint_ = manager;
    save_ = std::move(save);
  }

 private:
  Superstep superstep_ = 0;
  double simulated_elapsed_s_ = 0;
  sim::FaultInjector* faults_ = nullptr;
  verify::EngineChecker* checker_ = nullptr;
  CheckpointManager* checkpoint_ = nullptr;
  std::function<void(ByteWriter&)> save_;
};

}  // namespace cyclops::runtime
