#pragma once
// Automated crash recovery on top of the SuperstepDriver, in three modes.
// run_with_recovery() owns the whole fault lifecycle:
//
//   1. build an engine (caller's factory — it wires the shared FaultInjector
//      and, for log-based modes, the shared MessageLog into the engine's
//      fabric via its Config);
//   2. attach a CheckpointManager so the driver checkpoints every N
//      superstep boundaries (per-machine framesets, see checkpoint.hpp);
//   3. run. If the fabric throws FaultError (machine crash at a barrier),
//      the incarnation is dead: discard it, build a replacement, restore the
//      latest integrity-checked snapshot (or replay from superstep 0 when
//      none exists or it is corrupt), and run again. The injector and log
//      outlive incarnations, so a one-shot crash does not re-fire during
//      replay and logged packages survive the crash.
//
// Recovery modes (FTPregel's conventional vs. log-based recovery):
//
//   * kRollback — global rollback-and-replay. Every machine rolls back to
//     the checkpoint and redoes every lost superstep. Charged: detection +
//     full snapshot read + the full cluster cost of the replayed window.
//   * kLog — localized replay. Only the failed machine rolls back; the
//     survivors stay at the crash superstep, idle-charging nothing beyond
//     detection, and re-send the replayer its logged inbound packages
//     instead of recomputing them (the replayer's outbound to survivors is
//     suppressed — they already received it). Charged: detection + the
//     failed machine's checkpoint frame read + the failed machine's compute
//     share of the window + the logged re-feed wire time.
//   * kLogParallel — re-partitioned parallel replay. The dead machine's
//     partition is split across the K survivors, each replaying a slice
//     concurrently, then merged back. Charged like kLog with the compute
//     share and the log re-feed each divided by K (slices replay — and are
//     re-fed — over K distinct links at once), plus the scatter/merge
//     transfer of the dead machine's frame.
//
// The simulated cluster executes the replay window deterministically in all
// three modes (one process holds every machine; determinism is what makes
// re-execution produce the machine's lost state bit-for-bit). What differs
// is verification and accounting: in log-based modes the fabric's replay
// window byte-compares every re-sent remote package against the MessageLog
// and the wire digest is seeded across incarnations, so a log-recovered run
// must end with the exact digest of a fault-free run — the simulator's proof
// that log replay is sound. The cost model then charges each mode what the
// real cluster would pay, mirroring how the wire itself is modeled.
//
// A snapshot that fails its CRC frame or truncates mid-read throws
// SerializeError; the coordinator counts it (RecoveryStats::
// corrupt_checkpoints), falls back to a from-scratch replay, and keeps
// going — restore is a recoverable operation by contract.

#include <algorithm>
#include <memory>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "cyclops/common/serialize.hpp"
#include "cyclops/metrics/recovery_stats.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/runtime/checkpoint.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/sim/message_log.hpp"

namespace cyclops::runtime {

enum class RecoveryMode : std::uint8_t { kRollback = 0, kLog = 1, kLogParallel = 2 };

[[nodiscard]] inline const char* recovery_mode_name(RecoveryMode m) noexcept {
  switch (m) {
    case RecoveryMode::kRollback: return "rollback";
    case RecoveryMode::kLog: return "log";
    case RecoveryMode::kLogParallel: return "log-parallel";
  }
  return "?";
}

/// CLI-facing parse; returns false on an unknown name.
[[nodiscard]] inline bool parse_recovery_mode(std::string_view name,
                                              RecoveryMode& out) noexcept {
  if (name == "rollback") out = RecoveryMode::kRollback;
  else if (name == "log") out = RecoveryMode::kLog;
  else if (name == "log-parallel") out = RecoveryMode::kLogParallel;
  else return false;
  return true;
}

struct RecoveryOptions {
  Superstep checkpoint_every = 0;  ///< 0 = no periodic checkpoints
  CheckpointMode mode = CheckpointMode::kLightweight;
  RecoveryMode recovery = RecoveryMode::kRollback;
  std::size_t max_recoveries = 8;  ///< give up (rethrow) after this many crashes

  /// The shared message log for kLog / kLogParallel. Must be the same object
  /// the caller's engine factory installs into the fabric (via Config);
  /// nullptr degrades log-based modes to rollback accounting.
  sim::MessageLog* log = nullptr;

  /// kLogParallel: number of survivors sharing the replay. 0 = all of them
  /// (machines - 1).
  std::size_t recovery_parallelism = 0;
};

template <typename Engine>
struct RecoveryOutcome {
  metrics::RunStats run;  ///< stats of the final, successful run segment
  metrics::RecoveryStats recovery;
  std::unique_ptr<Engine> engine;  ///< the surviving incarnation (for values())
};

/// Runs `make_engine()`'s product to completion, recovering automatically
/// from injected machine crashes. `faults` is the injector shared with the
/// engines' fabrics (nullptr when only checkpointing is wanted); `store`
/// overrides the default in-memory checkpoint store.
template <typename MakeEngine>
auto run_with_recovery(MakeEngine&& make_engine, const RecoveryOptions& opts,
                       sim::FaultInjector* faults = nullptr,
                       CheckpointStore* store = nullptr) {
  using EnginePtr = std::invoke_result_t<MakeEngine&>;
  using Engine = typename EnginePtr::element_type;

  MemoryCheckpointStore default_store;
  CheckpointManager manager(opts.checkpoint_every, opts.mode,
                            store != nullptr ? store : &default_store);

  const bool localized =
      opts.recovery != RecoveryMode::kRollback && opts.log != nullptr;

  RecoveryOutcome<Engine> out;
  auto fresh = [&] {
    EnginePtr engine = make_engine();
    engine->set_checkpoint_manager(&manager);
    return engine;
  };

  // One record per recovery cycle; the replay surcharge is priced after the
  // final segment completes, from its per-superstep stats.
  struct Window {
    Superstep resume_at = 0;
    Superstep until = 0;  ///< crash superstep
    MachineId dead = sim::kNoMachine;
  };
  std::vector<Window> windows;
  // Supersteps already folded into the wire digest by crashed incarnations:
  // the replay/digest-suppression window must extend to the *furthest* crash
  // seen, or a double fault inside a replay window would double-fold.
  Superstep digest_covered_until = 0;

  EnginePtr engine = fresh();
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      out.run = engine->run();
      break;
    } catch (const sim::FaultError& fault) {
      ++out.recovery.faults_detected;
      if (attempt + 1 >= opts.max_recoveries) throw;

      // The failure-detection clock: peers discover the dead machine when
      // its barrier contribution times out (--detection-timeout-us).
      double recover_us = faults != nullptr ? faults->plan().detection_timeout_us : 0.0;

      // The crashed fabric's digest covers every exchange before the crash —
      // the continuity seed for a log-based replacement.
      const std::uint64_t crashed_digest = engine->fabric().wire_digest();
      digest_covered_until = std::max(digest_covered_until, fault.superstep());

      // Replacement machine joins; roll back to the latest usable snapshot.
      engine = fresh();
      Superstep restored_at = 0;
      std::size_t snapshot_bytes = 0;
      std::uint64_t dead_frame_bytes = 0;
      try {
        if (auto snapshot = manager.load_latest()) {
          ByteReader reader(snapshot->second);
          engine->restore(reader);
          restored_at = snapshot->first;
          snapshot_bytes = snapshot->second.size();
          const FramesetDirectory dir = probe_frameset(snapshot->second);
          if (fault.machine() < dir.frame_bytes.size()) {
            dead_frame_bytes = dir.frame_bytes[fault.machine()];
          }
        }
      } catch (const SerializeError&) {
        // Unusable (truncated/corrupt) checkpoint: count it and replay from
        // superstep 0 on a clean engine — restore() may have partially
        // applied. Silent fallback was a bug: operators read "0 lost
        // supersteps since the checkpoint" while the run actually redid
        // everything.
        ++out.recovery.corrupt_checkpoints;
        engine = fresh();
        restored_at = 0;
        snapshot_bytes = 0;
        dead_frame_bytes = 0;
      }

      if (snapshot_bytes > 0) {
        // Rollback re-reads the whole frameset on every machine; localized
        // recovery ships only the dead machine's frame to its replacement.
        recover_us += manager.cost().read_us(
            localized ? static_cast<std::size_t>(dead_frame_bytes) : snapshot_bytes);
      }
      if (localized && opts.recovery == RecoveryMode::kLogParallel) {
        // Re-partitioned replay: scatter the dead machine's frame slices to
        // the survivors, merge the replayed state back afterwards.
        recover_us += manager.cost().read_us(dead_frame_bytes) +
                      manager.cost().write_us(dead_frame_bytes);
      }

      if (localized) {
        // Arm the replay window on the new incarnation: verified log replay,
        // digest continuity, and no re-appending until the window closes.
        engine->arm_replay(restored_at, digest_covered_until, fault.machine(),
                           crashed_digest);
        // Entries older than the restore point can never be replayed again.
        opts.log->truncate_before(restored_at);
      }

      windows.push_back(Window{restored_at, fault.superstep(), fault.machine()});
      const Superstep lost =
          fault.superstep() > restored_at ? fault.superstep() - restored_at : 0;
      out.recovery.lost_supersteps += lost;
      out.recovery.modeled_recovery_s += recover_us * 1e-6;
      ++out.recovery.recoveries;
    }
  }

  // Price the replay windows from the final segment's per-superstep stats
  // (deterministic replay makes them representative of the lost work; a
  // superstep replayed by several incarnations is charged once, at the
  // final segment's cost). Rollback charges the full cluster; log-based
  // modes charge the failed machine's share plus the logged re-feed wire.
  if (!windows.empty()) {
    const sim::Topology& topo = engine->fabric().topology();
    const MachineId machines = std::max<MachineId>(1, topo.machines);
    const std::size_t survivors = machines > 1 ? machines - 1 : 1;
    const std::size_t k =
        opts.recovery_parallelism > 0
            ? std::min(opts.recovery_parallelism, survivors)
            : survivors;
    double surcharge_us = 0;
    for (const metrics::SuperstepStats& s : out.run.supersteps) {
      bool in_window = false;
      for (const Window& w : windows) {
        if (s.superstep >= w.resume_at && s.superstep < w.until) {
          in_window = true;
          break;
        }
      }
      if (!in_window) continue;
      const double full_s =
          s.phases.total_s() + s.modeled_comm_s + s.modeled_barrier_s;
      out.recovery.replay_window_s += full_s;
      if (!localized) {
        surcharge_us += full_s * 1e6;
      } else {
        // The replayer redoes one machine's partition: its share of the
        // cluster's measured work (partitions are balanced by construction).
        // Survivors idle — no wire, no barrier — except for re-feeding the
        // log, priced below. kLogParallel splits the share across K
        // survivors replaying slices concurrently.
        double share_s =
            (s.phases.prs_s + s.phases.cmp_s + s.phases.snd_s) / machines;
        if (opts.recovery == RecoveryMode::kLogParallel) {
          share_s /= static_cast<double>(k);
        }
        surcharge_us += share_s * 1e6;
      }
    }
    if (localized) {
      for (const Window& w : windows) {
        double refeed_us = opts.log->refeed_wire_us(topo, engine->fabric().cost_model(),
                                                    w.dead, w.resume_at, w.until);
        if (opts.recovery == RecoveryMode::kLogParallel) {
          // Each slice replayer is re-fed its own portion of the dead
          // machine's inbound log concurrently, over K distinct links.
          refeed_us /= static_cast<double>(k);
        }
        surcharge_us += refeed_us;
      }
    }
    out.recovery.modeled_recovery_s += surcharge_us * 1e-6;
  }

  out.recovery.checkpoints_taken = manager.checkpoints_taken();
  out.recovery.checkpoint_bytes_written = manager.bytes_written();
  out.recovery.last_checkpoint_bytes = manager.last_checkpoint_bytes();
  out.recovery.modeled_checkpoint_s = manager.modeled_checkpoint_s();
  if (opts.log != nullptr) {
    const sim::MessageLogStats& ls = opts.log->stats();
    out.recovery.log_bytes = ls.logged_bytes;
    out.recovery.log_packages = ls.logged_packages;
    out.recovery.replay_verified_packages = ls.verified_packages;
    out.recovery.replay_log_mismatches =
        ls.mismatched_packages + ls.missing_packages;
  }
  if (faults != nullptr) {
    const sim::FaultStats& fs = faults->stats();
    out.recovery.dropped_packages = fs.dropped_packages;
    out.recovery.corrupted_packages = fs.corrupted_packages;
    out.recovery.retransmissions = fs.retransmissions;
    out.recovery.modeled_fault_overhead_s = fs.modeled_fault_overhead_s;
  }
  out.engine = std::move(engine);
  return out;
}

}  // namespace cyclops::runtime
