#pragma once
// Automated rollback-and-replay on top of the SuperstepDriver, FTPregel
// style. run_with_recovery() owns the whole fault lifecycle:
//
//   1. build an engine (caller's factory — it wires the shared FaultInjector
//      into the engine's fabric via Config::faults);
//   2. attach a CheckpointManager so the driver checkpoints every N
//      superstep boundaries;
//   3. run. If the fabric throws FaultError (machine crash at a barrier),
//      the incarnation is dead: discard it, build a replacement, restore the
//      latest integrity-checked snapshot (or replay from superstep 0 when
//      none exists), and run again. The injector outlives incarnations, so a
//      one-shot crash does not re-fire during replay.
//
// A snapshot that fails its CRC frame or truncates mid-read throws
// SerializeError; the coordinator treats that checkpoint as unusable and
// falls back to a from-scratch replay instead of dying — restore is a
// recoverable operation by contract.

#include <memory>
#include <type_traits>
#include <utility>

#include "cyclops/common/serialize.hpp"
#include "cyclops/metrics/recovery_stats.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/runtime/checkpoint.hpp"
#include "cyclops/sim/fault.hpp"

namespace cyclops::runtime {

struct RecoveryOptions {
  Superstep checkpoint_every = 0;  ///< 0 = no periodic checkpoints
  CheckpointMode mode = CheckpointMode::kLightweight;
  std::size_t max_recoveries = 8;  ///< give up (rethrow) after this many crashes
};

template <typename Engine>
struct RecoveryOutcome {
  metrics::RunStats run;  ///< stats of the final, successful run segment
  metrics::RecoveryStats recovery;
  std::unique_ptr<Engine> engine;  ///< the surviving incarnation (for values())
};

/// Runs `make_engine()`'s product to completion, recovering automatically
/// from injected machine crashes. `faults` is the injector shared with the
/// engines' fabrics (nullptr when only checkpointing is wanted); `store`
/// overrides the default in-memory checkpoint store.
template <typename MakeEngine>
auto run_with_recovery(MakeEngine&& make_engine, const RecoveryOptions& opts,
                       sim::FaultInjector* faults = nullptr,
                       CheckpointStore* store = nullptr) {
  using EnginePtr = std::invoke_result_t<MakeEngine&>;
  using Engine = typename EnginePtr::element_type;

  MemoryCheckpointStore default_store;
  CheckpointManager manager(opts.checkpoint_every, opts.mode,
                            store != nullptr ? store : &default_store);

  RecoveryOutcome<Engine> out;
  auto fresh = [&] {
    EnginePtr engine = make_engine();
    engine->set_checkpoint_manager(&manager);
    return engine;
  };

  EnginePtr engine = fresh();
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      out.run = engine->run();
      break;
    } catch (const sim::FaultError& fault) {
      ++out.recovery.faults_detected;
      if (attempt + 1 >= opts.max_recoveries) throw;

      // The failure-detection clock: peers discover the dead machine when
      // its barrier contribution times out.
      double recover_us = faults != nullptr ? faults->plan().detection_timeout_us : 0.0;

      // Replacement machine joins; roll back to the latest usable snapshot.
      engine = fresh();
      Superstep restored_at = 0;
      try {
        if (auto snapshot = manager.load_latest()) {
          ByteReader reader(snapshot->second);
          engine->restore(reader);
          restored_at = snapshot->first;
          recover_us += manager.cost().read_us(snapshot->second.size());
        }
      } catch (const SerializeError&) {
        // Unusable (truncated/corrupt) checkpoint: replay from superstep 0
        // on a clean engine — restore() may have partially applied.
        engine = fresh();
        restored_at = 0;
      }

      const Superstep lost =
          fault.superstep() > restored_at ? fault.superstep() - restored_at : 0;
      out.recovery.lost_supersteps += lost;
      out.recovery.modeled_recovery_s += recover_us * 1e-6;
      ++out.recovery.recoveries;
    }
  }

  out.recovery.checkpoints_taken = manager.checkpoints_taken();
  out.recovery.checkpoint_bytes_written = manager.bytes_written();
  out.recovery.last_checkpoint_bytes = manager.last_checkpoint_bytes();
  out.recovery.modeled_checkpoint_s = manager.modeled_checkpoint_s();
  if (faults != nullptr) {
    const sim::FaultStats& fs = faults->stats();
    out.recovery.dropped_packages = fs.dropped_packages;
    out.recovery.corrupted_packages = fs.corrupted_packages;
    out.recovery.retransmissions = fs.retransmissions;
    out.recovery.modeled_fault_overhead_s = fs.modeled_fault_overhead_s;
  }
  out.engine = std::move(engine);
  return out;
}

}  // namespace cyclops::runtime
