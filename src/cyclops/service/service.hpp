#pragma once
// The serving facade: one long-lived object owning the snapshot store, the
// scheduler and its dedicated thread pool. Tenants submit jobs (pinned to the
// newest epoch at admission) and the owner applies batched topology deltas;
// the two streams never block each other beyond one mutex acquisition.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cyclops/common/thread_pool.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/metrics/job_stats.hpp"
#include "cyclops/service/job.hpp"
#include "cyclops/service/scheduler.hpp"
#include "cyclops/service/snapshot.hpp"

namespace cyclops::service {

struct ServiceConfig {
  SnapshotConfig snapshot;
  SchedulerConfig scheduler;
};

class Service {
 public:
  Service(graph::EdgeList base, ServiceConfig cfg)
      : cfg_(cfg),
        pool_(std::max<std::size_t>(1, cfg.scheduler.workers)),
        store_(std::move(base), cfg.snapshot),
        scheduler_(pool_, cfg.scheduler) {}

  /// Submits against the newest epoch.
  Submission submit(const JobSpec& spec) { return scheduler_.submit(spec, store_.current()); }
  /// Submits against an explicitly pinned snapshot (e.g. re-running on an old
  /// epoch for the immutability regression suite).
  Submission submit(const JobSpec& spec, SnapshotRef snap) {
    return scheduler_.submit(spec, std::move(snap));
  }

  /// Applies a batched mutation, publishing a new epoch. In-flight jobs keep
  /// their pinned epoch; later submissions land on the new one.
  Epoch apply_delta(const core::TopologyDelta& delta) { return store_.apply(delta); }

  void wait_all() { scheduler_.wait_all(); }
  void shutdown() { scheduler_.shutdown(); }

  [[nodiscard]] SnapshotStore& snapshots() noexcept { return store_; }
  [[nodiscard]] JobScheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  /// One-line operational summary (jobs, epochs, live snapshots).
  [[nodiscard]] std::string summary() const;

 private:
  ServiceConfig cfg_;
  ThreadPool pool_;  ///< dedicated to the scheduler for its whole lifetime
  SnapshotStore store_;
  JobScheduler scheduler_;
};

}  // namespace cyclops::service
