#pragma once
// Concurrent job scheduler over common::ThreadPool. Admission is a bounded
// queue with reject-with-reason backpressure; dispatch picks the highest
// priority eligible job (FIFO within a priority) whose tenant is under its
// running-concurrency limit. Each job runs pinned to the snapshot it was
// submitted against, so epoch transitions never affect in-flight work.
//
// The scheduler occupies its ThreadPool for its whole lifetime (one long-lived
// worker loop per slot), so the pool must be dedicated to it. Engines inside
// jobs run with their default single host thread — all cross-job parallelism
// is the scheduler's, which keeps per-job results bit-deterministic.

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cyclops/common/sync.hpp"
#include "cyclops/common/thread_pool.hpp"
#include "cyclops/metrics/job_stats.hpp"
#include "cyclops/service/job.hpp"
#include "cyclops/service/snapshot.hpp"
#include "cyclops/verify/race.hpp"

namespace cyclops::service {

struct SchedulerConfig {
  std::size_t workers = 2;            ///< concurrent job slots
  std::size_t max_queue = 64;         ///< bounded admission queue (queued jobs)
  std::size_t per_tenant_running = 2; ///< max concurrently *running* jobs per tenant
  /// Realize the run's modeled wire+barrier time as wall-clock sleep, scaled
  /// by this factor (0 = off). In serve/bench mode this is what makes
  /// cross-tenant overlap physical: wire-wait from different jobs overlaps,
  /// exactly as it would on a real cluster.
  double realize_modeled_factor = 0;
  /// Start with dispatch paused (admission still open); resume() releases.
  /// Tests use this to fill the queue deterministically.
  bool start_paused = false;
};

struct Submission {
  bool accepted = false;
  std::uint64_t id = 0;
  std::string reason;  ///< set when rejected
};

struct SchedulerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t completed = 0;  ///< ran to completion, including failed
  std::uint64_t failed = 0;
};

class JobScheduler {
 public:
  JobScheduler(ThreadPool& pool, SchedulerConfig cfg);
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;
  ~JobScheduler();

  /// Admits a job against a pinned snapshot. Rejects (with reason) when the
  /// queue is full, the spec fails validation, or the scheduler is draining.
  Submission submit(JobSpec spec, SnapshotRef snap);

  /// Cancels a *queued* job. Running jobs cannot be preempted (the engines
  /// have no preemption point); returns false for running/finished ids.
  bool cancel(std::uint64_t id);

  /// Releases dispatch after construction with start_paused.
  void resume();

  /// Blocks until the job reaches a terminal state.
  void wait(std::uint64_t id);
  /// Blocks until no job is queued or running.
  void wait_all();
  /// Stops admission, drains the queue, joins the workers. Idempotent.
  void shutdown();

  [[nodiscard]] metrics::JobStats stats_for(std::uint64_t id) const;
  /// All jobs ever admitted, in submission order.
  [[nodiscard]] std::vector<metrics::JobStats> all_stats() const;
  /// Null until the job completes successfully.
  [[nodiscard]] std::shared_ptr<const JobResult> result_for(std::uint64_t id) const;
  [[nodiscard]] SchedulerCounters counters() const;
  [[nodiscard]] std::size_t worker_slots() const noexcept { return slots_; }

  /// Happens-before detector over job records (kJob cells): submit / claim /
  /// complete stamp writes, stats and result queries stamp reads, all ordered
  /// by mutex_'s lock clock. A no-op object unless -DCYCLOPS_VERIFY and
  /// verify::race::enable(true).
  [[nodiscard]] verify::race::Detector& racer() const noexcept { return racer_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    SnapshotRef snap;
    JobState state = JobState::kQueued;
    metrics::JobStats stats;
    std::shared_ptr<const JobResult> result;
    std::chrono::steady_clock::time_point submitted;
  };
  using JobPtr = std::shared_ptr<Job>;

  void worker_loop();
  /// Index into queue_ of the next dispatchable job, or npos.
  [[nodiscard]] std::size_t pick_locked() const;
  /// Stamps the job's kJob race cell (caller holds mutex_, whose lock clock
  /// provides the ordering being checked).
  void stamp_job_locked(std::uint64_t id, bool is_write, verify::SourceLoc loc) const {
    racer_.on_access(verify::race::CellClass::kJob, /*worker=*/0, id,
                     static_cast<VertexId>(id), is_write, loc, verify::Phase::kIdle,
                     /*step=*/0, /*executing=*/0);
  }
  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  [[nodiscard]] static bool terminal(JobState s) noexcept {
    return s == JobState::kDone || s == JobState::kCancelled || s == JobState::kFailed;
  }

  ThreadPool& pool_;
  SchedulerConfig cfg_;
  std::size_t slots_ = 1;
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mutex_;
  CondVar cv_work_;
  CondVar cv_done_;
  std::deque<JobPtr> queue_;
  std::unordered_map<std::uint64_t, JobPtr> jobs_;
  std::vector<JobPtr> order_;
  std::unordered_map<std::string, std::size_t> tenant_running_;
  std::size_t running_ = 0;
  std::uint64_t next_id_ = 1;
  SchedulerCounters counters_;
  bool paused_ = false;
  bool draining_ = false;
  mutable verify::race::Detector racer_;

  Thread dispatcher_;
};

}  // namespace cyclops::service
