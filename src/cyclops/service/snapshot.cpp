#include "cyclops/service/snapshot.hpp"

#include <span>
#include <utility>

#include "cyclops/common/check.hpp"
#include "cyclops/common/crc32.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/ldg.hpp"
#include "cyclops/partition/multilevel.hpp"

namespace cyclops::service {

namespace {

partition::EdgeCutPartition make_edge_cut(const graph::GraphStore& g,
                                          const SnapshotConfig& cfg, WorkerId parts) {
  if (cfg.partitioner == "ldg") return partition::LdgPartitioner{}.partition(g, parts);
  if (cfg.partitioner == "multilevel") {
    partition::MultilevelConfig mc;
    mc.seed = cfg.partition_seed;
    return partition::MultilevelPartitioner{mc}.partition(g, parts);
  }
  CYCLOPS_CHECK(cfg.partitioner == "hash");
  return partition::HashPartitioner{}.partition(g, parts);
}

std::uint32_t edge_crc(const graph::EdgeList& edges) {
  const auto& list = edges.edges();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(list.data());
  return crc32(std::span<const std::uint8_t>(bytes, list.size() * sizeof(graph::Edge)));
}

}  // namespace

Snapshot::Snapshot(Epoch epoch, graph::EdgeList edges, const SnapshotConfig& cfg)
    : epoch_(epoch), cfg_(cfg), edges_(std::move(edges)) {
  Timer timer;
  store_ = graph::make_store(edges_, cfg_.store_options());
  edge_cut_ = make_edge_cut(*store_, cfg_, cfg_.edge_cut_parts());
  mt_edge_cut_ = make_edge_cut(*store_, cfg_, cfg_.machines);
  vertex_cut_ = partition::RandomVertexCut{}.partition(*store_, cfg_.machines);
  build_s_ = timer.elapsed_s();
  checksum_ = edge_crc(edges_);
  verify::EpochRegistry::instance().publish(epoch_);
}

Snapshot::~Snapshot() {
  verify::EpochRegistry::instance().retire(epoch_, CYCLOPS_VLOC);
}

SnapshotStore::SnapshotStore(graph::EdgeList base, SnapshotConfig cfg)
    : cfg_(std::move(cfg)),
      retired_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  current_ = publish(0, std::move(base));
}

SnapshotRef SnapshotStore::current() const {
  LockGuard<Mutex> lock(mutex_);
  return current_;
}

Epoch SnapshotStore::current_epoch() const {
  LockGuard<Mutex> lock(mutex_);
  return current_->epoch();
}

Epoch SnapshotStore::apply(const core::TopologyDelta& delta) {
  // Build outside the lock: applied() never touches the live epoch's storage,
  // and concurrent pinners must not wait on re-partitioning. apply() itself is
  // serialized by the service (one mutation stream), so read-then-publish is
  // race-free for the single writer.
  SnapshotRef base;
  {
    LockGuard<Mutex> lock(mutex_);
    base = current_;
  }
  graph::EdgeList next = delta.applied(base->edges());
  SnapshotRef snap = publish(base->epoch() + 1, std::move(next));
  LockGuard<Mutex> lock(mutex_);
  current_ = std::move(snap);
  return current_->epoch();
}

std::uint64_t SnapshotStore::live_snapshots() const {
  LockGuard<Mutex> lock(mutex_);
  return stats_.epochs_published - retired_->load(std::memory_order_relaxed);
}

SnapshotStoreStats SnapshotStore::stats() const {
  LockGuard<Mutex> lock(mutex_);
  SnapshotStoreStats s = stats_;
  s.epochs_retired = retired_->load(std::memory_order_relaxed);
  return s;
}

SnapshotRef SnapshotStore::publish(Epoch epoch, graph::EdgeList edges) {
  auto retired = retired_;
  SnapshotRef snap(new Snapshot(epoch, std::move(edges), cfg_),
                   [retired](const Snapshot* s) {
                     retired->fetch_add(1, std::memory_order_relaxed);
                     delete s;
                   });
  LockGuard<Mutex> lock(mutex_);
  ++stats_.epochs_published;
  stats_.last_build_s = snap->build_s();
  stats_.total_build_s += snap->build_s();
  return snap;
}

}  // namespace cyclops::service
