#include "cyclops/service/snapshot.hpp"

#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "cyclops/common/check.hpp"
#include "cyclops/common/crc32.hpp"
#include "cyclops/common/rng.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/ldg.hpp"
#include "cyclops/partition/multilevel.hpp"

namespace cyclops::service {

namespace {

partition::EdgeCutPartition make_edge_cut(const graph::GraphStore& g,
                                          const SnapshotConfig& cfg, WorkerId parts) {
  if (cfg.partitioner == "ldg") return partition::LdgPartitioner{}.partition(g, parts);
  if (cfg.partitioner == "multilevel") {
    partition::MultilevelConfig mc;
    mc.seed = cfg.partition_seed;
    return partition::MultilevelPartitioner{mc}.partition(g, parts);
  }
  CYCLOPS_CHECK(cfg.partitioner == "hash");
  return partition::HashPartitioner{}.partition(g, parts);
}

/// Overlay epochs carry the base epoch's owner vector forward and assign new
/// vertices by the hash rule. Ownership stability across epochs is what lets
/// incremental re-convergence carry engine state by global id without a
/// relocation shuffle (and for the default hash partitioner it is exactly
/// what a from-scratch partition of the mutated graph would produce).
partition::EdgeCutPartition extend_cut(const partition::EdgeCutPartition& prior, VertexId n) {
  std::vector<WorkerId> owner = prior.owners();
  const WorkerId parts = prior.num_parts();
  owner.reserve(n);
  for (VertexId v = prior.num_vertices(); v < n; ++v) {
    owner.push_back(static_cast<WorkerId>(mix64(v) % parts));
  }
  return partition::EdgeCutPartition(std::move(owner), parts);
}

std::uint32_t edge_crc(const graph::EdgeList& edges) {
  const auto& list = edges.edges();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(list.data());
  return crc32(std::span<const std::uint8_t>(bytes, list.size() * sizeof(graph::Edge)));
}

/// Overlay immutability witness: base checksum chained with the canonical
/// delta bytes — unique per epoch without materializing the edge list.
std::uint32_t chained_crc(std::uint32_t base_crc, const core::TopologyDelta::Canonical& c) {
  std::vector<std::uint8_t> buf(sizeof(base_crc) +
                                (c.adds.size() + c.removes.size()) * sizeof(graph::Edge));
  std::uint8_t* p = buf.data();
  std::memcpy(p, &base_crc, sizeof(base_crc));
  p += sizeof(base_crc);
  std::memcpy(p, c.adds.data(), c.adds.size() * sizeof(graph::Edge));
  p += c.adds.size() * sizeof(graph::Edge);
  std::memcpy(p, c.removes.data(), c.removes.size() * sizeof(graph::Edge));
  return crc32(std::span<const std::uint8_t>(buf.data(), buf.size()));
}

}  // namespace

Snapshot::Snapshot(Epoch epoch, graph::EdgeList edges, const SnapshotConfig& cfg)
    : epoch_(epoch), cfg_(cfg), edges_(std::move(edges)) {
  Timer timer;
  store_ = graph::make_store(edges_, cfg_.store_options());
  edge_cut_ = make_edge_cut(*store_, cfg_, cfg_.edge_cut_parts());
  mt_edge_cut_ = make_edge_cut(*store_, cfg_, cfg_.machines);
  vertex_cut_ = partition::RandomVertexCut{}.partition(*store_, cfg_.machines);
  build_s_ = timer.elapsed_s();
  checksum_ = edge_crc(edges_);
  verify::EpochRegistry::instance().publish(epoch_);
}

Snapshot::Snapshot(Epoch epoch, SnapshotRef base, const core::TopologyDelta::Canonical& delta,
                   const SnapshotConfig& cfg)
    : epoch_(epoch), cfg_(cfg), base_(std::move(base)) {
  CYCLOPS_CHECK(base_ != nullptr);
  Timer timer;
  store_ = std::make_unique<const graph::DeltaOverlay>(base_->store(), delta.adds,
                                                       delta.removes);
  const VertexId n = store_->num_vertices();
  edge_cut_ = extend_cut(base_->edge_cut(), n);
  mt_edge_cut_ = extend_cut(base_->mt_edge_cut(), n);
  // vertex_cut_ and edges_ stay empty: lazily materialized on first use so
  // publication cost is O(touched adjacency), not O(|E|).
  build_s_ = timer.elapsed_s();
  checksum_ = chained_crc(base_->edge_checksum(), delta);
  verify::EpochRegistry::instance().publish(epoch_);
}

Snapshot::~Snapshot() {
  verify::EpochRegistry::instance().retire(epoch_, CYCLOPS_VLOC);
}

const graph::EdgeList& Snapshot::edges() const {
  verify::EpochRegistry::instance().on_read(epoch_, CYCLOPS_VLOC);
  if (!base_) return edges_;
  LockGuard<Mutex> lock(lazy_mutex_);
  if (!lazy_edges_) {
    const auto* ov = dynamic_cast<const graph::DeltaOverlay*>(store_.get());
    CYCLOPS_CHECK(ov != nullptr);
    lazy_edges_ = std::make_unique<const graph::EdgeList>(ov->materialize());
  }
  return *lazy_edges_;
}

const partition::VertexCutPartition& Snapshot::vertex_cut() const {
  verify::EpochRegistry::instance().on_read(epoch_, CYCLOPS_VLOC);
  if (!base_) return vertex_cut_;
  LockGuard<Mutex> lock(lazy_mutex_);
  if (!lazy_vertex_cut_) {
    lazy_vertex_cut_ = std::make_unique<const partition::VertexCutPartition>(
        partition::RandomVertexCut{}.partition(*store_, cfg_.machines));
  }
  return *lazy_vertex_cut_;
}

const graph::DeltaOverlay* Snapshot::overlay() const noexcept {
  return dynamic_cast<const graph::DeltaOverlay*>(store_.get());
}

SnapshotStore::SnapshotStore(graph::EdgeList base, SnapshotConfig cfg)
    : cfg_(std::move(cfg)),
      retired_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  current_ = publish(0, std::move(base));
}

SnapshotRef SnapshotStore::current() const {
  LockGuard<Mutex> lock(mutex_);
  return current_;
}

Epoch SnapshotStore::current_epoch() const {
  LockGuard<Mutex> lock(mutex_);
  return current_->epoch();
}

Epoch SnapshotStore::apply(const core::TopologyDelta& delta) {
  // Build outside the lock: neither path touches the live epoch's storage
  // mutably, and concurrent pinners must not wait on the build. apply()
  // itself is serialized by the service (one mutation stream), so
  // read-then-publish is race-free for the single writer.
  SnapshotRef base;
  {
    LockGuard<Mutex> lock(mutex_);
    base = current_;
  }
  SnapshotRef snap;
  bool compacted = false;
  if (cfg_.overlay_publish) {
    const core::TopologyDelta::Canonical canon = delta.canonical();
    if (should_compact(*base, canon)) {
      graph::EdgeList next = delta.applied(base->edges());
      snap = publish(base->epoch() + 1, std::move(next));
      compacted = true;
    } else {
      snap = publish_overlay(base->epoch() + 1, base, canon);
    }
  } else {
    graph::EdgeList next = delta.applied(base->edges());
    snap = publish(base->epoch() + 1, std::move(next));
  }
  LockGuard<Mutex> lock(mutex_);
  if (compacted) ++stats_.compactions;
  current_ = std::move(snap);
  return current_->epoch();
}

bool SnapshotStore::should_compact(const Snapshot& base,
                                   const core::TopologyDelta::Canonical& delta) const {
  const graph::DeltaOverlay* ov = base.overlay();
  if (!ov) return false;  // first patch over a flat base is always worth sharing
  if (ov->depth() + 1 > cfg_.max_overlay_depth) return true;
  // Patch entries accumulated down the chain plus (an estimate of) the new
  // delta's, against the flat edge count the chain resolves to.
  std::size_t entries = 2 * (delta.adds.size() + delta.removes.size());
  const graph::GraphStore* s = ov;
  while (const auto* layer = dynamic_cast<const graph::DeltaOverlay*>(s)) {
    entries += layer->overlay_entries();
    s = &layer->base();
  }
  return static_cast<double>(entries) >
         cfg_.compact_overlay_fraction * static_cast<double>(base.store().num_edges());
}

std::uint64_t SnapshotStore::live_snapshots() const {
  LockGuard<Mutex> lock(mutex_);
  return stats_.epochs_published - retired_->load(std::memory_order_relaxed);
}

SnapshotStoreStats SnapshotStore::stats() const {
  LockGuard<Mutex> lock(mutex_);
  SnapshotStoreStats s = stats_;
  s.epochs_retired = retired_->load(std::memory_order_relaxed);
  return s;
}

SnapshotRef SnapshotStore::publish(Epoch epoch, graph::EdgeList edges) {
  return wrap(new Snapshot(epoch, std::move(edges), cfg_));
}

SnapshotRef SnapshotStore::publish_overlay(Epoch epoch, SnapshotRef base,
                                           const core::TopologyDelta::Canonical& delta) {
  SnapshotRef snap = wrap(new Snapshot(epoch, std::move(base), delta, cfg_));
  LockGuard<Mutex> lock(mutex_);
  ++stats_.overlay_epochs;
  return snap;
}

SnapshotRef SnapshotStore::wrap(Snapshot* snap) {
  auto retired = retired_;
  SnapshotRef ref(snap, [retired](const Snapshot* s) {
    retired->fetch_add(1, std::memory_order_relaxed);
    delete s;
  });
  LockGuard<Mutex> lock(mutex_);
  ++stats_.epochs_published;
  stats_.last_build_s = ref->build_s();
  stats_.total_build_s += ref->build_s();
  return ref;
}

}  // namespace cyclops::service
