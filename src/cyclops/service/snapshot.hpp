#pragma once
// Epoch-versioned immutable graph snapshots — the serving-layer realization
// of the paper's distributed immutable view. A Snapshot owns everything a job
// needs to run against one version of the graph: the edge list, the finalized
// graph store, and one pre-built partition per engine family. Snapshots are only ever
// handed out as shared_ptr<const Snapshot>, so in-flight jobs pin their epoch
// for as long as they run while new submissions land on the newest one;
// retirement is the refcount hitting zero (tracked by the store for stats).
//
// Two publication paths exist:
//   - full: copy + re-store + re-partition (the original path; every epoch
//     is self-contained).
//   - overlay (cfg.overlay_publish, the ingest path): a mutation epoch pins
//     its base epoch and layers a graph::DeltaOverlay patch over the base's
//     store — O(touched adjacency) new allocation instead of O(|E|) — and
//     carries the base's edge-cut owner vectors forward (new vertices get
//     the hash rule), which keeps vertex ownership stable across epochs so
//     incremental re-convergence can carry engine state by global id. The
//     edge list and GAS vertex cut are materialized lazily on first use;
//     once the overlay chain exceeds cfg.compact_overlay_fraction of the
//     flat edge count or cfg.max_overlay_depth layers, apply() compacts
//     back to a full snapshot and the chain can retire.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "cyclops/common/sync.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/graph/delta_overlay.hpp"
#include "cyclops/graph/edge_list.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/partition/partition.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "cyclops/verify/verify.hpp"

namespace cyclops::service {

using Epoch = std::uint64_t;

/// Shape of the simulated cluster every snapshot pre-partitions for.
struct SnapshotConfig {
  MachineId machines = 4;
  WorkerId workers_per_machine = 2;  ///< Hama/Cyclops partitions per machine
  std::string partitioner = "hash";  ///< hash | ldg | multilevel (edge cuts)
  std::uint64_t partition_seed = 42;

  /// Graph store backend every epoch materializes (memory | compact | stream)
  /// and the streaming backend's memory cap. Values are bit-identical across
  /// backends; only the residency/cost profile changes.
  graph::StoreKind store = graph::StoreKind::kMemory;
  std::uint64_t mem_cap_mb = 64;
  std::string spill_dir;  ///< stream backend scratch dir; empty = /tmp

  /// Structural-sharing publication for mutation epochs (the ingest path).
  bool overlay_publish = false;
  /// Compact back to a flat store once the overlay chain's patch entries
  /// exceed this fraction of the flat edge count...
  double compact_overlay_fraction = 0.25;
  /// ...or the chain grows this deep (lookup cost is linear in depth).
  std::uint32_t max_overlay_depth = 8;

  [[nodiscard]] WorkerId edge_cut_parts() const noexcept {
    return machines * workers_per_machine;
  }
  [[nodiscard]] graph::StoreOptions store_options() const {
    graph::StoreOptions o;
    o.kind = store;
    o.mem_cap_bytes = mem_cap_mb << 20;
    o.spill_dir = spill_dir;
    return o;
  }
};

class Snapshot;
/// Pinned handle: holding one keeps the epoch's storage alive.
using SnapshotRef = std::shared_ptr<const Snapshot>;

class Snapshot {
 public:
  /// Full (self-contained) epoch: store + partitions built from scratch.
  Snapshot(Epoch epoch, graph::EdgeList edges, const SnapshotConfig& cfg);
  /// Overlay epoch: pins `base` and patches its store with the canonical
  /// delta; partitions are carried forward (see file header).
  Snapshot(Epoch epoch, SnapshotRef base, const core::TopologyDelta::Canonical& delta,
           const SnapshotConfig& cfg);
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  // Every accessor that hands out epoch storage reports the read to the
  // verify-layer epoch registry (no-op unless -DCYCLOPS_VERIFY): a caller
  // still holding references past its SnapshotRef is a use-after-retire.
  [[nodiscard]] Epoch epoch() const noexcept { return epoch_; }
  /// The epoch's edge list. Overlay epochs materialize it lazily (first call
  /// pays O(|E|)); the publication fast path never touches it.
  [[nodiscard]] const graph::EdgeList& edges() const;
  [[nodiscard]] const graph::GraphStore& store() const noexcept {
    verify::EpochRegistry::instance().on_read(epoch_, CYCLOPS_VLOC);
    return *store_;
  }
  /// Edge cut with machines * workers_per_machine parts (Hama, plain Cyclops).
  [[nodiscard]] const partition::EdgeCutPartition& edge_cut() const noexcept {
    verify::EpochRegistry::instance().on_read(epoch_, CYCLOPS_VLOC);
    return edge_cut_;
  }
  /// Edge cut with one part per machine (CyclopsMT).
  [[nodiscard]] const partition::EdgeCutPartition& mt_edge_cut() const noexcept {
    verify::EpochRegistry::instance().on_read(epoch_, CYCLOPS_VLOC);
    return mt_edge_cut_;
  }
  /// Vertex cut with one part per machine (PowerGraph/GAS). Overlay epochs
  /// build it lazily on the first GAS submission.
  [[nodiscard]] const partition::VertexCutPartition& vertex_cut() const;
  [[nodiscard]] const SnapshotConfig& config() const noexcept { return cfg_; }
  /// Re-partition + layout time of this epoch (snapshot-transition overhead).
  [[nodiscard]] double build_s() const noexcept { return build_s_; }
  /// Immutability witness: CRC-32 over the raw edge array for full epochs;
  /// overlay epochs chain the base's checksum with the canonical delta bytes
  /// (still unique per epoch, still stable for the epoch's lifetime).
  [[nodiscard]] std::uint32_t edge_checksum() const noexcept { return checksum_; }

  /// Non-null iff this is an overlay epoch (structural sharing in effect).
  [[nodiscard]] const graph::DeltaOverlay* overlay() const noexcept;
  [[nodiscard]] bool is_overlay() const noexcept { return base_ != nullptr; }
  /// The base epoch this overlay pins; nullptr for full epochs.
  [[nodiscard]] const SnapshotRef& base() const noexcept { return base_; }

 private:
  Epoch epoch_ = 0;
  SnapshotConfig cfg_;
  SnapshotRef base_;  ///< overlay epochs keep their base chain alive
  graph::EdgeList edges_;
  std::unique_ptr<const graph::GraphStore> store_;
  partition::EdgeCutPartition edge_cut_;
  partition::EdgeCutPartition mt_edge_cut_;
  partition::VertexCutPartition vertex_cut_;
  double build_s_ = 0;
  std::uint32_t checksum_ = 0;

  // Lazily materialized views for overlay epochs (built at most once; the
  // snapshot stays logically immutable).
  mutable Mutex lazy_mutex_;
  mutable std::unique_ptr<const graph::EdgeList> lazy_edges_;
  mutable std::unique_ptr<const partition::VertexCutPartition> lazy_vertex_cut_;
};

struct SnapshotStoreStats {
  std::uint64_t epochs_published = 0;  ///< includes the base epoch 0
  std::uint64_t epochs_retired = 0;    ///< refcount hit zero
  std::uint64_t overlay_epochs = 0;    ///< published via structural sharing
  std::uint64_t compactions = 0;       ///< overlay chains flattened
  double total_build_s = 0;
  double last_build_s = 0;
};

/// Holds the newest snapshot and publishes new epochs by applying a batched
/// TopologyDelta — either through the const-preserving applied() copy path or
/// (cfg.overlay_publish) as a DeltaOverlay patch over the previous epoch.
/// Thread-safe: jobs pin epochs concurrently with apply().
class SnapshotStore {
 public:
  SnapshotStore(graph::EdgeList base, SnapshotConfig cfg);

  /// Pins and returns the newest snapshot.
  [[nodiscard]] SnapshotRef current() const;
  [[nodiscard]] Epoch current_epoch() const;

  /// Publishes a new epoch from the newest snapshot plus `delta`; returns the
  /// new epoch. The previous snapshot stays alive while any job pins it.
  Epoch apply(const core::TopologyDelta& delta);

  /// Snapshots whose storage is still alive (published - retired).
  [[nodiscard]] std::uint64_t live_snapshots() const;
  [[nodiscard]] SnapshotStoreStats stats() const;

 private:
  SnapshotRef publish(Epoch epoch, graph::EdgeList edges);
  SnapshotRef publish_overlay(Epoch epoch, SnapshotRef base,
                              const core::TopologyDelta::Canonical& delta);
  SnapshotRef wrap(Snapshot* snap);
  [[nodiscard]] bool should_compact(const Snapshot& base,
                                    const core::TopologyDelta::Canonical& delta) const;

  mutable Mutex mutex_;
  SnapshotConfig cfg_;
  SnapshotRef current_;
  SnapshotStoreStats stats_;
  /// Shared with every snapshot's deleter so retirement outlives the store.
  std::shared_ptr<std::atomic<std::uint64_t>> retired_;
};

}  // namespace cyclops::service
