#include "cyclops/service/service.hpp"

#include <cstdio>

namespace cyclops::service {

std::string Service::summary() const {
  const SchedulerCounters c = scheduler_.counters();
  const SnapshotStoreStats s = store_.stats();
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "service: %llu accepted / %llu rejected / %llu cancelled, %llu completed "
      "(%llu failed); %llu epochs published, %llu retired, %llu live "
      "(last build %.3fs, total %.3fs)",
      static_cast<unsigned long long>(c.accepted),
      static_cast<unsigned long long>(c.rejected),
      static_cast<unsigned long long>(c.cancelled),
      static_cast<unsigned long long>(c.completed),
      static_cast<unsigned long long>(c.failed),
      static_cast<unsigned long long>(s.epochs_published),
      static_cast<unsigned long long>(s.epochs_retired),
      static_cast<unsigned long long>(s.epochs_published - s.epochs_retired),
      s.last_build_s, s.total_build_s);
  return buf;
}

}  // namespace cyclops::service
