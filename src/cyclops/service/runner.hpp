#pragma once
// Dispatch of one JobSpec onto one pinned Snapshot: validates the
// (algorithm, engine) combination, instantiates the engine against the
// snapshot's pre-built partition, runs it, and serializes the result values.
// Every engine runs with its default single host thread, so concurrency
// lives entirely in the scheduler and results stay bit-deterministic.

#include <memory>
#include <string>
#include <vector>

#include "cyclops/algorithms/als.hpp"
#include "cyclops/algorithms/cc.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/crc32.hpp"
#include "cyclops/common/serialize.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/service/job.hpp"
#include "cyclops/service/snapshot.hpp"

namespace cyclops::service {

/// Empty string when the spec can run on the snapshot; otherwise the reason
/// the admission layer rejects it.
[[nodiscard]] inline std::string validate(const JobSpec& spec, const Snapshot& snap) {
  if (spec.engine == EngineSel::kGas && spec.algo != Algo::kPageRank &&
      spec.algo != Algo::kSssp) {
    return std::string("gas engine supports pr and sssp only, not ") +
           algo_name(spec.algo);
  }
  if (spec.algo == Algo::kAls) {
    if (spec.engine == EngineSel::kGas) {
      return "gas engine supports pr and sssp only, not als";
    }
    if (spec.num_users == 0 || spec.num_users >= snap.store().num_vertices()) {
      return "als requires 0 < num_users < num_vertices";
    }
  }
  if (spec.algo == Algo::kSssp && spec.source >= snap.store().num_vertices()) {
    return "sssp source out of range";
  }
  return {};
}

namespace detail {

template <typename Value>
JobResult pack_result(std::vector<Value> values, metrics::RunStats stats) {
  JobResult r;
  ByteWriter out;
  out.write_vector(values);
  r.payload = out.take();
  r.crc = crc32(r.payload);
  r.run = std::move(stats);
  return r;
}

template <typename Prog>
JobResult run_bsp(const Snapshot& snap, const JobSpec& spec, Prog prog) {
  bsp::Config cfg;
  cfg.topo = sim::Topology{snap.config().machines, snap.config().workers_per_machine};
  cfg.max_supersteps = spec.max_supersteps;
  bsp::Engine<Prog> engine(snap.store(), snap.edge_cut(), prog, cfg);
  auto stats = engine.run();
  const auto vals = engine.values();
  return pack_result(std::vector(vals.begin(), vals.end()), std::move(stats));
}

template <typename Prog>
JobResult run_cyclops(const Snapshot& snap, const JobSpec& spec, Prog prog, bool mt) {
  core::Config cfg =
      mt ? core::Config::cyclops_mt(snap.config().machines, spec.mt_threads,
                                    spec.mt_receivers)
         : core::Config::cyclops(snap.config().machines,
                                 snap.config().workers_per_machine);
  cfg.max_supersteps = spec.max_supersteps;
  const auto& part = mt ? snap.mt_edge_cut() : snap.edge_cut();
  core::Engine<Prog> engine(snap.store(), part, prog, cfg);
  auto stats = engine.run();
  return pack_result(engine.values(), std::move(stats));
}

// GAS values go through a projection to a padding-free scalar before
// serialization: PageRankGas::Value carries trailing struct padding whose
// bytes are unspecified, which would break the byte-identity contract.
template <typename Prog, typename Project>
JobResult run_gas(const Snapshot& snap, const JobSpec& spec, Prog prog, Project proj) {
  gas::Config cfg;
  cfg.topo = sim::Topology{snap.config().machines, 1};
  cfg.max_iterations = spec.max_supersteps;
  gas::Engine<Prog> engine(snap.store(), snap.vertex_cut(), prog, cfg);
  auto stats = engine.run();
  const auto vals = engine.values();
  std::vector<double> out;
  out.reserve(vals.size());
  for (const auto& v : vals) out.push_back(proj(v));
  return pack_result(std::move(out), std::move(stats));
}

}  // namespace detail

/// Runs the job; the caller must have validated the spec (CYCLOPS_CHECK
/// enforces it). The snapshot must stay pinned for the duration.
[[nodiscard]] inline JobResult run_on_snapshot(const Snapshot& snap, const JobSpec& spec) {
  CYCLOPS_CHECK(validate(spec, snap).empty());
  const bool mt = spec.engine == EngineSel::kCyclopsMT;
  switch (spec.algo) {
    case Algo::kPageRank: {
      if (spec.engine == EngineSel::kGas) {
        algo::PageRankGas prog;
        prog.num_vertices = snap.store().num_vertices();
        prog.epsilon = spec.epsilon;
        return detail::run_gas(snap, spec, prog,
                               [](const algo::PageRankGas::Value& v) { return v.rank; });
      }
      if (spec.engine == EngineSel::kHama) {
        algo::PageRankBsp prog;
        prog.epsilon = spec.epsilon;
        return detail::run_bsp(snap, spec, prog);
      }
      algo::PageRankCyclops prog;
      prog.epsilon = spec.epsilon;
      return detail::run_cyclops(snap, spec, prog, mt);
    }
    case Algo::kSssp: {
      if (spec.engine == EngineSel::kGas) {
        algo::SsspGas prog;
        prog.source = spec.source;
        return detail::run_gas(snap, spec, prog, [](double dist) { return dist; });
      }
      if (spec.engine == EngineSel::kHama) {
        algo::SsspBsp prog;
        prog.source = spec.source;
        return detail::run_bsp(snap, spec, prog);
      }
      algo::SsspCyclops prog;
      prog.source = spec.source;
      return detail::run_cyclops(snap, spec, prog, mt);
    }
    case Algo::kCc: {
      if (spec.engine == EngineSel::kHama) {
        algo::CcBsp prog;
        return detail::run_bsp(snap, spec, prog);
      }
      algo::CcCyclops prog;
      return detail::run_cyclops(snap, spec, prog, mt);
    }
    case Algo::kAls: {
      if (spec.engine == EngineSel::kHama) {
        algo::AlsBsp prog;
        prog.num_users = spec.num_users;
        prog.rounds = spec.rounds;
        return detail::run_bsp(snap, spec, prog);
      }
      algo::AlsCyclops prog;
      prog.num_users = spec.num_users;
      prog.rounds = spec.rounds;
      return detail::run_cyclops(snap, spec, prog, mt);
    }
  }
  CYCLOPS_CHECK(false);
  return {};
}

}  // namespace cyclops::service
