#include "cyclops/service/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "cyclops/common/check.hpp"
#include "cyclops/service/runner.hpp"

namespace cyclops::service {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}

JobScheduler::JobScheduler(ThreadPool& pool, SchedulerConfig cfg)
    : pool_(pool),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      paused_(cfg.start_paused) {
  // A 1-thread ThreadPool has no worker threads (it runs inline), so the
  // usable slot count is capped by the pool's real threads, floor 1 — the
  // inline slot then lives on the dispatcher thread.
  const std::size_t pool_threads = std::max<std::size_t>(1, pool_.size());
  slots_ = std::clamp<std::size_t>(cfg_.workers, 1, pool_threads);
  dispatcher_ = Thread([this] {
    pool_.parallel_tasks(slots_, [this](std::size_t) { worker_loop(); });
  });
}

JobScheduler::~JobScheduler() { shutdown(); }

Submission JobScheduler::submit(JobSpec spec, SnapshotRef snap) {
  CYCLOPS_CHECK(snap != nullptr);
  Submission out;
  const std::string invalid = validate(spec, *snap);
  LockGuard<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  if (draining_) {
    out.reason = "scheduler shutting down";
    ++counters_.rejected;
    return out;
  }
  if (!invalid.empty()) {
    out.reason = invalid;
    ++counters_.rejected;
    return out;
  }
  if (queue_.size() >= cfg_.max_queue) {
    out.reason = "queue full (" + std::to_string(queue_.size()) + " jobs queued, max " +
                 std::to_string(cfg_.max_queue) + ")";
    ++counters_.rejected;
    return out;
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->spec = std::move(spec);
  job->snap = std::move(snap);
  job->submitted = std::chrono::steady_clock::now();
  job->stats.job_id = job->id;
  job->stats.tenant = job->spec.tenant;
  job->stats.algo = algo_name(job->spec.algo);
  job->stats.engine = engine_name(job->spec.engine);
  job->stats.epoch = job->snap->epoch();
  job->stats.priority = job->spec.priority;
  stamp_job_locked(job->id, /*is_write=*/true, CYCLOPS_VLOC);
  queue_.push_back(job);
  jobs_.emplace(job->id, job);
  order_.push_back(job);
  ++counters_.accepted;
  out.accepted = true;
  out.id = job->id;
  cv_work_.notify_one();
  return out;
}

std::size_t JobScheduler::pick_locked() const {
  std::size_t best = kNpos;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const JobPtr& job = queue_[i];
    const auto it = tenant_running_.find(job->spec.tenant);
    if (it != tenant_running_.end() && it->second >= cfg_.per_tenant_running) continue;
    if (best == kNpos || job->spec.priority > queue_[best]->spec.priority) best = i;
    // FIFO within a priority: queue_ is in submission order, so the first
    // strictly-greater hit wins and later equal priorities never replace it.
  }
  return best;
}

void JobScheduler::worker_loop() {
  UniqueLock<Mutex> lock(mutex_);
  // Every real acquire/release of mutex_ inside this loop carries a matching
  // lock-clock annotation — including the ones hidden inside the condvar
  // waits — so the kJob cell stamps below are ordered exactly when the lock
  // orders them and never otherwise.
  verify::race::lock_acquired(&mutex_);
  for (;;) {
    verify::race::annotated_wait(cv_work_, lock, &mutex_, [&] {
      if (draining_ && queue_.empty()) return true;
      return !paused_ && pick_locked() != kNpos;
    });
    if (queue_.empty()) {
      if (draining_) {
        verify::race::lock_released(&mutex_);
        return;
      }
      continue;  // woken for a job another worker already claimed
    }
    const std::size_t idx = pick_locked();
    if (idx == kNpos) continue;
    JobPtr job = queue_[idx];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
    stamp_job_locked(job->id, /*is_write=*/true, CYCLOPS_VLOC);
    job->state = JobState::kRunning;
    job->stats.queue_wait_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - job->submitted)
                                  .count();
    job->stats.started_s = now_s();
    ++tenant_running_[job->spec.tenant];
    ++running_;
    verify::race::lock_released(&mutex_);
    lock.unlock();

    std::shared_ptr<JobResult> result;
    std::string error;
    const auto run_start = std::chrono::steady_clock::now();
    try {
      result = std::make_shared<JobResult>(run_on_snapshot(*job->snap, job->spec));
    } catch (const std::exception& e) {
      error = e.what();
    }
    const double modeled = result ? result->run.modeled_comm_total_s() : 0.0;
    if (cfg_.realize_modeled_factor > 0 && modeled > 0) {
      // The honest part of serving throughput: modeled wire/barrier time is
      // wall time on a real cluster, and it overlaps across concurrent jobs.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(modeled * cfg_.realize_modeled_factor));
    }
    const double run_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
            .count();

    lock.lock();
    verify::race::lock_acquired(&mutex_);
    stamp_job_locked(job->id, /*is_write=*/true, CYCLOPS_VLOC);
    job->stats.run_s = run_s;
    job->stats.finished_s = now_s();
    job->stats.modeled_comm_s = modeled;
    if (result) {
      job->stats.supersteps = result->run.supersteps.size();
      job->result = std::move(result);
      job->state = JobState::kDone;
      job->stats.outcome = "ok";
    } else {
      job->state = JobState::kFailed;
      job->stats.outcome = "failed: " + error;
      ++counters_.failed;
    }
    job->snap.reset();  // release the epoch pin as soon as the job is off it
    ++counters_.completed;
    auto it = tenant_running_.find(job->spec.tenant);
    if (--it->second == 0) tenant_running_.erase(it);
    --running_;
    cv_done_.notify_all();
    cv_work_.notify_all();  // a tenant slot freed; re-evaluate the queue
  }
}

bool JobScheduler::cancel(std::uint64_t id) {
  LockGuard<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->state != JobState::kQueued) return false;
  JobPtr job = it->second;
  stamp_job_locked(job->id, /*is_write=*/true, CYCLOPS_VLOC);
  queue_.erase(std::find(queue_.begin(), queue_.end(), job));
  job->state = JobState::kCancelled;
  job->stats.outcome = "cancelled";
  job->stats.queue_wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - job->submitted)
          .count();
  job->stats.finished_s = now_s();
  job->snap.reset();
  ++counters_.cancelled;
  cv_done_.notify_all();
  return true;
}

void JobScheduler::resume() {
  LockGuard<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  paused_ = false;
  cv_work_.notify_all();
}

void JobScheduler::wait(std::uint64_t id) {
  UniqueLock<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  const auto it = jobs_.find(id);
  CYCLOPS_CHECK(it != jobs_.end());
  JobPtr job = it->second;
  verify::race::annotated_wait(cv_done_, lock, &mutex_, [&] { return terminal(job->state); });
  stamp_job_locked(job->id, /*is_write=*/false, CYCLOPS_VLOC);
}

void JobScheduler::wait_all() {
  UniqueLock<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  verify::race::annotated_wait(cv_done_, lock, &mutex_, [&] {
    return running_ == 0 && (paused_ || queue_.empty());
  });
}

void JobScheduler::shutdown() {
  {
    LockGuard<Mutex> lock(mutex_);
    verify::race::MutexObserver mo(&mutex_);
    draining_ = true;
    paused_ = false;  // a paused scheduler must still drain
    cv_work_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  cv_done_.notify_all();
}

metrics::JobStats JobScheduler::stats_for(std::uint64_t id) const {
  LockGuard<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  const auto it = jobs_.find(id);
  CYCLOPS_CHECK(it != jobs_.end());
  stamp_job_locked(id, /*is_write=*/false, CYCLOPS_VLOC);
  return it->second->stats;
}

std::vector<metrics::JobStats> JobScheduler::all_stats() const {
  LockGuard<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  std::vector<metrics::JobStats> out;
  out.reserve(order_.size());
  for (const JobPtr& job : order_) {
    stamp_job_locked(job->id, /*is_write=*/false, CYCLOPS_VLOC);
    out.push_back(job->stats);
  }
  return out;
}

std::shared_ptr<const JobResult> JobScheduler::result_for(std::uint64_t id) const {
  LockGuard<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return nullptr;
  stamp_job_locked(id, /*is_write=*/false, CYCLOPS_VLOC);
  return it->second->result;
}

SchedulerCounters JobScheduler::counters() const {
  LockGuard<Mutex> lock(mutex_);
  verify::race::MutexObserver mo(&mutex_);
  return counters_;
}

}  // namespace cyclops::service
