#pragma once
// Job vocabulary for the multi-tenant service: what a tenant submits (JobSpec),
// what comes back (JobResult), and the lifecycle states the scheduler tracks.

#include <cstdint>
#include <string>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/metrics/superstep_stats.hpp"

namespace cyclops::service {

enum class Algo { kPageRank, kSssp, kCc, kAls };
enum class EngineSel { kHama, kCyclops, kCyclopsMT, kGas };

[[nodiscard]] inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kPageRank: return "pr";
    case Algo::kSssp: return "sssp";
    case Algo::kCc: return "cc";
    case Algo::kAls: return "als";
  }
  return "?";
}

[[nodiscard]] inline const char* engine_name(EngineSel e) {
  switch (e) {
    case EngineSel::kHama: return "hama";
    case EngineSel::kCyclops: return "cyclops";
    case EngineSel::kCyclopsMT: return "mt";
    case EngineSel::kGas: return "gas";
  }
  return "?";
}

/// Returns true and sets `out` iff `name` is a known algorithm name.
[[nodiscard]] inline bool parse_algo(const std::string& name, Algo& out) {
  if (name == "pr") out = Algo::kPageRank;
  else if (name == "sssp") out = Algo::kSssp;
  else if (name == "cc") out = Algo::kCc;
  else if (name == "als") out = Algo::kAls;
  else return false;
  return true;
}

[[nodiscard]] inline bool parse_engine(const std::string& name, EngineSel& out) {
  if (name == "hama") out = EngineSel::kHama;
  else if (name == "cyclops") out = EngineSel::kCyclops;
  else if (name == "mt") out = EngineSel::kCyclopsMT;
  else if (name == "gas") out = EngineSel::kGas;
  else return false;
  return true;
}

struct JobSpec {
  std::string tenant = "default";
  int priority = 0;  ///< higher runs first; FIFO within a priority
  Algo algo = Algo::kPageRank;
  EngineSel engine = EngineSel::kCyclops;

  double epsilon = 1e-6;
  Superstep max_supersteps = 50;
  unsigned mt_threads = 4;    ///< CyclopsMT compute threads
  unsigned mt_receivers = 2;  ///< CyclopsMT receiver threads
  VertexId source = 0;        ///< SSSP
  VertexId num_users = 0;     ///< ALS bipartite split
  unsigned rounds = 4;        ///< ALS training rounds
};

/// What a finished job hands back: the result vector serialized to bytes
/// (engine Value array in global vertex order) plus its CRC — the byte-level
/// form the immutability regression tests compare across epochs.
struct JobResult {
  std::vector<std::uint8_t> payload;
  std::uint32_t crc = 0;
  metrics::RunStats run;
};

enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };

[[nodiscard]] inline const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

}  // namespace cyclops::service
