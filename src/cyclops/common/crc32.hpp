#pragma once
// CRC-32 (IEEE 802.3 polynomial, reflected) used for end-to-end integrity of
// simulated wire packages and checkpoint frames. Table-driven, no
// dependencies; the slice width is deliberately small because integrity
// checking is a cold path charged to the cost model, not a throughput path.

#include <array>
#include <cstdint>
#include <span>

namespace cyclops {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// One-shot CRC-32 of a byte span. crc32({}) == 0.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  const auto& table = detail::crc32_table();
  std::uint32_t c = 0xffffffffu;
  for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace cyclops
