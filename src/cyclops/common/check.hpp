#pragma once
// Lightweight invariant checking. CYCLOPS_CHECK is always on (cheap, used on
// cold paths); CYCLOPS_DCHECK compiles away in release builds and guards hot
// paths.

#include <cstdio>
#include <cstdlib>

namespace cyclops::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* func) {
  std::fprintf(stderr, "CYCLOPS_CHECK failed: %s\n  at %s:%d in %s\n", expr, file,
               line, func);
  // Flush every open stream before aborting: the failure message and any
  // buffered engine logs must reach disk/console even though abort() skips
  // atexit handlers and stream destructors.
  std::fflush(nullptr);
  std::abort();
}
}  // namespace cyclops::detail

#define CYCLOPS_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::cyclops::detail::check_failed(#expr, __FILE__, __LINE__, __func__);  \
  } while (0)

#ifdef NDEBUG
#define CYCLOPS_DCHECK(expr) ((void)0)
#else
#define CYCLOPS_DCHECK(expr) CYCLOPS_CHECK(expr)
#endif
