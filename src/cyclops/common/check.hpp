#pragma once
// Lightweight invariant checking. CYCLOPS_CHECK is always on (cheap, used on
// cold paths); CYCLOPS_DCHECK compiles away in release builds and guards hot
// paths.

#include <cstdio>
#include <cstdlib>

namespace cyclops::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CYCLOPS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace cyclops::detail

#define CYCLOPS_CHECK(expr)                                        \
  do {                                                             \
    if (!(expr)) ::cyclops::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define CYCLOPS_DCHECK(expr) ((void)0)
#else
#define CYCLOPS_DCHECK(expr) CYCLOPS_CHECK(expr)
#endif
