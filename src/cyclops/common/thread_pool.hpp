#pragma once
// Fixed-size thread pool with a blocking run-to-completion parallel_for.
// Engines use one pool per run; phases submit chunked index ranges. The pool
// is deliberately simple (no work stealing) so execution stays deterministic
// when chunk assignment is static.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cyclops {

class ThreadPool {
 public:
  /// Creates `threads` workers. threads == 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(chunk_begin, chunk_end) over [0, n) split into static chunks,
  /// one chunk stream per worker; blocks until every chunk is done. Runs
  /// inline when the pool has one thread (keeps single-core hosts cheap).
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// Runs fn(worker_index) once on each of `tasks` logical tasks in parallel.
  void parallel_tasks(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t tasks = 0;
  };

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  std::size_t next_task_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace cyclops
