#pragma once
// Fixed-size thread pool with a blocking run-to-completion parallel_for.
// Engines use one pool per run; phases submit chunked index ranges. The pool
// is deliberately simple (no work stealing) so execution stays deterministic
// when chunk assignment is static.
//
// Two verification seams thread through here:
//   * Every parallel section forks a verify::race::Region — one logical
//     happens-before context per task, joined back at the blocking barrier —
//     so the race analyzer sees the pool's fork/join edges regardless of
//     which host thread runs which task. Compiled out without CYCLOPS_VERIFY.
//   * A TaskOrderHook (sim::ScheduleExplorer) can take over scheduling: the
//     pool then runs each region serially in the hook's permuted order, which
//     makes any explored interleaving bit-identically replayable from the
//     hook's seed.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cyclops/verify/race.hpp"

namespace cyclops {

/// Deterministic scheduling hook: decides the execution order of one parallel
/// region's tasks and the chunking of parallel_for. Implemented by
/// sim::ScheduleExplorer; a pool with a hook installed executes regions
/// serially on the calling thread in the planned order (that *is* the
/// explored interleaving — serial execution is what makes replay exact).
class TaskOrderHook {
 public:
  virtual ~TaskOrderHook() = default;

  /// Fills `order` with a permutation of [0, tasks): the execution order for
  /// this region. Called once per parallel region, on the region's caller.
  virtual void plan_region(std::size_t tasks, std::vector<std::size_t>& order) = 0;

  /// Chunk count for a parallel_for over n items (`default_chunks` is what
  /// the pool would use on its own). Lets a seed vary chunk *assignment* as
  /// well as order. Return default_chunks to leave the split alone.
  virtual std::size_t plan_chunks(std::size_t n, std::size_t threads,
                                  std::size_t default_chunks) = 0;
};

class ThreadPool {
 public:
  /// Creates `threads` workers. threads == 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Installs (or clears, with nullptr) the scheduling hook. Not owned. Must
  /// not be called while a parallel section is running.
  void set_task_order(TaskOrderHook* hook) noexcept { order_hook_ = hook; }
  [[nodiscard]] TaskOrderHook* task_order() const noexcept { return order_hook_; }

  /// Runs fn(chunk_begin, chunk_end) over [0, n) split into static chunks,
  /// one chunk stream per worker; blocks until every chunk is done. Runs
  /// inline when the pool has one thread (keeps single-core hosts cheap).
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// Runs fn(worker_index) once on each of `tasks` logical tasks in parallel.
  void parallel_tasks(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t tasks = 0;
    const verify::race::Region* region = nullptr;
  };

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Job job_;
  std::size_t next_task_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  TaskOrderHook* order_hook_ = nullptr;
  std::vector<std::size_t> order_;  // scratch for hooked regions
};

}  // namespace cyclops
