#include "cyclops/common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cyclops {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(sq / static_cast<double>(s.count - 1)) : 0.0;
  auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(s.count - 1));
    return sorted[idx];
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

void LogHistogram::add(double value) {
  std::size_t bucket = 0;
  if (value >= 1.0) {
    bucket = static_cast<std::size_t>(std::ilogb(value)) + 1;
  }
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  ++total_;
}

double imbalance(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0;
  double max = values[0];
  for (double v : values) {
    sum += v;
    max = std::max(max, v);
  }
  const double mean = sum / static_cast<double>(values.size());
  return mean > 0 ? max / mean : 1.0;
}

}  // namespace cyclops
