#include "cyclops/common/thread_pool.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"

namespace cyclops {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads == 1) return;  // run everything inline
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    const verify::race::Region* region = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      fn = job_.fn;
      region = job_.region;
    }
    for (;;) {
      std::size_t task;
      {
        std::lock_guard lock(mutex_);
        if (next_task_ >= job_.tasks) break;
        task = next_task_++;
      }
      verify::race::TaskScope scope(*region, task);
      (*fn)(task);
    }
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_tasks(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  // One logical happens-before context per task, joined at return — the race
  // analyzer's fork/join edges. The pool's own mutex/condvar are deliberately
  // not modeled: logical tasks stay concurrent no matter which host thread
  // (or serial order) executes them.
  verify::race::Region region(tasks);
  if (order_hook_ != nullptr) {
    // Explorer mode: serial execution in the planned order. The permutation
    // IS the interleaving — with one task at a time there is nothing else
    // the schedule can vary, so a (seed, schedule) pair replays exactly.
    order_.clear();
    order_hook_->plan_region(tasks, order_);
    CYCLOPS_CHECK(order_.size() == tasks);
    for (const std::size_t t : order_) {
      verify::race::TaskScope scope(region, t);
      fn(t);
    }
    return;
  }
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) {
      verify::race::TaskScope scope(region, i);
      fn(i);
    }
    return;
  }
  {
    std::lock_guard lock(mutex_);
    CYCLOPS_CHECK(pending_ == 0);  // no nested/concurrent pool use
    job_ = Job{&fn, tasks, &region};
    next_task_ = 0;
    pending_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = workers_.empty() ? 1 : workers_.size();
  if (threads == 1 && order_hook_ == nullptr) {
    fn(0, n);
    return;
  }
  std::size_t chunks = std::min(n, threads * 4);
  if (order_hook_ != nullptr) {
    chunks = order_hook_->plan_chunks(n, threads, chunks);
    chunks = std::max<std::size_t>(1, std::min(n, chunks));
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::function<void(std::size_t)> task = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(begin, end);
  };
  parallel_tasks(chunks, task);
}

}  // namespace cyclops
