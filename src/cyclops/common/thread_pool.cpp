#include "cyclops/common/thread_pool.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"

namespace cyclops {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads == 1) return;  // run everything inline
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      fn = job_.fn;
    }
    for (;;) {
      std::size_t task;
      {
        std::lock_guard lock(mutex_);
        if (next_task_ >= job_.tasks) break;
        task = next_task_++;
      }
      (*fn)(task);
    }
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_tasks(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    CYCLOPS_CHECK(pending_ == 0);  // no nested/concurrent pool use
    job_ = Job{&fn, tasks};
    next_task_ = 0;
    pending_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t threads = workers_.empty() ? 1 : workers_.size();
  if (threads == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(n, threads * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::function<void(std::size_t)> task = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(begin, end);
  };
  parallel_tasks(chunks, task);
}

}  // namespace cyclops
