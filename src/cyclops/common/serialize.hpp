#pragma once
// Byte-buffer serialization for the simulated fabric and for checkpoints.
// Messages crossing simulated machine boundaries really are serialized and
// deserialized, so per-byte communication cost is honest work, not a model.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "cyclops/common/check.hpp"

namespace cyclops {

/// A malformed byte stream (truncated snapshot, corrupted frame, shape
/// mismatch on restore). Recoverable by design: a failed restore must leave
/// the caller free to retry from another replica or an older checkpoint, so
/// the ByteReader path throws this instead of aborting the process.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  void write_string(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  void clear() noexcept { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept : bytes_(bytes) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    // A corrupted length can make n * sizeof(T) wrap; compare in element space.
    if (n > remaining() / sizeof(T)) {
      throw SerializeError("byte stream truncated or corrupt: vector of " +
                           std::to_string(n) + " elements exceeds remaining " +
                           std::to_string(remaining()) + " bytes");
    }
    std::vector<T> v(n);
    if (n > 0) std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// Reads `n` raw bytes (no length prefix — the caller knows the framing).
  std::vector<std::uint8_t> read_bytes(std::size_t n) {
    require(n);
    std::vector<std::uint8_t> v(bytes_.begin() + pos_, bytes_.begin() + pos_ + n);
    pos_ += n;
    return v;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  void require(std::uint64_t n) const {
    if (n > remaining()) {
      throw SerializeError("byte stream truncated: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace cyclops
