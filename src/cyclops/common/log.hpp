#pragma once
// Minimal leveled logging. Engines log at Info by default; tests silence it.

#include <sstream>
#include <string_view>

namespace cyclops {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_emit(LogLevel level, std::string_view msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cyclops

#define CYCLOPS_LOG(level)                                       \
  if (::cyclops::LogLevel::level < ::cyclops::log_level()) {     \
  } else                                                         \
    ::cyclops::detail::LogLine(::cyclops::LogLevel::level)
