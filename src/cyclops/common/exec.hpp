#pragma once
// Simulated-parallel execution helper. The evaluation cluster has 72 hardware
// threads; this host may have one. Engines therefore time each simulated
// executor (worker, or compute thread within a worker) separately and report
// the *maximum* executor time as the phase's parallel wall time — exactly
// what a perfectly-overlapped cluster run would measure, minus contention,
// which the engines model explicitly where the paper says it matters.

#include <cstddef>
#include <functional>

#include "cyclops/common/thread_pool.hpp"

namespace cyclops {

/// Runs fn(executor_index) once per executor (possibly really in parallel on
/// the pool) and returns the maximum per-executor wall time in seconds.
double timed_executors(ThreadPool& pool, std::size_t executors,
                       const std::function<void(std::size_t)>& fn);

/// Splits [0, n) into `executors` contiguous chunks, runs fn(begin, end) per
/// chunk, and returns the maximum per-chunk wall time in seconds.
double timed_chunks(ThreadPool& pool, std::size_t n, std::size_t executors,
                    const std::function<void(std::size_t, std::size_t)>& fn);

/// Chunk boundaries used by timed_chunks (exposed for deterministic tests).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};
[[nodiscard]] ChunkRange chunk_range(std::size_t n, std::size_t chunks, std::size_t index);

}  // namespace cyclops
