#pragma once
// Deterministic, seedable random number generation. Every stochastic choice
// in the repository (generators, partitioners, workload sweeps) flows through
// these so runs are reproducible bit-for-bit.

#include <cmath>
#include <cstdint>

#include "cyclops/common/check.hpp"

namespace cyclops {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality generator for bulk use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    CYCLOPS_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Standard normal via Box–Muller (fresh pair each call; no cached state so
  /// interleaved streams stay reproducible).
  double next_normal() noexcept {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Log-normal with the given underlying normal parameters. The paper uses
  /// mu=0.4, sigma=1.2 (Facebook interaction weights) for RoadCA edge weights.
  double next_lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * next_normal());
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Stable 64-bit mix for hash partitioning (avoids std::hash's identity on
/// integers, which would make "hash partition" a range partition).
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdULL;
  x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return x ^ (x >> 33);
}

}  // namespace cyclops
