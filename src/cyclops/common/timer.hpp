#pragma once
// Wall-clock timing helpers used for phase breakdowns.

#include <chrono>

namespace cyclops {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_us() const noexcept { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds into a double on destruction — used to
/// attribute time to a named phase (CMP/SND/PRS/SYN).
class ScopedAccum {
 public:
  explicit ScopedAccum(double& sink) noexcept : sink_(sink) {}
  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;
  ~ScopedAccum() { sink_ += timer_.elapsed_s(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace cyclops
