#include "cyclops/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace cyclops {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, std::string_view msg) {
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[cyclops %s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace cyclops
