#pragma once
// The repo's only doorway to the std threading primitives. Everything outside
// common/ must use these aliases instead of naming std::thread / std::mutex /
// std::condition_variable directly (enforced by tools/cyclops_lint.cpp):
// keeping every raw primitive behind one header makes the host-concurrency
// surface auditable at a glance — which matters in a codebase whose whole
// point is that simulated workers share memory in phase-disciplined ways.

#include <condition_variable>
#include <mutex>
#include <thread>

namespace cyclops {

using Mutex = std::mutex;
using CondVar = std::condition_variable;
using Thread = std::thread;

template <typename M>
using LockGuard = std::lock_guard<M>;
template <typename M>
using UniqueLock = std::unique_lock<M>;

}  // namespace cyclops
