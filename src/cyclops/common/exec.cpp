#include "cyclops/common/exec.hpp"

#include <algorithm>
#include <vector>

#include "cyclops/common/check.hpp"
#include "cyclops/common/timer.hpp"

namespace cyclops {

ChunkRange chunk_range(std::size_t n, std::size_t chunks, std::size_t index) {
  CYCLOPS_CHECK(chunks > 0 && index < chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t begin = index * base + std::min(index, extra);
  const std::size_t size = base + (index < extra ? 1 : 0);
  return ChunkRange{begin, begin + size};
}

double timed_executors(ThreadPool& pool, std::size_t executors,
                       const std::function<void(std::size_t)>& fn) {
  if (executors == 0) return 0.0;
  std::vector<double> times(executors, 0.0);
  std::function<void(std::size_t)> task = [&](std::size_t i) {
    Timer t;
    fn(i);
    times[i] = t.elapsed_s();
  };
  pool.parallel_tasks(executors, task);
  return *std::max_element(times.begin(), times.end());
}

double timed_chunks(ThreadPool& pool, std::size_t n, std::size_t executors,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (executors == 0 || n == 0) return 0.0;
  return timed_executors(pool, executors, [&](std::size_t i) {
    const ChunkRange r = chunk_range(n, executors, i);
    if (r.begin < r.end) fn(r.begin, r.end);
  });
}

}  // namespace cyclops
