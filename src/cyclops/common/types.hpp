#pragma once
// Fundamental identifier types shared by every subsystem.

#include <cstddef>
#include <cstdint>
#include <limits>

namespace cyclops {

/// Global vertex identifier. Graphs are re-labelled densely at ingress, so
/// 32 bits covers every dataset in the evaluation (largest is Wiki-scale).
using VertexId = std::uint32_t;

/// Index of a logical worker (one graph partition per worker).
using WorkerId = std::uint32_t;

/// Index of a simulated machine; workers are placed round-robin on machines.
using MachineId = std::uint32_t;

/// Superstep counter (0-based).
using Superstep = std::uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr WorkerId kInvalidWorker = std::numeric_limits<WorkerId>::max();

/// Unit type for algorithms that carry no edge data.
struct Empty {
  friend bool operator==(Empty, Empty) noexcept { return true; }
};

}  // namespace cyclops
