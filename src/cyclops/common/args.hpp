#pragma once
// Minimal command-line flag parsing shared by the CLI and the bench mains.
// Consume-style: each query marks the matching argv tokens as consumed;
// finish() rejects anything left over, so callers get unknown-flag errors
// without maintaining a central flag table.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cyclops::args {

class Parser {
 public:
  Parser(int argc, char** argv) {
    tokens_.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
    for (int i = 1; i < argc; ++i) tokens_.emplace_back(argv[i]);
    consumed_.assign(tokens_.size(), false);
  }

  /// True iff `name` appears as a bare flag; consumes every occurrence.
  bool flag(std::string_view name) {
    bool found = false;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!consumed_[i] && tokens_[i] == name) {
        consumed_[i] = true;
        found = true;
      }
    }
    return found;
  }

  /// Raw value of `name VALUE`; consumes both tokens. Last occurrence wins.
  std::optional<std::string> value(std::string_view name) {
    std::optional<std::string> out;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (consumed_[i] || tokens_[i] != name) continue;
      if (i + 1 >= tokens_.size() || consumed_[i + 1]) {
        fail("missing value for " + std::string(name));
      }
      consumed_[i] = consumed_[i + 1] = true;
      out = tokens_[i + 1];
    }
    return out;
  }

  /// Typed `name VALUE` with a default. Supports std::string and arithmetic
  /// types; numeric parses must consume the whole token.
  template <typename T>
  T get(std::string_view name, T dflt) {
    const auto v = value(name);
    if (!v) return dflt;
    return parse_as<T>(name, *v);
  }
  std::string get(std::string_view name, const char* dflt) {
    return get<std::string>(name, std::string(dflt));
  }

  /// Tokens not consumed by any flag()/value()/get() call so far.
  [[nodiscard]] std::vector<std::string> unconsumed() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!consumed_[i]) out.push_back(tokens_[i]);
    }
    return out;
  }

  /// Errors out (exit 2) on any unconsumed argument.
  void finish() const {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!consumed_[i]) fail("unknown argument: " + tokens_[i]);
    }
  }

  [[noreturn]] static void fail(const std::string& msg) {
    std::fprintf(stderr, "%s\n", msg.c_str());
    std::exit(2);  // NOLINT(concurrency-mt-unsafe) — parse-time fail path
  }

 private:
  template <typename T>
  static T parse_as(std::string_view name, const std::string& raw) {
    if constexpr (std::is_same_v<T, std::string>) {
      return raw;
    } else {
      static_assert(std::is_arithmetic_v<T>, "unsupported flag type");
      char* end = nullptr;
      T out{};
      if constexpr (std::is_floating_point_v<T>) {
        out = static_cast<T>(std::strtod(raw.c_str(), &end));
      } else if constexpr (std::is_signed_v<T>) {
        out = static_cast<T>(std::strtoll(raw.c_str(), &end, 10));
      } else {
        out = static_cast<T>(std::strtoull(raw.c_str(), &end, 10));
      }
      if (end == raw.c_str() || *end != '\0') {
        fail("invalid value '" + raw + "' for " + std::string(name));
      }
      return out;
    }
  }

  std::vector<std::string> tokens_;
  std::vector<bool> consumed_;
};

/// Graph-store selection flags shared by the CLI and the bench mains. Kept
/// as raw strings/numbers here (common/ sits below graph/); callers convert
/// with graph::parse_store_kind + graph::StoreOptions.
struct StoreArgs {
  std::string kind = "memory";    ///< memory | compact | stream
  std::uint64_t mem_cap_mb = 64;  ///< stream-backend resident budget
  std::string spill_dir;          ///< stream scratch dir; empty = /tmp
};

inline StoreArgs store_args(Parser& p) {
  StoreArgs s;
  s.kind = p.get("--store", s.kind);
  s.mem_cap_mb = p.get("--mem-cap", s.mem_cap_mb);
  s.spill_dir = p.get("--spill-dir", s.spill_dir);
  if (s.mem_cap_mb == 0) Parser::fail("--mem-cap must be a positive MB count");
  return s;
}

/// Recovery-mode selection shared by the CLI and bench_recovery. Raw strings
/// here for the same layering reason as StoreArgs; callers convert with
/// runtime::parse_recovery_mode and sim::LogStoreKind.
struct RecoveryArgs {
  std::string recovery = "rollback";  ///< rollback | log | log-parallel
  std::string log_store = "memory";   ///< memory | spill (message-log backing)
  double detection_timeout_us = 500000.0;  ///< failure-detection timeout
};

inline RecoveryArgs recovery_args(Parser& p) {
  RecoveryArgs r;
  r.recovery = p.get("--recovery", r.recovery);
  r.log_store = p.get("--log-store", r.log_store);
  r.detection_timeout_us = p.get("--detection-timeout-us", r.detection_timeout_us);
  if (r.recovery != "rollback" && r.recovery != "log" && r.recovery != "log-parallel") {
    Parser::fail("--recovery must be rollback, log, or log-parallel");
  }
  if (r.log_store != "memory" && r.log_store != "spill") {
    Parser::fail("--log-store must be memory or spill");
  }
  if (r.detection_timeout_us < 0) {
    Parser::fail("--detection-timeout-us must be non-negative");
  }
  return r;
}

}  // namespace cyclops::args
