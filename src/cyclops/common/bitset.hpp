#pragma once
// Dense bitset with lock-free concurrent set(), used for vertex active sets.
// Local activation in Cyclops is "a lock-free operation" (§5) — this is it.

#include <atomic>
#include <cstdint>
#include <vector>

#include "cyclops/common/check.hpp"

namespace cyclops {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, Word{0});
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Concurrent-safe: multiple threads may set bits simultaneously.
  void set(std::size_t i) noexcept {
    CYCLOPS_DCHECK(i < size_);
    words_[i >> 6].bits.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Not concurrent-safe with set() on the same word.
  void clear(std::size_t i) noexcept {
    CYCLOPS_DCHECK(i < size_);
    words_[i >> 6].bits.fetch_and(~(1ULL << (i & 63)), std::memory_order_relaxed);
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    CYCLOPS_DCHECK(i < size_);
    return (words_[i >> 6].bits.load(std::memory_order_relaxed) >> (i & 63)) & 1ULL;
  }

  void clear_all() noexcept {
    for (auto& w : words_) w.bits.store(0, std::memory_order_relaxed);
  }

  void set_all() noexcept {
    if (words_.empty()) return;
    for (auto& w : words_) w.bits.store(~0ULL, std::memory_order_relaxed);
    // Mask the tail so count() stays exact.
    const std::size_t tail = size_ & 63;
    if (tail != 0) {
      words_.back().bits.store((1ULL << tail) - 1, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const auto& w : words_) {
      total += static_cast<std::size_t>(
          __builtin_popcountll(w.bits.load(std::memory_order_relaxed)));
    }
    return total;
  }

  [[nodiscard]] bool any() const noexcept {
    for (const auto& w : words_) {
      if (w.bits.load(std::memory_order_relaxed) != 0) return true;
    }
    return false;
  }

  void swap(DenseBitset& other) noexcept {
    words_.swap(other.words_);
    std::swap(size_, other.size_);
  }

  /// Invokes fn(i) for every set bit, in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w].bits.load(std::memory_order_relaxed);
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

 private:
  struct Word {
    std::atomic<std::uint64_t> bits{0};
    Word() = default;
    explicit Word(std::uint64_t v) : bits(v) {}
    Word(const Word& o) : bits(o.bits.load(std::memory_order_relaxed)) {}
    Word& operator=(const Word& o) {
      bits.store(o.bits.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };
  std::vector<Word> words_;
  std::size_t size_ = 0;
};

}  // namespace cyclops
