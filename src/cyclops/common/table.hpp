#pragma once
// ASCII table rendering for benchmark output. Benches print the same rows and
// series the paper's figures/tables report, so everything funnels through
// this one formatter.

#include <string>
#include <vector>

namespace cyclops {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  /// Renders with aligned columns, a header rule, and an optional title.
  [[nodiscard]] std::string render(const std::string& title = {}) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cyclops
