#pragma once
// Summary statistics and fixed-bucket histograms used by graph stats,
// partition quality reports, and benchmark output.

#include <cstddef>
#include <span>
#include <vector>

namespace cyclops {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Computes a Summary; sorts a copy of the data (O(n log n)).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Logarithmically bucketed histogram (bucket i holds values in
/// [2^i, 2^(i+1))); value 0 lands in bucket 0.
class LogHistogram {
 public:
  void add(double value);
  [[nodiscard]] const std::vector<std::size_t>& buckets() const noexcept { return buckets_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  std::vector<std::size_t> buckets_;
  std::size_t total_ = 0;
};

/// Coefficient of variation-style balance metric: max/mean of the sample.
/// 1.0 means perfectly balanced partitions.
[[nodiscard]] double imbalance(std::span<const double> values);

}  // namespace cyclops
