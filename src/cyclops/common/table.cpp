#include "cyclops/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "cyclops/common/check.hpp"

namespace cyclops {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CYCLOPS_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  CYCLOPS_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  std::size_t total = 1;
  for (std::size_t w : width) total += w + 3;
  const std::string rule(total, '-');
  out << rule << "\n";
  emit_row(header_);
  out << rule << "\n";
  for (const auto& row : rows_) emit_row(row);
  out << rule << "\n";
  return out.str();
}

}  // namespace cyclops
