#pragma once
// Tiny test-and-test-and-set spinlock with an acquisition counter, used by the
// Hama-style global in-queue so the communication micro-benchmark (Table 3)
// can report contention directly.

#include <atomic>
#include <cstdint>

#include "cyclops/verify/race.hpp"

namespace cyclops {

class SpinLock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) break;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin; on a contended lock this is where BSP receivers burn time
      }
    }
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    verify::race::lock_acquired(this);
  }

  void unlock() noexcept {
    verify::race::lock_released(this);
    flag_.store(false, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t acquisitions() const noexcept {
    return acquisitions_.load(std::memory_order_relaxed);
  }

  void reset_stats() noexcept { acquisitions_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<std::uint64_t> acquisitions_{0};
};

}  // namespace cyclops
