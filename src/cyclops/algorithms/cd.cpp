#include "cyclops/algorithms/cd.hpp"

namespace cyclops::algo {

std::vector<Label> cd_reference(const graph::GraphStore& g, unsigned max_iterations) {
  const VertexId n = g.num_vertices();
  std::vector<Label> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = v;
  std::vector<Label> next(n);
  std::vector<Label> scratch;
  graph::AdjCursor cur;
  for (unsigned it = 0; it < max_iterations; ++it) {
    bool any_change = false;
    for (VertexId v = 0; v < n; ++v) {
      scratch.clear();
      for (const graph::Adj& a : g.in_neighbors(v, cur)) scratch.push_back(labels[a.neighbor]);
      next[v] = detail::majority_label(scratch, labels[v]);
      any_change = any_change || next[v] != labels[v];
    }
    labels.swap(next);
    if (!any_change) break;
  }
  return labels;
}

double label_agreement(const graph::GraphStore& g, std::span<const Label> labels) {
  std::size_t agree = 0;
  std::size_t total = 0;
  graph::AdjCursor cur;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const graph::Adj& a : g.out_neighbors(v, cur)) {
      ++total;
      if (labels[v] == labels[a.neighbor]) ++agree;
    }
  }
  return total > 0 ? static_cast<double>(agree) / static_cast<double>(total) : 1.0;
}

}  // namespace cyclops::algo
