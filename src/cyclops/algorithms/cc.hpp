#pragma once
// Connected Components via minimum-label propagation — the standard
// complement to the paper's four workloads (every Pregel/Hama distribution
// ships it). Pull-mode with sparse activation: a vertex recomputes only when
// a neighbor's component label drops, so Cyclops' dynamic computation pays
// off after the first few supersteps. Expects undirected edge storage (both
// directions present) to find weakly-connected components.

#include <span>
#include <vector>

#include "cyclops/graph/store.hpp"

namespace cyclops::algo {

/// Pregel-style push CC.
struct CcBsp {
  using Value = VertexId;
  using Message = VertexId;
  static constexpr bool kCombinable = true;

  [[nodiscard]] Message combine(Message a, Message b) const noexcept {
    return a < b ? a : b;
  }

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept { return v; }

  template <typename Ctx>
  void compute(Ctx& ctx, std::span<const Message> msgs) const {
    VertexId best = ctx.value();
    for (VertexId m : msgs) best = m < best ? m : best;
    if (best < ctx.value() || ctx.superstep() == 0) {
      ctx.set_value(best);
      ctx.send_to_neighbors(best);
    }
    ctx.vote_to_halt();
  }
};

/// Cyclops CC: the component label is the replicated shared data.
struct CcCyclops {
  using Value = VertexId;
  using Message = VertexId;

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept { return v; }
  [[nodiscard]] Message init_shared(VertexId v, const graph::GraphStore&) const noexcept {
    return v;
  }
  [[nodiscard]] bool initially_active(VertexId, const graph::GraphStore&) const noexcept {
    return true;
  }

  template <typename Ctx>
  void compute(Ctx& ctx) const {
    VertexId best = ctx.value();
    for (const auto& e : ctx.in_edges()) {
      const VertexId m = ctx.data(e.slot);
      if (m < best) best = m;
    }
    const bool improved = best < ctx.value();
    if (improved) ctx.set_value(best);
    ctx.mark_converged(!improved);
    if (improved || ctx.superstep() == 0) ctx.activate_neighbors(ctx.value());
  }
};

/// Union-find ground truth (labels = minimum vertex id per component).
[[nodiscard]] std::vector<VertexId> cc_reference(const graph::GraphStore& g);

/// Number of distinct components in a labeling.
[[nodiscard]] std::size_t count_components(std::span<const VertexId> labels);

}  // namespace cyclops::algo
