#include "cyclops/algorithms/pagerank.hpp"

#include <cmath>

namespace cyclops::algo {

std::vector<double> pagerank_reference(const graph::GraphStore& g, unsigned max_iterations,
                                       double tolerance) {
  const VertexId n = g.num_vertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  graph::AdjCursor cur;
  for (unsigned it = 0; it < max_iterations; ++it) {
    double delta = 0;
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0;
      for (const graph::Adj& a : g.in_neighbors(v, cur)) {
        const auto d = g.out_degree(a.neighbor);
        if (d > 0) sum += rank[a.neighbor] / static_cast<double>(d);
      }
      next[v] = (1.0 - kPageRankDamping) / static_cast<double>(n) + kPageRankDamping * sum;
      delta = std::max(delta, std::abs(next[v] - rank[v]));
    }
    rank.swap(next);
    if (delta < tolerance) break;
  }
  return rank;
}

}  // namespace cyclops::algo
