#pragma once
// Community Detection via synchronous label propagation (§6.1): every vertex
// adopts the most frequent label among its neighbors (ties break to the
// smallest label, keeping every engine deterministic and comparable).
// Pull-mode: a vertex needs *all* neighbor labels each round.

#include <algorithm>
#include <span>
#include <vector>

#include "cyclops/graph/store.hpp"

namespace cyclops::algo {

using Label = std::uint32_t;

namespace detail {
/// Most frequent label in `labels`; ties -> smallest. `labels` is scratch
/// (sorted in place). Returns `fallback` when empty.
[[nodiscard]] inline Label majority_label(std::vector<Label>& labels, Label fallback) {
  if (labels.empty()) return fallback;
  std::sort(labels.begin(), labels.end());
  Label best = labels[0];
  std::size_t best_count = 0;
  std::size_t i = 0;
  while (i < labels.size()) {
    std::size_t j = i;
    while (j < labels.size() && labels[j] == labels[i]) ++j;
    if (j - i > best_count) {
      best_count = j - i;
      best = labels[i];
    }
    i = j;
  }
  return best;
}
}  // namespace detail

/// BSP label propagation: push labels every superstep; stop when the global
/// change ratio drops below `stop_change_ratio` (aggregator-driven, like the
/// paper's Hama baselines for pull-mode algorithms).
struct CdBsp {
  using Value = Label;
  using Message = Label;
  static constexpr bool kCombinable = false;
  // Cost-model weight: majority voting sorts the gathered labels.
  static constexpr double kEdgeOpWeight = 3.0;
  static constexpr double kVertexOpWeight = 1.0;

  double stop_change_ratio = 0.0;  ///< halt when avg change indicator <= this

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept { return v; }

  template <typename Ctx>
  void compute(Ctx& ctx, std::span<const Message> msgs) const {
    if (ctx.superstep() == 0) {
      ctx.send_to_neighbors(ctx.value());
      return;
    }
    std::vector<Label> labels(msgs.begin(), msgs.end());
    const Label next = detail::majority_label(labels, ctx.value());
    const bool changed = next != ctx.value();
    ctx.set_value(next);
    ctx.aggregate_error(changed ? 1.0 : 0.0);
    if (ctx.global_error() > stop_change_ratio) {
      ctx.send_to_neighbors(next);
    } else {
      ctx.vote_to_halt();
    }
  }
};

/// Cyclops label propagation: pull neighbor labels from the immutable view;
/// only changed vertices re-activate their neighborhood.
struct CdCyclops {
  using Value = Label;
  using Message = Label;
  static constexpr double kEdgeOpWeight = 3.0;
  static constexpr double kVertexOpWeight = 1.0;

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept { return v; }
  [[nodiscard]] Message init_shared(VertexId v, const graph::GraphStore&) const noexcept {
    return v;
  }
  [[nodiscard]] bool initially_active(VertexId, const graph::GraphStore&) const noexcept {
    return true;
  }

  template <typename Ctx>
  void compute(Ctx& ctx) const {
    std::vector<Label> labels;
    labels.reserve(ctx.num_in_edges());
    for (const auto& e : ctx.in_edges()) labels.push_back(ctx.data(e.slot));
    const Label next = detail::majority_label(labels, ctx.value());
    const bool changed = next != ctx.value();
    ctx.set_value(next);
    ctx.mark_converged(!changed);
    if (changed) ctx.activate_neighbors(next);
  }
};

/// Sequential synchronous label propagation with identical tie-breaking.
[[nodiscard]] std::vector<Label> cd_reference(const graph::GraphStore& g, unsigned max_iterations);

/// Fraction of (undirected) edges whose endpoints share a label — the
/// community-quality score examples report.
[[nodiscard]] double label_agreement(const graph::GraphStore& g, std::span<const Label> labels);

}  // namespace cyclops::algo
