#pragma once
// PageRank for all three engines plus a sequential reference. The BSP
// version transliterates Figure 2 (push messages, global-error aggregator,
// keep-alive); the Cyclops version transliterates Figure 5 (pull from the
// immutable view, local error, distributed activation); the GAS version is
// the canonical PowerGraph gather/apply/scatter formulation.

#include <cmath>
#include <span>
#include <vector>

#include "cyclops/graph/store.hpp"

namespace cyclops::algo {

inline constexpr double kPageRankDamping = 0.85;

/// Figure 2: the BSP/Hama compute function.
struct PageRankBsp {
  using Value = double;
  using Message = double;
  static constexpr bool kCombinable = true;

  double epsilon = 1e-9;
  /// Relative tolerance for the redundant-message instrumentation: a re-sent
  /// rank share within this relative distance of the previous one carries no
  /// information for the receiver.
  double redundancy_rel_epsilon = 1e-4;

  [[nodiscard]] Message combine(Message a, Message b) const noexcept { return a + b; }

  [[nodiscard]] bool nearly_equal(Message a, Message b) const noexcept {
    return std::abs(a - b) <= redundancy_rel_epsilon * std::abs(a);
  }

  [[nodiscard]] Value init(VertexId, const graph::GraphStore& g) const noexcept {
    return 1.0 / static_cast<double>(g.num_vertices());
  }

  template <typename Ctx>
  void compute(Ctx& ctx, std::span<const Message> msgs) const {
    const double n = static_cast<double>(ctx.num_vertices());
    if (ctx.superstep() == 0) {
      // Bootstrap: push the initial rank share; no update yet.
      if (ctx.out_degree() > 0) {
        ctx.send_to_neighbors(ctx.value() / static_cast<double>(ctx.out_degree()));
      }
      return;
    }
    double sum = 0;
    for (double m : msgs) sum += m;
    const double value = (1.0 - kPageRankDamping) / n + kPageRankDamping * sum;
    const double error = std::abs(value - ctx.value());
    ctx.set_value(value);
    ctx.aggregate_error(error);
    if (ctx.global_error() > epsilon) {
      if (ctx.out_degree() > 0) {
        ctx.send_to_neighbors(value / static_cast<double>(ctx.out_degree()));
      }
    } else {
      ctx.vote_to_halt();
    }
  }
};

/// Figure 5: the Cyclops compute function. Shared data is the rank share
/// (value / out-degree) neighbors read.
struct PageRankCyclops {
  using Value = double;
  using Message = double;

  double epsilon = 1e-9;

  [[nodiscard]] Value init(VertexId, const graph::GraphStore& g) const noexcept {
    return 1.0 / static_cast<double>(g.num_vertices());
  }
  [[nodiscard]] Message init_shared(VertexId v, const graph::GraphStore& g) const noexcept {
    const auto d = g.out_degree(v);
    return d > 0 ? init(v, g) / static_cast<double>(d) : 0.0;
  }
  [[nodiscard]] bool initially_active(VertexId, const graph::GraphStore&) const noexcept {
    return true;
  }

  template <typename Ctx>
  void compute(Ctx& ctx) const {
    const double n = static_cast<double>(ctx.num_vertices());
    double sum = 0;
    for (const auto& e : ctx.in_edges()) sum += ctx.data(e.slot);
    const double value = (1.0 - kPageRankDamping) / n + kPageRankDamping * sum;
    const double error = std::abs(value - ctx.value());
    ctx.set_value(value);
    ctx.mark_converged(error <= epsilon);
    if (error > epsilon) {
      const auto d = ctx.out_degree();
      ctx.activate_neighbors(d > 0 ? value / static_cast<double>(d) : 0.0);
    }
    // Implicit vote-to-halt: a Cyclops vertex deactivates unless re-activated.
  }
};

/// PowerGraph gather/apply/scatter PageRank.
struct PageRankGas {
  struct Value {
    double rank = 0;
    std::uint32_t out_degree = 0;
  };
  using Gather = double;

  VertexId num_vertices = 0;
  double epsilon = 1e-9;

  [[nodiscard]] Value init(VertexId, std::size_t out_degree, std::size_t) const noexcept {
    return Value{1.0 / static_cast<double>(num_vertices),
                 static_cast<std::uint32_t>(out_degree)};
  }
  [[nodiscard]] Gather gather_zero() const noexcept { return 0.0; }
  [[nodiscard]] Gather gather(const Value&, const Value& nbr, double) const noexcept {
    return nbr.out_degree > 0 ? nbr.rank / static_cast<double>(nbr.out_degree) : 0.0;
  }
  [[nodiscard]] Gather merge(const Gather& a, const Gather& b) const noexcept { return a + b; }
  [[nodiscard]] Value apply(const Value& old, const Gather& acc) const noexcept {
    return Value{(1.0 - kPageRankDamping) / static_cast<double>(num_vertices) +
                     kPageRankDamping * acc,
                 old.out_degree};
  }
  [[nodiscard]] bool scatter_activates(const Value& old, const Value& next) const noexcept {
    return std::abs(next.rank - old.rank) > epsilon;
  }
};

/// Sequential power iteration to (near-)fixpoint; the ground truth used by
/// correctness tests and the L1 convergence tracker.
[[nodiscard]] std::vector<double> pagerank_reference(const graph::GraphStore& g,
                                                     unsigned max_iterations = 200,
                                                     double tolerance = 1e-13);

}  // namespace cyclops::algo
