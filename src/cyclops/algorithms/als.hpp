#pragma once
// Alternating Least Squares collaborative filtering (§6.1, Zhou et al.): the
// bipartite users×items ratings graph alternates sides; each update solves
// the regularized normal equations (Σ qqᵀ + λ·n·I) p = Σ r·q over the
// vertex's neighborhood. Factors are the replicated shared data — ALS is the
// evaluation's heavy-payload pull-mode workload.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cyclops/algorithms/linalg.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::algo {

inline constexpr std::size_t kAlsRank = 8;
using Factor = Vec<kAlsRank>;

/// Deterministic pseudo-random initial factor in [0, 1), seeded by vertex id
/// so every engine starts from the same point.
[[nodiscard]] Factor als_init_factor(VertexId v) noexcept;

/// Solves one side's update given neighbor factors and ratings.
[[nodiscard]] Factor als_solve(std::span<const Factor> neighbor_factors,
                               std::span<const double> ratings, double lambda);

/// Root-mean-square rating error of a factor assignment over the graph's
/// user->item edges (vertices < num_users are users).
[[nodiscard]] double als_rmse(const graph::GraphStore& g, VertexId num_users,
                              std::span<const Factor> factors);

/// Sequential ALS reference: `rounds` alternating side-updates (round 0
/// updates users from item factors, round 1 items, ...).
[[nodiscard]] std::vector<Factor> als_reference(const graph::GraphStore& g, VertexId num_users,
                                                unsigned rounds, double lambda);

struct AlsMessagePayload {
  VertexId sender = 0;  ///< messages pair factors with the receiver's rating
  Factor factor{};
};

/// BSP ALS: items broadcast factors at superstep 0; sides then alternate —
/// every message carries a full factor vector (heavy payload on the wire).
struct AlsBsp {
  using Value = Factor;
  using Message = AlsMessagePayload;
  static constexpr bool kCombinable = false;
  // Cost-model weights: each gathered edge contributes a rank-8 outer
  // product; each update solves an 8x8 Cholesky system.
  static constexpr double kVertexOpWeight = 30.0;
  static constexpr double kEdgeOpWeight = 8.0;

  VertexId num_users = 0;
  double lambda = 0.05;
  unsigned rounds = 10;  ///< total side-updates before halting

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept {
    return als_init_factor(v);
  }

  template <typename Ctx>
  void compute(Ctx& ctx, std::span<const Message> msgs) const {
    const bool is_user = ctx.vertex() < num_users;
    if (ctx.superstep() == 0) {
      // Items publish their initial factors; users wait for them.
      if (!is_user) ctx.send_to_neighbors(Message{ctx.vertex(), ctx.value()});
      ctx.vote_to_halt();
      return;
    }
    // Side for superstep s >= 1: users on odd, items on even supersteps.
    const bool users_turn = (ctx.superstep() % 2) == 1;
    if (is_user != users_turn || msgs.empty()) {
      ctx.vote_to_halt();
      return;
    }
    std::vector<Factor> factors;
    std::vector<double> ratings;
    factors.reserve(msgs.size());
    ratings.reserve(msgs.size());
    const auto edges = ctx.out_edges();  // sorted by neighbor id
    for (const Message& m : msgs) {
      // Pair the sender's factor with this vertex's rating of the sender.
      auto it = std::lower_bound(
          edges.begin(), edges.end(), m.sender,
          [](const graph::Adj& a, VertexId v) { return a.neighbor < v; });
      if (it == edges.end() || it->neighbor != m.sender) continue;
      factors.push_back(m.factor);
      ratings.push_back(it->weight);
    }
    if (!factors.empty()) {
      ctx.set_value(als_solve(factors, ratings, lambda));
    }
    if (ctx.superstep() < rounds) ctx.send_to_neighbors(Message{ctx.vertex(), ctx.value()});
    ctx.vote_to_halt();
  }
};

/// Cyclops ALS: factors live in the immutable view; each side pulls the
/// other's factors with zero messages beyond replica sync.
struct AlsCyclops {
  using Value = Factor;
  using Message = AlsMessagePayload;
  static constexpr double kVertexOpWeight = 30.0;
  static constexpr double kEdgeOpWeight = 8.0;

  VertexId num_users = 0;
  double lambda = 0.05;
  unsigned rounds = 10;

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept {
    return als_init_factor(v);
  }
  [[nodiscard]] Message init_shared(VertexId v, const graph::GraphStore&) const noexcept {
    return Message{v, als_init_factor(v)};
  }
  [[nodiscard]] bool initially_active(VertexId v, const graph::GraphStore&) const noexcept {
    return v < num_users;  // users update first, from initial item factors
  }

  template <typename Ctx>
  void compute(Ctx& ctx) const {
    const bool is_user = ctx.vertex() < num_users;
    const bool users_turn = (ctx.superstep() % 2) == 0;
    if (is_user != users_turn) {
      // Activated by the other side ahead of our turn; re-arm neighbors so
      // the alternation keeps flowing, but do not recompute.
      return;
    }
    std::vector<Factor> factors;
    std::vector<double> ratings;
    factors.reserve(ctx.num_in_edges());
    ratings.reserve(ctx.num_in_edges());
    for (const auto& e : ctx.in_edges()) {
      factors.push_back(ctx.data(e.slot).factor);
      ratings.push_back(e.weight);
    }
    if (!factors.empty()) {
      ctx.set_value(als_solve(factors, ratings, lambda));
    }
    ctx.mark_converged(ctx.superstep() + 1 >= rounds);
    if (ctx.superstep() + 1 < rounds) {
      ctx.activate_neighbors(Message{ctx.vertex(), ctx.value()});
    }
  }
};

}  // namespace cyclops::algo
