#pragma once
// The evaluation's dataset registry (Table 1), substituted with synthetic
// stand-ins at 1-core-host scale (see DESIGN.md). Name, paper-scale numbers,
// and the generator recipe travel together so benches can print the
// paper-vs-measured context next to every result.

#include <string>
#include <vector>

#include "cyclops/graph/store.hpp"
#include "cyclops/graph/edge_list.hpp"

namespace cyclops::algo {

enum class Workload { kPageRank, kAls, kCd, kSssp };

struct Dataset {
  std::string name;            ///< paper dataset this stands in for
  Workload workload = Workload::kPageRank;
  VertexId paper_vertices = 0;
  std::size_t paper_edges = 0;
  graph::EdgeList edges;       ///< generated stand-in
  VertexId num_users = 0;      ///< ALS only: bipartite split point

  [[nodiscard]] std::string describe() const;
};

/// Scale factor for the generated stand-ins; 1.0 is the default benchmark
/// scale (~10-400k edges per graph). Tests use smaller scales.
struct DatasetScale {
  double factor = 1.0;
  std::uint64_t seed = 2014;
};

/// Table 1 rows.
[[nodiscard]] Dataset make_amazon(const DatasetScale& scale = {});
[[nodiscard]] Dataset make_gweb(const DatasetScale& scale = {});
[[nodiscard]] Dataset make_ljournal(const DatasetScale& scale = {});
[[nodiscard]] Dataset make_wiki(const DatasetScale& scale = {});
[[nodiscard]] Dataset make_syn_gl(const DatasetScale& scale = {});
[[nodiscard]] Dataset make_dblp(const DatasetScale& scale = {});
[[nodiscard]] Dataset make_road_ca(const DatasetScale& scale = {});

/// All seven, in the paper's Table 1 order.
[[nodiscard]] std::vector<Dataset> make_all_datasets(const DatasetScale& scale = {});

}  // namespace cyclops::algo
