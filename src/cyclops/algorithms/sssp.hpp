#pragma once
// Single-Source Shortest Path — the evaluation's push-mode algorithm (§6.1):
// no redundant computation exists to eliminate, so Cyclops' edge over Hama
// here comes purely from communication (no parse phase, lock-free delivery).

#include <limits>
#include <span>
#include <vector>

#include "cyclops/graph/store.hpp"

namespace cyclops::algo {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Pregel-style push SSSP: a vertex sleeps until a shorter distance arrives.
struct SsspBsp {
  using Value = double;
  using Message = double;
  static constexpr bool kCombinable = true;

  VertexId source = 0;

  [[nodiscard]] Message combine(Message a, Message b) const noexcept {
    return a < b ? a : b;
  }

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept {
    return v == source ? 0.0 : kInfDistance;
  }

  template <typename Ctx>
  void compute(Ctx& ctx, std::span<const Message> msgs) const {
    double best = ctx.value();
    for (double m : msgs) best = m < best ? m : best;
    if (best < ctx.value() || (ctx.superstep() == 0 && ctx.vertex() == source)) {
      ctx.set_value(best);
      for (const graph::Adj& a : ctx.out_edges()) {
        ctx.send_to(a.neighbor, best + a.weight);
      }
    }
    ctx.vote_to_halt();
  }
};

/// Cyclops SSSP: shared data is the vertex's current distance; an activated
/// vertex pulls min(dist + weight) over its in-edges from the immutable view.
struct SsspCyclops {
  using Value = double;
  using Message = double;

  VertexId source = 0;

  [[nodiscard]] Value init(VertexId v, const graph::GraphStore&) const noexcept {
    return v == source ? 0.0 : kInfDistance;
  }
  [[nodiscard]] Message init_shared(VertexId v, const graph::GraphStore& g) const noexcept {
    return init(v, g);
  }
  [[nodiscard]] bool initially_active(VertexId v, const graph::GraphStore&) const noexcept {
    return v == source;
  }

  template <typename Ctx>
  void compute(Ctx& ctx) const {
    double best = ctx.value();
    for (const auto& e : ctx.in_edges()) {
      const double d = ctx.data(e.slot);
      if (d + e.weight < best) best = d + e.weight;
    }
    const bool improved = best < ctx.value();
    if (improved) ctx.set_value(best);
    ctx.mark_converged(!improved);
    if (improved || (ctx.superstep() == 0 && ctx.vertex() == source)) {
      ctx.activate_neighbors(ctx.value());
    }
  }
};

/// GAS SSSP: gather takes the min relaxed distance over in-edges; scatter
/// re-activates out-neighbors whenever the distance improved (Bellman-Ford
/// over the vertex cut).
struct SsspGas {
  using Value = double;
  using Gather = double;

  VertexId source = 0;

  [[nodiscard]] Value init(VertexId v, std::size_t, std::size_t) const noexcept {
    return v == source ? 0.0 : kInfDistance;
  }
  [[nodiscard]] Gather gather_zero() const noexcept { return kInfDistance; }
  [[nodiscard]] Gather gather(const Value&, const Value& nbr, double w) const noexcept {
    return nbr + w;
  }
  [[nodiscard]] Gather merge(const Gather& a, const Gather& b) const noexcept {
    return a < b ? a : b;
  }
  [[nodiscard]] Value apply(const Value& old, const Gather& acc) const noexcept {
    return acc < old ? acc : old;
  }
  [[nodiscard]] bool scatter_activates(const Value& old, const Value& next) const noexcept {
    return next < old;
  }
};

/// Sequential Dijkstra ground truth.
[[nodiscard]] std::vector<double> sssp_reference(const graph::GraphStore& g, VertexId source);

}  // namespace cyclops::algo
