#include "cyclops/algorithms/sssp.hpp"

#include <queue>

#include "cyclops/common/check.hpp"

namespace cyclops::algo {

std::vector<double> sssp_reference(const graph::GraphStore& g, VertexId source) {
  CYCLOPS_CHECK(source < g.num_vertices());
  std::vector<double> dist(g.num_vertices(), kInfDistance);
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  graph::AdjCursor cur;
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (const graph::Adj& a : g.out_neighbors(v, cur)) {
      const double nd = d + a.weight;
      if (nd < dist[a.neighbor]) {
        dist[a.neighbor] = nd;
        heap.emplace(nd, a.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace cyclops::algo
