#pragma once
// Tiny fixed-size dense linear algebra for ALS: symmetric positive-definite
// K×K solve via Cholesky. K is a compile-time constant (latent factor rank).

#include <array>
#include <cmath>

#include "cyclops/common/check.hpp"

namespace cyclops::algo {

template <std::size_t K>
using Vec = std::array<double, K>;

template <std::size_t K>
struct Mat {
  std::array<double, K * K> a{};

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return a[r * K + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return a[r * K + c];
  }

  /// Adds v·vᵀ (rank-one update).
  void add_outer(const Vec<K>& v) noexcept {
    for (std::size_t r = 0; r < K; ++r) {
      for (std::size_t c = 0; c < K; ++c) (*this)(r, c) += v[r] * v[c];
    }
  }

  void add_diagonal(double d) noexcept {
    for (std::size_t i = 0; i < K; ++i) (*this)(i, i) += d;
  }
};

template <std::size_t K>
[[nodiscard]] double dot(const Vec<K>& a, const Vec<K>& b) noexcept {
  double s = 0;
  for (std::size_t i = 0; i < K; ++i) s += a[i] * b[i];
  return s;
}

template <std::size_t K>
void axpy(Vec<K>& y, double alpha, const Vec<K>& x) noexcept {
  for (std::size_t i = 0; i < K; ++i) y[i] += alpha * x[i];
}

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// (A = L Lᵀ, forward then backward substitution). Returns false if A is not
/// (numerically) positive definite.
template <std::size_t K>
[[nodiscard]] bool cholesky_solve(Mat<K> a, Vec<K> b, Vec<K>& x) noexcept {
  // Decompose in place: lower triangle becomes L.
  for (std::size_t c = 0; c < K; ++c) {
    double diag = a(c, c);
    for (std::size_t k = 0; k < c; ++k) diag -= a(c, k) * a(c, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double l = std::sqrt(diag);
    a(c, c) = l;
    for (std::size_t r = c + 1; r < K; ++r) {
      double v = a(r, c);
      for (std::size_t k = 0; k < c; ++k) v -= a(r, k) * a(c, k);
      a(r, c) = v / l;
    }
  }
  // Forward: L y = b.
  for (std::size_t r = 0; r < K; ++r) {
    double v = b[r];
    for (std::size_t k = 0; k < r; ++k) v -= a(r, k) * b[k];
    b[r] = v / a(r, r);
  }
  // Backward: Lᵀ x = y.
  for (std::size_t r = K; r-- > 0;) {
    double v = b[r];
    for (std::size_t k = r + 1; k < K; ++k) v -= a(k, r) * x[k];
    x[r] = v / a(r, r);
  }
  return true;
}

}  // namespace cyclops::algo
