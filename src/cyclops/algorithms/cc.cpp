#include "cyclops/algorithms/cc.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace cyclops::algo {

namespace {
VertexId find_root(std::vector<VertexId>& parent, VertexId v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];  // path halving
    v = parent[v];
  }
  return v;
}
}  // namespace

std::vector<VertexId> cc_reference(const graph::GraphStore& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> parent(n);
  std::iota(parent.begin(), parent.end(), VertexId{0});
  graph::AdjCursor cur;
  for (VertexId v = 0; v < n; ++v) {
    for (const graph::Adj& a : g.out_neighbors(v, cur)) {
      const VertexId ra = find_root(parent, v);
      const VertexId rb = find_root(parent, a.neighbor);
      if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
    }
  }
  std::vector<VertexId> labels(n);
  for (VertexId v = 0; v < n; ++v) labels[v] = find_root(parent, v);
  return labels;
}

std::size_t count_components(std::span<const VertexId> labels) {
  std::set<VertexId> distinct(labels.begin(), labels.end());
  return distinct.size();
}

}  // namespace cyclops::algo
