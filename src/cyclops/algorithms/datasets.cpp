#include "cyclops/algorithms/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cyclops/graph/generators.hpp"

namespace cyclops::algo {

namespace {
unsigned scaled_scale(unsigned base_scale, double factor) {
  // R-MAT vertex counts move in powers of two; shift by log2(factor).
  const int shift = static_cast<int>(std::lround(std::log2(std::max(factor, 0.01))));
  const int s = std::clamp(static_cast<int>(base_scale) + shift, 6, 24);
  return static_cast<unsigned>(s);
}

std::size_t scaled(std::size_t base, double factor) {
  return std::max<std::size_t>(16, static_cast<std::size_t>(static_cast<double>(base) * factor));
}
}  // namespace

std::string Dataset::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (paper |V|=%u |E|=%zu; stand-in |V|=%u |E|=%zu)",
                name.c_str(), paper_vertices, paper_edges, edges.num_vertices(),
                edges.num_edges());
  return buf;
}

// The four web/social graphs combine R-MAT degree skew with block-level link
// locality (web_graph generator); edge budgets keep the paper's relative
// |E|/|V| density ordering (Wiki densest).
namespace {
graph::EdgeList make_web(unsigned scale, std::size_t edges, double locality,
                         std::uint64_t seed, double factor) {
  graph::gen::WebSpec spec;
  spec.scale = scaled_scale(scale, factor);
  spec.edges = scaled(edges, factor);
  spec.locality = locality;
  return graph::gen::web_graph(spec, seed);
}
}  // namespace

Dataset make_amazon(const DatasetScale& s) {
  Dataset d;
  d.name = "Amazon";
  d.paper_vertices = 403394;
  d.paper_edges = 3387388;
  d.edges = make_web(13, 75000, 0.80, s.seed + 1, s.factor);  // product co-purchase: high locality
  return d;
}

Dataset make_gweb(const DatasetScale& s) {
  Dataset d;
  d.name = "GWeb";
  d.paper_vertices = 875713;
  d.paper_edges = 5105039;
  d.edges = make_web(14, 110000, 0.75, s.seed + 2, s.factor);  // web: host-level locality
  return d;
}

Dataset make_ljournal(const DatasetScale& s) {
  Dataset d;
  d.name = "LJournal";
  d.paper_vertices = 4847571;
  d.paper_edges = 69993773;
  d.edges = make_web(15, 330000, 0.65, s.seed + 3, s.factor);  // social: weaker locality
  return d;
}

Dataset make_wiki(const DatasetScale& s) {
  Dataset d;
  d.name = "Wiki";
  d.paper_vertices = 5716808;
  d.paper_edges = 130160392;
  d.edges = make_web(16, 760000, 0.65, s.seed + 4, s.factor);
  return d;
}

Dataset make_syn_gl(const DatasetScale& s) {
  Dataset d;
  d.name = "SYN-GL";
  d.workload = Workload::kAls;
  d.paper_vertices = 110000;
  d.paper_edges = 2729572;
  graph::gen::BipartiteSpec spec;
  spec.users = static_cast<VertexId>(scaled(2400, s.factor));
  spec.items = static_cast<VertexId>(scaled(800, s.factor));
  spec.ratings_per_user = 12;
  d.edges = graph::gen::bipartite_ratings(spec, s.seed + 5);
  d.num_users = spec.users;
  return d;
}

Dataset make_dblp(const DatasetScale& s) {
  Dataset d;
  d.name = "DBLP";
  d.workload = Workload::kCd;
  d.paper_vertices = 317080;
  d.paper_edges = 1049866;
  graph::gen::CommunitySpec spec;
  spec.communities = static_cast<VertexId>(scaled(250, s.factor));
  spec.group_size = 40;
  spec.degree = 7;
  spec.p_internal = 0.85;
  d.edges = graph::gen::planted_communities(spec, s.seed + 6);
  return d;
}

Dataset make_road_ca(const DatasetScale& s) {
  Dataset d;
  d.name = "RoadCA";
  d.workload = Workload::kSssp;
  d.paper_vertices = 1965206;
  d.paper_edges = 5533214;
  graph::gen::RoadSpec spec;
  const auto side = static_cast<VertexId>(
      std::max(24.0, 130.0 * std::sqrt(std::max(s.factor, 0.01))));
  spec.rows = side;
  spec.cols = side;
  d.edges = graph::gen::road_grid(spec, s.seed + 7);
  return d;
}

std::vector<Dataset> make_all_datasets(const DatasetScale& scale) {
  std::vector<Dataset> all;
  all.push_back(make_amazon(scale));
  all.push_back(make_gweb(scale));
  all.push_back(make_ljournal(scale));
  all.push_back(make_wiki(scale));
  all.push_back(make_syn_gl(scale));
  all.push_back(make_dblp(scale));
  all.push_back(make_road_ca(scale));
  return all;
}

}  // namespace cyclops::algo
