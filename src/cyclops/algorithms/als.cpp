#include "cyclops/algorithms/als.hpp"

#include <cmath>

#include "cyclops/common/check.hpp"
#include "cyclops/common/rng.hpp"

namespace cyclops::algo {

Factor als_init_factor(VertexId v) noexcept {
  Factor f{};
  SplitMix64 sm(0x9e3779b9u + static_cast<std::uint64_t>(v));
  for (double& x : f) {
    x = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  }
  return f;
}

Factor als_solve(std::span<const Factor> neighbor_factors, std::span<const double> ratings,
                 double lambda) {
  CYCLOPS_CHECK(neighbor_factors.size() == ratings.size());
  Mat<kAlsRank> a;
  Vec<kAlsRank> b{};
  for (std::size_t i = 0; i < neighbor_factors.size(); ++i) {
    a.add_outer(neighbor_factors[i]);
    axpy(b, ratings[i], neighbor_factors[i]);
  }
  a.add_diagonal(lambda * static_cast<double>(neighbor_factors.size()) + 1e-9);
  Vec<kAlsRank> x{};
  if (!cholesky_solve(a, b, x)) {
    return Vec<kAlsRank>{};  // degenerate neighborhood; reset the factor
  }
  return x;
}

double als_rmse(const graph::GraphStore& g, VertexId num_users, std::span<const Factor> factors) {
  double sq = 0;
  std::size_t count = 0;
  graph::AdjCursor cur;
  for (VertexId u = 0; u < num_users && u < g.num_vertices(); ++u) {
    for (const graph::Adj& a : g.out_neighbors(u, cur)) {
      if (a.neighbor < num_users) continue;  // user-user edge: not a rating
      const double predicted = dot(factors[u], factors[a.neighbor]);
      const double err = predicted - a.weight;
      sq += err * err;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(sq / static_cast<double>(count)) : 0.0;
}

std::vector<Factor> als_reference(const graph::GraphStore& g, VertexId num_users, unsigned rounds,
                                  double lambda) {
  const VertexId n = g.num_vertices();
  std::vector<Factor> factors(n);
  for (VertexId v = 0; v < n; ++v) factors[v] = als_init_factor(v);
  std::vector<Factor> nbr;
  std::vector<double> ratings;
  graph::AdjCursor cur;
  for (unsigned round = 0; round < rounds; ++round) {
    const bool users_turn = (round % 2) == 0;
    std::vector<Factor> next = factors;
    for (VertexId v = 0; v < n; ++v) {
      const bool is_user = v < num_users;
      if (is_user != users_turn) continue;
      nbr.clear();
      ratings.clear();
      for (const graph::Adj& a : g.in_neighbors(v, cur)) {
        nbr.push_back(factors[a.neighbor]);
        ratings.push_back(a.weight);
      }
      if (!nbr.empty()) next[v] = als_solve(nbr, ratings, lambda);
    }
    factors.swap(next);
  }
  return factors;
}

}  // namespace cyclops::algo
