#pragma once
// Rendering of RunStats into the paper's reporting shapes: phase-breakdown
// rows (Figure 10/12), per-superstep series (Figures 3/10), and CSV export.

#include <string>

#include "cyclops/metrics/job_stats.hpp"
#include "cyclops/metrics/recovery_stats.hpp"
#include "cyclops/metrics/superstep_stats.hpp"

namespace cyclops::metrics {

/// One "SYN | PRS | CMP | SND" breakdown line, normalized or absolute.
[[nodiscard]] std::string phase_breakdown_row(const std::string& label, const RunStats& run,
                                              bool normalized);

/// Per-superstep series "superstep, active, messages" — Figure 10(2)/(3).
[[nodiscard]] std::string superstep_series_csv(const RunStats& run);

/// Short one-line summary used by examples.
[[nodiscard]] std::string run_summary(const std::string& label, const RunStats& run);

/// One-line fault-tolerance summary: checkpoints, bytes, faults, rollbacks.
[[nodiscard]] std::string recovery_summary(const RecoveryStats& rec);

/// One-line per-job summary for the service layer: tenant, algo/engine,
/// pinned epoch, queue wait, run time, supersteps, outcome.
[[nodiscard]] std::string job_summary(const JobStats& job);

}  // namespace cyclops::metrics
