#include "cyclops/metrics/superstep_stats.hpp"

namespace cyclops::metrics {
static_assert(sizeof(SuperstepStats) > 0);
}  // namespace cyclops::metrics
