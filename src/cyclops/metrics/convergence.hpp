#pragma once
// Convergence measurement: L1-norm distance to a reference solution over
// time (Figure 13(3)) and per-vertex final-error distributions (Figure 3(3)).

#include <cstdint>
#include <span>
#include <vector>

namespace cyclops::metrics {

/// Records (elapsed seconds, L1 distance to reference) samples, one per
/// superstep; engines invoke the tracker via their per-superstep observer.
class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(std::vector<double> reference);

  void sample(double elapsed_s, std::span<const double> values);

  struct Point {
    double elapsed_s = 0;
    double l1 = 0;
  };
  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }

  [[nodiscard]] static double l1_distance(std::span<const double> a,
                                          std::span<const double> b);

 private:
  std::vector<double> reference_;
  std::vector<Point> points_;
};

/// Per-vertex |final - reference| errors, ranked by reference value
/// descending (the paper sorts by rank importance). Entry .second is the
/// error; .first the vertex id.
[[nodiscard]] std::vector<std::pair<std::uint32_t, double>> ranked_errors(
    std::span<const double> reference, std::span<const double> values);

}  // namespace cyclops::metrics
