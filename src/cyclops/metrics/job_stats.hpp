#pragma once
// Per-job accounting for the multi-tenant service layer (service::JobScheduler
// fills one of these per submission and the Service facade surfaces them
// through metrics::job_summary(), the same reporter path the engines use for
// run and recovery summaries).

#include <cstdint>
#include <string>

namespace cyclops::metrics {

struct JobStats {
  std::uint64_t job_id = 0;
  std::string tenant;
  std::string algo;    ///< pr | sssp | cc | als
  std::string engine;  ///< hama | cyclops | mt | gas
  std::uint64_t epoch = 0;  ///< snapshot epoch the job was pinned to
  int priority = 0;

  double queue_wait_s = 0;    ///< admission -> dispatch
  double run_s = 0;           ///< dispatch -> completion (wall, incl. realized wire time)
  double modeled_comm_s = 0;  ///< cost-model wire + barrier time of the run
  std::size_t supersteps = 0;
  double started_s = 0;   ///< dispatch time, seconds since scheduler start
  double finished_s = 0;  ///< completion time, seconds since scheduler start

  /// ok | cancelled | failed: <reason>
  std::string outcome = "ok";
};

}  // namespace cyclops::metrics
