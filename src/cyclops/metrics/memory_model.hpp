#pragma once
// Memory-behaviour model for Table 2. The paper measures JVM heap usage and
// GC counts with jStat; this repo has no JVM, so engines report the concrete
// byte footprints that drove those numbers instead: resident graph state,
// replica storage, and transient message churn (the allocation pressure that
// caused Hama's young-generation GCs).

#include <cstdint>

namespace cyclops::metrics {

struct MemoryReport {
  std::uint64_t vertex_state_bytes = 0;   ///< master values + adjacency
  std::uint64_t replica_bytes = 0;        ///< replicated shared data
  std::uint64_t peak_message_bytes = 0;   ///< largest in-flight buffered volume
  std::uint64_t message_churn_bytes = 0;  ///< total transient message allocation
  std::uint64_t message_alloc_count = 0;  ///< total message objects created

  // Store-backend split (GraphStore::memory()): what the graph keeps in RAM
  // vs. on disk, so bench_table2_memory rows compare fairly across the
  // memory/compact/stream backends. store_resident_bytes is already included
  // in vertex_state_bytes; the disk side is reported separately.
  std::uint64_t store_resident_bytes = 0;  ///< graph bytes that must stay in RAM
  std::uint64_t store_on_disk_bytes = 0;   ///< graph bytes paged/streamed from disk
  std::uint64_t message_spill_bytes = 0;   ///< buffered bytes above the store budget

  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return vertex_state_bytes + replica_bytes;
  }
  [[nodiscard]] std::uint64_t peak_bytes() const noexcept {
    return resident_bytes() + peak_message_bytes;
  }
  [[nodiscard]] std::uint64_t on_disk_bytes() const noexcept {
    return store_on_disk_bytes + message_spill_bytes;
  }

  /// Young-GC analog: transient allocation churn divided by a nursery size.
  [[nodiscard]] double young_gc_equivalent(std::uint64_t nursery_bytes) const noexcept {
    return nursery_bytes == 0
               ? 0.0
               : static_cast<double>(message_churn_bytes) / static_cast<double>(nursery_bytes);
  }
};

}  // namespace cyclops::metrics
