#pragma once
// Per-superstep execution statistics shared by all engines. The phase split
// follows §3.5: message parsing (PRS), vertex computation (CMP), message
// sending (SND), and the global barrier (SYN). Cyclops has no PRS phase —
// receiving threads apply updates directly — so its PRS stays 0.

#include <cstdint>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/sim/counters.hpp"

namespace cyclops::metrics {

struct PhaseTimes {
  double prs_s = 0;  ///< message parsing
  double cmp_s = 0;  ///< vertex computation
  double snd_s = 0;  ///< message sending (serialize + enqueue + delivery work)
  double syn_s = 0;  ///< barrier + modeled communication wait

  [[nodiscard]] double total_s() const noexcept { return prs_s + cmp_s + snd_s + syn_s; }

  PhaseTimes& operator+=(const PhaseTimes& o) noexcept {
    prs_s += o.prs_s;
    cmp_s += o.cmp_s;
    snd_s += o.snd_s;
    syn_s += o.syn_s;
    return *this;
  }
};

struct SuperstepStats {
  Superstep superstep = 0;
  std::uint64_t active_vertices = 0;
  std::uint64_t computed_vertices = 0;  ///< compute() invocations
  sim::NetSnapshot net;                 ///< traffic of this superstep
  std::uint64_t redundant_messages = 0; ///< payload identical to previous superstep
  std::uint64_t converged_vertices = 0; ///< cumulative, by local error
  PhaseTimes phases;                    ///< measured wall time per phase
  double modeled_comm_s = 0;            ///< cost-model wire time
  double modeled_barrier_s = 0;
};

/// Whole-run result common to every engine.
struct RunStats {
  std::vector<SuperstepStats> supersteps;
  double ingress_s = 0;            ///< layout/replica construction time
  double elapsed_s = 0;            ///< measured wall time of the run loop
  std::uint64_t peak_buffered_bytes = 0;

  [[nodiscard]] PhaseTimes phase_totals() const noexcept {
    PhaseTimes t;
    for (const auto& s : supersteps) t += s.phases;
    return t;
  }
  [[nodiscard]] sim::NetSnapshot net_totals() const noexcept {
    sim::NetSnapshot n;
    for (const auto& s : supersteps) n += s.net;
    return n;
  }
  [[nodiscard]] double modeled_comm_total_s() const noexcept {
    double t = 0;
    for (const auto& s : supersteps) t += s.modeled_comm_s + s.modeled_barrier_s;
    return t;
  }
  [[nodiscard]] double modeled_wire_s() const noexcept {
    double t = 0;
    for (const auto& s : supersteps) t += s.modeled_comm_s;
    return t;
  }
  [[nodiscard]] double modeled_barrier_s() const noexcept {
    double t = 0;
    for (const auto& s : supersteps) t += s.modeled_barrier_s;
    return t;
  }
  /// The headline "execution time" figure: measured work plus modeled wire
  /// time (see DESIGN.md §5 — on a 1-core host thread-level overlap does not
  /// materialize, so time compositions are additive and conservative).
  [[nodiscard]] double total_time_s() const noexcept {
    return elapsed_s + modeled_comm_total_s();
  }
};

}  // namespace cyclops::metrics
