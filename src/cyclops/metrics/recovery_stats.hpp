#pragma once
// Whole-run fault-tolerance accounting, surfaced next to RunStats by the
// recovery runtime (runtime::run_with_recovery) and reported by
// metrics::recovery_summary(). Checkpoint-side fields come from the
// CheckpointManager; fault/rollback fields from the RecoveryCoordinator loop.

#include <cstdint>

namespace cyclops::metrics {

struct RecoveryStats {
  // Checkpoint side.
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes_written = 0;  ///< raw payload bytes, all checkpoints
  std::uint64_t last_checkpoint_bytes = 0;
  double modeled_checkpoint_s = 0;  ///< modeled stable-storage write time

  // Fault / recovery side.
  std::uint32_t faults_detected = 0;  ///< fatal faults (machine crashes) seen
  std::uint32_t recoveries = 0;       ///< successful rollback-and-replay cycles
  std::uint64_t lost_supersteps = 0;  ///< supersteps replayed across recoveries
  double modeled_recovery_s = 0;      ///< failure detection + snapshot reload

  // Absorbed wire faults (never fatal; charged to the cost model).
  std::uint64_t dropped_packages = 0;
  std::uint64_t corrupted_packages = 0;
  std::uint64_t retransmissions = 0;
  double modeled_fault_overhead_s = 0;
};

}  // namespace cyclops::metrics
