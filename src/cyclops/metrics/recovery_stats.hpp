#pragma once
// Whole-run fault-tolerance accounting, surfaced next to RunStats by the
// recovery runtime (runtime::run_with_recovery) and reported by
// metrics::recovery_summary(). Checkpoint-side fields come from the
// CheckpointManager; fault/rollback fields from the RecoveryCoordinator loop.

#include <cstdint>

namespace cyclops::metrics {

struct RecoveryStats {
  // Checkpoint side.
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes_written = 0;  ///< raw payload bytes, all checkpoints
  std::uint64_t last_checkpoint_bytes = 0;
  double modeled_checkpoint_s = 0;  ///< modeled stable-storage write time

  // Fault / recovery side.
  std::uint32_t faults_detected = 0;  ///< fatal faults (machine crashes) seen
  std::uint32_t recoveries = 0;       ///< successful rollback-and-replay cycles
  std::uint32_t corrupt_checkpoints = 0;  ///< snapshots rejected at restore time
  std::uint64_t lost_supersteps = 0;  ///< supersteps replayed across recoveries
  /// Modeled time-to-recover: failure detection + snapshot reload + the
  /// mode-dependent replay charge (full-cluster re-execution for rollback;
  /// the failed machine's compute share + logged re-feed wire for log-based
  /// modes — see runtime/recovery.hpp).
  double modeled_recovery_s = 0;

  // Log-based recovery (message logging + localized replay).
  std::uint64_t log_bytes = 0;     ///< message-log payload volume, cumulative
  std::uint64_t log_packages = 0;  ///< remote packages logged
  std::uint64_t replay_verified_packages = 0;  ///< replayed, byte-identical to log
  std::uint64_t replay_log_mismatches = 0;  ///< replayed but differing or unlogged
  /// Physical cost of the replayed supersteps inside the final run segment
  /// (the simulator re-executes the window deterministically; log-based
  /// modes charge only a slice of it to modeled_recovery_s).
  double replay_window_s = 0;

  // Absorbed wire faults (never fatal; charged to the cost model).
  std::uint64_t dropped_packages = 0;
  std::uint64_t corrupted_packages = 0;
  std::uint64_t retransmissions = 0;
  double modeled_fault_overhead_s = 0;
};

}  // namespace cyclops::metrics
