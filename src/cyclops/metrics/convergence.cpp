#include "cyclops/metrics/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "cyclops/common/check.hpp"

namespace cyclops::metrics {

ConvergenceTracker::ConvergenceTracker(std::vector<double> reference)
    : reference_(std::move(reference)) {}

double ConvergenceTracker::l1_distance(std::span<const double> a, std::span<const double> b) {
  CYCLOPS_CHECK(a.size() == b.size());
  double total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total;
}

void ConvergenceTracker::sample(double elapsed_s, std::span<const double> values) {
  points_.push_back(Point{elapsed_s, l1_distance(reference_, values)});
}

std::vector<std::pair<std::uint32_t, double>> ranked_errors(
    std::span<const double> reference, std::span<const double> values) {
  CYCLOPS_CHECK(reference.size() == values.size());
  std::vector<std::pair<std::uint32_t, double>> out(reference.size());
  std::vector<std::uint32_t> order(reference.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return reference[a] != reference[b] ? reference[a] > reference[b] : a < b;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::uint32_t v = order[rank];
    out[rank] = {v, std::abs(values[v] - reference[v])};
  }
  return out;
}

}  // namespace cyclops::metrics
