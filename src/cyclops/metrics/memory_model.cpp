#include "cyclops/metrics/memory_model.hpp"

namespace cyclops::metrics {
static_assert(sizeof(MemoryReport) > 0);
}  // namespace cyclops::metrics
