#include "cyclops/metrics/reporter.hpp"

#include <cstdio>
#include <sstream>

namespace cyclops::metrics {

std::string phase_breakdown_row(const std::string& label, const RunStats& run,
                                bool normalized) {
  const PhaseTimes t = run.phase_totals();
  // Attribution matches the paper's phases: SND includes the (modeled) wire
  // time of message transfer; SYN includes the (modeled) barrier wait.
  const double syn = t.syn_s + run.modeled_barrier_s();
  const double snd = t.snd_s + run.modeled_wire_s();
  const double total = t.prs_s + t.cmp_s + snd + syn;
  char buf[256];
  if (normalized && total > 0) {
    std::snprintf(buf, sizeof(buf), "%-24s SYN %5.1f%%  PRS %5.1f%%  CMP %5.1f%%  SND %5.1f%%",
                  label.c_str(), 100 * syn / total, 100 * t.prs_s / total,
                  100 * t.cmp_s / total, 100 * snd / total);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%-24s SYN %7.3fs  PRS %7.3fs  CMP %7.3fs  SND %7.3fs  total %7.3fs",
                  label.c_str(), syn, t.prs_s, t.cmp_s, snd, total);
  }
  return buf;
}

std::string superstep_series_csv(const RunStats& run) {
  std::ostringstream out;
  out << "superstep,active_vertices,messages,redundant_messages,converged\n";
  for (const auto& s : run.supersteps) {
    out << s.superstep << ',' << s.active_vertices << ',' << s.net.total_messages() << ','
        << s.redundant_messages << ',' << s.converged_vertices << '\n';
  }
  return out.str();
}

std::string run_summary(const std::string& label, const RunStats& run) {
  const auto net = run.net_totals();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %zu supersteps, %.3fs total (%.3fs measured + %.3fs modeled comm), "
                "%llu messages (%llu remote)",
                label.c_str(), run.supersteps.size(), run.total_time_s(), run.elapsed_s,
                run.modeled_comm_total_s(),
                static_cast<unsigned long long>(net.total_messages()),
                static_cast<unsigned long long>(net.remote_messages));
  return buf;
}

std::string recovery_summary(const RecoveryStats& rec) {
  char buf[448];
  std::snprintf(
      buf, sizeof(buf),
      "recovery: %llu checkpoints (%llu bytes, %.3fs modeled write, %u corrupt), "
      "%u faults -> %u rollbacks, %llu supersteps replayed, %.3fs modeled recovery; "
      "log: %llu packages (%llu bytes), %llu verified, %llu mismatched; "
      "wire: %llu dropped, %llu corrupted, %llu retransmitted (+%.3fs)",
      static_cast<unsigned long long>(rec.checkpoints_taken),
      static_cast<unsigned long long>(rec.checkpoint_bytes_written),
      rec.modeled_checkpoint_s, rec.corrupt_checkpoints, rec.faults_detected,
      rec.recoveries, static_cast<unsigned long long>(rec.lost_supersteps),
      rec.modeled_recovery_s, static_cast<unsigned long long>(rec.log_packages),
      static_cast<unsigned long long>(rec.log_bytes),
      static_cast<unsigned long long>(rec.replay_verified_packages),
      static_cast<unsigned long long>(rec.replay_log_mismatches),
      static_cast<unsigned long long>(rec.dropped_packages),
      static_cast<unsigned long long>(rec.corrupted_packages),
      static_cast<unsigned long long>(rec.retransmissions), rec.modeled_fault_overhead_s);
  return buf;
}

std::string job_summary(const JobStats& job) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "job #%llu [%s] %s/%s epoch %llu prio %d: %s; "
                "queued %.3fs, ran %.3fs (%zu supersteps, %.3fs modeled comm)",
                static_cast<unsigned long long>(job.job_id), job.tenant.c_str(),
                job.engine.c_str(), job.algo.c_str(),
                static_cast<unsigned long long>(job.epoch), job.priority,
                job.outcome.c_str(), job.queue_wait_s, job.run_s, job.supersteps,
                job.modeled_comm_s);
  return buf;
}

}  // namespace cyclops::metrics
