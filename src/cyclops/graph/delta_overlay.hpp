#pragma once
// DeltaOverlay — structural-sharing store backend for mutation epochs.
//
// An overlay layers a small mutated-adjacency patch over the previous
// epoch's immutable base store instead of copying it: only vertices whose
// adjacency actually changed get materialized (re-filtered + re-merged)
// adjacency arrays; every other vertex delegates straight to the base.
// Publication of a mutation epoch therefore allocates O(touched adjacency),
// not O(|E|) — the structural-sharing half of ROADMAP item 3.
//
// Invariants:
//   - The base store is *never* mutated; the overlay only reads it. The
//     caller must keep the base alive for the overlay's lifetime (the
//     service layer pins the base epoch's Snapshot via SnapshotRef).
//   - Enumeration order stays canonical (ascending neighbor id), so
//     partitions, layouts, and wire digests remain comparable with a flat
//     rebuild of the mutated graph. For multi-edges on the same (src, dst)
//     pair this holds whenever their weights are equal (the repo's edge
//     pipelines dedupe pairs); distinct-weight parallels may tie-break
//     differently than a flat re-sort.
//   - Overlays chain (an overlay's base may itself be an overlay); `depth()`
//     reports the chain length so the publication path can trigger
//     compaction back to a flat store before lookup cost degrades.
//
// Remove semantics match TopologyDelta::Canonical: a remove names a
// (src, dst) pair and erases every matching edge regardless of weight.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cyclops/graph/edge_list.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::graph {

class DeltaOverlay final : public GraphStore {
 public:
  /// Builds the overlay for canonical `adds`/`removes` over `base`.
  /// `base` must outlive the overlay and must never change underneath it.
  DeltaOverlay(const GraphStore& base, const std::vector<Edge>& adds,
               const std::vector<Edge>& removes);

  [[nodiscard]] StoreKind kind() const noexcept override { return StoreKind::kDelta; }
  [[nodiscard]] VertexId num_vertices() const noexcept override { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept override { return m_; }
  [[nodiscard]] std::size_t out_degree(VertexId v) const noexcept override;
  [[nodiscard]] std::size_t in_degree(VertexId v) const noexcept override;
  [[nodiscard]] std::span<const Adj> out_neighbors(VertexId v, AdjCursor& cur) const override;
  [[nodiscard]] std::span<const Adj> in_neighbors(VertexId v, AdjCursor& cur) const override;

  /// Overlay-only footprint: the patch arrays this epoch newly allocated.
  /// The shared base is accounted by the epoch that built it — that split is
  /// exactly the o(|E|) publication-cost claim bench_ingest measures.
  [[nodiscard]] StoreMemory memory() const noexcept override;
  [[nodiscard]] std::uint64_t message_budget_bytes() const noexcept override {
    return base_->message_budget_bytes();
  }

  [[nodiscard]] const GraphStore& base() const noexcept { return *base_; }
  /// Overlay chain length: 1 over a flat base, base.depth()+1 over an overlay.
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  /// Distinct vertices whose adjacency this overlay re-materialized.
  [[nodiscard]] std::size_t overlay_vertices() const noexcept {
    return out_.verts.size() + in_.verts.size();
  }
  /// Adjacency entries held by the patch (both directions).
  [[nodiscard]] std::size_t overlay_entries() const noexcept {
    return out_.adj.size() + in_.adj.size();
  }
  [[nodiscard]] std::size_t added_edges() const noexcept { return added_edges_; }
  [[nodiscard]] std::size_t removed_edges() const noexcept { return removed_edges_; }

  /// Flattens the overlay view into a fresh edge list (canonical enumeration
  /// order) — the compaction path back to a flat store.
  [[nodiscard]] EdgeList materialize() const;

 private:
  // One direction of the patch: touched vertex ids (sorted) + a mini-CSR of
  // their full re-merged adjacency.
  struct Patch {
    std::vector<VertexId> verts;
    std::vector<std::size_t> offsets;  // verts.size() + 1
    std::vector<Adj> adj;

    [[nodiscard]] std::ptrdiff_t find(VertexId v) const noexcept;
    [[nodiscard]] std::span<const Adj> slice(std::ptrdiff_t i) const noexcept {
      return {adj.data() + offsets[static_cast<std::size_t>(i)],
              offsets[static_cast<std::size_t>(i) + 1] - offsets[static_cast<std::size_t>(i)]};
    }
  };

  const GraphStore* base_;
  VertexId n_ = 0;
  std::size_t m_ = 0;
  std::uint32_t depth_ = 1;
  std::size_t added_edges_ = 0;
  std::size_t removed_edges_ = 0;
  Patch out_;
  Patch in_;

  [[nodiscard]] static Patch build_patch(const GraphStore& base, bool out_side,
                                         const std::vector<Edge>& adds,
                                         const std::vector<Edge>& removes, VertexId n,
                                         std::size_t& removed_count);
};

}  // namespace cyclops::graph
