#pragma once
// StreamStore — the out-of-core GraphStore backend (GraphD-style, see
// PAPERS.md): only O(|V|) index state stays resident (byte offsets + degrees
// per direction); the varint-compressed adjacency blob lives in an unlinked
// temp file and is paged through per-cursor read windows sized from the
// memory cap. Supersteps scan vertices in ascending order, so consecutive
// queries hit the same window and each superstep streams the blob once.
// Message buffering above the store's budget is charged as disk spill by the
// runtime's exchange accounting (sim::CostModel::disk_byte_us).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::graph {

class Csr;

class StreamStore final : public GraphStore {
 public:
  /// Spills the adjacency of a built Csr to disk. Throws std::runtime_error
  /// when the spill file cannot be created or written.
  StreamStore(const Csr& g, const StoreOptions& opts);
  StreamStore(const StreamStore&) = delete;
  StreamStore& operator=(const StreamStore&) = delete;
  ~StreamStore() override;

  [[nodiscard]] StoreKind kind() const noexcept override { return StoreKind::kStream; }
  [[nodiscard]] VertexId num_vertices() const noexcept override { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept override {
    return static_cast<std::size_t>(m_);
  }
  [[nodiscard]] std::size_t out_degree(VertexId v) const noexcept override {
    return out_deg_[v];
  }
  [[nodiscard]] std::size_t in_degree(VertexId v) const noexcept override {
    return in_deg_[v];
  }
  [[nodiscard]] std::span<const Adj> out_neighbors(VertexId v,
                                                   AdjCursor& cur) const override;
  [[nodiscard]] std::span<const Adj> in_neighbors(VertexId v, AdjCursor& cur) const override;
  [[nodiscard]] StoreMemory memory() const noexcept override;
  [[nodiscard]] std::uint64_t message_budget_bytes() const noexcept override {
    return mem_cap_bytes_ / 2;
  }

  [[nodiscard]] std::uint64_t mem_cap_bytes() const noexcept { return mem_cap_bytes_; }
  [[nodiscard]] std::uint64_t window_bytes() const noexcept { return window_bytes_; }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept { return file_bytes_; }

 private:
  VertexId n_ = 0;
  std::uint64_t m_ = 0;
  bool inline_weights_ = false;
  double uniform_weight_ = 1.0;

  // Absolute byte offsets into the spill file, per direction (n+1 each).
  std::vector<std::uint64_t> out_off_, in_off_;
  std::vector<std::uint32_t> out_deg_, in_deg_;

  int fd_ = -1;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t mem_cap_bytes_ = 0;
  std::uint64_t window_bytes_ = 0;

  [[nodiscard]] std::span<const Adj> fetch(VertexId v, AdjCursor& cur,
                                           const std::vector<std::uint64_t>& off,
                                           const std::vector<std::uint32_t>& deg) const;
};

}  // namespace cyclops::graph
