#pragma once
// Synthetic graph generators standing in for the paper's datasets (see
// DESIGN.md substitution table). Each generator matches the *structural*
// property the corresponding experiment depends on: degree skew for the web
// graphs, bipartite structure for ALS, planted communities for CD, and a
// high-diameter weighted lattice for SSSP. All are deterministic in the seed.

#include <cstdint>

#include "cyclops/graph/edge_list.hpp"

namespace cyclops::graph::gen {

/// G(n, m) Erdős–Rényi digraph: m directed edges drawn uniformly.
[[nodiscard]] EdgeList erdos_renyi(VertexId n, std::size_t m, std::uint64_t seed);

/// R-MAT power-law digraph (Kronecker recursive quadrant sampling) over
/// 2^scale vertices with ~m edges. Defaults are the canonical (0.57, 0.19,
/// 0.19, 0.05) web-like parameters; duplicates are removed.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
};
[[nodiscard]] EdgeList rmat(unsigned scale, std::size_t m, std::uint64_t seed,
                            const RmatParams& params = {});

/// Web-graph stand-in with both degree skew and locality: a fraction
/// `locality` of edges stay within contiguous blocks of `block_size` vertices
/// (host-level link locality real web/social graphs exhibit, which is what
/// lets Metis-style partitioners shine — Figure 11), the rest are R-MAT
/// power-law edges (hubs). Duplicates removed.
struct WebSpec {
  unsigned scale = 14;          ///< 2^scale vertices
  std::size_t edges = 100000;
  double locality = 0.75;       ///< fraction of block-internal edges
  VertexId block_size = 64;
  RmatParams skew;
};
[[nodiscard]] EdgeList web_graph(const WebSpec& spec, std::uint64_t seed);

/// Barabási–Albert preferential attachment (undirected edges stored in both
/// directions): each new vertex attaches to `attach` existing vertices.
[[nodiscard]] EdgeList preferential_attachment(VertexId n, unsigned attach,
                                               std::uint64_t seed);

/// Bipartite users×items ratings graph for ALS: vertices [0, users) are
/// users, [users, users+items) are items. Each user rates ratings_per_user
/// items (power-law item popularity); weights are ratings in [1, 5]. Edges
/// are stored in both directions, as ALS alternates sides.
struct BipartiteSpec {
  VertexId users = 0;
  VertexId items = 0;
  unsigned ratings_per_user = 10;
};
[[nodiscard]] EdgeList bipartite_ratings(const BipartiteSpec& spec, std::uint64_t seed);

/// Planted-partition community graph for CD: `communities` groups of
/// `group_size` vertices; each vertex gets ~degree edges, a fraction
/// `p_internal` of which stay inside its community. Undirected storage.
struct CommunitySpec {
  VertexId communities = 0;
  VertexId group_size = 0;
  unsigned degree = 8;
  double p_internal = 0.9;
};
[[nodiscard]] EdgeList planted_communities(const CommunitySpec& spec, std::uint64_t seed);

/// Road-network analog for SSSP: rows×cols 4-neighbor lattice (undirected
/// storage) with a small fraction of extra "highway" shortcuts, weighted by
/// the paper's log-normal distribution (mu=0.4, sigma=1.2 by default).
struct RoadSpec {
  VertexId rows = 0;
  VertexId cols = 0;
  double shortcut_fraction = 0.01;  ///< extra edges relative to lattice edges
  double mu = 0.4;
  double sigma = 1.2;
};
[[nodiscard]] EdgeList road_grid(const RoadSpec& spec, std::uint64_t seed);

}  // namespace cyclops::graph::gen
