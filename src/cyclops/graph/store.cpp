#include "cyclops/graph/store.hpp"

#include <stdexcept>
#include <utility>

#include "cyclops/graph/compact_csr.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/edge_list.hpp"
#include "cyclops/graph/stream_store.hpp"

namespace cyclops::graph {

std::string_view store_kind_name(StoreKind kind) noexcept {
  switch (kind) {
    case StoreKind::kMemory: return "memory";
    case StoreKind::kCompact: return "compact";
    case StoreKind::kStream: return "stream";
    case StoreKind::kDelta: return "delta";
  }
  return "?";
}

StoreKind parse_store_kind(std::string_view name) {
  if (name == "memory") return StoreKind::kMemory;
  if (name == "compact") return StoreKind::kCompact;
  if (name == "stream") return StoreKind::kStream;
  // "delta" is deliberately not parseable: an overlay needs a base epoch and
  // is only produced by the snapshot publication path, never selected as a
  // buildable-from-scratch backend.
  throw std::runtime_error("unknown store kind '" + std::string(name) +
                           "' (expected memory|compact|stream)");
}

StoreOptions make_store_options(std::string_view kind, std::uint64_t mem_cap_mb,
                                std::string spill_dir) {
  StoreOptions o;
  o.kind = parse_store_kind(kind);
  o.mem_cap_bytes = mem_cap_mb << 20;
  o.spill_dir = std::move(spill_dir);
  return o;
}

std::unique_ptr<const GraphStore> make_store(const EdgeList& edges, const StoreOptions& opts) {
  // Every backend derives from the same built Csr so adjacency enumeration
  // order — and therefore partitions, layouts, and wire digests — is
  // bit-identical across store kinds.
  Csr csr = Csr::build(edges);
  switch (opts.kind) {
    case StoreKind::kMemory:
      return std::make_unique<const Csr>(std::move(csr));
    case StoreKind::kCompact:
      return std::make_unique<const CompactCsr>(CompactCsr::build(csr));
    case StoreKind::kStream:
      return std::make_unique<const StreamStore>(csr, opts);
    case StoreKind::kDelta:
      // Overlays are built over a live base epoch by the snapshot layer
      // (service/snapshot.cpp); from an edge list the flat CSR *is* the
      // correct realization.
      return std::make_unique<const Csr>(std::move(csr));
  }
  return std::make_unique<const Csr>(std::move(csr));
}

}  // namespace cyclops::graph
