#pragma once
// LEB128-style varint + delta codec shared by the compact and streaming
// store backends. Adjacency lists arrive sorted (canonical CSR order), so
// each list is encoded as an absolute first id followed by deltas — deltas
// may be zero because multi-edges are legal, hence the encoder stores the
// delta itself, never delta-1. Weights, when not uniform across the whole
// graph, ride inline as raw little-endian doubles after each id.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "cyclops/common/check.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::graph::detail {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint at `p`, advancing it. `end` guards truncated input.
[[nodiscard]] inline std::uint64_t get_varint(const std::uint8_t*& p,
                                              const std::uint8_t* end) noexcept {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (p < end) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return v;  // truncated input: caller's CRC/offset checks report it
}

/// Appends one sorted adjacency list: absolute first neighbor, then deltas.
/// With `inline_weights`, each id is followed by 8 raw bytes of its weight.
inline void encode_adj_list(std::vector<std::uint8_t>& out, std::span<const Adj> adj,
                            bool inline_weights) {
  VertexId prev = 0;
  bool first = true;
  for (const Adj& a : adj) {
    CYCLOPS_CHECK(first || a.neighbor >= prev);
    put_varint(out, first ? a.neighbor : a.neighbor - prev);
    prev = a.neighbor;
    first = false;
    if (inline_weights) {
      std::uint8_t raw[sizeof(double)];
      std::memcpy(raw, &a.weight, sizeof(double));
      out.insert(out.end(), raw, raw + sizeof(double));
    }
  }
}

/// Decodes `degree` entries from [p, end) into `out` (cleared first).
inline void decode_adj_list(std::vector<Adj>& out, std::size_t degree, const std::uint8_t* p,
                            const std::uint8_t* end, bool inline_weights,
                            double uniform_weight) {
  out.clear();
  out.reserve(degree);
  VertexId prev = 0;
  for (std::size_t i = 0; i < degree; ++i) {
    const auto delta = static_cast<VertexId>(get_varint(p, end));
    const VertexId id = (i == 0) ? delta : prev + delta;
    prev = id;
    double w = uniform_weight;
    if (inline_weights) {
      if (p + sizeof(double) <= end) std::memcpy(&w, p, sizeof(double));
      p += sizeof(double);
    }
    out.push_back(Adj{id, w});
  }
}

}  // namespace cyclops::graph::detail
