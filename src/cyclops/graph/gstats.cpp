#include "cyclops/graph/gstats.hpp"

#include <cmath>
#include <map>
#include <vector>

namespace cyclops::graph {

GraphStats compute_stats(const GraphStore& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  std::vector<double> out_deg(s.num_vertices);
  std::vector<double> in_deg(s.num_vertices);
  std::size_t max_out = 0;
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    out_deg[v] = static_cast<double>(g.out_degree(v));
    in_deg[v] = static_cast<double>(g.in_degree(v));
    if (g.out_degree(v) > max_out) {
      max_out = g.out_degree(v);
      s.max_out_degree_vertex = v;
    }
    if (g.out_degree(v) == 0 && g.in_degree(v) == 0) ++s.isolated_vertices;
  }
  s.out_degree = summarize(out_deg);
  s.in_degree = summarize(in_deg);
  s.avg_degree = s.num_vertices > 0
                     ? static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices)
                     : 0.0;
  return s;
}

double powerlaw_exponent(const GraphStore& g) {
  std::map<std::size_t, std::size_t> counts;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.out_degree(v);
    if (d > 0) ++counts[d];
  }
  // Least-squares fit of log(count) against log(degree).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const auto& [degree, count] : counts) {
    if (degree < 2) continue;  // skip the head; fit the tail
    const double x = std::log(static_cast<double>(degree));
    const double y = std::log(static_cast<double>(count));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 3) return 0.0;
  const double nn = static_cast<double>(n);
  const double denom = nn * sxx - sx * sx;
  return denom != 0.0 ? (nn * sxy - sx * sy) / denom : 0.0;
}

std::size_t reachable_from(const GraphStore& g, VertexId src) {
  AdjCursor cur;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> frontier{src};
  seen[src] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      for (const Adj& a : g.out_neighbors(v, cur)) {
        if (!seen[a.neighbor]) {
          seen[a.neighbor] = true;
          ++count;
          next.push_back(a.neighbor);
        }
      }
    }
    frontier = std::move(next);
  }
  return count;
}

}  // namespace cyclops::graph
