#pragma once
// CompactCsr — the hot-path GraphStore backend: one flat delta/varint blob
// per direction, indexed by byte offsets, with vertices internally remapped
// into degree-descending order so the heaviest adjacency lists cluster at
// the front of the blob (sequential scans touch a compact prefix instead of
// chasing per-vertex pointers across the heap). The remap is internal only:
// external vertex ids, adjacency content, and enumeration order are
// bit-identical to the Csr the store was built from, so partitions and wire
// digests are unchanged.
//
// The store also has a versioned on-disk format (magic "CYCS") with a CRC32
// per section, loadable via mmap (falling back to a buffered read when mmap
// is unavailable). Corruption and truncation surface as graph::LoadError
// with the byte offset of the failing section.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::graph {

class Csr;

class CompactCsr final : public GraphStore {
 public:
  CompactCsr() = default;
  CompactCsr(CompactCsr&&) noexcept = default;
  CompactCsr& operator=(CompactCsr&&) noexcept = default;
  ~CompactCsr() override = default;

  /// Converts a built Csr. Adjacency order is preserved exactly.
  static CompactCsr build(const Csr& g);

  /// Writes the versioned binary format; throws std::runtime_error on IO
  /// failure.
  void save(const std::string& path) const;

  /// Maps (or reads) a saved store. Throws LoadError with a byte offset on
  /// magic/version mismatch, CRC mismatch, or truncation.
  static CompactCsr load(const std::string& path);

  [[nodiscard]] StoreKind kind() const noexcept override { return StoreKind::kCompact; }
  [[nodiscard]] VertexId num_vertices() const noexcept override { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept override {
    return static_cast<std::size_t>(m_);
  }
  [[nodiscard]] std::size_t out_degree(VertexId v) const noexcept override {
    return out_deg_[pos_[v]];
  }
  [[nodiscard]] std::size_t in_degree(VertexId v) const noexcept override {
    return in_deg_[pos_[v]];
  }
  [[nodiscard]] std::span<const Adj> out_neighbors(VertexId v,
                                                   AdjCursor& cur) const override;
  [[nodiscard]] std::span<const Adj> in_neighbors(VertexId v, AdjCursor& cur) const override;
  [[nodiscard]] StoreMemory memory() const noexcept override;

  /// True when loaded through an mmap'ed file (memory() then charges the
  /// blob to on-disk bytes instead of resident bytes).
  [[nodiscard]] bool mapped() const noexcept { return mapping_ != nullptr; }

  /// Compressed adjacency bytes, both directions (the payload the format's
  /// compression ratio is measured on).
  [[nodiscard]] std::uint64_t blob_bytes() const noexcept {
    return out_blob_.size() + in_blob_.size();
  }

 private:
  struct Mapping;  // owns the mmap / fallback buffer

  VertexId n_ = 0;
  std::uint64_t m_ = 0;
  bool inline_weights_ = false;
  double uniform_weight_ = 1.0;

  // Uniform views: into owned_* vectors when built in memory, into the
  // mapping when loaded from disk. pos_ is always materialized (rebuilt from
  // order_ on load).
  std::span<const VertexId> order_;          // rank -> original id
  std::span<const std::uint32_t> out_deg_;   // by rank
  std::span<const std::uint32_t> in_deg_;    // by rank
  std::span<const std::uint64_t> out_off_;   // by rank, n+1 byte offsets
  std::span<const std::uint64_t> in_off_;    // by rank, n+1 byte offsets
  std::span<const std::uint8_t> out_blob_;
  std::span<const std::uint8_t> in_blob_;
  std::vector<VertexId> pos_;                // original id -> rank

  std::vector<VertexId> owned_order_;
  std::vector<std::uint32_t> owned_out_deg_, owned_in_deg_;
  std::vector<std::uint64_t> owned_out_off_, owned_in_off_;
  std::vector<std::uint8_t> owned_out_blob_, owned_in_blob_;
  std::shared_ptr<const Mapping> mapping_;

  [[nodiscard]] std::span<const Adj> decode(VertexId v, AdjCursor& cur,
                                            std::span<const std::uint32_t> deg,
                                            std::span<const std::uint64_t> off,
                                            std::span<const std::uint8_t> blob) const;
};

}  // namespace cyclops::graph
