#include "cyclops/graph/csr.hpp"

#include <algorithm>

namespace cyclops::graph {

namespace {
/// Builds one direction of CSR adjacency via counting sort on the key side.
void build_direction(const std::vector<Edge>& edges, VertexId n, bool by_src,
                     std::vector<std::size_t>& offsets, std::vector<Adj>& adj) {
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    ++offsets[(by_src ? e.src : e.dst) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  adj.resize(edges.size());
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    const VertexId key = by_src ? e.src : e.dst;
    const VertexId other = by_src ? e.dst : e.src;
    adj[cursor[key]++] = Adj{other, e.weight};
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adj.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adj.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]),
              [](const Adj& a, const Adj& b) { return a.neighbor < b.neighbor; });
  }
}
}  // namespace

Csr Csr::build(const EdgeList& edges) {
  Csr g;
  const VertexId n = edges.num_vertices();
  build_direction(edges.edges(), n, /*by_src=*/true, g.out_offsets_, g.out_adj_);
  build_direction(edges.edges(), n, /*by_src=*/false, g.in_offsets_, g.in_adj_);
  return g;
}

}  // namespace cyclops::graph
