#pragma once
// Edge-list container: the ingress-time representation of a graph, before it
// is finalized into CSR form for the engines.

#include <cstdint>
#include <vector>

#include "cyclops/common/types.hpp"

namespace cyclops::graph {

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Mutable edge list plus the vertex-count bound. Self-loops are allowed;
/// duplicate edges are allowed (finalize() can optionally dedup).
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  void add(VertexId src, VertexId dst, double weight = 1.0);

  /// Adds both (src,dst) and (dst,src) — used by algorithms that treat the
  /// graph as undirected (ALS, CD).
  void add_undirected(VertexId src, VertexId dst, double weight = 1.0);

  /// Grows the vertex-count bound to cover id.
  void ensure_vertex(VertexId id);

  /// Sorts by (src, dst) and removes exact duplicate (src, dst) pairs,
  /// keeping the first weight.
  void sort_and_dedup();

  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() noexcept { return edges_; }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace cyclops::graph
