#include "cyclops/graph/compact_csr.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "cyclops/common/crc32.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/loader.hpp"
#include "cyclops/graph/varint.hpp"

namespace cyclops::graph {

namespace {

constexpr char kMagic[4] = {'C', 'Y', 'C', 'S'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kFlagInlineWeights = 1u << 0;

constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(s[0]) | static_cast<std::uint32_t>(s[1]) << 8 |
         static_cast<std::uint32_t>(s[2]) << 16 | static_cast<std::uint32_t>(s[3]) << 24;
}

constexpr std::uint32_t kTagOrder = fourcc("ORDR");
constexpr std::uint32_t kTagOutDeg = fourcc("ODEG");
constexpr std::uint32_t kTagInDeg = fourcc("IDEG");
constexpr std::uint32_t kTagOutOff = fourcc("OOFF");
constexpr std::uint32_t kTagInOff = fourcc("IOFF");
constexpr std::uint32_t kTagOutBlob = fourcc("OBLB");
constexpr std::uint32_t kTagInBlob = fourcc("IBLB");

// Fixed 40-byte file header, followed by 16-byte section headers; every
// payload is padded to 8 bytes so mapped u64 arrays stay aligned.
struct FileHeader {
  char magic[4];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint32_t n;
  std::uint64_t m;
  double uniform_weight;
  std::uint32_t section_count;
  std::uint32_t reserved;
};
static_assert(sizeof(FileHeader) == 40);

struct SectionHeader {
  std::uint32_t tag;
  std::uint32_t crc;
  std::uint64_t payload_bytes;
};
static_assert(sizeof(SectionHeader) == 16);

[[nodiscard]] constexpr std::uint64_t pad8(std::uint64_t v) noexcept {
  return (v + 7) & ~std::uint64_t{7};
}

std::string tag_name(std::uint32_t tag) {
  std::string s(4, '?');
  std::memcpy(s.data(), &tag, 4);
  return s;
}

template <typename T>
void write_section(std::ofstream& out, std::uint32_t tag, std::span<const T> payload) {
  SectionHeader h{};
  h.tag = tag;
  h.payload_bytes = payload.size_bytes();
  h.crc = crc32({reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size_bytes()});
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size_bytes()));
  const std::uint64_t padding = pad8(h.payload_bytes) - h.payload_bytes;
  const char zeros[8] = {};
  out.write(zeros, static_cast<std::streamsize>(padding));
}

}  // namespace

struct CompactCsr::Mapping {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  bool is_mmap = false;
  std::vector<std::uint8_t> owned;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (is_mmap && data != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data), size);
    }
  }
};

CompactCsr CompactCsr::build(const Csr& g) {
  CompactCsr c;
  c.n_ = g.num_vertices();
  c.m_ = g.num_edges();

  // Detect a graph-wide uniform weight (the loader's default-weight case);
  // when every edge carries the same weight the blobs store ids only.
  bool uniform = true;
  double w0 = 1.0;
  bool have_w0 = false;
  for (VertexId v = 0; v < c.n_ && uniform; ++v) {
    for (const Adj& a : g.out_neighbors(v)) {
      if (!have_w0) {
        w0 = a.weight;
        have_w0 = true;
      } else if (a.weight != w0) {
        uniform = false;
        break;
      }
    }
  }
  c.inline_weights_ = !uniform;
  c.uniform_weight_ = uniform && have_w0 ? w0 : 1.0;

  // Degree-descending internal order (ties by id for determinism): heavy
  // vertices land at the front of both blobs.
  c.owned_order_.resize(c.n_);
  std::iota(c.owned_order_.begin(), c.owned_order_.end(), VertexId{0});
  std::sort(c.owned_order_.begin(), c.owned_order_.end(), [&](VertexId a, VertexId b) {
    const std::size_t da = g.out_degree(a) + g.in_degree(a);
    const std::size_t db = g.out_degree(b) + g.in_degree(b);
    return da != db ? da > db : a < b;
  });
  c.pos_.resize(c.n_);
  for (VertexId rank = 0; rank < c.n_; ++rank) c.pos_[c.owned_order_[rank]] = rank;

  auto encode_direction = [&](bool out_dir, std::vector<std::uint32_t>& deg,
                              std::vector<std::uint64_t>& off,
                              std::vector<std::uint8_t>& blob) {
    deg.resize(c.n_);
    off.assign(static_cast<std::size_t>(c.n_) + 1, 0);
    for (VertexId rank = 0; rank < c.n_; ++rank) {
      const VertexId v = c.owned_order_[rank];
      const std::span<const Adj> adj = out_dir ? g.out_neighbors(v) : g.in_neighbors(v);
      deg[rank] = static_cast<std::uint32_t>(adj.size());
      detail::encode_adj_list(blob, adj, c.inline_weights_);
      off[rank + 1] = blob.size();
    }
  };
  encode_direction(true, c.owned_out_deg_, c.owned_out_off_, c.owned_out_blob_);
  encode_direction(false, c.owned_in_deg_, c.owned_in_off_, c.owned_in_blob_);

  c.order_ = c.owned_order_;
  c.out_deg_ = c.owned_out_deg_;
  c.in_deg_ = c.owned_in_deg_;
  c.out_off_ = c.owned_out_off_;
  c.in_off_ = c.owned_in_off_;
  c.out_blob_ = c.owned_out_blob_;
  c.in_blob_ = c.owned_in_blob_;
  return c;
}

void CompactCsr::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write compact graph: " + path);
  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kFormatVersion;
  h.flags = inline_weights_ ? kFlagInlineWeights : 0;
  h.n = n_;
  h.m = m_;
  h.uniform_weight = uniform_weight_;
  h.section_count = 7;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  write_section(out, kTagOrder, order_);
  write_section(out, kTagOutDeg, out_deg_);
  write_section(out, kTagInDeg, in_deg_);
  write_section(out, kTagOutOff, out_off_);
  write_section(out, kTagInOff, in_off_);
  write_section(out, kTagOutBlob, out_blob_);
  write_section(out, kTagInBlob, in_blob_);
  if (!out) throw std::runtime_error("short write to compact graph: " + path);
}

CompactCsr CompactCsr::load(const std::string& path) {
  auto mapping = std::make_shared<Mapping>();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open compact graph: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat compact graph: " + path);
  }
  mapping->size = static_cast<std::size_t>(st.st_size);
  if (mapping->size > 0) {
    void* p = ::mmap(nullptr, mapping->size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      mapping->data = static_cast<const std::uint8_t*>(p);
      mapping->is_mmap = true;
    } else {
      // Buffered-read fallback keeps the loader working where mmap is not.
      mapping->owned.resize(mapping->size);
      std::size_t got = 0;
      while (got < mapping->size) {
        const ssize_t r = ::read(fd, mapping->owned.data() + got, mapping->size - got);
        if (r <= 0) break;
        got += static_cast<std::size_t>(r);
      }
      if (got != mapping->size) {
        ::close(fd);
        throw std::runtime_error("cannot read compact graph: " + path);
      }
      mapping->data = mapping->owned.data();
    }
  }
  ::close(fd);

  const std::uint8_t* base = mapping->data;
  const std::uint64_t size = mapping->size;
  if (size < sizeof(FileHeader)) {
    throw LoadError("truncated compact graph header: " + path, size);
  }
  FileHeader h{};
  std::memcpy(&h, base, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    throw LoadError("not a cyclops compact graph: " + path, 0);
  }
  if (h.version != kFormatVersion) {
    throw LoadError("unsupported compact graph version: " + path,
                    offsetof(FileHeader, version));
  }

  CompactCsr c;
  c.n_ = h.n;
  c.m_ = h.m;
  c.inline_weights_ = (h.flags & kFlagInlineWeights) != 0;
  c.uniform_weight_ = h.uniform_weight;
  c.mapping_ = mapping;

  struct Section {
    std::span<const std::uint8_t> payload;
    bool seen = false;
  };
  Section order, odeg, ideg, ooff, ioff, oblb, iblb;
  auto section_for = [&](std::uint32_t tag) -> Section* {
    switch (tag) {
      case kTagOrder: return &order;
      case kTagOutDeg: return &odeg;
      case kTagInDeg: return &ideg;
      case kTagOutOff: return &ooff;
      case kTagInOff: return &ioff;
      case kTagOutBlob: return &oblb;
      case kTagInBlob: return &iblb;
      default: return nullptr;
    }
  };

  std::uint64_t at = sizeof(FileHeader);
  for (std::uint32_t s = 0; s < h.section_count; ++s) {
    if (at + sizeof(SectionHeader) > size) {
      throw LoadError("truncated compact graph section header: " + path, at);
    }
    SectionHeader sh{};
    std::memcpy(&sh, base + at, sizeof(sh));
    const std::uint64_t payload_at = at + sizeof(SectionHeader);
    if (payload_at + sh.payload_bytes > size) {
      throw LoadError("truncated compact graph section " + tag_name(sh.tag) + ": " + path,
                      payload_at);
    }
    const std::span<const std::uint8_t> payload{base + payload_at, sh.payload_bytes};
    if (crc32(payload) != sh.crc) {
      throw LoadError("CRC mismatch in compact graph section " + tag_name(sh.tag) + ": " + path,
                      payload_at);
    }
    if (Section* dst = section_for(sh.tag)) {
      dst->payload = payload;
      dst->seen = true;
    }  // unknown sections are skipped: forward-compatible
    at = payload_at + pad8(sh.payload_bytes);
  }
  for (const Section* s : {&order, &odeg, &ideg, &ooff, &ioff, &oblb, &iblb}) {
    if (!s->seen) throw LoadError("missing compact graph section: " + path, at);
  }
  // Strict length check: a file cut inside the final section's alignment
  // padding (or with bytes appended past the last section) is still corrupt
  // even though every CRC verifies.
  if (at != size) {
    throw LoadError("compact graph file length mismatch: " + path, at);
  }

  auto as_u32 = [&](const Section& s, std::uint64_t expect) -> std::span<const std::uint32_t> {
    if (s.payload.size() != expect * sizeof(std::uint32_t)) {
      throw LoadError("compact graph section size mismatch: " + path,
                      static_cast<std::uint64_t>(s.payload.data() - base));
    }
    return {reinterpret_cast<const std::uint32_t*>(s.payload.data()), expect};
  };
  auto as_u64 = [&](const Section& s, std::uint64_t expect) -> std::span<const std::uint64_t> {
    if (s.payload.size() != expect * sizeof(std::uint64_t)) {
      throw LoadError("compact graph section size mismatch: " + path,
                      static_cast<std::uint64_t>(s.payload.data() - base));
    }
    return {reinterpret_cast<const std::uint64_t*>(s.payload.data()), expect};
  };

  const std::uint64_t n = c.n_;
  c.order_ = as_u32(order, n);
  c.out_deg_ = as_u32(odeg, n);
  c.in_deg_ = as_u32(ideg, n);
  c.out_off_ = as_u64(ooff, n + 1);
  c.in_off_ = as_u64(ioff, n + 1);
  c.out_blob_ = oblb.payload;
  c.in_blob_ = iblb.payload;
  if ((n > 0 && (c.out_off_[n] != c.out_blob_.size() || c.in_off_[n] != c.in_blob_.size()))) {
    throw LoadError("compact graph blob size mismatch: " + path,
                    static_cast<std::uint64_t>(oblb.payload.data() - base));
  }

  c.pos_.resize(n);
  std::vector<bool> seen(n, false);
  for (VertexId rank = 0; rank < c.n_; ++rank) {
    const VertexId v = c.order_[rank];
    if (v >= c.n_ || seen[v]) {
      throw LoadError("compact graph order section is not a permutation: " + path,
                      static_cast<std::uint64_t>(order.payload.data() - base));
    }
    seen[v] = true;
    c.pos_[v] = rank;
  }
  return c;
}

std::span<const Adj> CompactCsr::decode(VertexId v, AdjCursor& cur,
                                        std::span<const std::uint32_t> deg,
                                        std::span<const std::uint64_t> off,
                                        std::span<const std::uint8_t> blob) const {
  const VertexId rank = pos_[v];
  const std::uint8_t* begin = blob.data() + off[rank];
  const std::uint8_t* end = blob.data() + off[rank + 1];
  detail::decode_adj_list(cur.scratch, deg[rank], begin, end, inline_weights_,
                          uniform_weight_);
  return cur.scratch;
}

std::span<const Adj> CompactCsr::out_neighbors(VertexId v, AdjCursor& cur) const {
  return decode(v, cur, out_deg_, out_off_, out_blob_);
}

std::span<const Adj> CompactCsr::in_neighbors(VertexId v, AdjCursor& cur) const {
  return decode(v, cur, in_deg_, in_off_, in_blob_);
}

StoreMemory CompactCsr::memory() const noexcept {
  StoreMemory m;
  m.resident_bytes = pos_.size() * sizeof(VertexId);
  const std::uint64_t index_bytes =
      order_.size_bytes() + out_deg_.size_bytes() + in_deg_.size_bytes() +
      out_off_.size_bytes() + in_off_.size_bytes();
  if (mapping_) {
    // Mapped file: the index sections get touched every query, so count them
    // resident; the blobs page in on demand and stay charged to disk.
    m.resident_bytes += index_bytes;
    m.on_disk_bytes = mapping_->size;
  } else {
    m.resident_bytes += index_bytes + out_blob_.size_bytes() + in_blob_.size_bytes();
  }
  return m;
}

}  // namespace cyclops::graph
