#include "cyclops/graph/delta_overlay.hpp"

#include <algorithm>
#include <utility>

#include "cyclops/common/check.hpp"

namespace cyclops::graph {

namespace {

using Pair = std::pair<VertexId, VertexId>;

/// (key, other) pairs for one direction, sorted for binary search.
std::vector<Pair> pair_index(const std::vector<Edge>& removes, bool out_side) {
  std::vector<Pair> idx;
  idx.reserve(removes.size());
  for (const Edge& e : removes) {
    idx.emplace_back(out_side ? e.src : e.dst, out_side ? e.dst : e.src);
  }
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace

std::ptrdiff_t DeltaOverlay::Patch::find(VertexId v) const noexcept {
  auto it = std::lower_bound(verts.begin(), verts.end(), v);
  if (it == verts.end() || *it != v) return -1;
  return it - verts.begin();
}

DeltaOverlay::Patch DeltaOverlay::build_patch(const GraphStore& base, bool out_side,
                                              const std::vector<Edge>& adds,
                                              const std::vector<Edge>& removes, VertexId n,
                                              std::size_t& removed_count) {
  const std::vector<Pair> removed = pair_index(removes, out_side);

  Patch p;
  for (const Edge& e : adds) p.verts.push_back(out_side ? e.src : e.dst);
  for (const Edge& e : removes) {
    const VertexId key = out_side ? e.src : e.dst;
    if (key < n) p.verts.push_back(key);  // removes never grow the vertex set
  }
  std::sort(p.verts.begin(), p.verts.end());
  p.verts.erase(std::unique(p.verts.begin(), p.verts.end()), p.verts.end());

  AdjCursor cur;
  p.offsets.reserve(p.verts.size() + 1);
  p.offsets.push_back(0);
  for (const VertexId v : p.verts) {
    const std::size_t start = p.adj.size();
    if (v < base.num_vertices()) {
      const std::span<const Adj> prior =
          out_side ? base.out_neighbors(v, cur) : base.in_neighbors(v, cur);
      for (const Adj& a : prior) {
        if (std::binary_search(removed.begin(), removed.end(), Pair{v, a.neighbor})) {
          ++removed_count;
        } else {
          p.adj.push_back(a);
        }
      }
    }
    for (const Edge& e : adds) {
      if ((out_side ? e.src : e.dst) == v) {
        p.adj.push_back(Adj{out_side ? e.dst : e.src, e.weight});
      }
    }
    // Base entries are already ascending; stable re-sort merges the appended
    // adds in while keeping base-before-add tie order (canonical contract).
    std::stable_sort(p.adj.begin() + static_cast<std::ptrdiff_t>(start), p.adj.end(),
                     [](const Adj& a, const Adj& b) { return a.neighbor < b.neighbor; });
    p.offsets.push_back(p.adj.size());
  }
  return p;
}

DeltaOverlay::DeltaOverlay(const GraphStore& base, const std::vector<Edge>& adds,
                           const std::vector<Edge>& removes)
    : base_(&base) {
  n_ = base.num_vertices();
  for (const Edge& e : adds) {
    CYCLOPS_CHECK(e.src != kInvalidVertex && e.dst != kInvalidVertex);
    n_ = std::max(n_, std::max(e.src, e.dst) + 1);
  }
  if (const auto* prior = dynamic_cast<const DeltaOverlay*>(&base)) {
    depth_ = prior->depth() + 1;
  }

  std::size_t removed_out = 0;
  std::size_t removed_in = 0;
  out_ = build_patch(base, /*out_side=*/true, adds, removes, n_, removed_out);
  in_ = build_patch(base, /*out_side=*/false, adds, removes, n_, removed_in);
  CYCLOPS_CHECK(removed_out == removed_in);

  added_edges_ = adds.size();
  removed_edges_ = removed_out;
  m_ = base.num_edges() - removed_edges_ + added_edges_;
}

std::size_t DeltaOverlay::out_degree(VertexId v) const noexcept {
  const std::ptrdiff_t i = out_.find(v);
  if (i >= 0) return out_.slice(i).size();
  return v < base_->num_vertices() ? base_->out_degree(v) : 0;
}

std::size_t DeltaOverlay::in_degree(VertexId v) const noexcept {
  const std::ptrdiff_t i = in_.find(v);
  if (i >= 0) return in_.slice(i).size();
  return v < base_->num_vertices() ? base_->in_degree(v) : 0;
}

std::span<const Adj> DeltaOverlay::out_neighbors(VertexId v, AdjCursor& cur) const {
  const std::ptrdiff_t i = out_.find(v);
  if (i >= 0) return out_.slice(i);
  if (v < base_->num_vertices()) return base_->out_neighbors(v, cur);
  return {};
}

std::span<const Adj> DeltaOverlay::in_neighbors(VertexId v, AdjCursor& cur) const {
  const std::ptrdiff_t i = in_.find(v);
  if (i >= 0) return in_.slice(i);
  if (v < base_->num_vertices()) return base_->in_neighbors(v, cur);
  return {};
}

StoreMemory DeltaOverlay::memory() const noexcept {
  auto patch_bytes = [](const Patch& p) {
    return p.verts.size() * sizeof(VertexId) + p.offsets.size() * sizeof(std::size_t) +
           p.adj.size() * sizeof(Adj);
  };
  StoreMemory m;
  m.resident_bytes = patch_bytes(out_) + patch_bytes(in_);
  return m;
}

EdgeList DeltaOverlay::materialize() const {
  EdgeList out(n_);
  for_each_edge([&](VertexId src, VertexId dst, double w) { out.add(src, dst, w); });
  return out;
}

}  // namespace cyclops::graph
