#pragma once
// Text edge-list loading/saving, compatible with the SNAP dataset format the
// paper ingests from HDFS: one "src dst [weight]" triple per line, with '#'
// comment lines. Vertex ids are densified so CSR arrays stay compact.

#include <iosfwd>
#include <string>

#include "cyclops/graph/edge_list.hpp"

namespace cyclops::graph {

struct LoadOptions {
  bool undirected = false;     ///< mirror every edge
  bool densify_ids = true;     ///< relabel ids to [0, n) in first-seen order
  double default_weight = 1.0; ///< weight when the line has no third column
};

/// Parses an edge-list stream. Throws std::runtime_error on malformed input.
[[nodiscard]] EdgeList load_edge_list(std::istream& in, const LoadOptions& opts = {});

/// Convenience file wrapper; throws std::runtime_error if the file is absent.
[[nodiscard]] EdgeList load_edge_list_file(const std::string& path,
                                           const LoadOptions& opts = {});

/// Writes "src dst weight" lines (weight omitted when uniformly 1.0).
void save_edge_list(std::ostream& out, const EdgeList& edges);
void save_edge_list_file(const std::string& path, const EdgeList& edges);

/// Binary graph format for fast repeated ingress (§6.7 notes ingress is a
/// one-time cost amortized over many runs — the binary format makes the
/// repeat loads cheap). Layout: magic "CYGR", format version, vertex count,
/// edge count, then raw (src, dst, weight) records. Throws on magic/version
/// mismatch or truncation.
void save_binary_file(const std::string& path, const EdgeList& edges);
[[nodiscard]] EdgeList load_binary_file(const std::string& path);

}  // namespace cyclops::graph
