#pragma once
// Text edge-list loading/saving, compatible with the SNAP dataset format the
// paper ingests from HDFS: one "src dst [weight]" triple per line, with '#'
// comment lines. Vertex ids are densified so CSR arrays stay compact.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "cyclops/graph/edge_list.hpp"

namespace cyclops::graph {

/// Recoverable ingest failure: carries the byte offset of the offending
/// input (and, for line-oriented formats, the 1-based line number) so a
/// caller can report, skip, or repair instead of dying mid-parse. The
/// what() string already embeds both.
class LoadError : public std::runtime_error {
 public:
  LoadError(const std::string& msg, std::uint64_t byte_offset, std::uint64_t line = 0)
      : std::runtime_error(msg + " (byte offset " + std::to_string(byte_offset) +
                           (line > 0 ? ", line " + std::to_string(line) : "") + ")"),
        byte_offset_(byte_offset),
        line_(line) {}

  [[nodiscard]] std::uint64_t byte_offset() const noexcept { return byte_offset_; }
  /// 1-based line number for text formats; 0 for binary formats.
  [[nodiscard]] std::uint64_t line() const noexcept { return line_; }

 private:
  std::uint64_t byte_offset_ = 0;
  std::uint64_t line_ = 0;
};

struct LoadOptions {
  bool undirected = false;     ///< mirror every edge
  bool densify_ids = true;     ///< relabel ids to [0, n) in first-seen order
  double default_weight = 1.0; ///< weight when the line has no third column
};

/// Parses an edge-list stream. Throws LoadError (with byte offset + line) on
/// malformed input.
[[nodiscard]] EdgeList load_edge_list(std::istream& in, const LoadOptions& opts = {});

/// Convenience file wrapper; throws std::runtime_error if the file is absent.
[[nodiscard]] EdgeList load_edge_list_file(const std::string& path,
                                           const LoadOptions& opts = {});

/// Writes "src dst weight" lines (weight omitted when uniformly 1.0).
void save_edge_list(std::ostream& out, const EdgeList& edges);
void save_edge_list_file(const std::string& path, const EdgeList& edges);

/// Binary graph format for fast repeated ingress (§6.7 notes ingress is a
/// one-time cost amortized over many runs — the binary format makes the
/// repeat loads cheap). Layout: magic "CYGR", format version, vertex count,
/// edge count, then raw (src, dst, weight) records. Throws LoadError (with
/// the byte offset of the bad header field or record) on magic/version
/// mismatch, truncation, or out-of-range edges.
void save_binary_file(const std::string& path, const EdgeList& edges);
[[nodiscard]] EdgeList load_binary_file(const std::string& path);

}  // namespace cyclops::graph
