#pragma once
// GraphStore — the frozen-graph abstraction every engine computes against.
// The paper's immutable distributed view never mutates topology mid-run, so
// the contract is read-only by construction: a store is built once (always
// from the canonical in-memory CSR, so adjacency enumeration order is
// bit-identical across backends) and then only answers degree/neighbor
// queries. Three backends implement it:
//   - Csr          in-memory pointer-free arrays (the original hot path)
//   - CompactCsr   delta/varint-compressed blob, degree-ordered internally,
//                  mmap-able versioned on-disk format (graph/compact_csr.hpp)
//   - StreamStore  O(|V|) resident index over an on-disk adjacency blob,
//                  paged per cursor under a memory cap (graph/stream_store.hpp)
// Neighbor queries go through an AdjCursor: caller-owned scratch that lets
// decoding/paging backends return spans without locks or shared mutable
// state. One cursor per thread; spans are valid until the cursor's next call.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cyclops/common/types.hpp"

namespace cyclops::graph {

class EdgeList;

/// One adjacency entry. Kept identical across all store backends so spans
/// decode straight into engine loops.
struct Adj {
  VertexId neighbor = 0;
  double weight = 1.0;

  [[nodiscard]] bool operator==(const Adj&) const = default;
};

enum class StoreKind {
  kMemory,
  kCompact,
  kStream,
  kDelta,  ///< structural-sharing overlay over a base store (graph/delta_overlay.hpp)
};

[[nodiscard]] std::string_view store_kind_name(StoreKind kind) noexcept;

/// Parses "memory" | "compact" | "stream"; throws std::runtime_error on
/// anything else (CLI surfaces the message).
[[nodiscard]] StoreKind parse_store_kind(std::string_view name);

/// Byte footprint split the memory model reports per backend: what must stay
/// in RAM for the store to answer queries vs. what lives on disk and is only
/// paged/mapped through on demand.
struct StoreMemory {
  std::uint64_t resident_bytes = 0;
  std::uint64_t on_disk_bytes = 0;
};

/// Caller-owned scratch for neighbor queries. The in-memory CSR ignores it;
/// CompactCsr decodes into `scratch`; StreamStore additionally pages disk
/// windows into `window` and counts its own IO. Never shared across threads.
class AdjCursor {
 public:
  std::vector<Adj> scratch;

  // Stream-backend paging state + per-cursor IO counters.
  std::vector<std::uint8_t> window;
  std::uint64_t window_begin = 0;
  std::uint64_t window_len = 0;
  bool window_valid = false;
  std::uint64_t window_loads = 0;
  std::uint64_t bytes_read = 0;
};

class GraphStore {
 protected:
  // Concrete stores keep value semantics where they can (Csr is copyable);
  // the base is stateless, so copy/move through it is harmless. Slicing is
  // prevented by the pure virtuals.
  GraphStore() = default;
  GraphStore(const GraphStore&) = default;
  GraphStore& operator=(const GraphStore&) = default;

 public:
  virtual ~GraphStore() = default;

  [[nodiscard]] virtual StoreKind kind() const noexcept = 0;
  [[nodiscard]] virtual VertexId num_vertices() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_edges() const noexcept = 0;
  [[nodiscard]] virtual std::size_t out_degree(VertexId v) const noexcept = 0;
  [[nodiscard]] virtual std::size_t in_degree(VertexId v) const noexcept = 0;

  /// Out-/in-adjacency of `v`, in the canonical CSR order (ascending
  /// neighbor id; multi-edges keep build order). The span may point into
  /// `cur` and is invalidated by the cursor's next query. May throw on IO
  /// errors (stream backend).
  [[nodiscard]] virtual std::span<const Adj> out_neighbors(VertexId v,
                                                           AdjCursor& cur) const = 0;
  [[nodiscard]] virtual std::span<const Adj> in_neighbors(VertexId v,
                                                          AdjCursor& cur) const = 0;

  [[nodiscard]] virtual StoreMemory memory() const noexcept = 0;

  /// Bytes of in-flight messages the engine may buffer before the runtime's
  /// spill accounting starts charging disk traffic. 0 = unbounded (fully
  /// in-memory backends).
  [[nodiscard]] virtual std::uint64_t message_budget_bytes() const noexcept { return 0; }

  /// The single edge-enumeration order shared by the vertex-cut partitioner,
  /// its evaluator, and the GAS layout build: ascending source vertex, then
  /// canonical adjacency order. Edge index == enumeration position, so
  /// VertexCutPartition::edge_owner(i) is meaningful across all of them.
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    AdjCursor cur;
    const VertexId n = num_vertices();
    for (VertexId v = 0; v < n; ++v) {
      for (const Adj& a : out_neighbors(v, cur)) fn(v, a.neighbor, a.weight);
    }
  }
};

/// Store selection threaded from the CLI / service / bench layers.
struct StoreOptions {
  StoreKind kind = StoreKind::kMemory;
  std::uint64_t mem_cap_bytes = 64ull << 20;  ///< stream backend budget
  std::string spill_dir;                      ///< empty = /tmp
};

/// Converts flag-level store selection (args::store_args) into StoreOptions;
/// throws std::runtime_error on an unknown kind name.
[[nodiscard]] StoreOptions make_store_options(std::string_view kind,
                                              std::uint64_t mem_cap_mb,
                                              std::string spill_dir = {});

/// Builds the canonical in-memory CSR from `edges`, then wraps or converts it
/// into the requested backend. All backends therefore present bit-identical
/// adjacency, which is what makes cross-store wire digests comparable.
[[nodiscard]] std::unique_ptr<const GraphStore> make_store(const EdgeList& edges,
                                                           const StoreOptions& opts = {});

}  // namespace cyclops::graph
