#include "cyclops/graph/generators.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"
#include "cyclops/common/rng.hpp"

namespace cyclops::graph::gen {

EdgeList erdos_renyi(VertexId n, std::size_t m, std::uint64_t seed) {
  CYCLOPS_CHECK(n > 0);
  Rng rng(seed);
  EdgeList edges(n);
  edges.edges().reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto src = static_cast<VertexId>(rng.next_below(n));
    const auto dst = static_cast<VertexId>(rng.next_below(n));
    edges.add(src, dst);
  }
  return edges;
}

EdgeList rmat(unsigned scale, std::size_t m, std::uint64_t seed, const RmatParams& p) {
  CYCLOPS_CHECK(scale > 0 && scale < 31);
  const double total = p.a + p.b + p.c + p.d;
  CYCLOPS_CHECK(total > 0.99 && total < 1.01);
  const VertexId n = VertexId{1} << scale;
  Rng rng(seed);
  EdgeList edges(n);
  edges.edges().reserve(m);
  // Slight per-level parameter noise avoids the grid artifacts of pure R-MAT.
  for (std::size_t i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (unsigned level = 0; level < scale; ++level) {
      const double noise = 0.95 + 0.1 * rng.next_double();
      const double a = p.a * noise;
      const double b = p.b;
      const double c = p.c;
      const double r = rng.next_double() * (a + b + c + p.d);
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < a + b) {
        dst |= 1;
      } else if (r < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.add(src, dst);
  }
  edges.sort_and_dedup();
  return edges;
}

EdgeList web_graph(const WebSpec& spec, std::uint64_t seed) {
  CYCLOPS_CHECK(spec.scale > 0 && spec.scale < 31);
  CYCLOPS_CHECK(spec.locality >= 0.0 && spec.locality <= 1.0);
  CYCLOPS_CHECK(spec.block_size > 1);
  const VertexId n = VertexId{1} << spec.scale;
  const auto global_edges =
      static_cast<std::size_t>(static_cast<double>(spec.edges) * (1.0 - spec.locality));
  EdgeList edges = rmat(spec.scale, global_edges, seed, spec.skew);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const std::size_t local_edges = spec.edges - global_edges;
  for (std::size_t i = 0; i < local_edges; ++i) {
    // Skew local-edge sources like the R-MAT hubs (low ids): most vertices
    // keep a small out-degree, which keeps the hash-partition replication
    // factor realistic (paper Table 4: 2.4-3.9 despite avg degree 8-23).
    const double u = rng.next_double();
    auto src = static_cast<VertexId>(static_cast<double>(n) * u * u * u);
    if (src >= n) src = n - 1;
    const VertexId base = (src / spec.block_size) * spec.block_size;
    VertexId dst = base + static_cast<VertexId>(rng.next_below(spec.block_size));
    if (dst >= n) dst = n - 1;
    if (dst == src) dst = base + (src - base + 1) % spec.block_size;
    edges.add(src, dst);
  }
  edges.sort_and_dedup();
  return edges;
}

EdgeList preferential_attachment(VertexId n, unsigned attach, std::uint64_t seed) {
  CYCLOPS_CHECK(n > attach && attach > 0);
  Rng rng(seed);
  EdgeList edges(n);
  // Repeated-endpoint list makes sampling proportional to degree O(1).
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * attach);
  // Seed clique over the first attach+1 vertices.
  for (VertexId v = 0; v <= attach; ++v) {
    for (VertexId u = v + 1; u <= attach; ++u) {
      edges.add_undirected(v, u);
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  for (VertexId v = attach + 1; v < n; ++v) {
    for (unsigned k = 0; k < attach; ++k) {
      const VertexId target = endpoints[rng.next_below(endpoints.size())];
      edges.add_undirected(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return edges;
}

EdgeList bipartite_ratings(const BipartiteSpec& spec, std::uint64_t seed) {
  CYCLOPS_CHECK(spec.users > 0 && spec.items > 0 && spec.ratings_per_user > 0);
  Rng rng(seed);
  EdgeList edges(spec.users + spec.items);
  // Zipf-ish item popularity: square a uniform draw toward low item ids.
  auto popular_item = [&]() -> VertexId {
    const double u = rng.next_double();
    const double skew = u * u;
    return spec.users + static_cast<VertexId>(skew * spec.items);
  };
  std::vector<VertexId> seen;
  for (VertexId user = 0; user < spec.users; ++user) {
    seen.clear();
    for (unsigned k = 0; k < spec.ratings_per_user; ++k) {
      VertexId item = popular_item();
      if (item >= spec.users + spec.items) item = spec.users + spec.items - 1;
      // A user rates an item at most once (duplicates would make the ALS
      // normal equations ambiguous); retry a few draws, then skip.
      bool fresh = false;
      for (int attempt = 0; attempt < 4 && !fresh; ++attempt) {
        if (std::find(seen.begin(), seen.end(), item) == seen.end()) {
          fresh = true;
          break;
        }
        item = popular_item();
        if (item >= spec.users + spec.items) item = spec.users + spec.items - 1;
      }
      if (!fresh && std::find(seen.begin(), seen.end(), item) != seen.end()) continue;
      seen.push_back(item);
      const double rating = 1.0 + static_cast<double>(rng.next_below(5));
      edges.add_undirected(user, item, rating);
    }
  }
  return edges;
}

EdgeList planted_communities(const CommunitySpec& spec, std::uint64_t seed) {
  CYCLOPS_CHECK(spec.communities > 0 && spec.group_size > 1);
  CYCLOPS_CHECK(spec.p_internal >= 0.0 && spec.p_internal <= 1.0);
  Rng rng(seed);
  const VertexId n = spec.communities * spec.group_size;
  EdgeList edges(n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId community = v / spec.group_size;
    const VertexId base = community * spec.group_size;
    for (unsigned k = 0; k < spec.degree; ++k) {
      VertexId u;
      if (rng.next_bool(spec.p_internal)) {
        u = base + static_cast<VertexId>(rng.next_below(spec.group_size));
      } else {
        u = static_cast<VertexId>(rng.next_below(n));
      }
      if (u == v) u = (u + 1) % n;
      edges.add_undirected(v, u);
    }
  }
  return edges;
}

EdgeList road_grid(const RoadSpec& spec, std::uint64_t seed) {
  CYCLOPS_CHECK(spec.rows > 1 && spec.cols > 1);
  Rng rng(seed);
  const VertexId n = spec.rows * spec.cols;
  EdgeList edges(n);
  auto id = [&](VertexId r, VertexId c) { return r * spec.cols + c; };
  auto weight = [&]() { return rng.next_lognormal(spec.mu, spec.sigma); };
  for (VertexId r = 0; r < spec.rows; ++r) {
    for (VertexId c = 0; c < spec.cols; ++c) {
      if (c + 1 < spec.cols) edges.add_undirected(id(r, c), id(r, c + 1), weight());
      if (r + 1 < spec.rows) edges.add_undirected(id(r, c), id(r + 1, c), weight());
    }
  }
  const auto lattice_edges = edges.num_edges() / 2;
  const auto shortcuts =
      static_cast<std::size_t>(spec.shortcut_fraction * static_cast<double>(lattice_edges));
  for (std::size_t i = 0; i < shortcuts; ++i) {
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    if (a != b) edges.add_undirected(a, b, weight() * 4.0);
  }
  return edges;
}

}  // namespace cyclops::graph::gen
