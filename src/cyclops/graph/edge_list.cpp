#include "cyclops/graph/edge_list.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"

namespace cyclops::graph {

void EdgeList::add(VertexId src, VertexId dst, double weight) {
  ensure_vertex(src);
  ensure_vertex(dst);
  edges_.push_back(Edge{src, dst, weight});
}

void EdgeList::add_undirected(VertexId src, VertexId dst, double weight) {
  add(src, dst, weight);
  if (src != dst) edges_.push_back(Edge{dst, src, weight});
}

void EdgeList::ensure_vertex(VertexId id) {
  CYCLOPS_CHECK(id != kInvalidVertex);
  if (id >= num_vertices_) num_vertices_ = id + 1;
}

void EdgeList::sort_and_dedup() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges_.end());
}

}  // namespace cyclops::graph
