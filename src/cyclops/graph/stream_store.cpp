#include "cyclops/graph/stream_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/varint.hpp"

namespace cyclops::graph {

namespace {

constexpr std::uint64_t kMinWindow = 64ull << 10;
constexpr std::uint64_t kMaxWindow = 8ull << 20;

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t w = ::write(fd, data + done, len - done);
    if (w <= 0) throw std::runtime_error("stream store: spill write failed");
    done += static_cast<std::size_t>(w);
  }
}

}  // namespace

StreamStore::StreamStore(const Csr& g, const StoreOptions& opts) {
  n_ = g.num_vertices();
  m_ = g.num_edges();
  mem_cap_bytes_ = opts.mem_cap_bytes;
  window_bytes_ = std::clamp(mem_cap_bytes_ / 8, kMinWindow, kMaxWindow);

  bool uniform = true;
  double w0 = 1.0;
  bool have_w0 = false;
  for (VertexId v = 0; v < n_ && uniform; ++v) {
    for (const Adj& a : g.out_neighbors(v)) {
      if (!have_w0) {
        w0 = a.weight;
        have_w0 = true;
      } else if (a.weight != w0) {
        uniform = false;
        break;
      }
    }
  }
  inline_weights_ = !uniform;
  uniform_weight_ = uniform && have_w0 ? w0 : 1.0;

  // The spill file is created, unlinked, and held open: it vanishes with the
  // process no matter how we exit.
  std::string templ = (opts.spill_dir.empty() ? std::string("/tmp") : opts.spill_dir) +
                      "/cyclops-stream-XXXXXX";
  fd_ = ::mkstemp(templ.data());
  if (fd_ < 0) throw std::runtime_error("stream store: cannot create spill file in " + templ);
  ::unlink(templ.c_str());

  // Encode both directions into the file in bounded chunks: resident usage
  // during the build stays O(window), not O(|E|).
  std::vector<std::uint8_t> chunk;
  chunk.reserve(window_bytes_);
  std::uint64_t written = 0;
  auto flush = [&] {
    write_all(fd_, chunk.data(), chunk.size());
    written += chunk.size();
    chunk.clear();
  };
  auto encode_direction = [&](bool out_dir, std::vector<std::uint64_t>& off,
                              std::vector<std::uint32_t>& deg) {
    off.assign(static_cast<std::size_t>(n_) + 1, 0);
    deg.resize(n_);
    for (VertexId v = 0; v < n_; ++v) {
      const std::span<const Adj> adj = out_dir ? g.out_neighbors(v) : g.in_neighbors(v);
      deg[v] = static_cast<std::uint32_t>(adj.size());
      off[v] = written + chunk.size();
      detail::encode_adj_list(chunk, adj, inline_weights_);
      if (chunk.size() >= window_bytes_) flush();
    }
    off[n_] = written + chunk.size();
  };
  encode_direction(true, out_off_, out_deg_);
  encode_direction(false, in_off_, in_deg_);
  flush();
  file_bytes_ = written;
}

StreamStore::~StreamStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::span<const Adj> StreamStore::fetch(VertexId v, AdjCursor& cur,
                                        const std::vector<std::uint64_t>& off,
                                        const std::vector<std::uint32_t>& deg) const {
  const std::uint64_t begin = off[v];
  const std::uint64_t end = off[v + 1];
  if (!cur.window_valid || begin < cur.window_begin ||
      end > cur.window_begin + cur.window_len) {
    const std::uint64_t want = std::max(end - begin, window_bytes_);
    const std::uint64_t len = std::min(want, file_bytes_ - begin);
    cur.window.resize(len);
    std::uint64_t got = 0;
    while (got < len) {
      const ssize_t r = ::pread(fd_, cur.window.data() + got, len - got,
                                static_cast<off_t>(begin + got));
      if (r <= 0) throw std::runtime_error("stream store: spill read failed");
      got += static_cast<std::uint64_t>(r);
    }
    cur.window_begin = begin;
    cur.window_len = len;
    cur.window_valid = true;
    ++cur.window_loads;
    cur.bytes_read += len;
  }
  const std::uint8_t* p = cur.window.data() + (begin - cur.window_begin);
  detail::decode_adj_list(cur.scratch, deg[v], p, p + (end - begin), inline_weights_,
                          uniform_weight_);
  return cur.scratch;
}

std::span<const Adj> StreamStore::out_neighbors(VertexId v, AdjCursor& cur) const {
  return fetch(v, cur, out_off_, out_deg_);
}

std::span<const Adj> StreamStore::in_neighbors(VertexId v, AdjCursor& cur) const {
  return fetch(v, cur, in_off_, in_deg_);
}

StoreMemory StreamStore::memory() const noexcept {
  StoreMemory m;
  m.resident_bytes = (out_off_.size() + in_off_.size()) * sizeof(std::uint64_t) +
                     (out_deg_.size() + in_deg_.size()) * sizeof(std::uint32_t);
  m.on_disk_bytes = file_bytes_;
  return m;
}

}  // namespace cyclops::graph
