#pragma once
// Compressed-sparse-row graph with both out- and in-adjacency, the canonical
// in-memory GraphStore backend every other backend is built from. Edge
// weights are stored once per direction so in-edge iteration (the Cyclops
// pull pattern) is cache-friendly.

#include <cstdint>
#include <span>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/graph/edge_list.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::graph {

class Csr final : public GraphStore {
 public:
  Csr() = default;

  /// Builds from an edge list. Edges keep their multiplicity; adjacency is
  /// sorted by neighbor id within each vertex for determinism.
  static Csr build(const EdgeList& edges);

  [[nodiscard]] VertexId num_vertices() const noexcept override {
    return static_cast<VertexId>(out_offsets_.empty() ? 0 : out_offsets_.size() - 1);
  }
  [[nodiscard]] std::size_t num_edges() const noexcept override { return out_adj_.size(); }

  [[nodiscard]] std::span<const Adj> out_neighbors(VertexId v) const noexcept {
    return {out_adj_.data() + out_offsets_[v], out_adj_.data() + out_offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const Adj> in_neighbors(VertexId v) const noexcept {
    return {in_adj_.data() + in_offsets_[v], in_adj_.data() + in_offsets_[v + 1]};
  }

  [[nodiscard]] std::size_t out_degree(VertexId v) const noexcept override {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  [[nodiscard]] std::size_t in_degree(VertexId v) const noexcept override {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  // GraphStore interface. The cursor is unused: spans point into the
  // resident arrays and stay valid for the store's lifetime.
  [[nodiscard]] StoreKind kind() const noexcept override { return StoreKind::kMemory; }
  [[nodiscard]] std::span<const Adj> out_neighbors(VertexId v,
                                                   AdjCursor&) const noexcept override {
    return out_neighbors(v);
  }
  [[nodiscard]] std::span<const Adj> in_neighbors(VertexId v,
                                                  AdjCursor&) const noexcept override {
    return in_neighbors(v);
  }
  [[nodiscard]] StoreMemory memory() const noexcept override {
    StoreMemory m;
    m.resident_bytes = (out_offsets_.size() + in_offsets_.size()) * sizeof(std::size_t) +
                       (out_adj_.size() + in_adj_.size()) * sizeof(Adj);
    return m;
  }

 private:
  std::vector<std::size_t> out_offsets_;
  std::vector<Adj> out_adj_;
  std::vector<std::size_t> in_offsets_;
  std::vector<Adj> in_adj_;
};

}  // namespace cyclops::graph
