#include "cyclops/graph/loader.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace cyclops::graph {

EdgeList load_edge_list(std::istream& in, const LoadOptions& opts) {
  EdgeList edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto densify = [&](std::uint64_t raw) -> VertexId {
    if (!opts.densify_ids) {
      if (raw > kInvalidVertex - 1) throw std::runtime_error("vertex id overflows 32 bits");
      return static_cast<VertexId>(raw);
    }
    auto [it, inserted] = remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t raw_src = 0;
    std::uint64_t raw_dst = 0;
    if (!(ls >> raw_src >> raw_dst)) {
      throw std::runtime_error("malformed edge at line " + std::to_string(lineno));
    }
    double weight = opts.default_weight;
    if (double w = 0; ls >> w) {
      if (!std::isfinite(w)) {
        throw std::runtime_error("non-finite weight at line " + std::to_string(lineno));
      }
      weight = w;
    }
    const VertexId src = densify(raw_src);
    const VertexId dst = densify(raw_dst);
    if (opts.undirected) {
      edges.add_undirected(src, dst, weight);
    } else {
      edges.add(src, dst, weight);
    }
  }
  return edges;
}

EdgeList load_edge_list_file(const std::string& path, const LoadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return load_edge_list(in, opts);
}

void save_edge_list(std::ostream& out, const EdgeList& edges) {
  bool uniform = true;
  for (const Edge& e : edges.edges()) {
    if (e.weight != 1.0) {
      uniform = false;
      break;
    }
  }
  out << "# cyclops edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.src << ' ' << e.dst;
    if (!uniform) out << ' ' << e.weight;
    out << '\n';
  }
}

void save_edge_list_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  save_edge_list(out, edges);
}

namespace {
constexpr char kMagic[4] = {'C', 'Y', 'G', 'R'};
constexpr std::uint32_t kBinaryVersion = 1;

struct BinaryEdge {
  VertexId src;
  VertexId dst;
  double weight;
};
}  // namespace

void save_binary_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kBinaryVersion;
  const std::uint32_t n = edges.num_vertices();
  const std::uint64_t m = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (const Edge& e : edges.edges()) {
    const BinaryEdge rec{e.src, e.dst, e.weight};
    out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  if (!out) throw std::runtime_error("short write to graph file: " + path);
}

EdgeList load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a cyclops binary graph: " + path);
  }
  std::uint32_t version = 0;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || version != kBinaryVersion) {
    throw std::runtime_error("unsupported binary graph version in " + path);
  }
  EdgeList edges(n);
  edges.edges().reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    BinaryEdge rec;
    in.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!in) throw std::runtime_error("truncated binary graph: " + path);
    if (rec.src >= n || rec.dst >= n) {
      throw std::runtime_error("corrupt binary graph (edge out of range): " + path);
    }
    edges.add(rec.src, rec.dst, rec.weight);
  }
  return edges;
}

}  // namespace cyclops::graph
