#include "cyclops/graph/loader.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace cyclops::graph {

EdgeList load_edge_list(std::istream& in, const LoadOptions& opts) {
  EdgeList edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  std::uint64_t line_begin = 0;  // byte offset of the current line's start
  std::size_t lineno = 0;
  auto densify = [&](std::uint64_t raw) -> VertexId {
    if (!opts.densify_ids) {
      if (raw > kInvalidVertex - 1) {
        throw LoadError("vertex id overflows 32 bits", line_begin, lineno);
      }
      return static_cast<VertexId>(raw);
    }
    auto [it, inserted] = remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };

  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    const std::uint64_t this_line = line_begin;
    line_begin += line.size() + 1;  // getline consumed the '\n' too
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t raw_src = 0;
    std::uint64_t raw_dst = 0;
    if (!(ls >> raw_src >> raw_dst)) {
      throw LoadError("malformed edge", this_line, lineno);
    }
    double weight = opts.default_weight;
    if (double w = 0; ls >> w) {
      if (!std::isfinite(w)) {
        throw LoadError("non-finite weight", this_line, lineno);
      }
      weight = w;
    } else if (!ls.eof()) {
      // A third column exists but is not a number — corrupt, not absent.
      throw LoadError("malformed weight", this_line, lineno);
    }
    const VertexId src = densify(raw_src);
    const VertexId dst = densify(raw_dst);
    if (opts.undirected) {
      edges.add_undirected(src, dst, weight);
    } else {
      edges.add(src, dst, weight);
    }
  }
  return edges;
}

EdgeList load_edge_list_file(const std::string& path, const LoadOptions& opts) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return load_edge_list(in, opts);
}

void save_edge_list(std::ostream& out, const EdgeList& edges) {
  bool uniform = true;
  for (const Edge& e : edges.edges()) {
    if (e.weight != 1.0) {
      uniform = false;
      break;
    }
  }
  out << "# cyclops edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.src << ' ' << e.dst;
    if (!uniform) out << ' ' << e.weight;
    out << '\n';
  }
}

void save_edge_list_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  save_edge_list(out, edges);
}

namespace {
constexpr char kMagic[4] = {'C', 'Y', 'G', 'R'};
constexpr std::uint32_t kBinaryVersion = 1;

struct BinaryEdge {
  VertexId src;
  VertexId dst;
  double weight;
};

// Fixed header layout: magic @0, version @4, n @8, m @12, records @20.
constexpr std::uint64_t kVersionOffset = sizeof(kMagic);
constexpr std::uint64_t kCountOffset = kVersionOffset + sizeof(std::uint32_t);
constexpr std::uint64_t kRecordOffset =
    kCountOffset + sizeof(std::uint32_t) + sizeof(std::uint64_t);
}  // namespace

void save_binary_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write graph file: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kBinaryVersion;
  const std::uint32_t n = edges.num_vertices();
  const std::uint64_t m = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (const Edge& e : edges.edges()) {
    const BinaryEdge rec{e.src, e.dst, e.weight};
    out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  if (!out) throw std::runtime_error("short write to graph file: " + path);
}

EdgeList load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw LoadError("not a cyclops binary graph: " + path, 0);
  }
  std::uint32_t version = 0;
  std::uint32_t n = 0;
  std::uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) throw LoadError("truncated binary graph header: " + path, kVersionOffset);
  if (version != kBinaryVersion) {
    throw LoadError("unsupported binary graph version in " + path, kVersionOffset);
  }
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) throw LoadError("truncated binary graph header: " + path, kCountOffset);
  EdgeList edges(n);
  edges.edges().reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t rec_offset = kRecordOffset + i * sizeof(BinaryEdge);
    BinaryEdge rec;
    in.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!in) throw LoadError("truncated binary graph: " + path, rec_offset);
    if (rec.src >= n || rec.dst >= n) {
      throw LoadError("corrupt binary graph (edge out of range): " + path, rec_offset);
    }
    edges.add(rec.src, rec.dst, rec.weight);
  }
  return edges;
}

}  // namespace cyclops::graph
