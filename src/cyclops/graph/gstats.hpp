#pragma once
// Structural statistics over a CSR graph, used to validate that generated
// stand-in datasets match the properties the experiments rely on.

#include "cyclops/common/stats.hpp"
#include "cyclops/graph/store.hpp"

namespace cyclops::graph {

struct GraphStats {
  VertexId num_vertices = 0;
  std::size_t num_edges = 0;
  Summary out_degree;
  Summary in_degree;
  double avg_degree = 0;
  VertexId max_out_degree_vertex = 0;
  std::size_t isolated_vertices = 0;  ///< no in- and no out-edges
};

[[nodiscard]] GraphStats compute_stats(const GraphStore& g);

/// Fits log(count) ~ alpha * log(degree) over the out-degree distribution
/// tail; skewed web-like graphs have alpha roughly in [-3, -1.5].
[[nodiscard]] double powerlaw_exponent(const GraphStore& g);

/// Reachable-vertex count from src following out-edges (BFS).
[[nodiscard]] std::size_t reachable_from(const GraphStore& g, VertexId src);

}  // namespace cyclops::graph
