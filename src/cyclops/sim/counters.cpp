#include "cyclops/sim/counters.hpp"

namespace cyclops::sim {
static_assert(sizeof(NetCounters) > 0);
}  // namespace cyclops::sim
