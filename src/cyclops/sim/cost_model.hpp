#pragma once
// Network cost model for the simulated cluster. The paper's testbed is six
// 12-core machines on 1 GigE, with Hama on Hadoop RPC (Java) and PowerGraph
// on Boost RPC (C++). Message work in this repo is real (serialization,
// queueing, delivery all execute), but the *wire* does not exist, so each
// exchange also accrues modeled time from these parameters. Defaults are
// calibrated against Table 3 (per-message RPC costs) and §2.2.2 (PageRank on
// Hama spends >50% of its time communicating).

#include <cstddef>
#include <cstdint>

#include "cyclops/common/types.hpp"

namespace cyclops::sim {

struct CostModel {
  double per_remote_msg_us = 0.35;  ///< RPC overhead per cross-machine message
  double per_byte_us = 0.008;       ///< ~1 Gbit/s wire bandwidth
  double loopback_factor = 0.3;     ///< same-machine messages pay this fraction
  double barrier_base_us = 200.0;   ///< fixed global-barrier latency
  double barrier_per_participant_us = 50.0;  ///< coordination per participant
  double disk_byte_us = 0.01;       ///< ~100 MB/s spill disk (out-of-core store)

  // Per-message in-engine rates below are the *batched* RPC costs (derived
  // from the paper's end-to-end times); the serial per-message path of
  // Table 3 is measured, not modeled — see bench_table3_msg_micro.

  /// Hama-like stack: per-message Java serialization over Hadoop RPC.
  [[nodiscard]] static CostModel hama_java() noexcept { return CostModel{}; }

  /// PowerGraph-grade Boost C++ RPC.
  [[nodiscard]] static CostModel boost_cpp() noexcept {
    CostModel m;
    m.per_remote_msg_us = 0.1;
    return m;
  }

  /// Cyclops replica-sync messaging: same Hadoop RPC stack as Hama, but
  /// payloads are bundled primitive arrays updated in place.
  [[nodiscard]] static CostModel cyclops_sync() noexcept {
    CostModel m;
    m.per_remote_msg_us = 0.15;
    return m;
  }

  /// Free communication — isolates pure computation effects in ablations.
  [[nodiscard]] static CostModel zero() noexcept {
    return CostModel{0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  }

  [[nodiscard]] double remote_cost_us(std::size_t msgs, std::size_t bytes) const noexcept {
    return static_cast<double>(msgs) * per_remote_msg_us +
           static_cast<double>(bytes) * per_byte_us;
  }

  [[nodiscard]] double local_cost_us(std::size_t msgs, std::size_t bytes) const noexcept {
    return remote_cost_us(msgs, bytes) * loopback_factor;
  }

  [[nodiscard]] double barrier_cost_us(std::size_t participants) const noexcept {
    return barrier_base_us + barrier_per_participant_us * static_cast<double>(participants);
  }

  /// Modeled cost of spilling `bytes` to disk and reading them back — the
  /// out-of-core store's bounded message buffering above its budget.
  [[nodiscard]] double spill_cost_us(std::size_t bytes) const noexcept {
    return 2.0 * static_cast<double>(bytes) * disk_byte_us;
  }
};

/// Placement of logical workers on simulated machines: worker w lives on
/// machine w / workers_per_machine (contiguous blocks, so replica grouping by
/// machine is meaningful).
struct Topology {
  MachineId machines = 1;
  WorkerId workers_per_machine = 1;

  [[nodiscard]] WorkerId total_workers() const noexcept {
    return machines * workers_per_machine;
  }
  [[nodiscard]] MachineId machine_of(WorkerId w) const noexcept {
    return w / workers_per_machine;
  }
  [[nodiscard]] bool same_machine(WorkerId a, WorkerId b) const noexcept {
    return machine_of(a) == machine_of(b);
  }
};

}  // namespace cyclops::sim
