#pragma once
// Deterministic fault injection for the simulated cluster (the robustness
// counterpart of §3.6). A FaultPlan is a seeded schedule of machine crashes,
// package drops, in-flight byte corruption, and per-machine straggler delay;
// a FaultInjector interprets the plan at the Fabric's exchange barrier.
//
// Honesty rules, matching the rest of the simulator:
//   * Faults never silently change delivered payloads. Drops and corruptions
//     are absorbed by the fabric's reliable-delivery layer (detect via the
//     per-Package CRC32, "retransmit" the pristine bytes) and show up only as
//     modeled time charged through the CostModel plus FaultStats counters —
//     so a faulty run converges to bit-identical results.
//   * Machine crashes are fatal to the run: the exchange throws FaultError
//     and the engine incarnation is dead. Recovery is the job of
//     runtime::RecoveryCoordinator (fresh engine + checkpoint restore).
//   * Every decision derives from (seed, superstep, exchange, src, dst) by
//     stateless hashing, so an identical seed yields an identical fault
//     schedule regardless of host threading, and a replayed superstep sees
//     exactly the faults the original saw.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>

#include "cyclops/common/types.hpp"

namespace cyclops::sim {

inline constexpr Superstep kNeverCrash = std::numeric_limits<Superstep>::max();
inline constexpr MachineId kNoMachine = std::numeric_limits<MachineId>::max();

struct FaultPlan {
  std::uint64_t seed = 0;

  /// Crash machine `crash_machine` at the first exchange barrier of superstep
  /// `crash_at` (one-shot: the replacement machine does not re-crash).
  Superstep crash_at = kNeverCrash;
  MachineId crash_machine = 0;

  /// Optional second one-shot crash, for double-fault scenarios (e.g. a
  /// machine dying while a previous crash's replay is still in flight). Only
  /// armed when crash2_at != kNeverCrash; fires at most once, after the
  /// first crash has fired or independently if scheduled earlier.
  Superstep crash2_at = kNeverCrash;
  MachineId crash2_machine = 0;

  /// Probability that a (src, dst) package's first transmission is lost and
  /// must be retransmitted after a timeout.
  double drop_rate = 0.0;

  /// Probability that a package arrives with a flipped bit; caught by the
  /// per-Package CRC32 and retransmitted.
  double corrupt_rate = 0.0;

  /// Fixed extra wire time per exchange for one slow machine (kNoMachine
  /// disables). Models a degraded NIC / contended node.
  MachineId straggler_machine = kNoMachine;
  double straggler_delay_us = 0.0;

  /// Modeled time between a machine dying and the barrier timing out on it —
  /// the failure-detection latency the recovery clock starts with.
  double detection_timeout_us = 500000.0;  // 0.5 s, heartbeat-timeout scale

  /// Modeled retransmission penalty on top of re-paying the package's wire
  /// cost (timeout + re-request round trip).
  double retransmit_timeout_us = 200.0;

  [[nodiscard]] bool any_armed() const noexcept {
    return crash_at != kNeverCrash || crash2_at != kNeverCrash || drop_rate > 0 ||
           corrupt_rate > 0 ||
           (straggler_machine != kNoMachine && straggler_delay_us > 0);
  }
};

struct FaultStats {
  std::uint64_t dropped_packages = 0;    ///< first transmissions lost
  std::uint64_t corrupted_packages = 0;  ///< CRC mismatches detected
  std::uint64_t retransmissions = 0;     ///< drops + corruptions re-sent
  std::uint32_t crashes = 0;             ///< machine crashes fired
  double modeled_fault_overhead_s = 0;   ///< retransmit + straggler time

  FaultStats& operator+=(const FaultStats& o) noexcept {
    dropped_packages += o.dropped_packages;
    corrupted_packages += o.corrupted_packages;
    retransmissions += o.retransmissions;
    crashes += o.crashes;
    modeled_fault_overhead_s += o.modeled_fault_overhead_s;
    return *this;
  }
};

enum class FaultKind : std::uint8_t { kMachineCrash, kPackageDrop, kPackageCorruption };

/// Thrown out of Fabric::exchange() when an unrecoverable fault (machine
/// crash) fires. The engine incarnation that observes it is considered lost;
/// runtime::run_with_recovery catches it, discards the engine, and restores a
/// replacement from the latest checkpoint.
class FaultError : public std::runtime_error {
 public:
  FaultError(FaultKind kind, MachineId machine, Superstep superstep)
      : std::runtime_error("machine " + std::to_string(machine) +
                           " crashed at superstep " + std::to_string(superstep)),
        kind_(kind),
        machine_(machine),
        superstep_(superstep) {}

  [[nodiscard]] FaultKind kind() const noexcept { return kind_; }
  [[nodiscard]] MachineId machine() const noexcept { return machine_; }
  [[nodiscard]] Superstep superstep() const noexcept { return superstep_; }

 private:
  FaultKind kind_;
  MachineId machine_;
  Superstep superstep_;
};

/// Interprets a FaultPlan at exchange barriers. One injector outlives every
/// engine incarnation of a recovering run (share it via Config::faults), so
/// one-shot faults stay fired across rollback-and-replay.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) noexcept : plan_(plan) {}

  /// Repositions the fault clock; called by the SuperstepDriver at the top of
  /// every superstep (also during replay, so replayed exchanges roll the same
  /// per-package faults the original run saw).
  void begin_superstep(Superstep s) noexcept {
    superstep_ = s;
    exchange_in_step_ = 0;
  }

  /// Called by the Fabric once per exchange, before any delivery.
  void begin_exchange() noexcept { ++exchange_in_step_; }

  /// The machine that dies at this exchange, or kNoMachine. Each scheduled
  /// crash fires exactly once — at the first exchange of its superstep — and
  /// stays fired across engine incarnations (replay does not re-crash).
  [[nodiscard]] MachineId crash_now() noexcept {
    if (!crash_fired_ && superstep_ == plan_.crash_at) {
      crash_fired_ = true;
      ++stats_.crashes;
      return plan_.crash_machine;
    }
    if (!crash2_fired_ && plan_.crash2_at != kNeverCrash &&
        superstep_ == plan_.crash2_at) {
      crash2_fired_ = true;
      ++stats_.crashes;
      return plan_.crash2_machine;
    }
    return kNoMachine;
  }

  [[nodiscard]] bool roll_drop(WorkerId from, WorkerId to) noexcept {
    if (plan_.drop_rate <= 0) return false;
    const bool hit = roll(1, from, to) < plan_.drop_rate;
    if (hit) {
      ++stats_.dropped_packages;
      ++stats_.retransmissions;
    }
    return hit;
  }

  struct BitFlip {
    std::size_t byte_index;
    std::uint8_t mask;
  };

  /// Decides whether the (from, to) package is corrupted in flight and which
  /// bit flips. The caller applies the flip, detects it against the package
  /// CRC, and re-applies it to model the retransmitted pristine copy.
  [[nodiscard]] std::optional<BitFlip> roll_corrupt(WorkerId from, WorkerId to,
                                                    std::size_t package_bytes) noexcept {
    if (plan_.corrupt_rate <= 0 || package_bytes == 0) return std::nullopt;
    if (roll(2, from, to) >= plan_.corrupt_rate) return std::nullopt;
    const std::uint64_t h = mix(3, from, to);
    ++stats_.corrupted_packages;
    ++stats_.retransmissions;
    return BitFlip{static_cast<std::size_t>(h % package_bytes),
                   static_cast<std::uint8_t>(1u << ((h >> 32) & 7u))};
  }

  [[nodiscard]] double straggler_extra_us(MachineId machine) const noexcept {
    return machine == plan_.straggler_machine ? plan_.straggler_delay_us : 0.0;
  }

  void charge_overhead_us(double us) noexcept {
    stats_.modeled_fault_overhead_s += us * 1e-6;
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Superstep superstep() const noexcept { return superstep_; }
  /// 1-based exchange index within the current superstep (the message-log
  /// key component; bumped by begin_exchange before any delivery).
  [[nodiscard]] std::uint64_t exchange_in_step() const noexcept {
    return exchange_in_step_;
  }
  [[nodiscard]] bool crash_pending() const noexcept {
    return (plan_.crash_at != kNeverCrash && !crash_fired_) ||
           (plan_.crash2_at != kNeverCrash && !crash2_fired_);
  }

 private:
  /// Stateless SplitMix64-style mix of the full fault coordinate.
  [[nodiscard]] std::uint64_t mix(std::uint64_t stream, WorkerId from,
                                  WorkerId to) const noexcept {
    std::uint64_t z = plan_.seed ^ (stream * 0x9e3779b97f4a7c15ULL);
    z ^= (static_cast<std::uint64_t>(superstep_) << 32) ^ exchange_in_step_;
    z ^= (static_cast<std::uint64_t>(from) << 20) ^ to;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) from the mixed coordinate.
  [[nodiscard]] double roll(std::uint64_t stream, WorkerId from, WorkerId to) const noexcept {
    return static_cast<double>(mix(stream, from, to) >> 11) * 0x1.0p-53;
  }

  FaultPlan plan_;
  Superstep superstep_ = 0;
  std::uint64_t exchange_in_step_ = 0;
  bool crash_fired_ = false;
  bool crash2_fired_ = false;
  FaultStats stats_;
};

}  // namespace cyclops::sim
