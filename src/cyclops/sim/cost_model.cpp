#include "cyclops/sim/cost_model.hpp"

// Header-only arithmetic; this TU anchors the library target and pins the
// (trivial) type definitions to one object file.

namespace cyclops::sim {
static_assert(sizeof(CostModel) > 0);
static_assert(sizeof(Topology) > 0);
}  // namespace cyclops::sim
