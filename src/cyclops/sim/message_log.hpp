#pragma once
// Per-machine outgoing-message logs for log-based localized recovery
// (FTPregel's lightweight logging, ROADMAP item 2). The Fabric appends every
// *remote* package it delivers — keyed by (superstep, exchange-within-step,
// src worker, send lane, dst worker) — so that after a machine crash only the failed
// machine replays: survivors re-feed the replayer its logged inbound streams
// instead of recomputing, and the replayer's outbound to survivors is
// suppressed (they already received it).
//
// The simulator exercises that contract by re-executing the replay window
// deterministically and byte-comparing every re-sent remote package against
// its logged copy (MessageLog::verify_replayed); a single differing byte is
// a mismatch, counted and surfaced through RecoveryStats. Combined with the
// wire-digest continuity check in Fabric (PR 4), this proves replay fidelity
// bit-for-bit rather than assuming it.
//
// Two backings, selected by LogStoreKind:
//   * kMemory — payloads live in one append-only byte arena.
//   * kSpill  — payloads go to an unlinked spill file (the StreamStore
//     pattern: created, unlinked, held open — it vanishes with the process),
//     read back via pread only when a replay verifies. Each spilled payload
//     is CRC-framed on the way in and integrity-checked on the way out
//     (common/crc32.hpp), so at-rest bit rot is detected, not replayed.
//
// One log outlives every engine incarnation of a recovering run (share it
// via Config::message_log, exactly like Config::faults): entries appended by
// a crashed incarnation are what the replacement verifies against.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/sim/cost_model.hpp"

namespace cyclops::sim {

enum class LogStoreKind : std::uint8_t { kMemory = 0, kSpill = 1 };

[[nodiscard]] inline const char* log_store_kind_name(LogStoreKind k) noexcept {
  return k == LogStoreKind::kMemory ? "memory" : "spill";
}

struct MessageLogStats {
  std::uint64_t logged_packages = 0;
  std::uint64_t logged_messages = 0;
  std::uint64_t logged_bytes = 0;  ///< payload bytes (framing excluded)
  // Replay-fidelity accounting, filled during localized recovery.
  std::uint64_t verified_packages = 0;  ///< replayed packages byte-identical to log
  std::uint64_t verified_bytes = 0;
  std::uint64_t mismatched_packages = 0;  ///< replayed bytes differ from log
  std::uint64_t missing_packages = 0;     ///< replayed package never logged
};

class MessageLog {
 public:
  struct Entry {
    Superstep superstep = 0;
    std::uint64_t exchange = 0;  ///< exchange index within the superstep
    WorkerId from = 0;
    std::uint64_t lane = 0;  ///< sender lane (MT engines send one package per
                             ///< compute thread, all with the same from/to)
    WorkerId to = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;   ///< payload length
    std::uint32_t crc = 0;     ///< CRC-32 of the payload at log time
    std::uint64_t offset = 0;  ///< arena / spill-file payload offset
  };

  /// kMemory needs no arguments; kSpill creates its scratch file under
  /// `spill_dir` (empty = /tmp). Throws std::runtime_error when the spill
  /// file cannot be created.
  explicit MessageLog(LogStoreKind kind = LogStoreKind::kMemory,
                      std::string spill_dir = {});
  ~MessageLog();
  MessageLog(const MessageLog&) = delete;
  MessageLog& operator=(const MessageLog&) = delete;

  [[nodiscard]] LogStoreKind kind() const noexcept { return kind_; }

  /// Appends one remote package's payload. Called by Fabric::exchange as it
  /// drains each (from, lane, to) outbox buffer; replayed exchanges must NOT
  /// be re-appended (the Fabric's replay window guards this).
  void append(Superstep superstep, std::uint64_t exchange, WorkerId from,
              std::uint64_t lane, WorkerId to, std::uint64_t messages,
              std::span<const std::uint8_t> payload, std::uint32_t crc);

  /// Byte-compares a replayed package against its logged copy and updates
  /// the verified/mismatched/missing counters. Returns true only on a
  /// bit-identical match.
  bool verify_replayed(Superstep superstep, std::uint64_t exchange, WorkerId from,
                       std::uint64_t lane, WorkerId to,
                       std::span<const std::uint8_t> payload);

  /// Entry metadata lookup (no payload IO). Null when never logged.
  [[nodiscard]] const Entry* find(Superstep superstep, std::uint64_t exchange,
                                  WorkerId from, std::uint64_t lane,
                                  WorkerId to) const;

  /// Metadata-only scan over every entry with superstep in [begin, end), in
  /// deterministic key order. Recovery uses it to price the re-feed wire
  /// time of a replay window without touching payloads.
  template <typename Fn>
  void for_each(Superstep begin, Superstep end, Fn&& fn) const {
    for (const auto& [key, idx] : index_) {
      const Entry& e = entries_[idx];
      if (e.superstep < begin) continue;
      if (e.superstep >= end) break;  // index_ is ordered by superstep first
      fn(e);
    }
  }

  /// Modeled wire time (µs) to re-send every logged remote package bound for
  /// machine `dead` within supersteps [begin, end) — the survivors' only
  /// replay-phase work besides idling. Each package re-sends as one bulk
  /// frame (single RPC + bytes); the per-message marshalling was paid when
  /// the package was first built and logged.
  [[nodiscard]] double refeed_wire_us(const Topology& topo, const CostModel& model,
                                      MachineId dead, Superstep begin,
                                      Superstep end) const;

  /// Drops the index entries older than `superstep` (a recovery never
  /// replays earlier than the checkpoint it restored, so anything older is
  /// garbage). Payload bytes are not reclaimed — the arena/spill file is
  /// scratch space, not a database — and the logged_* stats stay cumulative.
  void truncate_before(Superstep superstep);

  [[nodiscard]] const MessageLogStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return index_.size(); }

 private:
  // Superstep stays first: truncate_before and for_each rely on the index
  // being ordered by superstep. The lane distinguishes the per-compute-thread
  // packages an MT engine sends between the same (from, to) pair.
  using Key = std::tuple<Superstep, std::uint64_t, WorkerId, std::uint64_t, WorkerId>;

  /// Reads one logged payload back (arena copy or spill pread) and validates
  /// its at-rest CRC frame. Throws std::runtime_error on IO failure.
  [[nodiscard]] std::vector<std::uint8_t> read_payload(const Entry& e) const;

  LogStoreKind kind_;
  int spill_fd_ = -1;
  std::uint64_t spill_tail_ = 0;  ///< next write offset in the spill file
  std::vector<std::uint8_t> arena_;
  std::vector<Entry> entries_;
  std::map<Key, std::size_t> index_;  ///< ordered: deterministic iteration
  MessageLogStats stats_;
};

}  // namespace cyclops::sim
