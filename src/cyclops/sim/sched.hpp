#pragma once
// Seeded deterministic schedule explorer (PCT-flavored, after Burckhardt et
// al.'s probabilistic concurrency testing): a TaskOrderHook that permutes the
// execution order of every ThreadPool region and the chunk split of every
// parallel_for, all as a pure function of (seed, decision index). N seeds
// explore N distinct interleavings of the engines' logical tasks; the same
// seed replays the same interleaving bit-identically, because the pool runs
// hooked regions serially in the planned order — there is no residual host
// nondeterminism left to leak in.
//
// The rolling FNV digest over every decision is the "schedule" half of a race
// report's (seed, schedule) pair: it names the exact prefix of scheduling
// decisions that led to the race, and is also what the schedule-independence
// tests compare (same seed => same digest; any seed => same wire traffic).
//
// Works with or without CYCLOPS_VERIFY — schedule sweeps check wire/value
// determinism on their own; the race analyzer rides along when compiled in
// (note_schedule stamps reports, a no-op otherwise).
//
// Not thread-safe: one explorer serves one ThreadPool's (serialized) regions.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "cyclops/common/thread_pool.hpp"
#include "cyclops/verify/race.hpp"

namespace cyclops::sim {

class ScheduleExplorer final : public TaskOrderHook {
 public:
  explicit ScheduleExplorer(std::uint64_t seed) noexcept : seed_(seed) {}

  void plan_region(std::size_t tasks, std::vector<std::size_t>& order) override {
    order.resize(tasks);
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Fisher-Yates with a hand-rolled draw (rng() % i): uniform_int_distribution
    // is implementation-defined, and the whole point of a schedule digest is
    // that a seed means the same interleaving everywhere.
    std::uint64_t rng = mix(seed_, ++decisions_);
    for (std::size_t i = tasks; i > 1; --i) {
      rng = next(rng);
      std::swap(order[i - 1], order[rng % i]);
    }
    fold(0x5245u);  // "RE"gion
    fold(tasks);
    for (const std::size_t t : order) fold(t);
    ++regions_;
    verify::race::note_schedule(seed_, digest_);
  }

  std::size_t plan_chunks(std::size_t n, std::size_t threads,
                          std::size_t default_chunks) override {
    const std::size_t cap =
        std::max<std::size_t>(default_chunks, std::min(n, threads * 4));
    const std::uint64_t draw = next(mix(seed_, ++decisions_));
    const std::size_t chunks = 1 + static_cast<std::size_t>(draw % cap);
    fold(0x4348u);  // "CH"unks
    fold(n);
    fold(chunks);
    verify::race::note_schedule(seed_, digest_);
    return chunks;
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Rolling digest of every scheduling decision taken so far.
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }
  [[nodiscard]] std::uint64_t regions() const noexcept { return regions_; }

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "schedule seed=" << seed_ << " digest=0x" << std::hex << digest_
       << std::dec << " regions=" << regions_;
    return os.str();
  }

 private:
  /// splitmix64 — the standard seeding scrambler; decision index in, state out.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t seed,
                                         std::uint64_t decision) noexcept {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (decision + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  [[nodiscard]] static std::uint64_t next(std::uint64_t s) noexcept {
    return mix(s, 0x6a09e667f3bcc908ULL);
  }

  void fold(std::uint64_t v) noexcept {
    // FNV-1a over the value's 8 bytes.
    for (int b = 0; b < 8; ++b) {
      digest_ ^= (v >> (8 * b)) & 0xffu;
      digest_ *= 0x100000001b3ULL;
    }
  }

  std::uint64_t seed_;
  std::uint64_t decisions_ = 0;
  std::uint64_t regions_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace cyclops::sim
