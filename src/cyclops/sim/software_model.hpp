#pragma once
// Deterministic software-time model. Engines count the exact work each
// simulated executor performs per phase (vertices computed, edges scanned,
// messages parsed / serialized / delivered) and convert counts to time with
// these per-operation rates; phase wall time is the maximum over simulated
// executors, i.e. perfectly-overlapped parallel time.
//
// Why modeled rather than measured: the paper's engines are JVM-based (Hama,
// Cyclops) or C++ (PowerGraph) running on 72 dedicated cores; this repo's
// loops are C++ on whatever host runs the benches — possibly one noisy
// shared core. Deterministic counts x calibrated rates keep every benchmark
// bit-reproducible and preserve the paper's *relative* costs. Rates are
// calibrated against Table 3 (per-message path costs), Figure 10(1) (phase
// shares), and §2.2.2 (Hama PageRank >50% communication).

#include <concepts>

namespace cyclops::sim {

struct SoftwareModel {
  double vertex_op_us = 0.5;     ///< per compute() invocation
  double edge_op_us = 0.3;       ///< per in-edge / message scanned in compute
  double msg_serialize_us = 0.6; ///< per message staged + serialized (send path)
  double msg_parse_us = 0.4;     ///< per record parsed into a mailbox (PRS)
  double msg_deliver_us = 0.3;   ///< per record handled on the receive path
  double msg_byte_us = 0.012;    ///< per payload byte on send+receive (Java
                                 ///< object serialization is byte-expensive)

  /// Hama: per-message Java object serialization, locked global-queue
  /// enqueue, and a separate parse phase (Table 3: ~2 us of software per
  /// message end-to-end).
  [[nodiscard]] static SoftwareModel hama_java() noexcept { return SoftwareModel{}; }

  /// Cyclops: same JVM compute costs, but bundled primitive-array sync
  /// messages, no parse phase, and lock-free direct replica updates
  /// (Table 3: ~0.2 us per message).
  [[nodiscard]] static SoftwareModel cyclops_java() noexcept {
    SoftwareModel m;
    // Compute rates match Hama's — same JVM, same compute bodies (§6.12's
    // "language gap" against PowerGraph applies to Cyclops too).
    m.msg_serialize_us = 0.25;
    m.msg_parse_us = 0.0;     // no PRS phase by construction
    m.msg_deliver_us = 0.1;   // in-place update + local activation
    m.msg_byte_us = 0.002;    // bundled primitive arrays
    return m;
  }

  /// PowerGraph: C++ end to end, and multithreaded within each machine-level
  /// worker (the 8-way intra-machine parallelism is folded into the rates,
  /// since the GAS engine models one worker per machine).
  [[nodiscard]] static SoftwareModel powergraph_cpp() noexcept {
    SoftwareModel m;
    m.vertex_op_us = 0.05;
    m.edge_op_us = 0.025;
    m.msg_serialize_us = 0.06;
    m.msg_parse_us = 0.0;
    m.msg_deliver_us = 0.04;
    m.msg_byte_us = 0.001;
    return m;
  }
};

/// Per-algorithm cost weights. compute() bodies differ enormously in cost —
/// an ALS in-edge contributes a rank-8 outer product, a PageRank in-edge one
/// multiply-add — so programs may declare these multipliers (defaults 1.0).
template <typename P>
concept HasComputeWeights = requires {
  { P::kVertexOpWeight } -> std::convertible_to<double>;
  { P::kEdgeOpWeight } -> std::convertible_to<double>;
};

template <typename P>
[[nodiscard]] constexpr double vertex_op_weight() noexcept {
  if constexpr (HasComputeWeights<P>) {
    return P::kVertexOpWeight;
  } else {
    return 1.0;
  }
}

template <typename P>
[[nodiscard]] constexpr double edge_op_weight() noexcept {
  if constexpr (HasComputeWeights<P>) {
    return P::kEdgeOpWeight;
  } else {
    return 1.0;
  }
}

}  // namespace cyclops::sim
