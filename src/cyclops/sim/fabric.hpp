#pragma once
// The simulated cluster interconnect. Workers write logical messages into
// per-destination outboxes during a superstep; exchange() plays the global
// barrier: it bundles each non-empty (src, dst) buffer into one package (the
// Hama bundling optimization, §4.1), delivers packages to the destination
// worker's inbox, and accrues modeled wire time from the CostModel.
//
// Payload bytes really move through std::vector buffers — per-byte work is
// honest — but no sockets exist; latency/bandwidth are charged by the model.

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "cyclops/common/check.hpp"
#include "cyclops/common/crc32.hpp"
#include "cyclops/common/types.hpp"
#include "cyclops/sim/cost_model.hpp"
#include "cyclops/sim/counters.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/sim/message_log.hpp"

namespace cyclops::sim {

/// A bundle of messages from one worker to another within one superstep.
struct Package {
  WorkerId from = 0;
  std::uint64_t message_count = 0;
  std::vector<std::uint8_t> bytes;
  std::uint32_t crc = 0;  ///< CRC-32 of `bytes`, stamped at bundling time

  [[nodiscard]] bool verify() const noexcept { return crc32(bytes) == crc; }
};

/// Single-writer per lane: an engine gives each sending thread its own lane
/// (CyclopsMT's private out-queues, §5); a single-threaded worker uses lane 0.
class OutBox {
 public:
  OutBox() = default;
  void init(WorkerId num_workers) {
    buffers_.assign(num_workers, Buffer{});
  }

  /// Appends one logical message for `to`.
  void send(WorkerId to, std::span<const std::uint8_t> payload) {
    CYCLOPS_DCHECK(to < buffers_.size());
    Buffer& b = buffers_[to];
    b.bytes.insert(b.bytes.end(), payload.begin(), payload.end());
    ++b.messages;
  }

  /// Grows the destination buffer ahead of a batch of appends, so a
  /// superstep's sync traffic to `to` allocates once instead of per record
  /// (used by runtime::SyncChannel).
  void reserve(WorkerId to, std::size_t n_bytes) {
    CYCLOPS_DCHECK(to < buffers_.size());
    Buffer& b = buffers_[to];
    b.bytes.reserve(b.bytes.size() + n_bytes);
  }

  /// Appends one trivially-copyable record directly — same wire bytes as
  /// serializing through ByteWriter and send(), without the intermediate
  /// buffer round-trip.
  ///
  /// Records with internal padding (e.g. a {uint32, double} wire record) get
  /// their padding bits zeroed before hitting the buffer: padding content is
  /// unspecified garbage that would otherwise leak into package CRCs and the
  /// fabric's wire digest, breaking bit-identical traffic across runs.
  template <typename Record>
    requires std::is_trivially_copyable_v<Record>
  void send_record(WorkerId to, const Record& rec) {
    CYCLOPS_DCHECK(to < buffers_.size());
    Buffer& b = buffers_[to];
    if constexpr (std::has_unique_object_representations_v<Record>) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(&rec);
      b.bytes.insert(b.bytes.end(), p, p + sizeof(Record));
    } else {
      Record clean = rec;
      __builtin_clear_padding(&clean);  // GCC/Clang >= 11; toolchain-pinned
      const auto* p = reinterpret_cast<const std::uint8_t*>(&clean);
      b.bytes.insert(b.bytes.end(), p, p + sizeof(Record));
    }
    ++b.messages;
  }

  [[nodiscard]] std::uint64_t pending_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const Buffer& b : buffers_) total += b.bytes.size();
    return total;
  }

 private:
  friend class Fabric;
  struct Buffer {
    std::vector<std::uint8_t> bytes;
    std::uint64_t messages = 0;
  };
  std::vector<Buffer> buffers_;
};

struct ExchangeStats {
  NetSnapshot net;                ///< traffic moved by this exchange
  double modeled_comm_s = 0;      ///< max per-machine wire time
  double modeled_barrier_s = 0;   ///< barrier cost for the given participants
  std::uint64_t peak_buffered_bytes = 0;  ///< high-water mark of in-flight bytes
  std::uint64_t retransmitted_packages = 0;  ///< dropped or corrupted, re-sent
};

class Fabric {
 public:
  /// lanes_per_worker: number of independent sender lanes each worker gets.
  Fabric(Topology topo, CostModel model, std::size_t lanes_per_worker = 1);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const CostModel& cost_model() const noexcept { return model_; }

  /// Lane `lane` of worker `from`. Each lane must have at most one concurrent
  /// writer; distinct lanes may be written from distinct threads.
  [[nodiscard]] OutBox& outbox(WorkerId from, std::size_t lane = 0) noexcept {
    CYCLOPS_DCHECK(from < topo_.total_workers() && lane < lanes_);
    return outboxes_[from * lanes_ + lane];
  }

  /// Global barrier: delivers every pending buffer as packages and charges
  /// modeled time. `barrier_participants` is the number of parties in the
  /// barrier protocol (workers for flat BSP, machines for the hierarchical
  /// CyclopsMT barrier).
  ///
  /// With a fault injector installed this is also the fault boundary: a
  /// scheduled machine crash throws FaultError before anything is delivered
  /// (the superstep's traffic is lost with the machine); package drops and
  /// CRC-detected corruption are absorbed by retransmission, charged through
  /// the cost model.
  ExchangeStats exchange(std::size_t barrier_participants);

  /// Installs (or clears, with nullptr) the fault injector consulted by
  /// exchange(). Not owned: a recovering run shares one injector across
  /// engine incarnations so one-shot faults stay fired through replay.
  void install_faults(FaultInjector* injector) noexcept { faults_ = injector; }
  [[nodiscard]] FaultInjector* faults() const noexcept { return faults_; }

  /// Installs (or clears) the per-machine message log that exchange()
  /// appends every remote package to. Not owned: like the fault injector,
  /// one log outlives every engine incarnation of a recovering run. Logging
  /// keys on the injector's (superstep, exchange) clock, so a log without an
  /// installed injector records nothing.
  void install_log(MessageLog* log) noexcept { log_ = log; }
  [[nodiscard]] MessageLog* log() const noexcept { return log_; }

  /// Localized-recovery replay window. While the injector's superstep is in
  /// [resume_at, until), exchange() verifies every remote package against
  /// the installed MessageLog byte-for-byte instead of re-appending it, and
  /// suppresses wire-digest folding: those packages were already folded by
  /// the crashed incarnation whose digest seeds this fabric (the logical
  /// cluster sent them exactly once). `dead` is the machine being replayed —
  /// recovery uses it for cost attribution; verification covers all remote
  /// traffic, which is the stronger fidelity check.
  struct ReplayWindow {
    bool active = false;
    Superstep resume_at = 0;
    Superstep until = 0;
    MachineId dead = kNoMachine;
  };

  void begin_replay(Superstep resume_at, Superstep until, MachineId dead) noexcept {
    replay_ = ReplayWindow{true, resume_at, until, dead};
  }
  [[nodiscard]] const ReplayWindow& replay() const noexcept { return replay_; }

  /// Seeds the digest with a predecessor incarnation's value so the fold
  /// continues across a crash: the crashed fabric folded supersteps
  /// [0, crash) exactly as a fault-free run would, the replay window skips
  /// re-folding them, and folding resumes at `until` — making the final
  /// digest of a log-recovered run bit-identical to the fault-free one.
  void seed_wire_digest(std::uint64_t digest) noexcept { wire_digest_ = digest; }

  /// Packages delivered to `to` by the latest exchange.
  [[nodiscard]] std::span<const Package> incoming(WorkerId to) const noexcept {
    CYCLOPS_DCHECK(to < topo_.total_workers());
    return inboxes_[to];
  }

  void clear_incoming(WorkerId to) noexcept { inboxes_[to].clear(); }

  /// Order-sensitive FNV-1a fold of every package delivered so far: (src,
  /// dst, message count, payload CRC) in delivery order, across exchanges.
  /// Two runs of the same seeded workload must produce identical digests —
  /// the wire-determinism regression (tests/test_wire_determinism.cpp)
  /// asserts this bit-for-bit, which is what makes hash-order iteration
  /// feeding an OutBox a test failure rather than a latent flake.
  [[nodiscard]] std::uint64_t wire_digest() const noexcept { return wire_digest_; }

  [[nodiscard]] NetSnapshot totals() const noexcept { return counters_.snapshot(); }
  [[nodiscard]] double total_modeled_comm_s() const noexcept { return modeled_comm_s_; }
  [[nodiscard]] double total_modeled_barrier_s() const noexcept { return modeled_barrier_s_; }

 private:
  Topology topo_;
  CostModel model_;
  std::size_t lanes_ = 1;
  std::vector<OutBox> outboxes_;             // [worker * lanes_ + lane]
  std::vector<std::vector<Package>> inboxes_;  // [worker]
  NetCounters counters_;
  FaultInjector* faults_ = nullptr;
  MessageLog* log_ = nullptr;
  ReplayWindow replay_;
  double modeled_comm_s_ = 0;
  double modeled_barrier_s_ = 0;
  std::uint64_t wire_digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace cyclops::sim
