#pragma once
// Communication accounting. Every engine reports through these counters so
// "#Messages" columns in Tables 3/4 and Figure 10(3) come from one source of
// truth.

#include <atomic>
#include <cstdint>

namespace cyclops::sim {

/// Plain snapshot (copyable, arithmetic-friendly).
struct NetSnapshot {
  std::uint64_t remote_messages = 0;
  std::uint64_t local_messages = 0;   ///< cross-worker but same machine
  std::uint64_t remote_bytes = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t packages = 0;         ///< bundled (src worker, dst worker) transfers

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return remote_messages + local_messages;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return remote_bytes + local_bytes;
  }

  NetSnapshot& operator+=(const NetSnapshot& o) noexcept {
    remote_messages += o.remote_messages;
    local_messages += o.local_messages;
    remote_bytes += o.remote_bytes;
    local_bytes += o.local_bytes;
    packages += o.packages;
    return *this;
  }
  friend NetSnapshot operator-(NetSnapshot a, const NetSnapshot& b) noexcept {
    a.remote_messages -= b.remote_messages;
    a.local_messages -= b.local_messages;
    a.remote_bytes -= b.remote_bytes;
    a.local_bytes -= b.local_bytes;
    a.packages -= b.packages;
    return a;
  }
};

/// Thread-safe accumulating counters.
class NetCounters {
 public:
  void add_remote(std::uint64_t msgs, std::uint64_t bytes) noexcept {
    remote_messages_.fetch_add(msgs, std::memory_order_relaxed);
    remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_local(std::uint64_t msgs, std::uint64_t bytes) noexcept {
    local_messages_.fetch_add(msgs, std::memory_order_relaxed);
    local_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void add_package() noexcept { packages_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] NetSnapshot snapshot() const noexcept {
    NetSnapshot s;
    s.remote_messages = remote_messages_.load(std::memory_order_relaxed);
    s.local_messages = local_messages_.load(std::memory_order_relaxed);
    s.remote_bytes = remote_bytes_.load(std::memory_order_relaxed);
    s.local_bytes = local_bytes_.load(std::memory_order_relaxed);
    s.packages = packages_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    remote_messages_.store(0, std::memory_order_relaxed);
    local_messages_.store(0, std::memory_order_relaxed);
    remote_bytes_.store(0, std::memory_order_relaxed);
    local_bytes_.store(0, std::memory_order_relaxed);
    packages_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> remote_messages_{0};
  std::atomic<std::uint64_t> local_messages_{0};
  std::atomic<std::uint64_t> remote_bytes_{0};
  std::atomic<std::uint64_t> local_bytes_{0};
  std::atomic<std::uint64_t> packages_{0};
};

}  // namespace cyclops::sim
