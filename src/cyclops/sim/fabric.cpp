#include "cyclops/sim/fabric.hpp"

#include <algorithm>

namespace cyclops::sim {

Fabric::Fabric(Topology topo, CostModel model, std::size_t lanes_per_worker)
    : topo_(topo), model_(model), lanes_(std::max<std::size_t>(1, lanes_per_worker)) {
  CYCLOPS_CHECK(topo_.total_workers() > 0);
  outboxes_.resize(static_cast<std::size_t>(topo_.total_workers()) * lanes_);
  for (auto& box : outboxes_) box.init(topo_.total_workers());
  inboxes_.resize(topo_.total_workers());
}

ExchangeStats Fabric::exchange(std::size_t barrier_participants) {
  ExchangeStats stats;
  const WorkerId workers = topo_.total_workers();
  for (auto& inbox : inboxes_) inbox.clear();

  // Per-machine wire accounting: each machine's NIC serializes its own
  // outbound and inbound traffic; the superstep's comm time is the slowest
  // machine (they all overlap).
  std::vector<double> machine_cost_us(topo_.machines, 0.0);

  std::uint64_t buffered = 0;
  for (const OutBox& box : outboxes_) buffered += box.pending_bytes();
  stats.peak_buffered_bytes = buffered;

  for (WorkerId from = 0; from < workers; ++from) {
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      OutBox& box = outboxes_[from * lanes_ + lane];
      for (WorkerId to = 0; to < workers; ++to) {
        OutBox::Buffer& buf = box.buffers_[to];
        if (buf.messages == 0 && buf.bytes.empty()) continue;
        const bool local = topo_.same_machine(from, to);
        const std::uint64_t msgs = buf.messages;
        const std::uint64_t bytes = buf.bytes.size();
        if (local) {
          counters_.add_local(msgs, bytes);
          stats.net.local_messages += msgs;
          stats.net.local_bytes += bytes;
          const double cost = model_.local_cost_us(msgs, bytes);
          machine_cost_us[topo_.machine_of(from)] += cost;
        } else {
          counters_.add_remote(msgs, bytes);
          stats.net.remote_messages += msgs;
          stats.net.remote_bytes += bytes;
          const double cost = model_.remote_cost_us(msgs, bytes);
          machine_cost_us[topo_.machine_of(from)] += cost;
          machine_cost_us[topo_.machine_of(to)] += cost * 0.5;  // receive side
        }
        counters_.add_package();
        ++stats.net.packages;
        inboxes_[to].push_back(Package{from, msgs, std::move(buf.bytes)});
        buf.bytes = {};
        buf.messages = 0;
      }
    }
  }

  const double max_machine_us =
      machine_cost_us.empty() ? 0.0
                              : *std::max_element(machine_cost_us.begin(), machine_cost_us.end());
  stats.modeled_comm_s = max_machine_us * 1e-6;
  stats.modeled_barrier_s = model_.barrier_cost_us(barrier_participants) * 1e-6;
  modeled_comm_s_ += stats.modeled_comm_s;
  modeled_barrier_s_ += stats.modeled_barrier_s;
  return stats;
}

}  // namespace cyclops::sim
