#include "cyclops/sim/fabric.hpp"

#include <algorithm>

#include "cyclops/verify/race.hpp"

namespace cyclops::sim {

Fabric::Fabric(Topology topo, CostModel model, std::size_t lanes_per_worker)
    : topo_(topo), model_(model), lanes_(std::max<std::size_t>(1, lanes_per_worker)) {
  CYCLOPS_CHECK(topo_.total_workers() > 0);
  outboxes_.resize(static_cast<std::size_t>(topo_.total_workers()) * lanes_);
  for (auto& box : outboxes_) box.init(topo_.total_workers());
  inboxes_.resize(topo_.total_workers());
}

ExchangeStats Fabric::exchange(std::size_t barrier_participants) {
  ExchangeStats stats;
  const WorkerId workers = topo_.total_workers();

  // The global barrier is a happens-before epoch for the race analyzer: every
  // lane filled before it is drained here, on the driver's clock.
  verify::race::exchange_barrier();

  // Fault boundary: a machine scheduled to die at this superstep dies before
  // delivering anything — its outbound traffic and every peer's in-flight
  // state are lost with the barrier. The engine incarnation is unrecoverable
  // from here; runtime::run_with_recovery restores a replacement.
  if (faults_ != nullptr) {
    faults_->begin_exchange();
    if (const MachineId dead = faults_->crash_now(); dead != kNoMachine) {
      throw FaultError(FaultKind::kMachineCrash, dead, faults_->superstep());
    }
  }

  // Message-log / replay position. Both key on the injector's deterministic
  // (superstep, exchange-within-step) clock; inside a localized-recovery
  // replay window the fabric verifies re-sent remote traffic against the log
  // instead of appending, and leaves the (seeded) wire digest untouched.
  const Superstep log_superstep = faults_ != nullptr ? faults_->superstep() : 0;
  const std::uint64_t log_exchange = faults_ != nullptr ? faults_->exchange_in_step() : 0;
  const bool replaying =
      replay_.active && faults_ != nullptr && log_superstep < replay_.until;
  const bool logging = log_ != nullptr && faults_ != nullptr && !replaying;

  for (auto& inbox : inboxes_) inbox.clear();

  // Per-machine wire accounting: each machine's NIC serializes its own
  // outbound and inbound traffic; the superstep's comm time is the slowest
  // machine (they all overlap).
  std::vector<double> machine_cost_us(topo_.machines, 0.0);

  std::uint64_t buffered = 0;
  for (const OutBox& box : outboxes_) buffered += box.pending_bytes();
  stats.peak_buffered_bytes = buffered;

  for (WorkerId from = 0; from < workers; ++from) {
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      OutBox& box = outboxes_[from * lanes_ + lane];
      for (WorkerId to = 0; to < workers; ++to) {
        OutBox::Buffer& buf = box.buffers_[to];
        if (buf.messages == 0 && buf.bytes.empty()) continue;
        const bool local = topo_.same_machine(from, to);
        const std::uint64_t msgs = buf.messages;
        const std::uint64_t bytes = buf.bytes.size();
        double wire_cost = 0;
        if (local) {
          counters_.add_local(msgs, bytes);
          stats.net.local_messages += msgs;
          stats.net.local_bytes += bytes;
          wire_cost = model_.local_cost_us(msgs, bytes);
          machine_cost_us[topo_.machine_of(from)] += wire_cost;
        } else {
          counters_.add_remote(msgs, bytes);
          stats.net.remote_messages += msgs;
          stats.net.remote_bytes += bytes;
          wire_cost = model_.remote_cost_us(msgs, bytes);
          machine_cost_us[topo_.machine_of(from)] += wire_cost;
          machine_cost_us[topo_.machine_of(to)] += wire_cost * 0.5;  // receive side
        }
        counters_.add_package();
        ++stats.net.packages;

        // Integrity stamp: the receiver checks delivered bytes against the
        // CRC computed at bundling time.
        const std::uint32_t crc = crc32(buf.bytes);

        if (faults_ != nullptr) {
          // Drop: the first transmission is lost; the sender times out and
          // retransmits. Logical traffic is unchanged — the package arrives —
          // but the wire pays the package cost again plus the timeout.
          double overhead_us = 0;
          if (faults_->roll_drop(from, to)) {
            overhead_us += wire_cost + faults_->plan().retransmit_timeout_us;
            ++stats.retransmitted_packages;
          }
          // Corruption: a bit flips in flight. The flip is real (applied to
          // the live buffer) and detection is real (CRC mismatch); the
          // retransmission then delivers the pristine copy by undoing the
          // recorded flip, paying the package cost again.
          if (const auto flip = faults_->roll_corrupt(from, to, buf.bytes.size())) {
            buf.bytes[flip->byte_index] ^= flip->mask;
            CYCLOPS_CHECK(crc32(buf.bytes) != crc);  // CRC32 catches any 1-bit flip
            buf.bytes[flip->byte_index] ^= flip->mask;
            overhead_us += wire_cost + faults_->plan().retransmit_timeout_us;
            ++stats.retransmitted_packages;
          }
          if (overhead_us > 0) {
            machine_cost_us[topo_.machine_of(from)] += overhead_us;
            faults_->charge_overhead_us(overhead_us);
          }
        }

        // Message log: every remote package is appended once, at first
        // delivery; a replayed exchange byte-compares the re-sent buffer
        // against the logged copy instead (the bit-for-bit fidelity proof of
        // log-based recovery — mismatches surface in MessageLogStats).
        if (!local) {
          if (logging) {
            log_->append(log_superstep, log_exchange, from, lane, to, msgs, buf.bytes,
                         crc);
          } else if (replaying && log_ != nullptr) {
            log_->verify_replayed(log_superstep, log_exchange, from, lane, to,
                                  buf.bytes);
          }
        }

        // Fold the package into the run's wire digest before delivery. The
        // payload is already summarized by its CRC; folding (from, to, msgs,
        // crc) in delivery order makes the digest sensitive to both content
        // and ordering of everything that crossed the wire. Replayed
        // packages are not re-folded: the crashed incarnation already folded
        // them into the digest this fabric was seeded with.
        if (!replaying) {
          for (const std::uint64_t word :
               {std::uint64_t{from}, std::uint64_t{to}, msgs, std::uint64_t{crc}}) {
            wire_digest_ ^= word;
            wire_digest_ *= 0x100000001b3ULL;  // FNV-1a prime
          }
        }

        inboxes_[to].push_back(Package{from, msgs, std::move(buf.bytes), crc});
        buf.bytes = {};
        buf.messages = 0;
      }
    }
  }

  // Straggler: one machine's NIC is slow this exchange; it stretches the
  // barrier for everyone because comm time is the max over machines.
  if (faults_ != nullptr) {
    for (MachineId m = 0; m < topo_.machines; ++m) {
      const double extra = faults_->straggler_extra_us(m);
      if (extra > 0) {
        machine_cost_us[m] += extra;
        faults_->charge_overhead_us(extra);
      }
    }
  }

  const double max_machine_us =
      machine_cost_us.empty() ? 0.0
                              : *std::max_element(machine_cost_us.begin(), machine_cost_us.end());
  stats.modeled_comm_s = max_machine_us * 1e-6;
  stats.modeled_barrier_s = model_.barrier_cost_us(barrier_participants) * 1e-6;
  modeled_comm_s_ += stats.modeled_comm_s;
  modeled_barrier_s_ += stats.modeled_barrier_s;
  return stats;
}

}  // namespace cyclops::sim
