#include "cyclops/core/mutation.hpp"

#include <algorithm>

namespace cyclops::core {

namespace {

bool matches_any(const std::vector<graph::Edge>& removes, const graph::Edge& e) {
  return std::any_of(removes.begin(), removes.end(), [&](const graph::Edge& r) {
    return r.src == e.src && r.dst == e.dst;
  });
}

}  // namespace

void TopologyDelta::apply(graph::EdgeList& edges) const {
  auto& list = edges.edges();
  if (!removes_.empty()) {
    auto removed = [&](const graph::Edge& e) { return matches_any(removes_, e); };
    list.erase(std::remove_if(list.begin(), list.end(), removed), list.end());
  }
  for (const graph::Edge& e : adds_) {
    edges.add(e.src, e.dst, e.weight);
  }
}

graph::EdgeList TopologyDelta::applied(const graph::EdgeList& edges) const {
  graph::EdgeList out(edges.num_vertices());
  for (const graph::Edge& e : edges.edges()) {
    if (!removes_.empty() && matches_any(removes_, e)) continue;
    out.add(e.src, e.dst, e.weight);
  }
  for (const graph::Edge& e : adds_) {
    out.add(e.src, e.dst, e.weight);
  }
  return out;
}

std::vector<VertexId> TopologyDelta::touched_vertices() const {
  std::vector<VertexId> touched;
  touched.reserve(2 * (adds_.size() + removes_.size()));
  for (const graph::Edge& e : adds_) {
    touched.push_back(e.src);
    touched.push_back(e.dst);
  }
  for (const graph::Edge& e : removes_) {
    touched.push_back(e.src);
    touched.push_back(e.dst);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

}  // namespace cyclops::core
