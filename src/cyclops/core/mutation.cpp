#include "cyclops/core/mutation.hpp"

#include <algorithm>
#include <tuple>

namespace cyclops::core {

namespace {

/// Sorted (src, dst) pair index — pair-matching ignores weight.
using Pair = std::pair<VertexId, VertexId>;

bool pair_removed(const std::vector<Pair>& removed, const graph::Edge& e) {
  return std::binary_search(removed.begin(), removed.end(), Pair{e.src, e.dst});
}

}  // namespace

TopologyDelta::Canonical TopologyDelta::canonical() const {
  // Index the remove ops by pair: (src, dst, staging index), sorted so the
  // last remove for a pair is found with one upper_bound.
  std::vector<std::tuple<VertexId, VertexId, std::size_t>> removes;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (!ops_[i].is_add) {
      removes.emplace_back(ops_[i].edge.src, ops_[i].edge.dst, i);
    }
  }
  std::sort(removes.begin(), removes.end());

  Canonical out;
  // One canonical remove per distinct pair, in sorted pair order: a remove
  // erases every pre-existing (src, dst) edge no matter how often staged.
  for (std::size_t i = 0; i < removes.size(); ++i) {
    if (i == 0 || std::get<0>(removes[i]) != std::get<0>(removes[i - 1]) ||
        std::get<1>(removes[i]) != std::get<1>(removes[i - 1])) {
      out.removes.push_back(graph::Edge{std::get<0>(removes[i]), std::get<1>(removes[i]), 0.0});
    }
  }
  // An add survives iff no remove for its pair was staged at a later index
  // (last-op-wins: a later remove cancels it).
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (!ops_[i].is_add) continue;
    const graph::Edge& e = ops_[i].edge;
    auto it = std::upper_bound(removes.begin(), removes.end(),
                               std::make_tuple(e.src, e.dst, ops_.size()));
    const bool removed_later = it != removes.begin() &&
                               std::get<0>(*(it - 1)) == e.src &&
                               std::get<1>(*(it - 1)) == e.dst &&
                               std::get<2>(*(it - 1)) > i;
    if (!removed_later) out.adds.push_back(e);
  }
  return out;
}

void TopologyDelta::apply(graph::EdgeList& edges) const {
  const Canonical c = canonical();
  if (!c.removes.empty()) {
    std::vector<Pair> removed;
    removed.reserve(c.removes.size());
    for (const graph::Edge& r : c.removes) removed.emplace_back(r.src, r.dst);
    auto& list = edges.edges();
    auto gone = [&](const graph::Edge& e) { return pair_removed(removed, e); };
    list.erase(std::remove_if(list.begin(), list.end(), gone), list.end());
  }
  for (const graph::Edge& e : c.adds) {
    edges.add(e.src, e.dst, e.weight);
  }
}

graph::EdgeList TopologyDelta::applied(const graph::EdgeList& edges) const {
  const Canonical c = canonical();
  std::vector<Pair> removed;
  removed.reserve(c.removes.size());
  for (const graph::Edge& r : c.removes) removed.emplace_back(r.src, r.dst);

  graph::EdgeList out(edges.num_vertices());
  for (const graph::Edge& e : edges.edges()) {
    if (!removed.empty() && pair_removed(removed, e)) continue;
    out.add(e.src, e.dst, e.weight);
  }
  for (const graph::Edge& e : c.adds) {
    out.add(e.src, e.dst, e.weight);
  }
  return out;
}

std::vector<VertexId> TopologyDelta::touched_vertices() const {
  std::vector<VertexId> touched;
  touched.reserve(2 * ops_.size());
  for (const Op& op : ops_) {
    touched.push_back(op.edge.src);
    touched.push_back(op.edge.dst);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

}  // namespace cyclops::core
