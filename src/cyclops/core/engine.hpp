#pragma once
// The Cyclops engine — synchronous vertex-oriented computation over the
// distributed immutable view (§3). Per superstep:
//   CMP  active masters run compute(), reading neighbor data from local
//        shared memory (masters or read-only replicas). activate_neighbors()
//        stages the vertex's new exposed data; local out-neighbors are
//        activated immediately with a lock-free bitset write (§5).
//   SND  each dirty master applies its staged data locally and sends exactly
//        one unidirectional message per replica: (slot, payload). No
//        combining, no parsing, no receive-side locks — each replica slot has
//        exactly one writer (§3.4), so receivers update in place, in
//        parallel, and perform distributed activation via the replica's
//        local out-edges.
//   SYN  global (or hierarchical, §5) barrier; active sets swap.
// There is no PRS phase — that is the point.
//
// Program concept:
//   struct P {
//     using Value;    // master-private state
//     using Message;  // replicated shared data (what neighbors read); POD
//     Value init(VertexId v, const graph::GraphStore& g) const;
//     Message init_shared(VertexId v, const graph::GraphStore& g) const;
//     bool initially_active(VertexId v, const graph::GraphStore& g) const;
//     template <typename Ctx> void compute(Ctx& ctx) const;
//   };

#include <algorithm>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "cyclops/common/bitset.hpp"
#include "cyclops/common/check.hpp"
#include "cyclops/common/exec.hpp"
#include "cyclops/common/serialize.hpp"
#include "cyclops/common/thread_pool.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/core/engine_base.hpp"
#include "cyclops/core/layout.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/metrics/memory_model.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/partition/partition.hpp"
#include "cyclops/runtime/checkpoint.hpp"
#include "cyclops/runtime/exchange_accounting.hpp"
#include "cyclops/runtime/superstep_driver.hpp"
#include "cyclops/runtime/sync_channel.hpp"
#include "cyclops/sim/fabric.hpp"
#include "cyclops/verify/verify.hpp"

namespace cyclops::core {

template <typename Program>
class Engine {
 public:
  using Value = typename Program::Value;
  using Message = typename Program::Message;
  static_assert(std::is_trivially_copyable_v<Message>,
                "replica sync payloads cross simulated machines; must be POD");

  /// The per-vertex view handed to Program::compute — read-only access to
  /// all in-neighbors through the distributed immutable view.
  class Context {
   public:
    Context(Engine& engine, WorkerId worker, std::uint32_t master_idx) noexcept
        : engine_(engine),
          worker_(worker),
          master_idx_(master_idx),
          layout_(engine.layout_.workers[worker]) {}

    [[nodiscard]] VertexId vertex() const noexcept { return layout_.masters[master_idx_]; }
    [[nodiscard]] VertexId num_vertices() const noexcept {
      return engine_.graph_->num_vertices();
    }
    [[nodiscard]] Superstep superstep() const noexcept {
      return engine_.driver_.superstep();
    }

    [[nodiscard]] const Value& value() const noexcept {
      return engine_.values_[worker_][master_idx_];
    }
    void set_value(const Value& v) noexcept {
      engine_.vcheck_.on_master_stage(worker_, worker_, master_idx_, CYCLOPS_VLOC);
      engine_.values_[worker_][master_idx_] = v;
    }

    /// The immutable view: in-edges resolved to local shared-data slots.
    [[nodiscard]] std::span<const SlotAdj> in_edges() const noexcept {
      return {layout_.in_adj.data() + layout_.in_offsets[master_idx_],
              layout_.in_adj.data() + layout_.in_offsets[master_idx_ + 1]};
    }
    /// Read-only neighbor data (previous superstep's exposed value).
    [[nodiscard]] const Message& data(Slot slot) const noexcept {
      engine_.vcheck_.on_view_read(worker_, worker_, slot, CYCLOPS_VLOC);
      return engine_.shared_data_[worker_][slot];
    }
    [[nodiscard]] std::size_t num_in_edges() const noexcept { return in_edges().size(); }

    [[nodiscard]] std::size_t out_degree() const noexcept {
      return engine_.graph_->out_degree(vertex());
    }

    /// Publishes `msg` as this vertex's shared data for the next superstep
    /// and activates all out-neighbors (local ones immediately and lock-free;
    /// remote ones via the single unidirectional replica-sync message).
    void activate_neighbors(const Message& msg) {
      engine_.vcheck_.on_master_stage(worker_, worker_, master_idx_, CYCLOPS_VLOC);
      engine_.pending_[worker_][master_idx_] = msg;
      engine_.dirty_[worker_].set(master_idx_);
      const auto& lo = layout_.lout_offsets;
      for (std::size_t e = lo[master_idx_]; e < lo[master_idx_ + 1]; ++e) {
        engine_.next_active_[worker_].set(layout_.lout_adj[e]);
      }
    }

    /// Fine-grained convergence bookkeeping (§4.4).
    void mark_converged(bool converged) noexcept {
      if (converged) {
        engine_.converged_[worker_].set(master_idx_);
      } else {
        engine_.converged_[worker_].clear(master_idx_);
      }
    }

   private:
    Engine& engine_;
    WorkerId worker_;
    std::uint32_t master_idx_;
    const WorkerLayout& layout_;
  };

  Engine(const graph::GraphStore& g, const partition::EdgeCutPartition& part, Program program,
         Config config)
      : graph_(&g),
        program_(std::move(program)),
        config_(config),
        pool_(config.pool_threads),
        fabric_(config.topo, config.cost,
                /*lanes=*/std::max(1u, config.compute_threads)) {
    CYCLOPS_CHECK(part.num_parts() == config.topo.total_workers());
    CYCLOPS_CHECK(g.num_vertices() == part.num_vertices());
    if (config_.faults) {
      fabric_.install_faults(config_.faults.get());
      driver_.set_fault_injector(config_.faults.get());
    }
    if (config_.message_log) fabric_.install_log(config_.message_log.get());
    if (config_.schedule) pool_.set_task_order(config_.schedule.get());
    driver_.set_checker(&vcheck_);
    if (const std::uint64_t budget = graph_->message_budget_bytes(); budget > 0) {
      acct_.arm_spill(budget, config_.cost.disk_byte_us);
    }
    Timer ingress;
    layout_ = build_layout(g, part);
    init_state();
    ingress_s_ = ingress.elapsed_s();
  }

  metrics::RunStats run() {
    metrics::RunStats stats = driver_.run(
        config_.max_supersteps, acct_,
        [this](metrics::SuperstepStats& step) { return run_superstep(step); },
        [this](const metrics::SuperstepStats& step) {
          if (observer_) observer_(step, *this);
        });
    stats.ingress_s = ingress_s_;
    return stats;
  }

  /// Gathers master values into one globally-indexed vector.
  [[nodiscard]] std::vector<Value> values() const {
    std::vector<Value> out(graph_->num_vertices());
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        out[wl.masters[i]] = values_[w][i];
      }
    }
    return out;
  }

  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }
  [[nodiscard]] const sim::Fabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] Superstep superstep() const noexcept { return driver_.superstep(); }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t converged_count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : converged_) total += c.count();
    return total;
  }

  void set_observer(std::function<void(const metrics::SuperstepStats&, const Engine&)> fn) {
    observer_ = std::move(fn);
  }

  /// The engine's invariant checker (a no-op object unless built with
  /// -DCYCLOPS_VERIFY). Exposed so the CLI can print its summary and tests
  /// can install a collecting violation handler.
  [[nodiscard]] verify::EngineChecker& verifier() noexcept { return vcheck_; }
  [[nodiscard]] const verify::EngineChecker& verifier() const noexcept { return vcheck_; }

  /// Raises the superstep cap so run() can be called again to continue an
  /// already-finished computation (e.g. after a topology mutation).
  void extend_max_supersteps(Superstep additional) {
    config_.max_supersteps += additional;
  }

  /// Memory behaviour for Table 2. Replica bytes are the price of the view;
  /// message churn is what Cyclops *avoids* relative to Hama.
  [[nodiscard]] metrics::MemoryReport memory_report() const noexcept {
    metrics::MemoryReport r;
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      r.vertex_state_bytes += wl.num_masters() * (sizeof(Value) + sizeof(Message));
      r.vertex_state_bytes += wl.in_adj.size() * sizeof(SlotAdj) +
                              wl.lout_adj.size() * sizeof(std::uint32_t);
      r.replica_bytes += wl.num_replicas() * sizeof(Message);
    }
    const graph::StoreMemory sm = graph_->memory();
    r.store_resident_bytes = sm.resident_bytes;
    r.store_on_disk_bytes = sm.on_disk_bytes;
    r.vertex_state_bytes += sm.resident_bytes;
    r.peak_message_bytes = acct_.peak_buffered_bytes();
    if (const std::uint64_t budget = acct_.spill_budget_bytes(); budget > 0) {
      r.peak_message_bytes = std::min(r.peak_message_bytes, budget);
    }
    r.message_spill_bytes = acct_.spill_bytes();
    r.message_churn_bytes = acct_.churn_bytes();
    r.message_alloc_count = acct_.messages();
    return r;
  }

  // --- Checkpointing (§3.6): lightweight saves masters only — no replicas,
  // no messages (they are derived from the immutable view and regenerate on
  // restore). Heavyweight additionally persists every replica slot, the
  // Pregel-style full snapshot bench_recovery compares against. The snapshot
  // is a per-machine frameset (checkpoint.hpp): each machine's frame holds
  // its own workers' state, so localized recovery can reload just the failed
  // machine's frame. ---
  void checkpoint(ByteWriter& out,
                  runtime::CheckpointMode mode = runtime::CheckpointMode::kLightweight)
      const {
    runtime::write_frameset(out, config_.topo.machines,
                            [&](MachineId m, ByteWriter& frame) {
                              checkpoint_machine(m, frame, mode);
                            });
  }

  /// Throws SerializeError (recoverable) on truncated, corrupt, or
  /// wrong-shape snapshots; callers discard the engine on failure.
  void restore(ByteReader& in) {
    runtime::read_frameset(in, config_.topo.machines,
                           [&](MachineId m, ByteReader& frame) {
                             restore_machine(m, frame);
                           });
    // Heavyweight snapshots already carry replica slots, but resyncing from
    // masters is idempotent and also covers lightweight restores.
    resync_replicas();
  }

  /// Arms a localized-recovery replay window on this incarnation (log-based
  /// modes only): the fabric byte-verifies re-sent traffic against the log
  /// and continues the crashed incarnation's wire digest, so finishing the
  /// run proves replay fidelity. See runtime/recovery.hpp.
  void arm_replay(Superstep resume_at, Superstep until, MachineId dead,
                  std::uint64_t digest_seed) {
    fabric_.begin_replay(resume_at, until, dead);
    fabric_.seed_wire_digest(digest_seed);
    vcheck_.note_replay_window(resume_at, until);
  }

  /// Arms periodic checkpointing through the shared driver hook.
  void set_checkpoint_manager(runtime::CheckpointManager* manager) {
    if (manager == nullptr) {
      driver_.set_checkpointer(nullptr, {});
      return;
    }
    driver_.set_checkpointer(
        manager, [this, manager](ByteWriter& out) { checkpoint(out, manager->mode()); });
  }

  /// Invariant check: every replica's shared data equals its master's
  /// (bitwise). Holds at every superstep boundary.
  [[nodiscard]] bool replicas_consistent() const {
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        const Message& master_data = shared_data_[w][i];
        for (std::size_t r = wl.rep_offsets[i]; r < wl.rep_offsets[i + 1]; ++r) {
          const ReplicaRef ref = wl.rep_targets[r];
          if (std::memcmp(&shared_data_[ref.worker][ref.slot], &master_data,
                          sizeof(Message)) != 0) {
            return false;
          }
        }
      }
    }
    return true;
  }

  /// Externally re-activates a vertex (by global id) for the next superstep
  /// executed — used after topology mutation so affected vertices recompute.
  void activate(VertexId v) {
    CYCLOPS_CHECK(v < graph_->num_vertices());
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const auto& masters = layout_.workers[w].masters;
      const auto it = std::lower_bound(masters.begin(), masters.end(), v);
      if (it != masters.end() && *it == v) {
        cur_active_[w].set(static_cast<std::size_t>(it - masters.begin()));
        return;
      }
    }
    CYCLOPS_CHECK(false);  // vertex must be mastered somewhere
  }

  /// Pre-run state override for incremental re-convergence (ingest layer):
  /// sets v's master value and exposed shared data, clears its convergence
  /// mark, activates it, and pushes the new shared data to every replica
  /// immediately — so the very first CMP phase after this call already reads
  /// the overridden view. Legal only between run() calls (phase kIdle).
  void reset_vertex(VertexId v, const Value& value, const Message& shared) {
    CYCLOPS_CHECK(v < graph_->num_vertices());
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const auto& masters = layout_.workers[w].masters;
      const auto it = std::lower_bound(masters.begin(), masters.end(), v);
      if (it == masters.end() || *it != v) continue;
      const auto i = static_cast<std::uint32_t>(it - masters.begin());
      vcheck_.on_master_write(w, w, i, CYCLOPS_VLOC);
      values_[w][i] = value;
      shared_data_[w][i] = shared;
      converged_[w].clear(i);
      cur_active_[w].set(i);
      const WorkerLayout& wl = layout_.workers[w];
      for (std::size_t r = wl.rep_offsets[i]; r < wl.rep_offsets[i + 1]; ++r) {
        const ReplicaRef ref = wl.rep_targets[r];
        vcheck_.on_replica_write(ref.worker, ref.worker, ref.slot, CYCLOPS_VLOC);
        shared_data_[ref.worker][ref.slot] = shared;
      }
      return;
    }
    CYCLOPS_CHECK(false);  // vertex must be mastered somewhere
  }

  /// Master value of one vertex (by global id) — the point lookup the
  /// incremental layer uses to compute affected regions without gathering
  /// the full values() vector.
  [[nodiscard]] const Value& value_at(VertexId v) const {
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const auto& masters = layout_.workers[w].masters;
      const auto it = std::lower_bound(masters.begin(), masters.end(), v);
      if (it != masters.end() && *it == v) {
        return values_[w][static_cast<std::size_t>(it - masters.begin())];
      }
    }
    CYCLOPS_CHECK(false);  // vertex must be mastered somewhere
    return values_[0][0];
  }

  /// Topology mutation (§8 future work; see core/mutation.hpp): re-targets
  /// the engine at a mutated graph + partition, carrying all master state
  /// (values, shared data, activity, convergence marks) across by vertex id.
  /// New vertices are initialized by the program; replicas are rebuilt and
  /// resynchronized (they are derived state). Both arguments must outlive
  /// the engine. Returns the ingress time of the rebuild.
  double rebuild(const graph::GraphStore& new_graph, const partition::EdgeCutPartition& new_part) {
    CYCLOPS_CHECK(new_part.num_parts() == config_.topo.total_workers());
    CYCLOPS_CHECK(new_graph.num_vertices() == new_part.num_vertices());
    Timer timer;
    const VertexId old_n = graph_->num_vertices();

    // Save master state keyed by global id.
    std::vector<Value> old_values(old_n);
    std::vector<Message> old_shared(old_n);
    std::vector<std::uint8_t> old_flags(old_n, 0);
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        const VertexId v = wl.masters[i];
        old_values[v] = values_[w][i];
        old_shared[v] = shared_data_[w][i];
        old_flags[v] = static_cast<std::uint8_t>((cur_active_[w].test(i) ? 1 : 0) |
                                                 (converged_[w].test(i) ? 2 : 0) |
                                                 (next_active_[w].test(i) ? 4 : 0));
      }
    }

    graph_ = &new_graph;
    if (const std::uint64_t budget = graph_->message_budget_bytes(); budget > 0) {
      acct_.arm_spill(budget, config_.cost.disk_byte_us);
    }
    layout_ = build_layout(new_graph, new_part);
    init_state();

    // Restore carried state over the fresh initialization; vertices that are
    // new to the graph keep the program's init state (including its
    // initially_active decision).
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        const VertexId v = wl.masters[i];
        if (v >= old_n) continue;
        values_[w][i] = old_values[v];
        shared_data_[w][i] = old_shared[v];
        if (old_flags[v] & 1) {
          cur_active_[w].set(i);
        } else {
          cur_active_[w].clear(i);
        }
        if (old_flags[v] & 2) converged_[w].set(i);
        if (old_flags[v] & 4) next_active_[w].set(i);
      }
    }
    resync_replicas();
    const double elapsed = timer.elapsed_s();
    ingress_s_ += elapsed;
    return elapsed;
  }

  /// Rebuilds every replica from its master's shared data (used after
  /// restore; replicas are derived state and are never checkpointed).
  void resync_replicas() {
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        const Message& msg = shared_data_[w][i];
        for (std::size_t r = wl.rep_offsets[i]; r < wl.rep_offsets[i + 1]; ++r) {
          const ReplicaRef ref = wl.rep_targets[r];
          // Driver-thread write, stamped so a concurrent reader shows up as a
          // race rather than silently observing a half-resynced view.
          vcheck_.on_replica_write(ref.worker, ref.worker, ref.slot, CYCLOPS_VLOC);
          shared_data_[ref.worker][ref.slot] = msg;
        }
      }
    }
  }

 private:
  struct WireRecord {
    Slot slot;
    Message payload;
  };
  using Channel = runtime::SyncChannel<WireRecord>;

  // Machine m's workers are the contiguous range [m*W, (m+1)*W): partitions
  // are assigned to workers in machine-major order (Topology::machine_of).
  [[nodiscard]] std::pair<WorkerId, WorkerId> machine_workers(MachineId m) const noexcept {
    const WorkerId per = config_.topo.workers_per_machine;
    return {m * per, (m + 1) * per};
  }

  /// One machine's self-describing checkpoint frame: engine header +
  /// superstep + that machine's workers' state.
  void checkpoint_machine(MachineId m, ByteWriter& out,
                          runtime::CheckpointMode mode) const {
    runtime::write_engine_header(out, runtime::EngineTag::kCyclops, mode,
                                 graph_->num_vertices(), graph_->num_edges());
    out.write(driver_.superstep());
    const auto [begin, end] = machine_workers(m);
    for (WorkerId w = begin; w < end; ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      out.write_vector(values_[w]);
      if (mode == runtime::CheckpointMode::kHeavyweight) {
        out.write_vector(shared_data_[w]);  // all slots: masters + replicas
      } else {
        // Master shared data: first num_masters() slots.
        std::vector<Message> master_shared(shared_data_[w].begin(),
                                           shared_data_[w].begin() + wl.num_masters());
        out.write_vector(master_shared);
      }
      std::vector<std::uint8_t> flags(wl.num_masters());
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        flags[i] = static_cast<std::uint8_t>((cur_active_[w].test(i) ? 1 : 0) |
                                             (converged_[w].test(i) ? 2 : 0));
      }
      out.write_vector(flags);
    }
  }

  void restore_machine(MachineId m, ByteReader& in) {
    const runtime::CheckpointMode mode = runtime::read_engine_header(
        in, runtime::EngineTag::kCyclops, graph_->num_vertices(), graph_->num_edges());
    driver_.set_superstep(in.read<Superstep>());
    const auto [begin, end] = machine_workers(m);
    for (WorkerId w = begin; w < end; ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      values_[w] = in.read_vector<Value>();
      if (values_[w].size() != wl.num_masters()) {
        throw SerializeError("cyclops snapshot: master value count mismatch");
      }
      const auto shared = in.read_vector<Message>();
      const std::size_t expect = mode == runtime::CheckpointMode::kHeavyweight
                                     ? wl.num_slots()
                                     : wl.num_masters();
      if (shared.size() != expect) {
        throw SerializeError("cyclops snapshot: shared-data slot count mismatch");
      }
      std::copy(shared.begin(), shared.end(), shared_data_[w].begin());
      const auto flags = in.read_vector<std::uint8_t>();
      if (flags.size() != wl.num_masters()) {
        throw SerializeError("cyclops snapshot: activity flag count mismatch");
      }
      cur_active_[w].clear_all();
      converged_[w].clear_all();
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        if (flags[i] & 1) cur_active_[w].set(i);
        if (flags[i] & 2) converged_[w].set(i);
      }
      next_active_[w].clear_all();
      dirty_[w].clear_all();
    }
  }

  void init_state() {
    const WorkerId workers = config_.topo.total_workers();
    shared_data_.resize(workers);
    values_.resize(workers);
    pending_.resize(workers);
    cur_active_.resize(workers);
    next_active_.resize(workers);
    dirty_.resize(workers);
    converged_.resize(workers);
    for (WorkerId w = 0; w < workers; ++w) {
      const WorkerLayout& wl = layout_.workers[w];
      shared_data_[w].resize(wl.num_slots());
      values_[w].resize(wl.num_masters());
      pending_[w].resize(wl.num_masters());
      cur_active_[w].resize(wl.num_masters());
      next_active_[w].resize(wl.num_masters());
      dirty_[w].resize(wl.num_masters());
      converged_[w].resize(wl.num_masters());
      for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
        const VertexId v = wl.masters[i];
        values_[w][i] = program_.init(v, *graph_);
        shared_data_[w][i] = program_.init_shared(v, *graph_);
        if (program_.initially_active(v, *graph_)) cur_active_[w].set(i);
      }
      for (std::uint32_t i = 0; i < wl.num_replicas(); ++i) {
        shared_data_[w][wl.num_masters() + i] =
            program_.init_shared(wl.replica_globals[i], *graph_);
      }
    }
    if (config_.track_redundant) {
      last_hash_.resize(workers);
      for (WorkerId w = 0; w < workers; ++w) {
        last_hash_[w].assign(layout_.workers[w].num_masters(), 0);
      }
    }
    if constexpr (verify::kEnabled) {
      // (Re)declare the slot space: slots [0, num_masters) are owned masters,
      // the rest are read-only replicas owned by their home worker. rebuild()
      // and restore() funnel through here, so stamps never outlive a layout.
      vcheck_.reset();
      for (WorkerId w = 0; w < workers; ++w) {
        const WorkerLayout& wl = layout_.workers[w];
        std::vector<VertexId> slot_global(wl.num_slots());
        std::vector<WorkerId> slot_owner(wl.num_slots());
        for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
          slot_global[i] = wl.masters[i];
          slot_owner[i] = w;
        }
        for (std::uint32_t i = 0; i < wl.num_replicas(); ++i) {
          slot_global[wl.num_masters() + i] = wl.replica_globals[i];
          slot_owner[wl.num_masters() + i] = wl.replica_owner[i];
        }
        vcheck_.register_worker(w, wl.num_masters(), std::move(slot_global),
                                std::move(slot_owner));
      }
    }
  }

  static std::uint64_t payload_hash(const Message& m) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto* p = reinterpret_cast<const std::uint8_t*>(&m);
    for (std::size_t i = 0; i < sizeof(Message); ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
    return h == 0 ? 1 : h;
  }

  bool run_superstep(metrics::SuperstepStats& step) {
    const WorkerId workers = config_.topo.total_workers();
    const unsigned T = std::max(1u, config_.compute_threads);
    const unsigned R = std::max(1u, config_.receiver_threads);

    const sim::SoftwareModel& sw = config_.software;

    // --- CMP: active masters compute over the immutable view, chunked
    // across the worker's simulated compute threads. Deterministic time:
    // max over (worker, thread) chunks of counted work x per-op rates. ---
    std::vector<std::uint64_t> computed(static_cast<std::size_t>(workers) * T, 0);
    std::vector<std::uint64_t> scanned(static_cast<std::size_t>(workers) * T, 0);
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kCompute);
      pool_.parallel_tasks(static_cast<std::size_t>(workers) * T, [&](std::size_t e) {
        const WorkerId w = static_cast<WorkerId>(e / T);
        const unsigned t = static_cast<unsigned>(e % T);
        const WorkerLayout& wl = layout_.workers[w];
        const ChunkRange r = chunk_range(wl.num_masters(), T, t);
        for (std::size_t i = r.begin; i < r.end; ++i) {
          if (!config_.force_all_active && !cur_active_[w].test(i)) continue;
          Context ctx(*this, w, static_cast<std::uint32_t>(i));
          program_.compute(ctx);
          ++computed[e];
          scanned[e] += wl.in_offsets[i + 1] - wl.in_offsets[i];
        }
      });
    }
    {
      double cmp_max = 0;
      for (std::size_t e = 0; e < computed.size(); ++e) {
        step.active_vertices += computed[e];
        const double us =
            static_cast<double>(computed[e]) * sw.vertex_op_us *
                sim::vertex_op_weight<Program>() +
            static_cast<double>(scanned[e]) * sw.edge_op_us * sim::edge_op_weight<Program>();
        cmp_max = std::max(cmp_max, us);
      }
      step.phases.cmp_s = cmp_max * 1e-6;
    }
    step.computed_vertices = step.active_vertices;

    // --- SND: apply staged data locally and send one message per replica of
    // each dirty master, batched through the typed sync channel: each lane
    // first sizes its chunk's traffic per destination, reserves once, then
    // appends records directly — no per-record serializer round-trip.
    // CyclopsMT parallelizes the send path with private per-thread out-queues
    // (fabric lanes), §5 — each compute thread ships the sync messages of its
    // own master chunk. ---
    std::vector<std::uint64_t> redundant(static_cast<std::size_t>(workers) * T, 0);
    std::vector<std::uint64_t> emitted(static_cast<std::size_t>(workers) * T, 0);
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kSend);
      pool_.parallel_tasks(static_cast<std::size_t>(workers) * T, [&](std::size_t e) {
        const WorkerId w = static_cast<WorkerId>(e / T);
        const unsigned t = static_cast<unsigned>(e % T);
        const WorkerLayout& wl = layout_.workers[w];
        auto sender = Channel::sender(fabric_, w, t, &vcheck_, CYCLOPS_VLOC);
        const ChunkRange range = chunk_range(wl.num_masters(), T, t);
        std::vector<std::size_t> per_dest(workers, 0);
        for (std::size_t i = range.begin; i < range.end; ++i) {
          if (!dirty_[w].test(i)) continue;
          for (std::size_t r = wl.rep_offsets[i]; r < wl.rep_offsets[i + 1]; ++r) {
            ++per_dest[wl.rep_targets[r].worker];
          }
        }
        for (WorkerId to = 0; to < workers; ++to) {
          if (per_dest[to] > 0) sender.reserve(to, per_dest[to]);
        }
        for (std::size_t i = range.begin; i < range.end; ++i) {
          if (!dirty_[w].test(i)) continue;
          const Message& msg = pending_[w][i];
          if (config_.track_redundant) {
            const std::uint64_t h = payload_hash(msg);
            const std::size_t reps = wl.rep_offsets[i + 1] - wl.rep_offsets[i];
            if (last_hash_[w][i] == h) redundant[e] += reps;
            last_hash_[w][i] = h;
          }
          vcheck_.on_master_write(w, w, static_cast<std::uint32_t>(i), CYCLOPS_VLOC);
          shared_data_[w][i] = msg;  // local apply: visible next superstep
          for (std::size_t r = wl.rep_offsets[i]; r < wl.rep_offsets[i + 1]; ++r) {
            const ReplicaRef ref = wl.rep_targets[r];
            sender.send(ref.worker, WireRecord{ref.slot, msg});
            ++emitted[e];
          }
        }
      });
    }
    for (WorkerId w = 0; w < workers; ++w) dirty_[w].clear_all();
    for (auto r : redundant) step.redundant_messages += r;
    std::uint64_t emitted_max = 0;
    for (auto e : emitted) emitted_max = std::max(emitted_max, e);

    // Barrier participants: hierarchical (§5) synchronizes machines only
    // (threads wait on a local barrier); a flat barrier involves every
    // last-level execution unit.
    const sim::ExchangeStats xstats = fabric_.exchange(
        config_.hierarchical_barrier ? config_.topo.machines
                                     : static_cast<std::size_t>(workers) * T);
    acct_.note_exchange(xstats);
    acct_.note_net(xstats.net);

    // --- Receive: lock-free in-place replica update + distributed
    // activation, chunked across the worker's simulated receiver threads.
    // No parsing phase, no queue, no locks: each replica slot has exactly
    // one writer. ---
    std::vector<std::uint64_t> received(static_cast<std::size_t>(workers) * R, 0);
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kExchange);
      pool_.parallel_tasks(static_cast<std::size_t>(workers) * R, [&](std::size_t e) {
        const WorkerId w = static_cast<WorkerId>(e / R);
        const unsigned rth = static_cast<unsigned>(e % R);
        const WorkerLayout& wl = layout_.workers[w];
        const auto packages = fabric_.incoming(w);
        const ChunkRange pr = chunk_range(packages.size(), R, rth);
        for (std::size_t pi = pr.begin; pi < pr.end; ++pi) {
          Channel::for_each(packages[pi], [&](const WireRecord& rec) {
            vcheck_.on_replica_write(w, w, rec.slot, CYCLOPS_VLOC);
            shared_data_[w][rec.slot] = rec.payload;
            ++received[e];
            for (std::size_t o = wl.lout_offsets[rec.slot];
                 o < wl.lout_offsets[rec.slot + 1]; ++o) {
              next_active_[w].set(wl.lout_adj[o]);
            }
          });
        }
      });
    }
    for (WorkerId w = 0; w < workers; ++w) fabric_.clear_incoming(w);
    std::uint64_t received_max = 0;
    for (auto r : received) received_max = std::max(received_max, r);
    step.phases.snd_s =
        (static_cast<double>(emitted_max) *
             (sw.msg_serialize_us + sizeof(WireRecord) * sw.msg_byte_us) +
         static_cast<double>(received_max) *
             (sw.msg_deliver_us + 0.5 * sizeof(WireRecord) * sw.msg_byte_us)) *
        1e-6;
    step.net = xstats.net;
    step.modeled_comm_s = xstats.modeled_comm_s;
    step.modeled_barrier_s = xstats.modeled_barrier_s;

    // --- SYN: swap active sets, decide termination. ---
    verify::PhaseScope syn_scope(vcheck_, verify::Phase::kSync);
    Timer syn_timer;
    bool any_active = false;
    // Fine-grained convergence (§4.4): a vertex counts as converged when its
    // last compute reported a sub-epsilon error (mark_converged) OR when it
    // is inactive — a deactivated vertex cannot change until reactivated.
    std::uint64_t active_unconverged = 0;
    std::uint64_t total_masters = 0;
    for (WorkerId w = 0; w < workers; ++w) {
      cur_active_[w].swap(next_active_[w]);
      next_active_[w].clear_all();
      any_active = any_active || cur_active_[w].any();
      total_masters += layout_.workers[w].num_masters();
      cur_active_[w].for_each([&](std::size_t i) {
        if (!converged_[w].test(i)) ++active_unconverged;
      });
    }
    step.phases.syn_s = syn_timer.elapsed_s();
    step.converged_vertices = total_masters - active_unconverged;
    bool done = !any_active;
    if (config_.stop_converged_fraction < 1.0 && graph_->num_vertices() > 0) {
      const double frac = static_cast<double>(step.converged_vertices) /
                          static_cast<double>(graph_->num_vertices());
      if (frac >= config_.stop_converged_fraction) done = true;
    }
    return done;
  }

  const graph::GraphStore* graph_;
  Program program_;
  Config config_;
  ThreadPool pool_;
  sim::Fabric fabric_;
  Layout layout_;

  std::vector<std::vector<Message>> shared_data_;  // [worker][slot]
  std::vector<std::vector<Value>> values_;         // [worker][master idx]
  std::vector<std::vector<Message>> pending_;      // staged activate payloads
  std::vector<DenseBitset> cur_active_;
  std::vector<DenseBitset> next_active_;
  std::vector<DenseBitset> dirty_;
  std::vector<DenseBitset> converged_;
  std::vector<std::vector<std::uint64_t>> last_hash_;

  runtime::SuperstepDriver driver_;
  runtime::ExchangeAccounting acct_;
  verify::EngineChecker vcheck_;
  double ingress_s_ = 0;
  std::function<void(const metrics::SuperstepStats&, const Engine&)> observer_;
};

}  // namespace cyclops::core
