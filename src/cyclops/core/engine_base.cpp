#include "cyclops/core/engine_base.hpp"

namespace cyclops::core {
static_assert(sizeof(Config) > 0);
}  // namespace cyclops::core
