#pragma once
// Construction of the distributed immutable view (§3.2–§3.4, §4.3): per
// worker, the master vertices it owns, the read-only replicas created for
// edges spanning workers, in-edge references resolved to local memory slots,
// local out-edges used for distributed activation, and each master's list of
// replica locations for the unidirectional sync message.
//
// Replica rule: a replica of v exists on worker p != owner(v) iff v has an
// out-neighbor owned by p. That single replica serves both purposes — it is
// read by p's local masters that have v as an in-neighbor, and it performs
// local activation of v's out-neighbors on p (no duplicate replicas and no
// replica→master traffic, unlike GraphLab's ghosts, §2.3).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/partition/partition.hpp"

namespace cyclops::core {

/// Index of a shared-data slot within one worker: slots [0, num_masters) are
/// masters (in masters[] order), [num_masters, num_masters+num_replicas) are
/// replicas (sorted by (master's owner, vertex id) for delivery locality,
/// §4.1).
using Slot = std::uint32_t;

/// Where one replica of a master lives.
struct ReplicaRef {
  WorkerId worker = 0;
  Slot slot = 0;
};

/// Reference to a neighbor's shared data plus the edge weight.
struct SlotAdj {
  Slot slot = 0;
  double weight = 1.0;
};

struct WorkerLayout {
  std::vector<VertexId> masters;          ///< global ids owned, ascending
  std::vector<VertexId> replica_globals;  ///< global id per replica slot
  std::vector<WorkerId> replica_owner;    ///< owner worker per replica slot

  /// In-edges per master (CSR over local master index): the immutable view.
  std::vector<std::size_t> in_offsets;
  std::vector<SlotAdj> in_adj;

  /// Local out-edges per slot (masters AND replicas): local master indices
  /// this slot activates (CSR over slot).
  std::vector<std::size_t> lout_offsets;
  std::vector<std::uint32_t> lout_adj;

  /// Replica targets per master (CSR over local master index).
  std::vector<std::size_t> rep_offsets;
  std::vector<ReplicaRef> rep_targets;

  [[nodiscard]] std::uint32_t num_masters() const noexcept {
    return static_cast<std::uint32_t>(masters.size());
  }
  [[nodiscard]] std::uint32_t num_replicas() const noexcept {
    return static_cast<std::uint32_t>(replica_globals.size());
  }
  [[nodiscard]] std::uint32_t num_slots() const noexcept {
    return num_masters() + num_replicas();
  }
  [[nodiscard]] VertexId slot_global(Slot s) const noexcept {
    return s < num_masters() ? masters[s] : replica_globals[s - num_masters()];
  }
};

struct Layout {
  std::vector<WorkerLayout> workers;
  std::vector<std::uint32_t> master_index;  ///< global id -> index in its owner's masters
  std::uint64_t total_replicas = 0;

  /// Ingress-phase time breakdown (Figure 13(1)): replica discovery vs
  /// structure initialization.
  double replicate_s = 0;
  double init_s = 0;

  [[nodiscard]] double replication_factor(VertexId n) const noexcept {
    return n > 0 ? 1.0 + static_cast<double>(total_replicas) / static_cast<double>(n) : 1.0;
  }
};

/// Builds the full distributed immutable view for the given edge-cut
/// partition. Deterministic.
[[nodiscard]] Layout build_layout(const graph::GraphStore& g, const partition::EdgeCutPartition& p);

}  // namespace cyclops::core
