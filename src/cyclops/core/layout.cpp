#include "cyclops/core/layout.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"
#include "cyclops/common/timer.hpp"

namespace cyclops::core {

Layout build_layout(const graph::GraphStore& g, const partition::EdgeCutPartition& p) {
  graph::AdjCursor cur;
  CYCLOPS_CHECK(g.num_vertices() == p.num_vertices());
  const VertexId n = g.num_vertices();
  const WorkerId workers = p.num_parts();

  Layout layout;
  layout.workers.resize(workers);
  layout.master_index.assign(n, 0);

  // --- Masters. ---
  for (VertexId v = 0; v < n; ++v) {
    WorkerLayout& wl = layout.workers[p.owner(v)];
    layout.master_index[v] = static_cast<std::uint32_t>(wl.masters.size());
    wl.masters.push_back(v);
  }

  // --- REP phase: replica discovery (this is the extra ingress superstep
  // §4.3 describes: each vertex "sends" along its out-edges; a remote worker
  // creates the replica on first receipt). ---
  Timer rep_timer;
  std::vector<std::vector<VertexId>> replica_sets(workers);
  for (VertexId v = 0; v < n; ++v) {
    const WorkerId home = p.owner(v);
    for (const graph::Adj& a : g.out_neighbors(v, cur)) {
      const WorkerId w = p.owner(a.neighbor);
      if (w != home) replica_sets[w].push_back(v);
    }
  }
  // Per-worker slot map: global id -> slot. Masters first, then replicas
  // sorted by (owner, id) — the §4.1 locality grouping.
  std::vector<std::unordered_map<VertexId, Slot>> slot_of(workers);
  for (WorkerId w = 0; w < workers; ++w) {
    WorkerLayout& wl = layout.workers[w];
    auto& reps = replica_sets[w];
    std::sort(reps.begin(), reps.end());
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
    std::sort(reps.begin(), reps.end(), [&](VertexId a, VertexId b) {
      return p.owner(a) != p.owner(b) ? p.owner(a) < p.owner(b) : a < b;
    });
    wl.replica_globals = reps;
    wl.replica_owner.resize(reps.size());
    slot_of[w].reserve(wl.masters.size() + reps.size());
    for (Slot s = 0; s < wl.num_masters(); ++s) slot_of[w].emplace(wl.masters[s], s);
    for (Slot i = 0; i < wl.num_replicas(); ++i) {
      wl.replica_owner[i] = p.owner(reps[i]);
      slot_of[w].emplace(reps[i], wl.num_masters() + i);
    }
    layout.total_replicas += reps.size();
  }
  layout.replicate_s = rep_timer.elapsed_s();

  // --- INIT phase: in-edges, local out-edges, replica sync targets. ---
  Timer init_timer;
  for (WorkerId w = 0; w < workers; ++w) {
    WorkerLayout& wl = layout.workers[w];
    const auto& slots = slot_of[w];

    // In-edges of each master, resolved to local slots. Every in-neighbor is
    // either a local master or has a replica here (it has an out-edge to a
    // vertex we own — this master).
    wl.in_offsets.assign(wl.masters.size() + 1, 0);
    for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
      wl.in_offsets[i + 1] = wl.in_offsets[i] + g.in_degree(wl.masters[i]);
    }
    wl.in_adj.resize(wl.in_offsets.back());
    for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
      std::size_t cursor = wl.in_offsets[i];
      for (const graph::Adj& a : g.in_neighbors(wl.masters[i], cur)) {
        const auto it = slots.find(a.neighbor);
        CYCLOPS_CHECK(it != slots.end());
        wl.in_adj[cursor++] = SlotAdj{it->second, a.weight};
      }
    }

    // Local out-edges per slot (two-pass CSR fill).
    wl.lout_offsets.assign(wl.num_slots() + 1, 0);
    auto count_lout = [&](Slot slot, VertexId global) {
      for (const graph::Adj& a : g.out_neighbors(global, cur)) {
        if (p.owner(a.neighbor) == w) ++wl.lout_offsets[slot + 1];
      }
    };
    for (Slot s = 0; s < wl.num_slots(); ++s) count_lout(s, wl.slot_global(s));
    for (std::size_t i = 1; i < wl.lout_offsets.size(); ++i) {
      wl.lout_offsets[i] += wl.lout_offsets[i - 1];
    }
    wl.lout_adj.resize(wl.lout_offsets.back());
    std::vector<std::size_t> cursor(wl.lout_offsets.begin(), wl.lout_offsets.end() - 1);
    auto fill_lout = [&](Slot slot, VertexId global) {
      for (const graph::Adj& a : g.out_neighbors(global, cur)) {
        if (p.owner(a.neighbor) == w) {
          wl.lout_adj[cursor[slot]++] = layout.master_index[a.neighbor];
        }
      }
    };
    for (Slot s = 0; s < wl.num_slots(); ++s) fill_lout(s, wl.slot_global(s));
  }

  // Replica sync targets: invert the replica lists onto each master.
  for (WorkerId w = 0; w < workers; ++w) {
    WorkerLayout& wl = layout.workers[w];
    wl.rep_offsets.assign(wl.masters.size() + 1, 0);
  }
  for (WorkerId w = 0; w < workers; ++w) {
    const WorkerLayout& wl = layout.workers[w];
    for (Slot i = 0; i < wl.num_replicas(); ++i) {
      const VertexId v = wl.replica_globals[i];
      WorkerLayout& home = layout.workers[wl.replica_owner[i]];
      ++home.rep_offsets[layout.master_index[v] + 1];
    }
  }
  for (WorkerId w = 0; w < workers; ++w) {
    WorkerLayout& wl = layout.workers[w];
    for (std::size_t i = 1; i < wl.rep_offsets.size(); ++i) {
      wl.rep_offsets[i] += wl.rep_offsets[i - 1];
    }
    wl.rep_targets.resize(wl.rep_offsets.back());
  }
  std::vector<std::vector<std::size_t>> rep_cursor(workers);
  for (WorkerId w = 0; w < workers; ++w) {
    const WorkerLayout& wl = layout.workers[w];
    rep_cursor[w].assign(wl.rep_offsets.begin(), wl.rep_offsets.end() - 1);
  }
  for (WorkerId w = 0; w < workers; ++w) {
    const WorkerLayout& wl = layout.workers[w];
    for (Slot i = 0; i < wl.num_replicas(); ++i) {
      const VertexId v = wl.replica_globals[i];
      const WorkerId home_w = wl.replica_owner[i];
      WorkerLayout& home = layout.workers[home_w];
      const std::uint32_t mi = layout.master_index[v];
      home.rep_targets[rep_cursor[home_w][mi]++] =
          ReplicaRef{w, static_cast<Slot>(wl.num_masters() + i)};
    }
  }
  layout.init_s = init_timer.elapsed_s();
  return layout;
}

}  // namespace cyclops::core
