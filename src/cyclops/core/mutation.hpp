#pragma once
// Topology mutation for Cyclops — the paper's stated future work (§8: "no
// support for topology mutation yet... we plan to add such support").
//
// Semantics follow Pregel's: mutations requested during an epoch are applied
// at a superstep boundary. This implementation takes the robust route the
// checkpointing design (§3.6) enables for free: replicas and in-edge slots
// are *derived* state, so applying a batch of edge mutations rebuilds the
// layout from the mutated graph and carries master state (values, shared
// data, activity, convergence marks) across by vertex id. The cost is one
// extra ingress (REP+INIT) per mutation epoch — appropriate for the bulk
// topology changes graph systems see in practice (crawl deltas, daily
// snapshots), and honest about what incremental replica maintenance would
// have to beat.

#include <vector>

#include "cyclops/graph/edge_list.hpp"

namespace cyclops::core {

/// A batch of edge additions and removals to apply between supersteps.
class TopologyDelta {
 public:
  void add_edge(VertexId src, VertexId dst, double weight = 1.0) {
    adds_.push_back(graph::Edge{src, dst, weight});
  }
  /// Removes every (src, dst) edge regardless of weight.
  void remove_edge(VertexId src, VertexId dst) {
    removes_.push_back(graph::Edge{src, dst, 0.0});
  }

  [[nodiscard]] bool empty() const noexcept { return adds_.empty() && removes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return adds_.size() + removes_.size(); }

  /// Applies the delta to an edge list (adds may grow the vertex count).
  void apply(graph::EdgeList& edges) const;

  /// Const-preserving apply: builds a fresh edge list with the delta applied,
  /// leaving `edges` untouched. Snapshot construction uses this so a new
  /// epoch never aliases (or mutates) a live epoch's storage.
  [[nodiscard]] graph::EdgeList applied(const graph::EdgeList& edges) const;

  /// Vertices incident to any mutated edge — the set a caller typically
  /// re-activates so the algorithm reacts to the new topology.
  [[nodiscard]] std::vector<VertexId> touched_vertices() const;

 private:
  std::vector<graph::Edge> adds_;
  std::vector<graph::Edge> removes_;
};

}  // namespace cyclops::core
