#pragma once
// Topology mutation for Cyclops — the paper's stated future work (§8: "no
// support for topology mutation yet... we plan to add such support").
//
// Semantics follow Pregel's: mutations requested during an epoch are applied
// at a superstep boundary. This implementation takes the robust route the
// checkpointing design (§3.6) enables for free: replicas and in-edge slots
// are *derived* state, so applying a batch of edge mutations rebuilds the
// layout from the mutated graph and carries master state (values, shared
// data, activity, convergence marks) across by vertex id. The ingest layer
// (src/cyclops/ingest/) builds on this with structural-sharing epoch
// publication (graph::DeltaOverlay) and incremental re-convergence.
//
// Batch semantics are *last-op-wins per (src, dst) pair*, as if the staged
// operations replayed in staging order against the graph:
//   - remove(u,v) erases every pre-existing (u,v) edge (any weight) and
//     cancels any (u,v) add staged earlier in the same batch;
//   - add(u,v,w) appends one edge; adds staged after the last remove for
//     the pair all survive (parallel edges remain expressible).
// So {add(u,v), remove(u,v)} leaves (u,v) absent while
// {remove(u,v), add(u,v)} leaves exactly the new edge — order inside one
// batch is meaningful and deterministic, never apply-order-dependent.

#include <cstddef>
#include <vector>

#include "cyclops/graph/edge_list.hpp"

namespace cyclops::core {

/// A batch of edge additions and removals to apply between supersteps.
class TopologyDelta {
 public:
  /// The batch reduced to last-op-wins normal form: `removes` are the
  /// (src, dst) pairs whose pre-existing edges must be erased (weight is
  /// ignored for matching), `adds` the surviving additions in staging
  /// order. This is the form `apply`/`applied` execute and the form the
  /// DeltaOverlay store consumes, so every consumer sees one semantics.
  struct Canonical {
    std::vector<graph::Edge> adds;
    std::vector<graph::Edge> removes;
  };

  void add_edge(VertexId src, VertexId dst, double weight = 1.0) {
    ops_.push_back(Op{graph::Edge{src, dst, weight}, /*is_add=*/true});
  }
  /// Removes every (src, dst) edge regardless of weight, and cancels any
  /// (src, dst) add staged earlier in this batch.
  void remove_edge(VertexId src, VertexId dst) {
    ops_.push_back(Op{graph::Edge{src, dst, 0.0}, /*is_add=*/false});
  }

  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

  /// Reduces the staged ops to last-op-wins normal form (see file header).
  [[nodiscard]] Canonical canonical() const;

  /// Applies the delta to an edge list (adds may grow the vertex count).
  void apply(graph::EdgeList& edges) const;

  /// Const-preserving apply: builds a fresh edge list with the delta applied,
  /// leaving `edges` untouched. Snapshot construction uses this so a new
  /// epoch never aliases (or mutates) a live epoch's storage.
  [[nodiscard]] graph::EdgeList applied(const graph::EdgeList& edges) const;

  /// Vertices incident to any staged op — the set a caller typically
  /// re-activates so the algorithm reacts to the new topology. De-duplicated
  /// and sorted; includes endpoints of ops a later op cancelled (their
  /// adjacency may still have churned mid-batch, re-activation is cheap).
  [[nodiscard]] std::vector<VertexId> touched_vertices() const;

 private:
  struct Op {
    graph::Edge edge;
    bool is_add;
  };
  std::vector<Op> ops_;
};

}  // namespace cyclops::core
