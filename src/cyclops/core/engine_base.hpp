#pragma once
// Cyclops engine configuration. One Config type drives both execution models:
//   * Cyclops   — one single-threaded worker per partition
//                 (topo.workers_per_machine > 1, compute_threads == 1);
//   * CyclopsMT — one worker per machine, decomposed into compute_threads
//                 computation threads and receiver_threads message receivers,
//                 with the hierarchical barrier (§5).

#include <cstdint>
#include <memory>

#include "cyclops/common/types.hpp"
#include "cyclops/sim/cost_model.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/sim/message_log.hpp"
#include "cyclops/sim/sched.hpp"
#include "cyclops/sim/software_model.hpp"

namespace cyclops::core {

struct Config {
  sim::Topology topo;  ///< total_workers() == number of graph partitions
  sim::CostModel cost = sim::CostModel::cyclops_sync();
  std::size_t pool_threads = 1;  ///< host threads executing the simulation
  Superstep max_supersteps = 100;

  /// Fault schedule shared across engine incarnations of a recovering run
  /// (see sim/fault.hpp); null runs fault-free.
  std::shared_ptr<sim::FaultInjector> faults;

  /// Message log for log-based localized recovery, shared across engine
  /// incarnations like the injector (see sim/message_log.hpp); null disables
  /// logging. Requires `faults` — the log keys on the injector's clock.
  std::shared_ptr<sim::MessageLog> message_log;

  /// Seeded schedule explorer installed on the engine's pool: permutes task
  /// order per parallel region so N seeds explore N interleavings, each
  /// bit-identically replayable (see sim/sched.hpp). Null runs the pool's
  /// native static schedule.
  std::shared_ptr<sim::ScheduleExplorer> schedule;

  unsigned compute_threads = 1;   ///< simulated threads per worker (T in MxWxT/R)
  unsigned receiver_threads = 1;  ///< simulated message receivers per worker (R)
  bool hierarchical_barrier = false;  ///< barrier over machines, not workers

  bool track_redundant = false;

  /// Deterministic per-operation software costs (see sim/software_model.hpp).
  /// Cyclops runs on the same JVM as Hama (§6.12 notes the language gap
  /// against C++ PowerGraph), so compute rates match Hama's while messaging
  /// rates reflect the bundled lock-free sync path.
  sim::SoftwareModel software = sim::SoftwareModel::cyclops_java();

  /// Fine-grained convergence detection (§4.4): stop once this fraction of
  /// vertices is converged. 1.0 disables it (run until no activations).
  double stop_converged_fraction = 1.0;

  /// Ablation switch: disable dynamic computation by forcing every master
  /// active in every superstep (the immutable view and unidirectional sync
  /// remain). Isolates how much of Cyclops' win comes from skipping
  /// converged vertices vs. from the messaging redesign.
  bool force_all_active = false;

  /// Plain Cyclops: M machines × W workers each.
  [[nodiscard]] static Config cyclops(MachineId machines, WorkerId workers_per_machine) {
    Config c;
    c.topo = sim::Topology{machines, workers_per_machine};
    return c;
  }

  /// CyclopsMT: M machines × 1 worker with T compute / R receiver threads.
  [[nodiscard]] static Config cyclops_mt(MachineId machines, unsigned threads,
                                         unsigned receivers) {
    Config c;
    c.topo = sim::Topology{machines, 1};
    c.compute_threads = threads;
    c.receiver_threads = receivers;
    c.hierarchical_barrier = true;
    return c;
  }
};

}  // namespace cyclops::core
