#pragma once
// BSP-aware immutable-view invariant checker (compile-time gated).
//
// The paper's correctness argument (§3–4) rests on a phase discipline the
// type system cannot express: during a superstep's compute phase the
// distributed immutable view is read-only — masters read neighbor data from
// local shared memory, and only a vertex's owner worker may stage a write to
// it; replica slots and GAS mirrors change only inside the sync/exchange
// phase, each by its single designated writer. TSan can only stumble onto a
// violation if two host threads happen to collide on the same cache line in
// the same run; this checker enforces the discipline itself, so a violation
// is caught deterministically on its first occurrence and attributed in the
// paper's vocabulary: phase, superstep, vertex, and both access sites.
//
// Build with -DCYCLOPS_VERIFY (CMake option of the same name) to compile the
// checker in; without it every hook is an empty inline function and the
// instrumented engines are bit-identical to uninstrumented ones. When
// compiled in, violations abort by default; tests install a collecting
// handler instead.
//
// Two trackers live here:
//   * EngineChecker — per-engine-instance slot/phase tracking (vertex state,
//     replica slots, GAS mirrors, message sends).
//   * EpochRegistry — process-global snapshot epoch liveness for the service
//     layer; reading a retired epoch's snapshot is a use-after-retire.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/verify/race.hpp"
#include "cyclops/verify/site.hpp"

#ifdef CYCLOPS_VERIFY
#include <atomic>
#include <map>
#include <set>
#include <sstream>

#include "cyclops/common/sync.hpp"
#endif

namespace cyclops::verify {

// kEnabled, Phase, phase_name, SourceLoc, AccessSite, and CYCLOPS_VLOC moved
// to verify/site.hpp (shared with the race analyzer); the happens-before
// race detector itself lives in verify/race.hpp.

/// What a violation broke. Names mirror the invariant list in DESIGN.md §7b.
enum class ViolationKind : std::uint8_t {
  kNonOwnerWrite,        ///< a worker wrote a vertex it does not master
  kReplicaWriteInCompute,///< replica/mirror slot mutated while the view is live
  kWriteOutsidePhase,    ///< write in a phase where that slot class is frozen
  kStaleViewRead,        ///< compute read a slot written earlier this superstep
  kSendOutsidePhase,     ///< wire traffic emitted outside the send/exchange window
  kStaleEpochRead,       ///< snapshot accessor called after its epoch retired
};

[[nodiscard]] inline const char* violation_name(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kNonOwnerWrite: return "non-owner-write";
    case ViolationKind::kReplicaWriteInCompute: return "replica-write-in-compute";
    case ViolationKind::kWriteOutsidePhase: return "write-outside-phase";
    case ViolationKind::kStaleViewRead: return "stale-view-read";
    case ViolationKind::kSendOutsidePhase: return "send-outside-phase";
    case ViolationKind::kStaleEpochRead: return "stale-epoch-read";
  }
  return "?";
}

struct Violation {
  ViolationKind kind = ViolationKind::kNonOwnerWrite;
  VertexId vertex = kInvalidVertex;  ///< global id when slot-attributable
  std::uint32_t slot = 0;
  WorkerId worker = kInvalidWorker;  ///< worker hosting the violated state
  std::uint64_t epoch = 0;           ///< stale-epoch reads only
  AccessSite current;                ///< the access that broke the invariant
  AccessSite previous;               ///< the conflicting earlier access, if any

  [[nodiscard]] std::string describe() const;
};

#ifdef CYCLOPS_VERIFY

inline std::string Violation::describe() const {
  std::ostringstream os;
  os << "invariant violation [" << violation_name(kind) << "]";
  if (kind == ViolationKind::kStaleEpochRead) {
    os << " epoch " << epoch;
  } else {
    os << " vertex " << vertex << " slot " << slot << " on worker " << worker;
  }
  os << "\n  at      " << (current.loc.file ? current.loc.file : "?") << ":"
     << current.loc.line << " (phase " << phase_name(current.phase) << ", superstep "
     << current.superstep << ", worker " << current.worker << ")";
  if (previous.valid()) {
    os << "\n  against " << previous.loc.file << ":" << previous.loc.line << " (phase "
       << phase_name(previous.phase) << ", superstep " << previous.superstep
       << ", worker " << previous.worker << ")";
  }
  return os.str();
}

using Handler = std::function<void(const Violation&)>;

namespace detail {
[[noreturn]] inline void abort_handler(const Violation& v) {
  std::fprintf(stderr, "CYCLOPS_VERIFY: %s\n", v.describe().c_str());
  std::fflush(nullptr);
  std::abort();
}
}  // namespace detail

/// Per-engine access tracker. Registration happens once at layout build;
/// hooks are called from the engine's pool threads. Phase transitions occur
/// only between parallel sections (the driver thread), so an atomic phase
/// plus per-slot single-writer stamps need no further locking on the hot
/// path; the violation sink serializes under a mutex.
class EngineChecker {
 public:
  EngineChecker() = default;
  EngineChecker(const EngineChecker&) = delete;
  EngineChecker& operator=(const EngineChecker&) = delete;

  /// Declares one worker's slot space. `slot_owner[s]` is the worker that
  /// masters the vertex living in slot s (== w for master slots, the home
  /// worker for replicas/mirrors); `slot_global[s]` is its global vertex id;
  /// slots [0, num_masters) are the worker's own masters.
  void register_worker(WorkerId w, std::uint32_t num_masters,
                       std::vector<VertexId> slot_global,
                       std::vector<WorkerId> slot_owner) {
    if (workers_.size() <= w) workers_.resize(static_cast<std::size_t>(w) + 1);
    WorkerState& ws = workers_[w];
    ws.num_masters = num_masters;
    ws.slot_global = std::move(slot_global);
    ws.slot_owner = std::move(slot_owner);
    ws.last_write.assign(ws.slot_global.size(), AccessSite{});
  }

  /// Clears per-slot stamps (engine restore/rebuild re-registers).
  void reset() {
    workers_.clear();
    superstep_ = 0;
    phase_.store(Phase::kIdle, std::memory_order_relaxed);
    replay_resume_ = 0;
    replay_until_ = 0;
    racer_.reset();
  }

  void begin_superstep(Superstep s) noexcept {
    superstep_ = s;
    phase_.store(Phase::kIdle, std::memory_order_relaxed);
  }

  void enter_phase(Phase p) noexcept { phase_.store(p, std::memory_order_release); }

  [[nodiscard]] Phase phase() const noexcept {
    return phase_.load(std::memory_order_acquire);
  }
  [[nodiscard]] Superstep superstep() const noexcept { return superstep_; }

  /// Apply-write to a master slot of the exposed view (Cyclops' SND-phase
  /// local apply, GAS' apply leg). Legal: the owner, during the send phase
  /// (kIdle covers initialization/restore, which run outside supersteps).
  /// During compute the view is frozen; any other phase is a discipline break.
  void on_master_write(WorkerId executing, WorkerId host, std::uint32_t slot,
                       SourceLoc loc) {
    const Phase p = phase();
    ++checked_;
    WorkerState& ws = state(host);
    const WorkerId owner = ws.owner_of(slot);
    if (executing != owner) {
      report(make(ViolationKind::kNonOwnerWrite, host, slot, executing, loc, p,
                  ws.last(slot)));
    } else if (p != Phase::kSend && p != Phase::kIdle) {
      report(make(ViolationKind::kWriteOutsidePhase, host, slot, executing, loc, p,
                  ws.last(slot)));
    }
    ws.stamp(slot, AccessSite{loc, p, superstep_, executing});
    racer_.on_access(race::CellClass::kSlot, host, slot, ws.global_of(slot),
                     /*is_write=*/true, loc, p, superstep_, executing);
  }

  /// Staging write to master-private state during compute (set_value,
  /// activate_neighbors' pending buffer). Checks ownership and phase but does
  /// not stamp the slot: staged data is not part of the immutable view until
  /// the send phase applies it.
  void on_master_stage(WorkerId executing, WorkerId host, std::uint32_t slot,
                       SourceLoc loc) {
    const Phase p = phase();
    ++checked_;
    WorkerState& ws = state(host);
    const WorkerId owner = ws.owner_of(slot);
    if (executing != owner) {
      report(make(ViolationKind::kNonOwnerWrite, host, slot, executing, loc, p,
                  ws.last(slot)));
    } else if (p == Phase::kExchange) {
      report(make(ViolationKind::kWriteOutsidePhase, host, slot, executing, loc, p,
                  ws.last(slot)));
    }
    racer_.on_access(race::CellClass::kStage, host, slot, ws.global_of(slot),
                     /*is_write=*/true, loc, p, superstep_, executing);
  }

  /// Write to a replica/mirror-class slot. Legal only during the exchange
  /// window, performed by the hosting worker's receive path (single writer
  /// per slot, §3.4). kIdle is initialization/resync.
  void on_replica_write(WorkerId executing, WorkerId host, std::uint32_t slot,
                        SourceLoc loc) {
    const Phase p = phase();
    ++checked_;
    WorkerState& ws = state(host);
    if (p == Phase::kCompute || p == Phase::kParse) {
      report(make(ViolationKind::kReplicaWriteInCompute, host, slot, executing, loc, p,
                  ws.last(slot)));
    } else if (p == Phase::kSend || p == Phase::kSync) {
      report(make(ViolationKind::kWriteOutsidePhase, host, slot, executing, loc, p,
                  ws.last(slot)));
    } else if (p == Phase::kExchange && executing != host) {
      // Cross-worker direct memory write: replicas are updated by their own
      // worker's receiver from delivered packages, never by the sender.
      report(make(ViolationKind::kNonOwnerWrite, host, slot, executing, loc, p,
                  ws.last(slot)));
    }
    ws.stamp(slot, AccessSite{loc, p, superstep_, executing});
    racer_.on_access(race::CellClass::kSlot, host, slot, ws.global_of(slot),
                     /*is_write=*/true, loc, p, superstep_, executing);
  }

  /// Read through the immutable view during compute. The slot must carry
  /// last superstep's exposed value: a write stamped earlier in the *current*
  /// superstep means the view was mutated under the readers.
  void on_view_read(WorkerId executing, WorkerId host, std::uint32_t slot,
                    SourceLoc loc) {
    const Phase p = phase();
    ++checked_;
    WorkerState& ws = state(host);
    const AccessSite prev = ws.last(slot);
    if (p == Phase::kCompute && prev.valid() && prev.superstep == superstep_ &&
        (prev.phase == Phase::kCompute || prev.phase == Phase::kSend)) {
      report(make(ViolationKind::kStaleViewRead, host, slot, executing, loc, p, prev));
    }
    racer_.on_access(race::CellClass::kSlot, host, slot, ws.global_of(slot),
                     /*is_write=*/false, loc, p, superstep_, executing);
  }

  /// Wire emission. Legal during send and exchange phases only; compute must
  /// not talk to the fabric (that is what staging is for). Re-emissions
  /// inside a declared replay window obey the same discipline and are
  /// additionally counted (see note_replay_window).
  void on_send(WorkerId from, WorkerId to, SourceLoc loc) {
    const Phase p = phase();
    ++checked_;
    if (replay_until_ > 0 && superstep_ >= replay_resume_ && superstep_ < replay_until_) {
      replay_sends_.fetch_add(1, std::memory_order_relaxed);
    }
    if (p == Phase::kCompute || p == Phase::kParse || p == Phase::kSync) {
      Violation v;
      v.kind = ViolationKind::kSendOutsidePhase;
      v.worker = to;
      v.vertex = kInvalidVertex;
      v.current = AccessSite{loc, p, superstep_, from};
      report(v);
    }
  }

  /// Wire emission through a known sender lane: the phase check above plus a
  /// race stamp on the (from, lane) cell — OutBox lanes admit at most one
  /// concurrent writer (CyclopsMT's private out-queues, §5).
  void on_send(WorkerId from, WorkerId to, std::size_t lane, SourceLoc loc) {
    on_send(from, to, loc);
    racer_.on_access(race::CellClass::kLane, from, lane, kInvalidVertex,
                     /*is_write=*/true, loc, phase(), superstep_, from);
  }

  /// Declares a localized-recovery replay window [resume_at, until): sends in
  /// those supersteps are re-emissions of traffic already delivered before a
  /// crash (survivors are logically past this superstep), so they are legal
  /// under the same phase discipline as the original emission and are tallied
  /// separately rather than flagged. Cleared by reset().
  void note_replay_window(Superstep resume_at, Superstep until) noexcept {
    replay_resume_ = resume_at;
    replay_until_ = until;
  }

  /// Sends observed inside the declared replay window.
  [[nodiscard]] std::uint64_t replay_sends() const noexcept {
    return replay_sends_.load(std::memory_order_relaxed);
  }

  /// BSP mailbox access: per-vertex message lists written by the parse phase
  /// (owner worker's drain task) and read-then-cleared by the owner's compute
  /// task. No phase rule of its own — the single-writer claim is exactly the
  /// happens-before property the race detector checks.
  void on_mailbox_write(WorkerId executing, WorkerId host, std::uint64_t mailbox,
                        SourceLoc loc) {
    racer_.on_access(race::CellClass::kMailbox, host, mailbox,
                     static_cast<VertexId>(mailbox), /*is_write=*/true, loc, phase(),
                     superstep_, executing);
  }

  void on_mailbox_read(WorkerId executing, WorkerId host, std::uint64_t mailbox,
                       SourceLoc loc) {
    racer_.on_access(race::CellClass::kMailbox, host, mailbox,
                     static_cast<VertexId>(mailbox), /*is_write=*/false, loc, phase(),
                     superstep_, executing);
  }

  /// Shared in-queue access (Hama's SpinLock-guarded global queue): raced
  /// unless the lock's acquire/release edges order the writers.
  void on_queue_access(WorkerId executing, WorkerId host, bool is_write,
                       SourceLoc loc) {
    racer_.on_access(race::CellClass::kQueue, host, /*key=*/0, kInvalidVertex,
                     is_write, loc, phase(), superstep_, executing);
  }

  /// The happens-before race detector layered under this checker.
  [[nodiscard]] race::Detector& racer() noexcept { return racer_; }

  /// Installs a violation sink (tests collect; default aborts the process).
  void set_handler(Handler h) {
    LockGuard<Mutex> lock(mutex_);
    handler_ = std::move(h);
  }

  [[nodiscard]] std::uint64_t accesses_checked() const noexcept {
    return checked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::string summary() const {
    std::ostringstream os;
    os << "[verify] " << accesses_checked() << " accesses checked, " << violations()
       << " violations";
    return os.str();
  }

 private:
  struct WorkerState {
    std::uint32_t num_masters = 0;
    std::vector<VertexId> slot_global;
    std::vector<WorkerId> slot_owner;
    std::vector<AccessSite> last_write;

    [[nodiscard]] WorkerId owner_of(std::uint32_t slot) const noexcept {
      return slot < slot_owner.size() ? slot_owner[slot] : kInvalidWorker;
    }
    [[nodiscard]] VertexId global_of(std::uint32_t slot) const noexcept {
      return slot < slot_global.size() ? slot_global[slot] : kInvalidVertex;
    }
    [[nodiscard]] AccessSite last(std::uint32_t slot) const noexcept {
      return slot < last_write.size() ? last_write[slot] : AccessSite{};
    }
    void stamp(std::uint32_t slot, AccessSite site) noexcept {
      if (slot < last_write.size()) last_write[slot] = site;
    }
  };

  WorkerState& state(WorkerId w) {
    if (workers_.size() <= w) workers_.resize(static_cast<std::size_t>(w) + 1);
    return workers_[w];
  }

  Violation make(ViolationKind kind, WorkerId host, std::uint32_t slot,
                 WorkerId executing, SourceLoc loc, Phase p, AccessSite prev) {
    Violation v;
    v.kind = kind;
    v.worker = host;
    v.slot = slot;
    const WorkerState& ws = workers_[host];
    v.vertex = slot < ws.slot_global.size() ? ws.slot_global[slot] : kInvalidVertex;
    v.current = AccessSite{loc, p, superstep_, executing};
    v.previous = prev;
    return v;
  }

  void report(const Violation& v) {
    violations_.fetch_add(1, std::memory_order_relaxed);
    Handler h;
    {
      LockGuard<Mutex> lock(mutex_);
      h = handler_;
    }
    if (h) {
      h(v);
    } else {
      detail::abort_handler(v);
    }
  }

  std::vector<WorkerState> workers_;
  Superstep superstep_ = 0;
  Superstep replay_resume_ = 0;
  Superstep replay_until_ = 0;  ///< 0 = no replay window declared
  std::atomic<Phase> phase_{Phase::kIdle};
  std::atomic<std::uint64_t> checked_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> replay_sends_{0};
  Mutex mutex_;
  Handler handler_;
  race::Detector racer_;
};

/// RAII phase scope: enters `p` on construction, returns to kIdle (or the
/// given exit phase) on destruction. Engines bracket each superstep stage.
class PhaseScope {
 public:
  PhaseScope(EngineChecker& checker, Phase p, Phase exit = Phase::kIdle) noexcept
      : checker_(checker), exit_(exit) {
    checker_.enter_phase(p);
  }
  ~PhaseScope() { checker_.enter_phase(exit_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  EngineChecker& checker_;
  Phase exit_;
};

/// Process-global snapshot epoch liveness (the service layer's immutable
/// view). publish() on snapshot construction, retire() on destruction;
/// on_read() from every snapshot accessor flags use-after-retire with the
/// retire site as the conflicting access.
class EpochRegistry {
 public:
  static EpochRegistry& instance() {
    static EpochRegistry reg;
    return reg;
  }

  void publish(std::uint64_t epoch) {
    LockGuard<Mutex> lock(mutex_);
    live_.insert(epoch);
    retired_.erase(epoch);
  }

  void retire(std::uint64_t epoch, SourceLoc loc) {
    LockGuard<Mutex> lock(mutex_);
    live_.erase(epoch);
    retired_[epoch] = AccessSite{loc, Phase::kIdle, 0, kInvalidWorker};
  }

  void on_read(std::uint64_t epoch, SourceLoc loc) {
    checked_.fetch_add(1, std::memory_order_relaxed);
    Handler h;
    Violation v;
    {
      LockGuard<Mutex> lock(mutex_);
      if (live_.count(epoch) > 0) return;
      v.kind = ViolationKind::kStaleEpochRead;
      v.epoch = epoch;
      v.current = AccessSite{loc, Phase::kIdle, 0, kInvalidWorker};
      const auto it = retired_.find(epoch);
      if (it != retired_.end()) v.previous = it->second;
      h = handler_;
    }
    violations_.fetch_add(1, std::memory_order_relaxed);
    if (h) {
      h(v);
    } else {
      detail::abort_handler(v);
    }
  }

  void set_handler(Handler h) {
    LockGuard<Mutex> lock(mutex_);
    handler_ = std::move(h);
  }

  [[nodiscard]] std::uint64_t accesses_checked() const noexcept {
    return checked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }

 private:
  Mutex mutex_;
  std::set<std::uint64_t> live_;
  std::map<std::uint64_t, AccessSite> retired_;
  std::atomic<std::uint64_t> checked_{0};
  std::atomic<std::uint64_t> violations_{0};
  Handler handler_;
};

#else  // !CYCLOPS_VERIFY — every hook is an empty inline no-op the optimizer
       // deletes, so instrumented engines cost nothing when the gate is off.

inline std::string Violation::describe() const { return "verification compiled out"; }

using Handler = std::function<void(const Violation&)>;

class EngineChecker {
 public:
  EngineChecker() = default;
  EngineChecker(const EngineChecker&) = delete;
  EngineChecker& operator=(const EngineChecker&) = delete;

  void register_worker(WorkerId, std::uint32_t, std::vector<VertexId>,
                       std::vector<WorkerId>) noexcept {}
  void reset() noexcept {}
  void begin_superstep(Superstep) noexcept {}
  void enter_phase(Phase) noexcept {}
  [[nodiscard]] Phase phase() const noexcept { return Phase::kIdle; }
  [[nodiscard]] Superstep superstep() const noexcept { return 0; }
  void on_master_write(WorkerId, WorkerId, std::uint32_t, SourceLoc) noexcept {}
  void on_master_stage(WorkerId, WorkerId, std::uint32_t, SourceLoc) noexcept {}
  void on_replica_write(WorkerId, WorkerId, std::uint32_t, SourceLoc) noexcept {}
  void on_view_read(WorkerId, WorkerId, std::uint32_t, SourceLoc) noexcept {}
  void on_send(WorkerId, WorkerId, SourceLoc) noexcept {}
  void on_send(WorkerId, WorkerId, std::size_t, SourceLoc) noexcept {}
  void on_mailbox_write(WorkerId, WorkerId, std::uint64_t, SourceLoc) noexcept {}
  void on_mailbox_read(WorkerId, WorkerId, std::uint64_t, SourceLoc) noexcept {}
  void on_queue_access(WorkerId, WorkerId, bool, SourceLoc) noexcept {}
  void note_replay_window(Superstep, Superstep) noexcept {}
  [[nodiscard]] std::uint64_t replay_sends() const noexcept { return 0; }
  [[nodiscard]] race::Detector& racer() noexcept { return racer_; }
  void set_handler(Handler) noexcept {}
  [[nodiscard]] std::uint64_t accesses_checked() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t violations() const noexcept { return 0; }
  [[nodiscard]] std::string summary() const {
    return "[verify] compiled out (rebuild with -DCYCLOPS_VERIFY=ON)";
  }

 private:
  race::Detector racer_;  // stub: every hook is a no-op
};

class PhaseScope {
 public:
  PhaseScope(EngineChecker&, Phase, Phase = Phase::kIdle) noexcept {}
};

class EpochRegistry {
 public:
  static EpochRegistry& instance() {
    static EpochRegistry reg;
    return reg;
  }
  void publish(std::uint64_t) noexcept {}
  void retire(std::uint64_t, SourceLoc) noexcept {}
  void on_read(std::uint64_t, SourceLoc) noexcept {}
  void set_handler(Handler) noexcept {}
  [[nodiscard]] std::uint64_t accesses_checked() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t violations() const noexcept { return 0; }
};

#endif  // CYCLOPS_VERIFY

}  // namespace cyclops::verify
