#pragma once
// Vector-clock happens-before race analyzer for the engines' multithreaded
// compute paths (compile-time gated, like verify.hpp).
//
// The PR 4 checker enforces the *phase discipline* (who may touch which slot
// class in which phase); this layer enforces the *synchronization* claim
// underneath it: every pair of conflicting accesses to a shared cell must be
// ordered by a real happens-before edge. The tracked edges are exactly the
// ones the engines are allowed to rely on:
//
//   * ThreadPool fork/join — parallel_tasks forks one logical context per
//     task and joins them all back into the caller at the region barrier.
//   * SpinLock / Mutex acquire-release — release copies the holder's clock
//     into the lock, acquire joins it (FastTrack-style lock clocks).
//   * Fabric exchange — the global barrier ticks the driver's clock.
//
// Deliberately NOT tracked: the ThreadPool's internal mutex/condvar. Handing
// a task to a worker thread is machinery, not synchronization the engine may
// lean on — modeling it would manufacture HB edges between logical tasks and
// mask real races. This is also what makes the analyzer schedule-independent:
// logical tasks are concurrent in the model even when the schedule explorer
// (sim/sched.hpp) executes them serially in a permuted order, so a race is
// detected on its first occurrence under *any* explored schedule, and a
// report's (seed, schedule) pair replays it bit-identically.
//
// Contexts are logical tasks, not host threads. Context ids are recycled
// through a free list with a monotone per-id clock floor, so a reused id can
// never appear ordered-before state it did not really synchronize with; the
// one corner this trades away is races between a freed context and an
// *unrelated* pool's concurrent region that recycles its id — a missed race
// there, never a false report.
//
// Cells are keyed (class, worker, key): vertex slots, staging buffers, BSP
// mailboxes, the Hama in-queue, sender lanes, and service-scheduler job
// records. Reports carry both access sites in the PR 4 vocabulary (kind,
// phase, superstep, vertex) plus the (seed, schedule) of the run.
//
// Without CYCLOPS_VERIFY every entry point is an empty inline the optimizer
// deletes. With it, detection still costs nothing until race::enable(true)
// flips the runtime gate (one relaxed atomic load per hook when off).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

#include "cyclops/common/types.hpp"
#include "cyclops/verify/site.hpp"

#ifdef CYCLOPS_VERIFY
#include <atomic>
#include <unordered_map>
#include <vector>

#include "cyclops/common/sync.hpp"
#endif

namespace cyclops::verify::race {

/// The classes of shared cells the engines stamp. One (class, worker, key)
/// triple names one unit of memory the single-writer disciplines govern.
enum class CellClass : std::uint8_t {
  kSlot = 0,     ///< exposed view slot (master value, replica, GAS mirror)
  kStage = 1,    ///< master-private staging written during compute
  kMailbox = 2,  ///< BSP per-vertex mailbox
  kQueue = 3,    ///< Hama-style shared in-queue (SpinLock-guarded)
  kLane = 4,     ///< fabric sender lane (single concurrent writer per lane)
  kJob = 5,      ///< service-scheduler job record
};

[[nodiscard]] inline const char* cell_class_name(CellClass c) noexcept {
  switch (c) {
    case CellClass::kSlot: return "slot";
    case CellClass::kStage: return "stage";
    case CellClass::kMailbox: return "mailbox";
    case CellClass::kQueue: return "queue";
    case CellClass::kLane: return "lane";
    case CellClass::kJob: return "job";
  }
  return "?";
}

enum class RaceKind : std::uint8_t {
  kWriteWrite = 0,  ///< two unordered writes
  kReadWrite = 1,   ///< a write unordered after an earlier read
  kWriteRead = 2,   ///< a read unordered after an earlier write
};

[[nodiscard]] inline const char* race_kind_name(RaceKind k) noexcept {
  switch (k) {
    case RaceKind::kWriteWrite: return "write-write";
    case RaceKind::kReadWrite: return "read-write";
    case RaceKind::kWriteRead: return "write-read";
  }
  return "?";
}

/// One detected race: both access sites in the PR 4 report vocabulary, plus
/// the (seed, schedule) pair of the explorer run that produced it. Feeding
/// the same seed back through `cyclops-cli --race` (or a ScheduleExplorer
/// constructed with it) replays the identical schedule and the identical
/// report — schedules are pure functions of the seed.
struct Report {
  RaceKind kind = RaceKind::kWriteWrite;
  CellClass cell = CellClass::kSlot;
  WorkerId worker = kInvalidWorker;  ///< worker hosting the cell
  std::uint64_t key = 0;             ///< slot / vertex / lane / job id
  VertexId vertex = kInvalidVertex;  ///< global id when slot-attributable
  AccessSite current;                ///< the access that closed the race
  AccessSite previous;               ///< the unordered earlier access
  std::uint64_t seed = 0;            ///< explorer seed (0: default schedule)
  std::uint64_t schedule = 0;        ///< schedule digest at detection time

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << "data race [" << race_kind_name(kind) << "] on " << cell_class_name(cell)
       << " cell (worker " << worker << ", key " << key;
    if (vertex != kInvalidVertex) os << ", vertex " << vertex;
    os << ") seed " << seed << " schedule 0x" << std::hex << schedule << std::dec;
    os << "\n  at      " << (current.loc.file ? current.loc.file : "?") << ":"
       << current.loc.line << " (phase " << phase_name(current.phase) << ", superstep "
       << current.superstep << ", worker " << current.worker << ")";
    if (previous.valid()) {
      os << "\n  against " << previous.loc.file << ":" << previous.loc.line << " (phase "
         << phase_name(previous.phase) << ", superstep " << previous.superstep
         << ", worker " << previous.worker << ")";
    }
    return os.str();
  }
};

using ReportHandler = std::function<void(const Report&)>;

inline constexpr std::uint32_t kNoCtx = 0xffffffffu;

#ifdef CYCLOPS_VERIFY

namespace detail {
/// The executing thread's current logical context (task, or lazily created
/// thread root). Bound by TaskScope on task entry, restored on exit.
inline thread_local std::uint32_t tls_ctx = kNoCtx;

[[noreturn]] inline void abort_handler(const Report& r) {
  std::fprintf(stderr, "CYCLOPS_RACE: %s\n", r.describe().c_str());
  std::fflush(nullptr);
  std::abort();
}
}  // namespace detail

class Region;
class TaskScope;
class Detector;

/// Process-global clock state: one vector clock per live logical context, one
/// clock per lock address, the current (seed, schedule) stamp. One mutex
/// guards the lot — this is a checker, not a hot path; correctness and
/// simplicity win over scalability, and the runtime gate keeps unenabled
/// builds at a single relaxed load.
class Runtime {
 public:
  static Runtime& instance() {
    static Runtime rt;
    return rt;
  }

  void enable(bool on) noexcept { enabled_.store(on, std::memory_order_release); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Published by the schedule explorer as it plans regions; stamped into
  /// every report so a race names the schedule that produced it.
  void note_schedule(std::uint64_t seed, std::uint64_t digest) {
    LockGuard<Mutex> lock(mu_);
    seed_ = seed;
    schedule_ = digest;
  }

  /// Forgets the lock clock for a destroyed lock so a recycled address
  /// cannot import a stale clock (engines call this from lock destructors
  /// where address reuse matters; omitting it is conservative — extra HB,
  /// only ever masking, and only for same-address recycling).
  void forget_lock(const void* addr) {
    if (!enabled()) return;
    LockGuard<Mutex> lock(mu_);
    lock_clocks_.erase(addr);
  }

 private:
  friend class Region;
  friend class TaskScope;
  friend class Detector;
  friend void lock_acquired(const void* addr);
  friend void lock_released(const void* addr);
  friend void exchange_barrier();

  struct Ctx {
    std::vector<std::uint32_t> clock;
    bool live = false;
  };

  /// Allocates a context (reusing a freed id when possible) whose clock is a
  /// copy of `parent_clock` (or zeros for a thread root) with its own
  /// component bumped strictly above every prior incarnation of the id.
  std::uint32_t alloc_ctx_locked(const std::vector<std::uint32_t>* parent_clock) {
    std::uint32_t id;
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
    } else {
      id = static_cast<std::uint32_t>(ctxs_.size());
      ctxs_.emplace_back();
      floors_.push_back(0);
    }
    Ctx& c = ctxs_[id];
    c.live = true;
    if (parent_clock != nullptr) {
      c.clock = *parent_clock;
    } else {
      c.clock.clear();
    }
    if (c.clock.size() <= id) c.clock.resize(id + 1, 0);
    c.clock[id] = ++floors_[id];
    return id;
  }

  /// Joins `child` into `parent` (elementwise max) and frees the child id.
  void join_locked(std::uint32_t parent, std::uint32_t child) {
    Ctx& p = ctxs_[parent];
    Ctx& c = ctxs_[child];
    if (p.clock.size() < c.clock.size()) p.clock.resize(c.clock.size(), 0);
    for (std::size_t i = 0; i < c.clock.size(); ++i) {
      if (c.clock[i] > p.clock[i]) p.clock[i] = c.clock[i];
    }
    tick_locked(parent);
    c.live = false;
    c.clock.clear();
    c.clock.shrink_to_fit();
    free_ids_.push_back(child);
  }

  void tick_locked(std::uint32_t id) { floors_[id] = ++ctxs_[id].clock[id]; }

  /// The calling thread's context, creating its thread root on first use.
  /// Thread roots are never freed: a handful per process (driver threads,
  /// the service dispatcher), each a single clock component.
  std::uint32_t current_ctx_locked() {
    if (detail::tls_ctx == kNoCtx) detail::tls_ctx = alloc_ctx_locked(nullptr);
    return detail::tls_ctx;
  }

  void join_into_current_locked(const std::vector<std::uint32_t>& other) {
    Ctx& c = ctxs_[current_ctx_locked()];
    if (c.clock.size() < other.size()) c.clock.resize(other.size(), 0);
    for (std::size_t i = 0; i < other.size(); ++i) {
      if (other[i] > c.clock[i]) c.clock[i] = other[i];
    }
  }

  std::atomic<bool> enabled_{false};
  Mutex mu_;
  std::vector<Ctx> ctxs_;
  std::vector<std::uint32_t> floors_;     // max clock any incarnation of id reached
  std::vector<std::uint32_t> free_ids_;
  std::unordered_map<const void*, std::vector<std::uint32_t>> lock_clocks_;
  std::uint64_t seed_ = 0;
  std::uint64_t schedule_ = 0;
};

inline void enable(bool on) noexcept { Runtime::instance().enable(on); }
[[nodiscard]] inline bool enabled() noexcept { return Runtime::instance().enabled(); }
inline void note_schedule(std::uint64_t seed, std::uint64_t digest) {
  if (Runtime::instance().enabled()) Runtime::instance().note_schedule(seed, digest);
}

/// Lock-clock join on acquire: the acquirer inherits everything the last
/// releaser had seen. Instrumented locks (SpinLock, the scheduler's Mutex via
/// MutexObserver / annotated_wait) call these with their own address.
inline void lock_acquired(const void* addr) {
  Runtime& rt = Runtime::instance();
  if (!rt.enabled()) return;
  LockGuard<Mutex> lock(rt.mu_);
  const auto it = rt.lock_clocks_.find(addr);
  if (it == rt.lock_clocks_.end()) return;  // never released yet: no edge
  rt.join_into_current_locked(it->second);
}

inline void lock_released(const void* addr) {
  Runtime& rt = Runtime::instance();
  if (!rt.enabled()) return;
  LockGuard<Mutex> lock(rt.mu_);
  const std::uint32_t cur = rt.current_ctx_locked();
  rt.lock_clocks_[addr] = rt.ctxs_[cur].clock;
  rt.tick_locked(cur);
}

/// The fabric's global barrier, seen from the driver thread. Regions already
/// provide the fork/join ordering around it; the tick marks the epoch.
inline void exchange_barrier() {
  Runtime& rt = Runtime::instance();
  if (!rt.enabled()) return;
  LockGuard<Mutex> lock(rt.mu_);
  rt.tick_locked(rt.current_ctx_locked());
}

/// One ThreadPool parallel region: forks a logical context per task from the
/// caller's context, joins them all back at destruction (the pool's blocking
/// barrier). Constructed by ThreadPool::parallel_tasks on the caller thread.
class Region {
 public:
  explicit Region(std::size_t tasks) {
    Runtime& rt = Runtime::instance();
    if (!rt.enabled() || tasks == 0) return;
    active_ = true;
    LockGuard<Mutex> lock(rt.mu_);
    parent_ = rt.current_ctx_locked();
    // Copy, not reference: alloc_ctx_locked may grow ctxs_ under us.
    const std::vector<std::uint32_t> parent_clock = rt.ctxs_[parent_].clock;
    ctxs_.resize(tasks, kNoCtx);
    for (std::uint32_t& id : ctxs_) id = rt.alloc_ctx_locked(&parent_clock);
    rt.tick_locked(parent_);
  }

  ~Region() {
    if (!active_) return;
    Runtime& rt = Runtime::instance();
    LockGuard<Mutex> lock(rt.mu_);
    for (const std::uint32_t id : ctxs_) rt.join_locked(parent_, id);
  }

  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint32_t ctx_of(std::size_t task) const noexcept {
    return active_ ? ctxs_[task] : kNoCtx;
  }

 private:
  bool active_ = false;
  std::uint32_t parent_ = kNoCtx;
  std::vector<std::uint32_t> ctxs_;
};

/// Binds the executing thread to one task's logical context for the duration
/// of the task body — on a pool worker, inline on the caller, or serially
/// under the schedule explorer; the HB model is identical in all three.
class TaskScope {
 public:
  TaskScope(const Region& region, std::size_t task) {
    if (!region.active()) return;
    active_ = true;
    prev_ = detail::tls_ctx;
    detail::tls_ctx = region.ctx_of(task);
  }
  ~TaskScope() {
    if (active_) detail::tls_ctx = prev_;
  }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  bool active_ = false;
  std::uint32_t prev_ = kNoCtx;
};

/// Per-engine (or per-scheduler) shadow memory: FastTrack-style write epoch
/// plus a read set per cell. Hooks are called from the engines' task bodies;
/// state is guarded by the Runtime mutex (clock compares need it anyway),
/// and the handler runs outside it.
class Detector {
 public:
  Detector() = default;
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  void on_access(CellClass cls, WorkerId worker, std::uint64_t key, VertexId vertex,
                 bool is_write, SourceLoc loc, Phase phase, Superstep step,
                 WorkerId executing) {
    Runtime& rt = Runtime::instance();
    if (!rt.enabled()) return;
    checked_.fetch_add(1, std::memory_order_relaxed);
    Report rep;
    bool raced = false;
    {
      LockGuard<Mutex> lock(rt.mu_);
      const std::uint32_t cur = rt.current_ctx_locked();
      const std::vector<std::uint32_t>& cur_clock = rt.ctxs_[cur].clock;
      const auto ordered = [&](std::uint32_t ctx, std::uint32_t at) noexcept {
        return ctx == cur || (ctx < cur_clock.size() && cur_clock[ctx] >= at);
      };
      Cell& cell = cells_[cell_key(cls, worker, key)];
      const AccessSite site{loc, phase, step, executing};
      if (is_write) {
        if (cell.w_ctx != kNoCtx && !ordered(cell.w_ctx, cell.w_clock)) {
          rep = make(RaceKind::kWriteWrite, cls, worker, key, vertex, cell.w_site,
                     site, rt);
          raced = true;
        }
        if (!raced) {
          for (const ReadEntry& r : cell.reads) {
            if (!ordered(r.ctx, r.clock)) {
              rep = make(RaceKind::kReadWrite, cls, worker, key, vertex, r.site,
                         site, rt);
              raced = true;
              break;
            }
          }
        }
        cell.w_ctx = cur;
        cell.w_clock = cur_clock[cur];
        cell.w_site = site;
        cell.reads.clear();
      } else {
        if (cell.w_ctx != kNoCtx && !ordered(cell.w_ctx, cell.w_clock)) {
          rep = make(RaceKind::kWriteRead, cls, worker, key, vertex, cell.w_site,
                     site, rt);
          raced = true;
        }
        bool updated = false;
        for (ReadEntry& r : cell.reads) {
          if (r.ctx == cur) {
            r.clock = cur_clock[cur];
            r.site = site;
            updated = true;
            break;
          }
        }
        if (!updated) cell.reads.push_back(ReadEntry{cur, cur_clock[cur], site});
      }
    }
    if (raced) report(rep);
  }

  /// Installs a race sink (tests and the CLI collect; default aborts).
  void set_handler(ReportHandler h) {
    LockGuard<Mutex> lock(handler_mu_);
    handler_ = std::move(h);
  }

  /// Drops all shadow cells (engine rebuild/restore re-stamps from scratch).
  void reset() {
    LockGuard<Mutex> lock(Runtime::instance().mu_);
    cells_.clear();
  }

  [[nodiscard]] std::uint64_t accesses_checked() const noexcept {
    return checked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t races() const noexcept {
    return races_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::string summary() const {
    std::ostringstream os;
    os << "[race] " << accesses_checked() << " accesses checked, " << races()
       << " races";
    return os.str();
  }

 private:
  struct ReadEntry {
    std::uint32_t ctx = kNoCtx;
    std::uint32_t clock = 0;
    AccessSite site;
  };
  struct Cell {
    std::uint32_t w_ctx = kNoCtx;
    std::uint32_t w_clock = 0;
    AccessSite w_site;
    std::vector<ReadEntry> reads;
  };

  [[nodiscard]] static std::uint64_t cell_key(CellClass cls, WorkerId worker,
                                              std::uint64_t key) noexcept {
    return (static_cast<std::uint64_t>(cls) << 58) |
           (static_cast<std::uint64_t>(worker) << 32) | (key & 0xffffffffULL);
  }

  Report make(RaceKind kind, CellClass cls, WorkerId worker, std::uint64_t key,
              VertexId vertex, AccessSite previous, AccessSite current,
              const Runtime& rt) {
    Report r;
    r.kind = kind;
    r.cell = cls;
    r.worker = worker;
    r.key = key;
    r.vertex = vertex;
    r.previous = previous;
    r.current = current;
    r.seed = rt.seed_;
    r.schedule = rt.schedule_;
    return r;
  }

  void report(const Report& r) {
    races_.fetch_add(1, std::memory_order_relaxed);
    ReportHandler h;
    {
      LockGuard<Mutex> lock(handler_mu_);
      h = handler_;
    }
    if (h) {
      h(r);
    } else {
      detail::abort_handler(r);
    }
  }

  std::unordered_map<std::uint64_t, Cell> cells_;
  std::atomic<std::uint64_t> checked_{0};
  std::atomic<std::uint64_t> races_{0};
  Mutex handler_mu_;
  ReportHandler handler_;
};

#else  // !CYCLOPS_VERIFY — every entry point is an empty inline no-op.

inline void enable(bool) noexcept {}
[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void note_schedule(std::uint64_t, std::uint64_t) noexcept {}
inline void lock_acquired(const void*) noexcept {}
inline void lock_released(const void*) noexcept {}
inline void exchange_barrier() noexcept {}

class Region {
 public:
  explicit Region(std::size_t) noexcept {}
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
  [[nodiscard]] bool active() const noexcept { return false; }
  [[nodiscard]] std::uint32_t ctx_of(std::size_t) const noexcept { return kNoCtx; }
};

class TaskScope {
 public:
  TaskScope(const Region&, std::size_t) noexcept {}
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;
};

class Detector {
 public:
  Detector() = default;
  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;
  void on_access(CellClass, WorkerId, std::uint64_t, VertexId, bool, SourceLoc,
                 Phase, Superstep, WorkerId) noexcept {}
  void set_handler(ReportHandler) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] std::uint64_t accesses_checked() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t races() const noexcept { return 0; }
  [[nodiscard]] std::string summary() const {
    return "[race] compiled out (rebuild with -DCYCLOPS_VERIFY=ON)";
  }
};

#endif  // CYCLOPS_VERIFY

/// RAII annotation for a held Mutex: declare right after taking the lock so
/// destruction (the release edge) runs just before the lock is dropped.
class MutexObserver {
 public:
  explicit MutexObserver(const void* addr) noexcept : addr_(addr) { lock_acquired(addr_); }
  ~MutexObserver() { lock_released(addr_); }
  MutexObserver(const MutexObserver&) = delete;
  MutexObserver& operator=(const MutexObserver&) = delete;

 private:
  const void* addr_;
};

/// Condvar wait with correct lock-clock annotations. cv.wait(lk, pred)
/// silently unlocks and relocks the mutex, which a plain MutexObserver pair
/// cannot see — this spells the loop out so every real release/acquire of
/// the mutex has its matching annotation. A plain cv.wait in the stub build.
template <typename CV, typename Lock, typename Pred>
void annotated_wait(CV& cv, Lock& lk, const void* mutex_addr, Pred pred) {
  while (!pred()) {
    lock_released(mutex_addr);
    cv.wait(lk);
    lock_acquired(mutex_addr);
  }
}

}  // namespace cyclops::verify::race
