#pragma once
// Shared vocabulary of the verification layer: superstep phases, source
// locations, and access sites. Split out of verify.hpp so the race analyzer
// (verify/race.hpp) and the low-level primitives it instruments (ThreadPool,
// SpinLock, Fabric) can name these types without pulling in the full
// EngineChecker. Everything here is compiled unconditionally — only the
// trackers themselves are gated on CYCLOPS_VERIFY.

#include <cstdint>

#include "cyclops/common/types.hpp"

namespace cyclops::verify {

/// True when the checker is compiled in; engines use it to skip building
/// registration tables that the stub would discard.
#ifdef CYCLOPS_VERIFY
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// The superstep phases the discipline is defined over. Engines map their own
/// stages onto these: Hama runs Parse/Compute/Send/Sync, Cyclops runs
/// Compute/Send/Exchange/Sync (no parse — that is the point), GAS treats each
/// gather/apply/scatter leg as Compute and its four exchanges as Send/Exchange.
enum class Phase : std::uint8_t {
  kIdle = 0,     ///< outside any superstep (construction, checkpoint, rebuild)
  kParse = 1,    ///< BSP PRS: in-queue drained into mailboxes
  kCompute = 2,  ///< vertex programs run over the immutable view
  kSend = 3,     ///< owners apply staged state and emit sync messages
  kExchange = 4, ///< barrier + delivery: replica/mirror slots updated
  kSync = 5,     ///< active-set swap, termination vote
};

[[nodiscard]] inline const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kIdle: return "idle";
    case Phase::kParse: return "parse";
    case Phase::kCompute: return "compute";
    case Phase::kSend: return "send";
    case Phase::kExchange: return "exchange";
    case Phase::kSync: return "sync";
  }
  return "?";
}

/// Source location captured at each instrumented access (see CYCLOPS_VLOC).
struct SourceLoc {
  const char* file = nullptr;
  int line = 0;
};

/// One recorded access: where, when (superstep + phase), and by whom.
struct AccessSite {
  SourceLoc loc;
  Phase phase = Phase::kIdle;
  Superstep superstep = 0;
  WorkerId worker = kInvalidWorker;
  [[nodiscard]] bool valid() const noexcept { return loc.file != nullptr; }
};

#define CYCLOPS_VLOC \
  ::cyclops::verify::SourceLoc { __FILE__, __LINE__ }

}  // namespace cyclops::verify
