#pragma once
// Incremental re-convergence — algorithms resume from the prior epoch's
// converged values with only the affected region re-activated, instead of
// re-running from scratch on every published epoch. Built on the Cyclops
// engine's mutation hooks (rebuild / activate / reset_vertex): the engine
// carries master state across epochs by global id, and the per-algorithm
// policies below decide what must be reset or re-activated:
//
//   - delta-PageRank: every touched vertex is reset in place (carried value,
//     shared contribution recomputed against its *new* out-degree — degree
//     changes silently invalidate the exposed value/degree share even when
//     the value is converged), and the k-hop out-neighborhood of the
//     mutation sites is re-activated so the rank shift propagates. A vertex-
//     count change shifts the (1-d)/n term of every vertex, so it falls back
//     to re-activating all of them (values still carried).
//   - SSSP: an added edge re-activates its head, which re-relaxes from the
//     carried frontier. Removals break the monotone-label discipline, so the
//     orphaned region — vertices whose distance loses all remaining support
//     (Ramalingam/Reps-style tight-edge walk) — is re-initialized to inf and
//     re-relaxed from its intact boundary.
//   - CC: adds re-activate both endpoints (labels only merge downward).
//     A removal may split a component, so every vertex carrying an affected
//     component label is re-initialized and the min-label propagation
//     replays inside that component only.
//
// Equivalence contract (enforced by tests/test_ingest.cpp): after advance()
// the engine's values are bit-identical (SSSP/CC) or within 1e-12
// (PageRank, at matching epsilon) to a cold run on the mutated snapshot.
// Incremental execution is a capability of the Cyclops engines (cyclops and
// cyclops-mt share core::Engine); BSP/GAS jobs always run cold.

#include <cstddef>
#include <span>
#include <vector>

#include "cyclops/algorithms/cc.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/service/snapshot.hpp"

namespace cyclops::ingest {

struct IncrementalConfig {
  /// Engine config; topology must match the partition family `mt` selects
  /// (Config::cyclops ↔ edge_cut, Config::cyclops_mt ↔ mt_edge_cut).
  core::Config engine;
  bool mt = false;
  unsigned pr_hops = 2;               ///< delta-PR re-activation radius
  Superstep extend_per_epoch = 5000;  ///< superstep budget added per advance()
};

/// Mirrors the service runner's engine-config construction so incremental
/// runs are comparable to scheduler jobs on the same snapshot.
[[nodiscard]] IncrementalConfig make_incremental_config(const service::SnapshotConfig& snap,
                                                        bool mt, unsigned threads = 4,
                                                        unsigned receivers = 2,
                                                        Superstep max_supersteps = 5000);

/// What one epoch transition cost.
struct EpochAdvance {
  service::Epoch epoch = 0;
  double rebuild_s = 0;                ///< engine relayout time
  std::size_t reset_vertices = 0;      ///< state re-initialized in place
  std::size_t activated_vertices = 0;  ///< re-activated without reset
  metrics::RunStats run;               ///< the incremental re-convergence run
};

/// Vertices within `hops` out-edge steps of `seeds` (seeds included),
/// deduplicated and sorted — delta-PR's re-activation halo.
[[nodiscard]] std::vector<VertexId> khop_out(const graph::GraphStore& g,
                                             std::span<const VertexId> seeds, unsigned hops);

/// The orphaned region of an SSSP solution after edge removals: vertices
/// whose current distance has no remaining tight in-edge from an unaffected
/// vertex. Walks tight out-edges to a fixpoint; conservative in the presence
/// of floating-point ties (a false positive costs re-relaxation, never
/// correctness). `dist` is indexed by vertex id over `g`'s vertices.
[[nodiscard]] std::vector<VertexId> sssp_affected_by_removal(
    const graph::GraphStore& g, std::span<const double> dist,
    const std::vector<graph::Edge>& removes, VertexId source);

class IncrementalPageRank {
 public:
  IncrementalPageRank(service::SnapshotRef snap, algo::PageRankCyclops prog,
                      IncrementalConfig cfg);
  /// The initial from-scratch convergence on the pinned snapshot.
  metrics::RunStats cold_run() { return engine_.run(); }
  /// Re-targets the engine at `next` and re-converges incrementally.
  EpochAdvance advance(service::SnapshotRef next, const core::TopologyDelta& delta);
  [[nodiscard]] std::vector<double> values() const { return engine_.values(); }
  [[nodiscard]] core::Engine<algo::PageRankCyclops>& engine() noexcept { return engine_; }
  [[nodiscard]] const service::SnapshotRef& snapshot() const noexcept { return snap_; }

 private:
  IncrementalConfig cfg_;
  algo::PageRankCyclops prog_;
  service::SnapshotRef snap_;
  core::Engine<algo::PageRankCyclops> engine_;
};

class IncrementalSssp {
 public:
  IncrementalSssp(service::SnapshotRef snap, algo::SsspCyclops prog, IncrementalConfig cfg);
  metrics::RunStats cold_run() { return engine_.run(); }
  EpochAdvance advance(service::SnapshotRef next, const core::TopologyDelta& delta);
  [[nodiscard]] std::vector<double> values() const { return engine_.values(); }
  [[nodiscard]] core::Engine<algo::SsspCyclops>& engine() noexcept { return engine_; }
  [[nodiscard]] const service::SnapshotRef& snapshot() const noexcept { return snap_; }

 private:
  IncrementalConfig cfg_;
  algo::SsspCyclops prog_;
  service::SnapshotRef snap_;
  core::Engine<algo::SsspCyclops> engine_;
};

class IncrementalCc {
 public:
  IncrementalCc(service::SnapshotRef snap, algo::CcCyclops prog, IncrementalConfig cfg);
  metrics::RunStats cold_run() { return engine_.run(); }
  EpochAdvance advance(service::SnapshotRef next, const core::TopologyDelta& delta);
  [[nodiscard]] std::vector<VertexId> values() const { return engine_.values(); }
  [[nodiscard]] core::Engine<algo::CcCyclops>& engine() noexcept { return engine_; }
  [[nodiscard]] const service::SnapshotRef& snapshot() const noexcept { return snap_; }

 private:
  IncrementalConfig cfg_;
  algo::CcCyclops prog_;
  service::SnapshotRef snap_;
  core::Engine<algo::CcCyclops> engine_;
};

}  // namespace cyclops::ingest
