#pragma once
// MutationIngestor — the batching front door of the streaming ingestion
// subsystem. It accepts one time-ordered mutation stream (offer() is
// single-writer, matching SnapshotStore::apply's contract), folds ops into a
// staged TopologyDelta, and publishes an epoch when either batching bound
// trips:
//   - max_batch staged ops (throughput bound), or
//   - the oldest staged op has waited max_delay_s of wall time (staleness
//     bound).
// flush() force-publishes a partial batch (end of stream / quiesce points).
//
// Batching contract: ops within one batch collapse under TopologyDelta's
// last-op-wins canonicalization; batches are applied in offer order; an op
// is durable-visible exactly when the epoch containing it is published.
// Staleness is measured per op: publication wall time minus offer wall time
// — the mutation->published-epoch latency EXPERIMENTS.md reports.

#include <cstdint>
#include <functional>
#include <vector>

#include "cyclops/common/timer.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/ingest/trace.hpp"
#include "cyclops/service/snapshot.hpp"

namespace cyclops::ingest {

struct IngestConfig {
  std::size_t max_batch = 256;  ///< fold cadence: staged-op count bound
  double max_delay_s = 0.05;    ///< fold cadence: oldest-op wall-time bound
};

struct IngestStats {
  std::uint64_t ops = 0;      ///< mutations accepted
  std::uint64_t batches = 0;  ///< epochs published by this ingestor
  double total_staleness_s = 0;
  double max_staleness_s = 0;
  double publish_s = 0;  ///< wall time spent inside SnapshotStore::apply
  double elapsed_s = 0;  ///< wall time from construction to last publish

  [[nodiscard]] double mean_staleness_s() const noexcept {
    return ops > 0 ? total_staleness_s / static_cast<double>(ops) : 0.0;
  }
  [[nodiscard]] double mutations_per_s() const noexcept {
    return elapsed_s > 0 ? static_cast<double>(ops) / elapsed_s : 0.0;
  }
};

class MutationIngestor {
 public:
  /// Called after each published epoch with the delta it folded — the hook
  /// incremental re-convergence subscribes to. Runs on the offering thread.
  using EpochHook = std::function<void(service::Epoch, const core::TopologyDelta&)>;

  MutationIngestor(service::SnapshotStore& store, IngestConfig cfg = {})
      : store_(store), cfg_(cfg) {}

  void set_epoch_hook(EpochHook hook) { hook_ = std::move(hook); }

  /// Stages one mutation; publishes an epoch when a batching bound trips.
  /// Timestamps in `op` pace the *trace*; staleness here is wall time.
  void offer(const MutationOp& op);

  /// Publishes any staged ops; returns the store's current epoch either way.
  service::Epoch flush();

  [[nodiscard]] std::size_t staged() const noexcept { return staged_.size(); }
  [[nodiscard]] const IngestStats& stats() const noexcept { return stats_; }

 private:
  void publish();

  service::SnapshotStore& store_;
  IngestConfig cfg_;
  core::TopologyDelta staged_;
  std::vector<double> staged_offer_s_;  ///< offer wall time per staged op
  Timer clock_;
  IngestStats stats_;
  EpochHook hook_;
};

}  // namespace cyclops::ingest
