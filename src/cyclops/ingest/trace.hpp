#pragma once
// Mutation traces — the input format of the streaming ingestion subsystem.
// A trace is a time-ordered sequence of edge add/remove operations; the
// replay drivers (cyclops-cli --ingest, bench_ingest) feed it through a
// MutationIngestor, which folds ops into batched TopologyDeltas.
//
// Text format (one op per line, '#' comments, blank lines ignored):
//   <at_s> add <src> <dst> [weight]
//   <at_s> remove <src> <dst>
// Timestamps are trace-relative seconds and must be non-decreasing; they
// pace replay and measure mutation->epoch staleness.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cyclops/common/types.hpp"

namespace cyclops::ingest {

struct MutationOp {
  double at_s = 0;  ///< trace-relative timestamp (non-decreasing)
  bool is_add = true;
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;
};

/// Parses the text format; throws std::runtime_error naming the bad line.
[[nodiscard]] std::vector<MutationOp> parse_trace(std::istream& in);

/// Loads and parses a trace file; throws std::runtime_error on IO failure.
[[nodiscard]] std::vector<MutationOp> load_trace(const std::string& path);

/// Knobs for deterministic synthetic traces (seeded, wall-clock free).
struct TraceSpec {
  std::size_t ops = 256;
  VertexId num_vertices = 0;  ///< endpoint universe (typically the base graph's)
  double add_fraction = 0.9;  ///< remainder removes previously-added edges
  double ops_per_s = 10000;   ///< timestamp pacing
  bool undirected = false;    ///< stage both directions (CC-style storage)
  std::uint64_t seed = 1;
};

/// Deterministic synthetic trace: adds between random distinct vertices;
/// removes are drawn from the trace's own earlier adds, so removals always
/// hit live edges and affected regions stay local — the "small delta"
/// workload the acceptance bar measures.
[[nodiscard]] std::vector<MutationOp> synth_trace(const TraceSpec& spec);

}  // namespace cyclops::ingest
