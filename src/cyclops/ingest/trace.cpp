#include "cyclops/ingest/trace.hpp"

#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cyclops/common/check.hpp"

namespace cyclops::ingest {

std::vector<MutationOp> parse_trace(std::istream& in) {
  std::vector<MutationOp> ops;
  std::string line;
  std::size_t lineno = 0;
  double prev_at = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    MutationOp op;
    std::string verb;
    if (!(ls >> op.at_s >> verb >> op.src >> op.dst)) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": expected '<at_s> add|remove <src> <dst>'");
    }
    if (verb == "add") {
      op.is_add = true;
      ls >> op.weight;  // optional; stays 1.0 when absent
    } else if (verb == "remove") {
      op.is_add = false;
    } else {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": unknown op '" + verb + "'");
    }
    if (op.at_s < prev_at) {
      throw std::runtime_error("trace line " + std::to_string(lineno) +
                               ": timestamps must be non-decreasing");
    }
    prev_at = op.at_s;
    ops.push_back(op);
  }
  return ops;
}

std::vector<MutationOp> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open trace file: " + path);
  return parse_trace(in);
}

std::vector<MutationOp> synth_trace(const TraceSpec& spec) {
  CYCLOPS_CHECK(spec.num_vertices >= 2);
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<VertexId> pick(0, spec.num_vertices - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::vector<MutationOp> ops;
  ops.reserve(spec.undirected ? 2 * spec.ops : spec.ops);
  std::vector<std::pair<VertexId, VertexId>> added;  // removal pool
  double at = 0;
  const double dt = spec.ops_per_s > 0 ? 1.0 / spec.ops_per_s : 0.0;
  for (std::size_t i = 0; i < spec.ops; ++i, at += dt) {
    if (!added.empty() && coin(rng) >= spec.add_fraction) {
      std::uniform_int_distribution<std::size_t> slot(0, added.size() - 1);
      const std::size_t s = slot(rng);
      const auto [u, v] = added[s];
      added[s] = added.back();
      added.pop_back();
      ops.push_back(MutationOp{at, /*is_add=*/false, u, v, 0.0});
      if (spec.undirected) ops.push_back(MutationOp{at, /*is_add=*/false, v, u, 0.0});
    } else {
      VertexId u = pick(rng);
      VertexId v = pick(rng);
      while (v == u) v = pick(rng);
      added.emplace_back(u, v);
      ops.push_back(MutationOp{at, /*is_add=*/true, u, v, 1.0});
      if (spec.undirected) ops.push_back(MutationOp{at, /*is_add=*/true, v, u, 1.0});
    }
  }
  return ops;
}

}  // namespace cyclops::ingest
