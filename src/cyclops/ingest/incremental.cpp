#include "cyclops/ingest/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace cyclops::ingest {
namespace {

/// Touched vertices that exist in the new snapshot (mutation endpoints can
/// reference ids the canonical delta cancelled before they grew the graph).
std::vector<VertexId> touched_in_range(const core::TopologyDelta& delta, VertexId n) {
  std::vector<VertexId> touched = delta.touched_vertices();
  std::erase_if(touched, [n](VertexId v) { return v >= n; });
  return touched;
}

}  // namespace

IncrementalConfig make_incremental_config(const service::SnapshotConfig& snap, bool mt,
                                          unsigned threads, unsigned receivers,
                                          Superstep max_supersteps) {
  IncrementalConfig cfg;
  cfg.mt = mt;
  cfg.engine = mt ? core::Config::cyclops_mt(snap.machines, threads, receivers)
                  : core::Config::cyclops(snap.machines, snap.workers_per_machine);
  cfg.engine.max_supersteps = max_supersteps;
  cfg.extend_per_epoch = max_supersteps;
  return cfg;
}

std::vector<VertexId> khop_out(const graph::GraphStore& g, std::span<const VertexId> seeds,
                               unsigned hops) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<VertexId> out;
  std::vector<VertexId> frontier;
  for (const VertexId v : seeds) {
    if (v < n && !seen[v]) {
      seen[v] = 1;
      out.push_back(v);
      frontier.push_back(v);
    }
  }
  graph::AdjCursor cur;
  for (unsigned h = 0; h < hops && !frontier.empty(); ++h) {
    std::vector<VertexId> next;
    for (const VertexId v : frontier) {
      for (const graph::Adj& a : g.out_neighbors(v, cur)) {
        if (!seen[a.neighbor]) {
          seen[a.neighbor] = 1;
          out.push_back(a.neighbor);
          next.push_back(a.neighbor);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> sssp_affected_by_removal(const graph::GraphStore& g,
                                               std::span<const double> dist,
                                               const std::vector<graph::Edge>& removes,
                                               VertexId source) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint8_t> affected(n, 0);
  graph::AdjCursor in_cur;
  // A vertex keeps its distance while some unaffected in-neighbor still
  // provides it (dist[z] + w == dist[y]). The source provides its own 0.
  const auto supported = [&](VertexId y) {
    if (y == source) return true;
    for (const graph::Adj& a : g.in_neighbors(y, in_cur)) {
      if (!affected[a.neighbor] && dist[a.neighbor] + a.weight == dist[y]) return true;
    }
    return false;
  };

  std::vector<VertexId> work;
  for (const graph::Edge& e : removes) {
    if (e.dst < n && std::isfinite(dist[e.dst])) work.push_back(e.dst);
  }
  std::vector<VertexId> out;
  graph::AdjCursor out_cur;
  while (!work.empty()) {
    const VertexId y = work.back();
    work.pop_back();
    if (affected[y] || !std::isfinite(dist[y])) continue;
    if (supported(y)) continue;
    affected[y] = 1;
    out.push_back(y);
    // y's distance fell through; every vertex it tightly supported must be
    // re-checked (it may still have another supporter — supported() decides).
    for (const graph::Adj& a : g.out_neighbors(y, out_cur)) {
      if (!affected[a.neighbor] && std::isfinite(dist[a.neighbor]) &&
          dist[y] + a.weight == dist[a.neighbor]) {
        work.push_back(a.neighbor);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// delta-PageRank

IncrementalPageRank::IncrementalPageRank(service::SnapshotRef snap, algo::PageRankCyclops prog,
                                         IncrementalConfig cfg)
    : cfg_(cfg),
      prog_(prog),
      snap_(std::move(snap)),
      engine_(snap_->store(), cfg_.mt ? snap_->mt_edge_cut() : snap_->edge_cut(), prog_,
              cfg_.engine) {}

EpochAdvance IncrementalPageRank::advance(service::SnapshotRef next,
                                          const core::TopologyDelta& delta) {
  EpochAdvance out;
  out.epoch = next->epoch();
  const VertexId old_n = snap_->store().num_vertices();
  const graph::GraphStore& g = next->store();
  const VertexId n = g.num_vertices();
  out.rebuild_s = engine_.rebuild(g, cfg_.mt ? next->mt_edge_cut() : next->edge_cut());

  const auto reset_with_fresh_share = [&](VertexId v) {
    const double value = engine_.value_at(v);
    const auto d = g.out_degree(v);
    engine_.reset_vertex(v, value, d > 0 ? value / static_cast<double>(d) : 0.0);
  };
  if (n != old_n) {
    // The (1-d)/n teleport term shifted for every vertex: carry the values as
    // a warm start but re-expose every share and re-activate everything.
    for (VertexId v = 0; v < old_n && v < n; ++v) reset_with_fresh_share(v);
    out.reset_vertices = std::min<std::size_t>(old_n, n);
  } else {
    // Degree changes invalidate the exposed value/out-degree share even when
    // the value itself is converged — rewrite it in place, then wake the
    // k-hop downstream halo so the rank shift propagates.
    const std::vector<VertexId> touched = touched_in_range(delta, n);
    for (const VertexId v : touched) reset_with_fresh_share(v);
    out.reset_vertices = touched.size();
    for (const VertexId v : khop_out(g, touched, cfg_.pr_hops)) {
      engine_.activate(v);
      ++out.activated_vertices;
    }
  }

  engine_.extend_max_supersteps(cfg_.extend_per_epoch);
  out.run = engine_.run();
  snap_ = std::move(next);
  return out;
}

// ---------------------------------------------------------------------------
// incremental SSSP

IncrementalSssp::IncrementalSssp(service::SnapshotRef snap, algo::SsspCyclops prog,
                                 IncrementalConfig cfg)
    : cfg_(cfg),
      prog_(prog),
      snap_(std::move(snap)),
      engine_(snap_->store(), cfg_.mt ? snap_->mt_edge_cut() : snap_->edge_cut(), prog_,
              cfg_.engine) {}

EpochAdvance IncrementalSssp::advance(service::SnapshotRef next,
                                      const core::TopologyDelta& delta) {
  EpochAdvance out;
  out.epoch = next->epoch();
  const graph::GraphStore& g = next->store();
  const VertexId n = g.num_vertices();
  out.rebuild_s = engine_.rebuild(g, cfg_.mt ? next->mt_edge_cut() : next->edge_cut());

  const core::TopologyDelta::Canonical canon = delta.canonical();
  // Adds can only shorten paths: re-relaxing each new edge's head from the
  // carried labels is exactly one more round of the monotone fixpoint.
  for (const graph::Edge& e : canon.adds) {
    if (e.dst < n) {
      engine_.activate(e.dst);
      ++out.activated_vertices;
    }
  }
  if (!canon.removes.empty()) {
    // Removals can lengthen paths, which the monotone min-relaxation cannot
    // express — re-initialize the orphaned region and let its intact
    // boundary re-relax into it.
    const std::vector<double> dist = engine_.values();
    const std::vector<VertexId> orphaned =
        sssp_affected_by_removal(g, dist, canon.removes, prog_.source);
    // reset_vertex re-activates each orphan; since Cyclops pulls, an active
    // orphan reads its intact in-neighbors' shared distances directly — the
    // boundary never needs to act, and orphan-to-orphan chains re-fill
    // through the usual improve-and-broadcast cascade.
    for (const VertexId v : orphaned) {
      engine_.reset_vertex(v, algo::kInfDistance, algo::kInfDistance);
      ++out.reset_vertices;
    }
  }

  engine_.extend_max_supersteps(cfg_.extend_per_epoch);
  out.run = engine_.run();
  snap_ = std::move(next);
  return out;
}

// ---------------------------------------------------------------------------
// incremental CC

IncrementalCc::IncrementalCc(service::SnapshotRef snap, algo::CcCyclops prog,
                             IncrementalConfig cfg)
    : cfg_(cfg),
      prog_(prog),
      snap_(std::move(snap)),
      engine_(snap_->store(), cfg_.mt ? snap_->mt_edge_cut() : snap_->edge_cut(), prog_,
              cfg_.engine) {}

EpochAdvance IncrementalCc::advance(service::SnapshotRef next,
                                    const core::TopologyDelta& delta) {
  EpochAdvance out;
  out.epoch = next->epoch();
  const graph::GraphStore& g = next->store();
  const VertexId n = g.num_vertices();
  out.rebuild_s = engine_.rebuild(g, cfg_.mt ? next->mt_edge_cut() : next->edge_cut());

  const core::TopologyDelta::Canonical canon = delta.canonical();
  const std::vector<VertexId> labels = engine_.values();
  // Labels only flow downward (min), so an add just merges: waking both
  // endpoints lets the smaller label cross the new edge.
  for (const graph::Edge& e : canon.adds) {
    if (e.src < n) {
      engine_.activate(e.src);
      ++out.activated_vertices;
    }
    if (e.dst < n) {
      engine_.activate(e.dst);
      ++out.activated_vertices;
    }
  }
  if (!canon.removes.empty()) {
    // A removal may split a component, and min-propagation cannot retract a
    // label — re-initialize every vertex of each affected component and
    // replay the (exact) min-label fixpoint inside it. New vertices beyond
    // the carried label range are freshly initialized by rebuild() already.
    std::vector<VertexId> hit;
    for (const graph::Edge& e : canon.removes) {
      if (e.src < labels.size()) hit.push_back(labels[e.src]);
      if (e.dst < labels.size()) hit.push_back(labels[e.dst]);
    }
    std::sort(hit.begin(), hit.end());
    hit.erase(std::unique(hit.begin(), hit.end()), hit.end());
    for (VertexId v = 0; v < labels.size() && v < n; ++v) {
      if (std::binary_search(hit.begin(), hit.end(), labels[v])) {
        engine_.reset_vertex(v, v, v);
        ++out.reset_vertices;
      }
    }
  }

  engine_.extend_max_supersteps(cfg_.extend_per_epoch);
  out.run = engine_.run();
  snap_ = std::move(next);
  return out;
}

}  // namespace cyclops::ingest
