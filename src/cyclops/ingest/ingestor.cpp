#include "cyclops/ingest/ingestor.hpp"

#include <algorithm>
#include <utility>

namespace cyclops::ingest {

void MutationIngestor::offer(const MutationOp& op) {
  if (op.is_add) {
    staged_.add_edge(op.src, op.dst, op.weight);
  } else {
    staged_.remove_edge(op.src, op.dst);
  }
  staged_offer_s_.push_back(clock_.elapsed_s());
  ++stats_.ops;
  const bool batch_full = staged_.size() >= cfg_.max_batch;
  const bool too_stale =
      clock_.elapsed_s() - staged_offer_s_.front() >= cfg_.max_delay_s;
  if (batch_full || too_stale) publish();
}

service::Epoch MutationIngestor::flush() {
  if (!staged_.empty()) publish();
  return store_.current_epoch();
}

void MutationIngestor::publish() {
  Timer apply_timer;
  const service::Epoch epoch = store_.apply(staged_);
  stats_.publish_s += apply_timer.elapsed_s();

  const double now = clock_.elapsed_s();
  for (const double offered : staged_offer_s_) {
    const double staleness = now - offered;
    stats_.total_staleness_s += staleness;
    stats_.max_staleness_s = std::max(stats_.max_staleness_s, staleness);
  }
  stats_.elapsed_s = now;
  ++stats_.batches;

  core::TopologyDelta published = std::exchange(staged_, core::TopologyDelta{});
  staged_offer_s_.clear();
  if (hook_) hook_(epoch, published);
}

}  // namespace cyclops::ingest
