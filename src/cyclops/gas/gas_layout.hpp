#pragma once
// Runtime layout for the PowerGraph-style GAS engine (§2.3): a vertex-cut
// places each *edge* on one worker; every worker holding an edge incident to
// v keeps a local copy of v, one copy being the master. Gather and scatter
// run where the edges live; masters and mirrors exchange the 5-message
// pattern the paper counts (2 gather + 1 apply + 2 scatter per mirror).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cyclops/common/types.hpp"
#include "cyclops/graph/store.hpp"
#include "cyclops/partition/vertex_cut.hpp"

namespace cyclops::gas {

/// Local copy index within one worker.
using Copy = std::uint32_t;

struct MirrorRef {
  WorkerId worker = 0;
  Copy copy = 0;
};

struct LocalEdge {
  Copy src = 0;
  Copy dst = 0;
  double weight = 1.0;
};

struct GasWorkerLayout {
  std::vector<VertexId> copy_globals;   ///< global id per local copy
  std::vector<std::uint8_t> is_master;  ///< per copy
  std::vector<LocalEdge> edges;         ///< edges placed on this worker

  /// Per-copy local in-edges/out-edges (CSR over copies, indices into edges).
  std::vector<std::size_t> in_offsets;
  std::vector<std::uint32_t> in_edge_ids;
  std::vector<std::size_t> out_offsets;
  std::vector<std::uint32_t> out_edge_ids;

  /// For master copies: mirror locations (CSR over copies; empty for mirrors).
  std::vector<std::size_t> mirror_offsets;
  std::vector<MirrorRef> mirrors;

  /// For mirror copies: the master's (worker, copy).
  std::vector<MirrorRef> master_of;  ///< per copy; self-reference for masters

  [[nodiscard]] Copy num_copies() const noexcept {
    return static_cast<Copy>(copy_globals.size());
  }
};

struct GasLayout {
  std::vector<GasWorkerLayout> workers;
  std::vector<MirrorRef> master_ref;  ///< global id -> master (worker, copy)
  std::uint64_t total_copies = 0;     ///< Σ copies (= replication numerator)
  double build_s = 0;

  [[nodiscard]] double replication_factor(VertexId n) const noexcept {
    return n > 0 ? static_cast<double>(total_copies) / static_cast<double>(n) : 1.0;
  }
};

/// Builds the layout from any store backend. Edges are visited in the store's
/// canonical enumeration order, which is also the order the vertex-cut
/// partitioner assigned owners in — p.edge_owner(i) refers to the i-th edge
/// of that enumeration.
[[nodiscard]] GasLayout build_gas_layout(const graph::GraphStore& g,
                                         const partition::VertexCutPartition& p);

}  // namespace cyclops::gas
