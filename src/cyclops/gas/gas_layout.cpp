#include "cyclops/gas/gas_layout.hpp"

#include <algorithm>

#include "cyclops/common/check.hpp"
#include "cyclops/common/timer.hpp"

namespace cyclops::gas {

GasLayout build_gas_layout(const graph::GraphStore& g,
                           const partition::VertexCutPartition& p) {
  Timer timer;
  const VertexId n = g.num_vertices();
  const WorkerId workers = p.num_parts();
  GasLayout layout;
  layout.workers.resize(workers);
  layout.master_ref.assign(n, MirrorRef{});

  // Copy discovery: a worker holds a copy of v if it hosts an edge incident
  // to v, or if it is v's designated master.
  std::vector<std::vector<VertexId>> copy_sets(workers);
  {
    std::size_t e = 0;
    g.for_each_edge([&](VertexId src, VertexId dst, double) {
      const WorkerId w = p.edge_owner(e++);
      copy_sets[w].push_back(src);
      copy_sets[w].push_back(dst);
    });
  }
  for (VertexId v = 0; v < n; ++v) copy_sets[p.master(v)].push_back(v);

  std::vector<std::unordered_map<VertexId, Copy>> copy_of(workers);
  for (WorkerId w = 0; w < workers; ++w) {
    auto& set = copy_sets[w];
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    GasWorkerLayout& wl = layout.workers[w];
    wl.copy_globals = set;
    wl.is_master.assign(set.size(), 0);
    wl.master_of.assign(set.size(), MirrorRef{});
    copy_of[w].reserve(set.size());
    for (Copy c = 0; c < wl.num_copies(); ++c) {
      copy_of[w].emplace(set[c], c);
      if (p.master(set[c]) == w) {
        wl.is_master[c] = 1;
        layout.master_ref[set[c]] = MirrorRef{w, c};
      }
    }
    layout.total_copies += set.size();
  }

  // master_of per copy, and mirror lists per master.
  std::vector<std::vector<std::vector<MirrorRef>>> mirror_lists(workers);
  for (WorkerId w = 0; w < workers; ++w) {
    mirror_lists[w].resize(layout.workers[w].num_copies());
  }
  for (WorkerId w = 0; w < workers; ++w) {
    GasWorkerLayout& wl = layout.workers[w];
    for (Copy c = 0; c < wl.num_copies(); ++c) {
      const MirrorRef master = layout.master_ref[wl.copy_globals[c]];
      wl.master_of[c] = master;
      if (!wl.is_master[c]) {
        mirror_lists[master.worker][master.copy].push_back(MirrorRef{w, c});
      }
    }
  }
  for (WorkerId w = 0; w < workers; ++w) {
    GasWorkerLayout& wl = layout.workers[w];
    wl.mirror_offsets.assign(wl.num_copies() + 1, 0);
    for (Copy c = 0; c < wl.num_copies(); ++c) {
      wl.mirror_offsets[c + 1] = wl.mirror_offsets[c] + mirror_lists[w][c].size();
    }
    wl.mirrors.resize(wl.mirror_offsets.back());
    for (Copy c = 0; c < wl.num_copies(); ++c) {
      std::copy(mirror_lists[w][c].begin(), mirror_lists[w][c].end(),
                wl.mirrors.begin() + static_cast<std::ptrdiff_t>(wl.mirror_offsets[c]));
    }
  }

  // Local edges + per-copy in/out CSR.
  {
    std::size_t e = 0;
    g.for_each_edge([&](VertexId src, VertexId dst, double weight) {
      const WorkerId w = p.edge_owner(e++);
      GasWorkerLayout& wl = layout.workers[w];
      wl.edges.push_back(LocalEdge{copy_of[w].at(src), copy_of[w].at(dst), weight});
    });
  }
  for (WorkerId w = 0; w < workers; ++w) {
    GasWorkerLayout& wl = layout.workers[w];
    wl.in_offsets.assign(wl.num_copies() + 1, 0);
    wl.out_offsets.assign(wl.num_copies() + 1, 0);
    for (const LocalEdge& e : wl.edges) {
      ++wl.out_offsets[e.src + 1];
      ++wl.in_offsets[e.dst + 1];
    }
    for (Copy c = 0; c < wl.num_copies(); ++c) {
      wl.out_offsets[c + 1] += wl.out_offsets[c];
      wl.in_offsets[c + 1] += wl.in_offsets[c];
    }
    wl.out_edge_ids.resize(wl.edges.size());
    wl.in_edge_ids.resize(wl.edges.size());
    std::vector<std::size_t> out_cursor(wl.out_offsets.begin(), wl.out_offsets.end() - 1);
    std::vector<std::size_t> in_cursor(wl.in_offsets.begin(), wl.in_offsets.end() - 1);
    for (std::uint32_t e = 0; e < wl.edges.size(); ++e) {
      wl.out_edge_ids[out_cursor[wl.edges[e].src]++] = e;
      wl.in_edge_ids[in_cursor[wl.edges[e].dst]++] = e;
    }
  }
  layout.build_s = timer.elapsed_s();
  return layout;
}

}  // namespace cyclops::gas
