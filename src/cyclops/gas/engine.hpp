#pragma once
// PowerGraph-style synchronous GAS engine (§2.3): computation over a vertex
// cut is *distributed* across a vertex's copies, which costs the bidirectional
// master↔mirror message pattern the paper counts — per active mirror and
// iteration: gather request + gather partial (2), apply update (1), scatter
// request + activation reply (2). Contrast with Cyclops' single
// unidirectional sync message per replica.
//
// Program concept:
//   struct P {
//     using Value;   // replicated vertex data, POD
//     using Gather;  // gather accumulator, POD
//     Value init(VertexId v, std::size_t out_degree, std::size_t in_degree) const;
//     Gather gather_zero() const;
//     Gather gather(const Value& self, const Value& nbr, double w) const;  // in-edges
//     Gather merge(const Gather&, const Gather&) const;
//     Value apply(const Value& old, const Gather& acc) const;
//     bool scatter_activates(const Value& old, const Value& next) const;
//   };

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "cyclops/common/bitset.hpp"
#include "cyclops/common/check.hpp"
#include "cyclops/common/exec.hpp"
#include "cyclops/common/serialize.hpp"
#include "cyclops/common/thread_pool.hpp"
#include "cyclops/common/timer.hpp"
#include "cyclops/gas/gas_layout.hpp"
#include "cyclops/metrics/memory_model.hpp"
#include "cyclops/metrics/superstep_stats.hpp"
#include "cyclops/runtime/checkpoint.hpp"
#include "cyclops/runtime/exchange_accounting.hpp"
#include "cyclops/runtime/superstep_driver.hpp"
#include "cyclops/runtime/sync_channel.hpp"
#include "cyclops/sim/fabric.hpp"
#include "cyclops/sim/fault.hpp"
#include "cyclops/sim/message_log.hpp"
#include "cyclops/sim/sched.hpp"
#include "cyclops/sim/software_model.hpp"
#include "cyclops/verify/verify.hpp"

namespace cyclops::gas {

struct Config {
  sim::Topology topo;
  sim::CostModel cost = sim::CostModel::boost_cpp();
  sim::SoftwareModel software = sim::SoftwareModel::powergraph_cpp();
  std::size_t pool_threads = 1;
  Superstep max_iterations = 100;

  /// Fault schedule shared across engine incarnations of a recovering run
  /// (see sim/fault.hpp); null runs fault-free.
  std::shared_ptr<sim::FaultInjector> faults;

  /// Message log for log-based localized recovery, shared across engine
  /// incarnations like the injector (see sim/message_log.hpp); null disables
  /// logging. Requires `faults` — the log keys on the injector's clock.
  std::shared_ptr<sim::MessageLog> message_log;

  /// Seeded schedule explorer for the pool (see sim/sched.hpp); null keeps
  /// the native static schedule.
  std::shared_ptr<sim::ScheduleExplorer> schedule;

  [[nodiscard]] static Config workers(WorkerId w) {
    Config c;
    c.topo = sim::Topology{w, 1};
    return c;
  }
};

template <typename Program>
class Engine {
 public:
  using Value = typename Program::Value;
  using Gather = typename Program::Gather;
  static_assert(std::is_trivially_copyable_v<Value>);
  static_assert(std::is_trivially_copyable_v<Gather>);

  Engine(const graph::GraphStore& g, const partition::VertexCutPartition& part,
         Program program, Config config)
      : graph_(&g),
        program_(std::move(program)),
        config_(config),
        pool_(config.pool_threads),
        fabric_(config.topo, config.cost) {
    CYCLOPS_CHECK(part.num_parts() == config.topo.total_workers());
    if (config_.faults) {
      fabric_.install_faults(config_.faults.get());
      driver_.set_fault_injector(config_.faults.get());
    }
    if (config_.message_log) fabric_.install_log(config_.message_log.get());
    if (config_.schedule) pool_.set_task_order(config_.schedule.get());
    driver_.set_checker(&vcheck_);
    if (const std::uint64_t budget = graph_->message_budget_bytes(); budget > 0) {
      acct_.arm_spill(budget, config_.cost.disk_byte_us);
    }
    Timer ingress;
    layout_ = build_gas_layout(g, part);
    init_state();
    ingress_s_ = ingress.elapsed_s();
  }

  metrics::RunStats run() {
    metrics::RunStats stats = driver_.run(
        config_.max_iterations, acct_,
        [this](metrics::SuperstepStats& step) { return run_iteration(step); },
        [this](const metrics::SuperstepStats& step) {
          if (observer_) observer_(step);
        });
    stats.ingress_s = ingress_s_;
    return stats;
  }

  /// Per-iteration observer, same contract as the other engines.
  void set_observer(std::function<void(const metrics::SuperstepStats&)> fn) {
    observer_ = std::move(fn);
  }

  /// The engine's invariant checker (no-op object unless -DCYCLOPS_VERIFY).
  [[nodiscard]] verify::EngineChecker& verifier() noexcept { return vcheck_; }
  [[nodiscard]] const verify::EngineChecker& verifier() const noexcept { return vcheck_; }

  /// Memory behaviour in Table 2 terms: every mirror copy is replicated
  /// vertex state; churn is the bidirectional master<->mirror traffic.
  [[nodiscard]] metrics::MemoryReport memory_report() const noexcept {
    metrics::MemoryReport r;
    for (const GasWorkerLayout& wl : layout_.workers) {
      r.vertex_state_bytes += wl.edges.size() * sizeof(LocalEdge);
      for (Copy c = 0; c < wl.num_copies(); ++c) {
        if (wl.is_master[c]) {
          r.vertex_state_bytes += sizeof(Value);
        } else {
          r.replica_bytes += sizeof(Value);
        }
      }
    }
    const graph::StoreMemory sm = graph_->memory();
    r.store_resident_bytes = sm.resident_bytes;
    r.store_on_disk_bytes = sm.on_disk_bytes;
    r.vertex_state_bytes += sm.resident_bytes;
    r.peak_message_bytes = acct_.peak_buffered_bytes();
    if (const std::uint64_t budget = acct_.spill_budget_bytes(); budget > 0) {
      r.peak_message_bytes = std::min(r.peak_message_bytes, budget);
    }
    r.message_spill_bytes = acct_.spill_bytes();
    r.message_churn_bytes = acct_.churn_bytes();
    r.message_alloc_count = acct_.messages();
    return r;
  }

  /// Master values gathered into one globally-indexed vector.
  [[nodiscard]] std::vector<Value> values() const {
    std::vector<Value> out(graph_->num_vertices());
    for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
      const MirrorRef m = layout_.master_ref[v];
      out[v] = values_[m.worker][m.copy];
    }
    return out;
  }

  [[nodiscard]] const GasLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] const sim::Fabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] Superstep superstep() const noexcept { return driver_.superstep(); }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  // --- Checkpoint/restore parity with the BSP and Cyclops engines. At every
  // iteration boundary mirror values equal their master's (exchange 3 pushes
  // applied values), so the lightweight snapshot saves masters only and
  // restore regenerates mirrors; heavyweight persists every copy. The
  // snapshot is a per-machine frameset (checkpoint.hpp): each frame holds
  // the copies hosted on that machine's workers, so localized recovery
  // reloads one machine's frame. ---
  void checkpoint(ByteWriter& out,
                  runtime::CheckpointMode mode = runtime::CheckpointMode::kLightweight)
      const {
    runtime::write_frameset(out, config_.topo.machines,
                            [&](MachineId m, ByteWriter& frame) {
                              checkpoint_machine(m, frame, mode);
                            });
  }

  /// Throws SerializeError (recoverable) on truncated, corrupt, or
  /// wrong-shape snapshots; callers discard the engine on failure.
  void restore(ByteReader& in) {
    runtime::read_frameset(in, config_.topo.machines,
                           [&](MachineId m, ByteReader& frame) {
                             restore_machine(m, frame);
                           });
    resync_mirrors();
  }

  /// Arms a localized-recovery replay window (see runtime/recovery.hpp and
  /// core::Engine::arm_replay — same contract).
  void arm_replay(Superstep resume_at, Superstep until, MachineId dead,
                  std::uint64_t digest_seed) {
    fabric_.begin_replay(resume_at, until, dead);
    fabric_.seed_wire_digest(digest_seed);
    vcheck_.note_replay_window(resume_at, until);
  }

  /// Rebuilds every mirror's value from its master (mirrors are derived
  /// state at iteration boundaries and are not checkpointed in lightweight
  /// mode). Idempotent after a heavyweight restore.
  void resync_mirrors() {
    for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
      const GasWorkerLayout& wl = layout_.workers[w];
      for (Copy c = 0; c < wl.num_copies(); ++c) {
        if (wl.is_master[c]) continue;
        const MirrorRef m = wl.master_of[c];
        // Mirror slots are rewritten outside any superstep (kIdle), on the
        // driver thread; the stamp keeps the restore path inside both the
        // phase discipline and the happens-before model.
        vcheck_.on_replica_write(w, w, static_cast<std::uint32_t>(c), CYCLOPS_VLOC);
        values_[w][c] = values_[m.worker][m.copy];
        old_values_[w][c] = values_[w][c];
      }
    }
  }

  /// Arms periodic checkpointing through the shared driver hook.
  void set_checkpoint_manager(runtime::CheckpointManager* manager) {
    if (manager == nullptr) {
      driver_.set_checkpointer(nullptr, {});
      return;
    }
    driver_.set_checkpointer(
        manager, [this, manager](ByteWriter& out) { checkpoint(out, manager->mode()); });
  }

 private:
  // Machine m's workers are the contiguous range [m*W, (m+1)*W).
  [[nodiscard]] std::pair<WorkerId, WorkerId> machine_workers(MachineId m) const noexcept {
    const WorkerId per = config_.topo.workers_per_machine;
    return {m * per, (m + 1) * per};
  }

  void checkpoint_machine(MachineId m, ByteWriter& out,
                          runtime::CheckpointMode mode) const {
    runtime::write_engine_header(out, runtime::EngineTag::kGas, mode,
                                 graph_->num_vertices(), graph_->num_edges());
    out.write(driver_.superstep());
    const auto [begin, end] = machine_workers(m);
    for (WorkerId w = begin; w < end; ++w) {
      const GasWorkerLayout& wl = layout_.workers[w];
      if (mode == runtime::CheckpointMode::kHeavyweight) {
        out.write_vector(values_[w]);
      } else {
        std::vector<Value> masters;
        for (Copy c = 0; c < wl.num_copies(); ++c) {
          if (wl.is_master[c]) masters.push_back(values_[w][c]);
        }
        out.write_vector(masters);
      }
      std::vector<std::uint8_t> flags;
      for (Copy c = 0; c < wl.num_copies(); ++c) {
        if (wl.is_master[c]) {
          flags.push_back(next_active_masters_[w].test(c) ? 1 : 0);
        }
      }
      out.write_vector(flags);
    }
  }

  void restore_machine(MachineId m, ByteReader& in) {
    const runtime::CheckpointMode mode = runtime::read_engine_header(
        in, runtime::EngineTag::kGas, graph_->num_vertices(), graph_->num_edges());
    driver_.set_superstep(in.read<Superstep>());
    const auto [begin, end] = machine_workers(m);
    for (WorkerId w = begin; w < end; ++w) {
      const GasWorkerLayout& wl = layout_.workers[w];
      std::size_t num_masters = 0;
      for (Copy c = 0; c < wl.num_copies(); ++c) num_masters += wl.is_master[c] ? 1 : 0;
      const auto vals = in.read_vector<Value>();
      const std::size_t expect =
          mode == runtime::CheckpointMode::kHeavyweight ? wl.num_copies() : num_masters;
      if (vals.size() != expect) {
        throw SerializeError("gas snapshot: value count mismatch");
      }
      if (mode == runtime::CheckpointMode::kHeavyweight) {
        values_[w] = vals;
      } else {
        std::size_t i = 0;
        for (Copy c = 0; c < wl.num_copies(); ++c) {
          if (wl.is_master[c]) values_[w][c] = vals[i++];
        }
      }
      const auto flags = in.read_vector<std::uint8_t>();
      if (flags.size() != num_masters) {
        throw SerializeError("gas snapshot: activity flag count mismatch");
      }
      next_active_masters_[w].clear_all();
      std::size_t i = 0;
      for (Copy c = 0; c < wl.num_copies(); ++c) {
        if (!wl.is_master[c]) continue;
        if (flags[i++] & 1) next_active_masters_[w].set(c);
      }
      active_copies_[w].clear_all();
      activated_copies_[w].clear_all();
    }
  }

  struct ReqRecord {
    Copy copy;
  };
  struct AccRecord {
    Copy copy;
    Gather acc;
  };
  struct ValRecord {
    Copy copy;
    Value value;
  };
  using ReqChannel = runtime::SyncChannel<ReqRecord>;
  using AccChannel = runtime::SyncChannel<AccRecord>;
  using ValChannel = runtime::SyncChannel<ValRecord>;

  void init_state() {
    const WorkerId workers = config_.topo.total_workers();
    values_.resize(workers);
    partial_.resize(workers);
    gathered_.resize(workers);
    active_copies_.resize(workers);
    activated_copies_.resize(workers);
    next_active_masters_.resize(workers);
    old_values_.resize(workers);
    for (WorkerId w = 0; w < workers; ++w) {
      const GasWorkerLayout& wl = layout_.workers[w];
      values_[w].resize(wl.num_copies());
      old_values_[w].resize(wl.num_copies());
      partial_[w].resize(wl.num_copies());
      gathered_[w].resize(wl.num_copies());
      active_copies_[w].resize(wl.num_copies());
      activated_copies_[w].resize(wl.num_copies());
      next_active_masters_[w].resize(wl.num_copies());
      for (Copy c = 0; c < wl.num_copies(); ++c) {
        const VertexId v = wl.copy_globals[c];
        values_[w][c] = program_.init(v, graph_->out_degree(v), graph_->in_degree(v));
        if (wl.is_master[c]) next_active_masters_[w].set(c);  // all start active
      }
    }
    if constexpr (verify::kEnabled) {
      // Slot space per worker = its vertex copies; a mirror's owner is the
      // worker hosting the master copy.
      vcheck_.reset();
      for (WorkerId w = 0; w < workers; ++w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        std::vector<VertexId> slot_global(wl.num_copies());
        std::vector<WorkerId> slot_owner(wl.num_copies());
        std::uint32_t masters = 0;
        for (Copy c = 0; c < wl.num_copies(); ++c) {
          slot_global[c] = wl.copy_globals[c];
          if (wl.is_master[c]) {
            slot_owner[c] = w;
            ++masters;
          } else {
            slot_owner[c] = wl.master_of[c].worker;
          }
        }
        vcheck_.register_worker(w, masters, std::move(slot_global),
                                std::move(slot_owner));
      }
    }
  }

  bool run_iteration(metrics::SuperstepStats& step) {
    const WorkerId workers = config_.topo.total_workers();
    const sim::SoftwareModel& sw = config_.software;
    // Deterministic per-worker work accounting (see sim/software_model.hpp):
    // each lambda adds the operations it performed for its worker; phase time
    // is the max across workers.
    std::vector<double> cmp_us(workers, 0.0);
    std::vector<double> snd_us(workers, 0.0);

    // Promote next_active_masters -> active copies of masters.
    std::uint64_t active = 0;
    for (WorkerId w = 0; w < workers; ++w) {
      active_copies_[w].clear_all();
      activated_copies_[w].clear_all();
      next_active_masters_[w].for_each([&](std::size_t c) {
        active_copies_[w].set(c);
        ++active;
      });
      next_active_masters_[w].clear_all();
    }
    step.active_vertices = active;
    step.computed_vertices = active;
    if (active == 0) return true;

    // --- Exchange 1: gather requests master -> mirrors. ---
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kSend);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        auto req = ReqChannel::sender(fabric_, static_cast<WorkerId>(w), 0, &vcheck_,
                                      CYCLOPS_VLOC);
        active_copies_[w].for_each([&](std::size_t c) {
          if (!wl.is_master[c]) return;
          for (std::size_t m = wl.mirror_offsets[c]; m < wl.mirror_offsets[c + 1]; ++m) {
            req.send(wl.mirrors[m].worker, ReqRecord{wl.mirrors[m].copy});
            snd_us[w] += sw.msg_serialize_us;
          }
        });
      });
    }
    accumulate_exchange(step, workers);
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kExchange);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        ReqChannel::drain(fabric_, static_cast<WorkerId>(w), [&](const ReqRecord& rec) {
          active_copies_[w].set(rec.copy);
          snd_us[w] += sw.msg_deliver_us;
        });
      });
    }

    // --- Local gather over in-edges, then exchange 2: partials -> master. ---
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kCompute);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        active_copies_[w].for_each([&](std::size_t c) {
          Gather acc = program_.gather_zero();
          vcheck_.on_view_read(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                               static_cast<std::uint32_t>(c), CYCLOPS_VLOC);
          for (std::size_t e = wl.in_offsets[c]; e < wl.in_offsets[c + 1]; ++e) {
            const LocalEdge& edge = wl.edges[wl.in_edge_ids[e]];
            vcheck_.on_view_read(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                                 edge.src, CYCLOPS_VLOC);
            acc = program_.merge(
                acc, program_.gather(values_[w][c], values_[w][edge.src], edge.weight));
          }
          partial_[w][c] = acc;
          gathered_[w][c] = 1;
          cmp_us[w] += static_cast<double>(wl.in_offsets[c + 1] - wl.in_offsets[c]) *
                       sw.edge_op_us * sim::edge_op_weight<Program>();
        });
      });
    }
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kSend);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        auto acc = AccChannel::sender(fabric_, static_cast<WorkerId>(w), 0, &vcheck_,
                                      CYCLOPS_VLOC);
        active_copies_[w].for_each([&](std::size_t c) {
          if (wl.is_master[c]) return;
          const MirrorRef master = wl.master_of[c];
          acc.send(master.worker, AccRecord{master.copy, partial_[w][c]});
          snd_us[w] += sw.msg_serialize_us;
        });
      });
    }
    accumulate_exchange(step, workers);
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kExchange);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        AccChannel::drain(fabric_, static_cast<WorkerId>(w), [&](const AccRecord& rec) {
          partial_[w][rec.copy] = program_.merge(partial_[w][rec.copy], rec.acc);
          snd_us[w] += sw.msg_deliver_us;
        });
      });
    }

    // --- Apply on masters; exchange 3: new value + scatter request to
    // mirrors (two messages, matching the paper's 1 apply + 1 scatter-side
    // request). ---
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kSend);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        active_copies_[w].for_each([&](std::size_t c) {
          if (!wl.is_master[c]) return;
          old_values_[w][c] = values_[w][c];
          vcheck_.on_master_write(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                                  static_cast<std::uint32_t>(c), CYCLOPS_VLOC);
          values_[w][c] = program_.apply(values_[w][c], partial_[w][c]);
          cmp_us[w] += sw.vertex_op_us * sim::vertex_op_weight<Program>();
        });
      });
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        // Two record types interleave on the same lane (value then request per
        // mirror), matching the seed's wire layout byte-for-byte.
        auto val = ValChannel::sender(fabric_, static_cast<WorkerId>(w), 0, &vcheck_,
                                      CYCLOPS_VLOC);
        auto req = ReqChannel::sender(fabric_, static_cast<WorkerId>(w), 0, &vcheck_,
                                      CYCLOPS_VLOC);
        active_copies_[w].for_each([&](std::size_t c) {
          if (!wl.is_master[c]) return;
          for (std::size_t m = wl.mirror_offsets[c]; m < wl.mirror_offsets[c + 1]; ++m) {
            val.send(wl.mirrors[m].worker, ValRecord{wl.mirrors[m].copy, values_[w][c]});
            req.send(wl.mirrors[m].worker, ReqRecord{wl.mirrors[m].copy});
            snd_us[w] += 2.0 * sw.msg_serialize_us;
          }
        });
      });
    }
    accumulate_exchange(step, workers);
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kExchange);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        for (const sim::Package& pkg : fabric_.incoming(static_cast<WorkerId>(w))) {
          runtime::PackageReader reader(pkg);
          while (!reader.exhausted()) {
            const auto rec = reader.read<ValRecord>();
            old_values_[w][rec.copy] = values_[w][rec.copy];
            vcheck_.on_replica_write(static_cast<WorkerId>(w), static_cast<WorkerId>(w),
                                     rec.copy, CYCLOPS_VLOC);
            values_[w][rec.copy] = rec.value;
            (void)reader.read<ReqRecord>();  // scatter request
            snd_us[w] += 2.0 * sw.msg_deliver_us;
          }
        }
        fabric_.clear_incoming(static_cast<WorkerId>(w));
      });
    }

    // --- Scatter on every copy; exchange 4: activation replies to masters.
    // Scatter reads are deliberately uninstrumented: scatter compares old and
    // new values that apply/exchange-3 updated earlier this same iteration —
    // legal in GAS, but indistinguishable from a stale-view read to the
    // checker's single-superstep stamp model. ---
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kCompute);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        active_copies_[w].for_each([&](std::size_t c) {
          cmp_us[w] += sw.vertex_op_us;  // scatter predicate evaluation
          if (!program_.scatter_activates(old_values_[w][c], values_[w][c])) return;
          for (std::size_t e = wl.out_offsets[c]; e < wl.out_offsets[c + 1]; ++e) {
            activated_copies_[w].set(wl.edges[wl.out_edge_ids[e]].dst);
            cmp_us[w] += sw.edge_op_us;
          }
        });
      });
    }
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kSend);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        const GasWorkerLayout& wl = layout_.workers[w];
        auto req = ReqChannel::sender(fabric_, static_cast<WorkerId>(w), 0, &vcheck_,
                                      CYCLOPS_VLOC);
        activated_copies_[w].for_each([&](std::size_t c) {
          if (wl.is_master[c]) {
            next_active_masters_[w].set(c);
          } else {
            const MirrorRef master = wl.master_of[c];
            req.send(master.worker, ReqRecord{master.copy});
            snd_us[w] += sw.msg_serialize_us;
          }
        });
      });
    }
    accumulate_exchange(step, workers);
    {
      verify::PhaseScope vps(vcheck_, verify::Phase::kExchange);
      pool_.parallel_tasks(workers, [&](std::size_t w) {
        ReqChannel::drain(fabric_, static_cast<WorkerId>(w), [&](const ReqRecord& rec) {
          next_active_masters_[w].set(rec.copy);
          snd_us[w] += sw.msg_deliver_us;
        });
      });
    }

    double cmp_max = 0, snd_max = 0;
    for (WorkerId w = 0; w < workers; ++w) {
      cmp_max = std::max(cmp_max, cmp_us[w]);
      snd_max = std::max(snd_max, snd_us[w]);
    }
    step.phases.cmp_s = cmp_max * 1e-6;
    step.phases.snd_s = snd_max * 1e-6;
    bool any_next = false;
    for (WorkerId w = 0; w < workers && !any_next; ++w) {
      any_next = next_active_masters_[w].any();
    }
    return !any_next;
  }

  void accumulate_exchange(metrics::SuperstepStats& step, WorkerId workers) {
    const sim::ExchangeStats x = fabric_.exchange(workers);
    step.net += x.net;
    step.modeled_comm_s += x.modeled_comm_s;
    step.modeled_barrier_s += x.modeled_barrier_s;
    acct_.note_exchange(x);
    acct_.note_net(x.net);
  }

  const graph::GraphStore* graph_;
  Program program_;
  Config config_;
  ThreadPool pool_;
  sim::Fabric fabric_;
  GasLayout layout_;

  std::vector<std::vector<Value>> values_;      // [worker][copy]
  std::vector<std::vector<Value>> old_values_;  // previous value per copy
  std::vector<std::vector<Gather>> partial_;
  std::vector<std::vector<std::uint8_t>> gathered_;
  std::vector<DenseBitset> active_copies_;
  std::vector<DenseBitset> activated_copies_;
  std::vector<DenseBitset> next_active_masters_;

  runtime::SuperstepDriver driver_;
  runtime::ExchangeAccounting acct_;
  verify::EngineChecker vcheck_;
  double ingress_s_ = 0;
  std::function<void(const metrics::SuperstepStats&)> observer_;
};

}  // namespace cyclops::gas
