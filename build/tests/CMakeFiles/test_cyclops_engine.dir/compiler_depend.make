# Empty compiler generated dependencies file for test_cyclops_engine.
# This may be replaced when dependencies are built.
