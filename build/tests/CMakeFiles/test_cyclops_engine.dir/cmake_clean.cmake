file(REMOVE_RECURSE
  "CMakeFiles/test_cyclops_engine.dir/test_cyclops_engine.cpp.o"
  "CMakeFiles/test_cyclops_engine.dir/test_cyclops_engine.cpp.o.d"
  "test_cyclops_engine"
  "test_cyclops_engine.pdb"
  "test_cyclops_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cyclops_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
