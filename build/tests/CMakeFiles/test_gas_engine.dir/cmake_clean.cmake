file(REMOVE_RECURSE
  "CMakeFiles/test_gas_engine.dir/test_gas_engine.cpp.o"
  "CMakeFiles/test_gas_engine.dir/test_gas_engine.cpp.o.d"
  "test_gas_engine"
  "test_gas_engine.pdb"
  "test_gas_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gas_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
