file(REMOVE_RECURSE
  "CMakeFiles/test_vertex_cut.dir/test_vertex_cut.cpp.o"
  "CMakeFiles/test_vertex_cut.dir/test_vertex_cut.cpp.o.d"
  "test_vertex_cut"
  "test_vertex_cut.pdb"
  "test_vertex_cut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vertex_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
