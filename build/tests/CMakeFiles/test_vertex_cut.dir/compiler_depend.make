# Empty compiler generated dependencies file for test_vertex_cut.
# This may be replaced when dependencies are built.
