# Empty compiler generated dependencies file for test_bsp_engine.
# This may be replaced when dependencies are built.
