# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_vertex_cut[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_bsp_engine[1]_include.cmake")
include("/root/repo/build/tests/test_cyclops_engine[1]_include.cmake")
include("/root/repo/build/tests/test_gas_engine[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_mutation[1]_include.cmake")
include("/root/repo/build/tests/test_fault_tolerance[1]_include.cmake")
include("/root/repo/build/tests/test_binary_io[1]_include.cmake")
include("/root/repo/build/tests/test_cc[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
