# Empty dependencies file for communities.
# This may be replaced when dependencies are built.
