# Empty dependencies file for recommend_als.
# This may be replaced when dependencies are built.
