file(REMOVE_RECURSE
  "CMakeFiles/recommend_als.dir/recommend_als.cpp.o"
  "CMakeFiles/recommend_als.dir/recommend_als.cpp.o.d"
  "recommend_als"
  "recommend_als.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommend_als.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
