# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sssp_roadnet "/root/repo/build/examples/sssp_roadnet")
set_tests_properties(example_sssp_roadnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_recommend_als "/root/repo/build/examples/recommend_als")
set_tests_properties(example_recommend_als PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_communities "/root/repo/build/examples/communities")
set_tests_properties(example_communities PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_portability "/root/repo/build/examples/portability")
set_tests_properties(example_portability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_graph "/root/repo/build/examples/dynamic_graph")
set_tests_properties(example_dynamic_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
