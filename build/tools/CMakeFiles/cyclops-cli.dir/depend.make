# Empty dependencies file for cyclops-cli.
# This may be replaced when dependencies are built.
