file(REMOVE_RECURSE
  "CMakeFiles/cyclops-cli.dir/cyclops_cli.cpp.o"
  "CMakeFiles/cyclops-cli.dir/cyclops_cli.cpp.o.d"
  "cyclops-cli"
  "cyclops-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
