file(REMOVE_RECURSE
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/als.cpp.o"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/als.cpp.o.d"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/cc.cpp.o"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/cc.cpp.o.d"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/cd.cpp.o"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/cd.cpp.o.d"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/datasets.cpp.o"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/datasets.cpp.o.d"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/pagerank.cpp.o"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/pagerank.cpp.o.d"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/sssp.cpp.o"
  "CMakeFiles/cyclops_algorithms.dir/cyclops/algorithms/sssp.cpp.o.d"
  "libcyclops_algorithms.a"
  "libcyclops_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
