# Empty compiler generated dependencies file for cyclops_algorithms.
# This may be replaced when dependencies are built.
