file(REMOVE_RECURSE
  "libcyclops_algorithms.a"
)
