# Empty dependencies file for cyclops_metrics.
# This may be replaced when dependencies are built.
