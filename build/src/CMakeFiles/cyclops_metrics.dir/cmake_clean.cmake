file(REMOVE_RECURSE
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/convergence.cpp.o"
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/convergence.cpp.o.d"
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/memory_model.cpp.o"
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/memory_model.cpp.o.d"
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/reporter.cpp.o"
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/reporter.cpp.o.d"
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/superstep_stats.cpp.o"
  "CMakeFiles/cyclops_metrics.dir/cyclops/metrics/superstep_stats.cpp.o.d"
  "libcyclops_metrics.a"
  "libcyclops_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
