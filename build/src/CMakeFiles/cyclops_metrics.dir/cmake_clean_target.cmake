file(REMOVE_RECURSE
  "libcyclops_metrics.a"
)
