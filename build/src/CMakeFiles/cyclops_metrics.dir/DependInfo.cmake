
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cyclops/metrics/convergence.cpp" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/convergence.cpp.o" "gcc" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/convergence.cpp.o.d"
  "/root/repo/src/cyclops/metrics/memory_model.cpp" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/memory_model.cpp.o" "gcc" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/memory_model.cpp.o.d"
  "/root/repo/src/cyclops/metrics/reporter.cpp" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/reporter.cpp.o" "gcc" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/reporter.cpp.o.d"
  "/root/repo/src/cyclops/metrics/superstep_stats.cpp" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/superstep_stats.cpp.o" "gcc" "src/CMakeFiles/cyclops_metrics.dir/cyclops/metrics/superstep_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cyclops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
