
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cyclops/sim/cost_model.cpp" "src/CMakeFiles/cyclops_sim.dir/cyclops/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/cyclops_sim.dir/cyclops/sim/cost_model.cpp.o.d"
  "/root/repo/src/cyclops/sim/counters.cpp" "src/CMakeFiles/cyclops_sim.dir/cyclops/sim/counters.cpp.o" "gcc" "src/CMakeFiles/cyclops_sim.dir/cyclops/sim/counters.cpp.o.d"
  "/root/repo/src/cyclops/sim/fabric.cpp" "src/CMakeFiles/cyclops_sim.dir/cyclops/sim/fabric.cpp.o" "gcc" "src/CMakeFiles/cyclops_sim.dir/cyclops/sim/fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cyclops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
