# Empty dependencies file for cyclops_sim.
# This may be replaced when dependencies are built.
