# Empty dependencies file for cyclops_common.
# This may be replaced when dependencies are built.
