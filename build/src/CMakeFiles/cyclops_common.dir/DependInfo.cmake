
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cyclops/common/exec.cpp" "src/CMakeFiles/cyclops_common.dir/cyclops/common/exec.cpp.o" "gcc" "src/CMakeFiles/cyclops_common.dir/cyclops/common/exec.cpp.o.d"
  "/root/repo/src/cyclops/common/log.cpp" "src/CMakeFiles/cyclops_common.dir/cyclops/common/log.cpp.o" "gcc" "src/CMakeFiles/cyclops_common.dir/cyclops/common/log.cpp.o.d"
  "/root/repo/src/cyclops/common/stats.cpp" "src/CMakeFiles/cyclops_common.dir/cyclops/common/stats.cpp.o" "gcc" "src/CMakeFiles/cyclops_common.dir/cyclops/common/stats.cpp.o.d"
  "/root/repo/src/cyclops/common/table.cpp" "src/CMakeFiles/cyclops_common.dir/cyclops/common/table.cpp.o" "gcc" "src/CMakeFiles/cyclops_common.dir/cyclops/common/table.cpp.o.d"
  "/root/repo/src/cyclops/common/thread_pool.cpp" "src/CMakeFiles/cyclops_common.dir/cyclops/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/cyclops_common.dir/cyclops/common/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
