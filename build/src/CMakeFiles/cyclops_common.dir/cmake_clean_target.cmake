file(REMOVE_RECURSE
  "libcyclops_common.a"
)
