file(REMOVE_RECURSE
  "CMakeFiles/cyclops_common.dir/cyclops/common/exec.cpp.o"
  "CMakeFiles/cyclops_common.dir/cyclops/common/exec.cpp.o.d"
  "CMakeFiles/cyclops_common.dir/cyclops/common/log.cpp.o"
  "CMakeFiles/cyclops_common.dir/cyclops/common/log.cpp.o.d"
  "CMakeFiles/cyclops_common.dir/cyclops/common/stats.cpp.o"
  "CMakeFiles/cyclops_common.dir/cyclops/common/stats.cpp.o.d"
  "CMakeFiles/cyclops_common.dir/cyclops/common/table.cpp.o"
  "CMakeFiles/cyclops_common.dir/cyclops/common/table.cpp.o.d"
  "CMakeFiles/cyclops_common.dir/cyclops/common/thread_pool.cpp.o"
  "CMakeFiles/cyclops_common.dir/cyclops/common/thread_pool.cpp.o.d"
  "libcyclops_common.a"
  "libcyclops_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
