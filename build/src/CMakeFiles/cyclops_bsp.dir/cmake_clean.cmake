file(REMOVE_RECURSE
  "CMakeFiles/cyclops_bsp.dir/cyclops/bsp/engine_base.cpp.o"
  "CMakeFiles/cyclops_bsp.dir/cyclops/bsp/engine_base.cpp.o.d"
  "libcyclops_bsp.a"
  "libcyclops_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
