file(REMOVE_RECURSE
  "libcyclops_bsp.a"
)
