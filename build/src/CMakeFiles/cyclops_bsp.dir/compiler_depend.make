# Empty compiler generated dependencies file for cyclops_bsp.
# This may be replaced when dependencies are built.
