
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cyclops/graph/csr.cpp" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/csr.cpp.o" "gcc" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/csr.cpp.o.d"
  "/root/repo/src/cyclops/graph/edge_list.cpp" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/edge_list.cpp.o.d"
  "/root/repo/src/cyclops/graph/generators.cpp" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/generators.cpp.o" "gcc" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/generators.cpp.o.d"
  "/root/repo/src/cyclops/graph/gstats.cpp" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/gstats.cpp.o" "gcc" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/gstats.cpp.o.d"
  "/root/repo/src/cyclops/graph/loader.cpp" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/loader.cpp.o" "gcc" "src/CMakeFiles/cyclops_graph.dir/cyclops/graph/loader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cyclops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
