# Empty compiler generated dependencies file for cyclops_graph.
# This may be replaced when dependencies are built.
