file(REMOVE_RECURSE
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/csr.cpp.o"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/csr.cpp.o.d"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/edge_list.cpp.o"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/edge_list.cpp.o.d"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/generators.cpp.o"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/generators.cpp.o.d"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/gstats.cpp.o"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/gstats.cpp.o.d"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/loader.cpp.o"
  "CMakeFiles/cyclops_graph.dir/cyclops/graph/loader.cpp.o.d"
  "libcyclops_graph.a"
  "libcyclops_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
