file(REMOVE_RECURSE
  "libcyclops_graph.a"
)
