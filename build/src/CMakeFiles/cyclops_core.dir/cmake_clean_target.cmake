file(REMOVE_RECURSE
  "libcyclops_core.a"
)
