# Empty dependencies file for cyclops_core.
# This may be replaced when dependencies are built.
