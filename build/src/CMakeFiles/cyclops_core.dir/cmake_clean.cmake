file(REMOVE_RECURSE
  "CMakeFiles/cyclops_core.dir/cyclops/core/engine_base.cpp.o"
  "CMakeFiles/cyclops_core.dir/cyclops/core/engine_base.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/cyclops/core/layout.cpp.o"
  "CMakeFiles/cyclops_core.dir/cyclops/core/layout.cpp.o.d"
  "CMakeFiles/cyclops_core.dir/cyclops/core/mutation.cpp.o"
  "CMakeFiles/cyclops_core.dir/cyclops/core/mutation.cpp.o.d"
  "libcyclops_core.a"
  "libcyclops_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
