# Empty dependencies file for cyclops_partition.
# This may be replaced when dependencies are built.
