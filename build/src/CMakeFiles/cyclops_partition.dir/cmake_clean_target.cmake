file(REMOVE_RECURSE
  "libcyclops_partition.a"
)
