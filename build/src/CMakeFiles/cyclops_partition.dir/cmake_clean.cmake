file(REMOVE_RECURSE
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/hash.cpp.o"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/hash.cpp.o.d"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/ldg.cpp.o"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/ldg.cpp.o.d"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/multilevel.cpp.o"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/multilevel.cpp.o.d"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/partition.cpp.o"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/partition.cpp.o.d"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/vertex_cut.cpp.o"
  "CMakeFiles/cyclops_partition.dir/cyclops/partition/vertex_cut.cpp.o.d"
  "libcyclops_partition.a"
  "libcyclops_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
