
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cyclops/partition/hash.cpp" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/hash.cpp.o" "gcc" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/hash.cpp.o.d"
  "/root/repo/src/cyclops/partition/ldg.cpp" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/ldg.cpp.o" "gcc" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/ldg.cpp.o.d"
  "/root/repo/src/cyclops/partition/multilevel.cpp" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/multilevel.cpp.o" "gcc" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/multilevel.cpp.o.d"
  "/root/repo/src/cyclops/partition/partition.cpp" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/partition.cpp.o" "gcc" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/partition.cpp.o.d"
  "/root/repo/src/cyclops/partition/vertex_cut.cpp" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/vertex_cut.cpp.o" "gcc" "src/CMakeFiles/cyclops_partition.dir/cyclops/partition/vertex_cut.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cyclops_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cyclops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
