# Empty compiler generated dependencies file for cyclops_gas.
# This may be replaced when dependencies are built.
