file(REMOVE_RECURSE
  "CMakeFiles/cyclops_gas.dir/cyclops/gas/gas_layout.cpp.o"
  "CMakeFiles/cyclops_gas.dir/cyclops/gas/gas_layout.cpp.o.d"
  "libcyclops_gas.a"
  "libcyclops_gas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclops_gas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
