file(REMOVE_RECURSE
  "libcyclops_gas.a"
)
