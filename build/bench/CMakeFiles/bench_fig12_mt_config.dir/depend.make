# Empty dependencies file for bench_fig12_mt_config.
# This may be replaced when dependencies are built.
