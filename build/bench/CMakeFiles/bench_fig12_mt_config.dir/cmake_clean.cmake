file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mt_config.dir/bench_fig12_mt_config.cpp.o"
  "CMakeFiles/bench_fig12_mt_config.dir/bench_fig12_mt_config.cpp.o.d"
  "bench_fig12_mt_config"
  "bench_fig12_mt_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mt_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
