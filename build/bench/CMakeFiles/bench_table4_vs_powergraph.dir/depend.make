# Empty dependencies file for bench_table4_vs_powergraph.
# This may be replaced when dependencies are built.
