file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_vs_powergraph.dir/bench_table4_vs_powergraph.cpp.o"
  "CMakeFiles/bench_table4_vs_powergraph.dir/bench_table4_vs_powergraph.cpp.o.d"
  "bench_table4_vs_powergraph"
  "bench_table4_vs_powergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_vs_powergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
