file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ingress_scale_conv.dir/bench_fig13_ingress_scale_conv.cpp.o"
  "CMakeFiles/bench_fig13_ingress_scale_conv.dir/bench_fig13_ingress_scale_conv.cpp.o.d"
  "bench_fig13_ingress_scale_conv"
  "bench_fig13_ingress_scale_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ingress_scale_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
