# Empty compiler generated dependencies file for bench_fig13_ingress_scale_conv.
# This may be replaced when dependencies are built.
