// Community detection by label propagation (§6.1) on a planted-partition
// graph: runs CD on the Cyclops engine, then evaluates how well the found
// labels recover the planted communities, and shows the dynamic-computation
// advantage (active vertices collapse once communities lock in).

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "cyclops/algorithms/cd.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/multilevel.hpp"

int main() {
  using namespace cyclops;

  graph::gen::CommunitySpec spec;
  spec.communities = 24;
  spec.group_size = 80;
  spec.degree = 10;
  spec.p_internal = 0.9;
  const graph::Csr g = graph::Csr::build(graph::gen::planted_communities(spec, 5));
  std::printf("social graph: %u members, %zu ties, %u planted communities\n",
              g.num_vertices(), g.num_edges() / 2, spec.communities);

  algo::CdCyclops cd;
  core::Config config = core::Config::cyclops(4, 2);
  config.max_supersteps = 60;
  core::Engine<algo::CdCyclops> engine(
      g, partition::MultilevelPartitioner{}.partition(g, 8), cd, config);
  const auto stats = engine.run();
  const auto labels = engine.values();

  std::printf("converged after %zu supersteps; active vertices per superstep:",
              stats.supersteps.size());
  for (const auto& s : stats.supersteps) {
    std::printf(" %llu", static_cast<unsigned long long>(s.active_vertices));
  }
  std::puts("");

  // Quality 1: fraction of edges whose endpoints agree.
  std::printf("edge label agreement: %.1f%%\n", 100.0 * algo::label_agreement(g, labels));

  // Quality 2: per planted community, the share captured by its dominant label.
  double purity_sum = 0;
  std::size_t distinct = 0;
  std::map<algo::Label, std::size_t> global_sizes;
  for (VertexId c = 0; c < spec.communities; ++c) {
    std::map<algo::Label, std::size_t> counts;
    for (VertexId v = c * spec.group_size; v < (c + 1) * spec.group_size; ++v) {
      ++counts[labels[v]];
      ++global_sizes[labels[v]];
    }
    std::size_t best = 0;
    for (const auto& [label, n] : counts) best = std::max(best, n);
    purity_sum += static_cast<double>(best) / spec.group_size;
  }
  distinct = global_sizes.size();
  std::printf("mean community purity: %.1f%% across %zu detected labels\n",
              100.0 * purity_sum / spec.communities, distinct);

  // Largest detected communities.
  std::vector<std::pair<std::size_t, algo::Label>> sizes;
  for (const auto& [label, n] : global_sizes) sizes.emplace_back(n, label);
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("largest communities:");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sizes.size()); ++i) {
    std::printf(" label %u (%zu members)", sizes[i].second, sizes[i].first);
  }
  std::puts("");
  return 0;
}
