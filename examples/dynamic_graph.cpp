// Dynamic graph processing — exercises the topology-mutation extension
// (paper §8 future work): a navigation service keeps shortest paths from a
// depot over a road network while roads open and close between epochs. Each
// epoch applies a TopologyDelta, rebuilds the distributed immutable view
// (replicas are derived state), re-activates the touched vertices, and
// continues the SSSP computation incrementally.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/hash.hpp"

int main() {
  using namespace cyclops;

  graph::gen::RoadSpec spec;
  spec.rows = 40;
  spec.cols = 40;
  spec.shortcut_fraction = 0.0;
  graph::EdgeList edges = graph::gen::road_grid(spec, 77);
  graph::Csr g = graph::Csr::build(edges);
  const VertexId depot = 0;
  const VertexId mall = g.num_vertices() - 1;  // far corner
  std::printf("road network: %u intersections, %zu segments; depot=%u, mall=%u\n",
              g.num_vertices(), g.num_edges() / 2, depot, mall);

  algo::SsspCyclops sssp;
  sssp.source = depot;
  core::Config cfg = core::Config::cyclops(4, 2);
  cfg.max_supersteps = 4000;
  core::Engine<algo::SsspCyclops> engine(
      g, partition::HashPartitioner{}.partition(g, 8), sssp, cfg);
  (void)engine.run();
  std::printf("epoch 0: depot->mall = %.3f\n", engine.values()[mall]);

  // This example doubles as an asserting end-to-end test: after every
  // mutation epoch the incrementally-updated distances must match a
  // from-scratch Dijkstra run exactly, and each new road must actually
  // shorten the depot->mall commute.
  bool ok = true;
  double prev_mall = engine.values()[mall];

  struct Epoch {
    const char* what;
    core::TopologyDelta delta;
  };
  std::vector<Epoch> epochs;
  {
    Epoch e;
    e.what = "new highway depot -> midtown";
    e.delta.add_edge(depot, 20 * 40 + 20, 1.0);
    e.delta.add_edge(20 * 40 + 20, depot, 1.0);
    epochs.push_back(std::move(e));
  }
  {
    Epoch e;
    e.what = "express bypass midtown -> mall district";
    e.delta.add_edge(20 * 40 + 20, 39 * 40 + 38, 1.5);
    e.delta.add_edge(39 * 40 + 38, 20 * 40 + 20, 1.5);
    epochs.push_back(std::move(e));
  }

  // Keep all generations alive: the engine references the latest graph and
  // partition by pointer (and `g` backs the initial epoch).
  std::vector<std::unique_ptr<graph::Csr>> graphs;
  std::vector<std::unique_ptr<partition::EdgeCutPartition>> partitions;

  unsigned epoch_no = 1;
  for (auto& epoch : epochs) {
    epoch.delta.apply(edges);
    graphs.push_back(std::make_unique<graph::Csr>(graph::Csr::build(edges)));
    partitions.push_back(std::make_unique<partition::EdgeCutPartition>(
        partition::HashPartitioner{}.partition(*graphs.back(), 8)));
    const double rebuild_s = engine.rebuild(*graphs.back(), *partitions.back());
    for (VertexId v : epoch.delta.touched_vertices()) engine.activate(v);
    engine.extend_max_supersteps(4000);
    const auto stats = engine.run();

    const auto reference = algo::sssp_reference(*graphs.back(), depot);
    const auto values = engine.values();
    double max_err = 0;
    std::size_t finite_mismatches = 0;
    std::size_t recomputed = 0;
    for (const auto& s : stats.supersteps) recomputed += s.computed_vertices;
    for (VertexId v = 0; v < graphs.back()->num_vertices(); ++v) {
      if (std::isfinite(reference[v]) != std::isfinite(values[v])) {
        ++finite_mismatches;
      } else if (std::isfinite(reference[v])) {
        max_err = std::max(max_err, std::abs(values[v] - reference[v]));
      }
    }
    std::printf(
        "epoch %u (%s): depot->mall = %.3f | rebuild %.3fs, %zu incremental "
        "compute()s (%u intersections total), max err vs Dijkstra %.2g\n",
        epoch_no, epoch.what, values[mall], rebuild_s, recomputed,
        graphs.back()->num_vertices(), max_err);
    if (finite_mismatches != 0) {
      std::printf("FAIL: epoch %u reachability disagrees with Dijkstra on %zu "
                  "intersections\n",
                  epoch_no, finite_mismatches);
      ok = false;
    }
    if (max_err > 0) {
      std::printf("FAIL: epoch %u incremental distances drifted %.3g from "
                  "Dijkstra\n",
                  epoch_no, max_err);
      ok = false;
    }
    if (!(values[mall] < prev_mall)) {
      std::printf("FAIL: epoch %u (%s) did not shorten depot->mall "
                  "(%.3f -> %.3f)\n",
                  epoch_no, epoch.what, prev_mall, values[mall]);
      ok = false;
    }
    prev_mall = values[mall];
    ++epoch_no;
  }
  if (!ok) return 1;
  std::puts("distances stay exact after every mutation epoch; only the wavefront "
            "downstream of each change recomputes.");
  return 0;
}
