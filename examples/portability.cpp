// Portability demo — the §6.1 claim that algorithms move between Hama and
// Cyclops with a handful of changed lines. The two PageRank programs below
// are shown side by side in the paper (Figures 2 and 5); this example runs
// the same computation through the BSP engine, the Cyclops engine, CyclopsMT
// and the PowerGraph-style GAS engine, verifies all four agree, and prints
// the communication profile that separates them.

#include <cmath>
#include <cstdio>

#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/table.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/vertex_cut.hpp"

int main() {
  using namespace cyclops;

  const graph::EdgeList edges = graph::gen::rmat(13, 40000, 11);
  const graph::Csr g = graph::Csr::build(edges);
  const WorkerId workers = 8;
  const auto edge_cut = partition::HashPartitioner{}.partition(g, workers);
  const double epsilon = 1e-10;

  Table table({"engine", "supersteps", "messages", "msgs/superstep", "total time(s)",
               "max |rank diff|"});
  const auto reference = algo::pagerank_reference(g);
  auto diff = [&](const std::vector<double>& values) {
    double m = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      m = std::max(m, std::abs(values[v] - reference[v]));
    }
    return m;
  };
  auto add_row = [&](const char* name, const metrics::RunStats& stats, double max_diff) {
    const auto net = stats.net_totals();
    table.add_row({name, Table::fmt_int(static_cast<long long>(stats.supersteps.size())),
                   Table::fmt_int(static_cast<long long>(net.total_messages())),
                   Table::fmt_int(static_cast<long long>(
                       net.total_messages() / std::max<std::size_t>(1, stats.supersteps.size()))),
                   Table::fmt(stats.total_time_s(), 3), Table::fmt(max_diff, 12)});
  };

  {
    algo::PageRankBsp prog;  // Figure 2: push messages + global aggregator
    prog.epsilon = epsilon;
    bsp::Config cfg = bsp::Config::workers(workers);
    cfg.max_supersteps = 200;
    bsp::Engine<algo::PageRankBsp> engine(g, edge_cut, prog, cfg);
    const auto stats = engine.run();
    add_row("Hama (BSP)", stats,
            diff(std::vector<double>(engine.values().begin(), engine.values().end())));
  }
  {
    algo::PageRankCyclops prog;  // Figure 5: pull from the immutable view
    prog.epsilon = epsilon;
    core::Config cfg = core::Config::cyclops(4, 2);
    cfg.max_supersteps = 200;
    core::Engine<algo::PageRankCyclops> engine(g, edge_cut, prog, cfg);
    const auto stats = engine.run();
    add_row("Cyclops", stats, diff(engine.values()));
  }
  {
    algo::PageRankCyclops prog;  // identical program, hierarchical execution
    prog.epsilon = epsilon;
    core::Config cfg = core::Config::cyclops_mt(4, 2, 2);
    cfg.max_supersteps = 200;
    core::Engine<algo::PageRankCyclops> engine(
        g, partition::HashPartitioner{}.partition(g, 4), prog, cfg);
    const auto stats = engine.run();
    add_row("CyclopsMT", stats, diff(engine.values()));
  }
  {
    algo::PageRankGas prog;  // gather/apply/scatter over a vertex cut
    prog.num_vertices = g.num_vertices();
    prog.epsilon = epsilon;
    gas::Config cfg = gas::Config::workers(workers);
    cfg.max_iterations = 200;
    // Random vertex-cut, matching the paper's hash-based comparison where
    // both systems see similar replication factors (Table 4).
    gas::Engine<algo::PageRankGas> engine(
        g, partition::RandomVertexCut{}.partition(g, workers), prog, cfg);
    const auto stats = engine.run();
    const auto values = engine.values();
    std::vector<double> ranks(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) ranks[v] = values[v].rank;
    add_row("PowerGraph (GAS)", stats, diff(ranks));
  }

  std::printf("graph: %u vertices, %zu edges, %u workers\n", g.num_vertices(),
              g.num_edges(), workers);
  std::fputs(table.render("One PageRank, four engines").c_str(), stdout);
  std::puts("The compute bodies differ by a handful of lines (paper: 8 SLOC for PR);");
  std::puts("the engines differ by an order of magnitude in messages.");
  return 0;
}
