// Road-network shortest paths: the paper's push-mode workload (§6.1). Builds
// a weighted road grid (log-normal weights, as the paper synthesizes for
// RoadCA), runs SSSP on both the Hama-style BSP engine and Cyclops, checks
// both against Dijkstra, and contrasts their communication behaviour.

#include <cmath>
#include <cstdio>

#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/metrics/reporter.hpp"
#include "cyclops/partition/multilevel.hpp"

int main() {
  using namespace cyclops;

  graph::gen::RoadSpec spec;
  spec.rows = 60;
  spec.cols = 60;
  spec.shortcut_fraction = 0.01;  // a few highways
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 2014));
  const VertexId source = 0;
  std::printf("road network: %u intersections, %zu road segments\n", g.num_vertices(),
              g.num_edges() / 2);

  // A road network is exactly where a good partitioner shines — use the
  // multilevel (Metis-like) edge cut.
  const WorkerId workers = 8;
  const auto partition = partition::MultilevelPartitioner{}.partition(g, workers);

  // --- Hama-style BSP ---
  algo::SsspBsp bsp_prog;
  bsp_prog.source = source;
  bsp::Config bsp_cfg = bsp::Config::workers(workers);
  bsp_cfg.max_supersteps = 2000;
  bsp_cfg.use_combiner = true;  // min-combiner, as a tuned Hama deployment would
  bsp::Engine<algo::SsspBsp> bsp_engine(g, partition, bsp_prog, bsp_cfg);
  const auto bsp_stats = bsp_engine.run();

  // --- Cyclops ---
  algo::SsspCyclops cy_prog;
  cy_prog.source = source;
  core::Config cy_cfg = core::Config::cyclops(4, 2);
  cy_cfg.max_supersteps = 2000;
  core::Engine<algo::SsspCyclops> cy_engine(g, partition, cy_prog, cy_cfg);
  const auto cy_stats = cy_engine.run();

  // --- Validate against Dijkstra. ---
  const auto reference = algo::sssp_reference(g, source);
  const auto cy_values = cy_engine.values();
  double max_err = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!std::isfinite(reference[v])) continue;
    max_err = std::max({max_err, std::abs(bsp_engine.values()[v] - reference[v]),
                        std::abs(cy_values[v] - reference[v])});
  }
  std::printf("max deviation from Dijkstra: %.3g (both engines)\n", max_err);

  std::printf("%s\n", metrics::run_summary("sssp/bsp    ", bsp_stats).c_str());
  std::printf("%s\n", metrics::run_summary("sssp/cyclops", cy_stats).c_str());
  const double far = reference[g.num_vertices() - 1];
  std::printf("distance to far corner: %.3f over %zu supersteps of wavefront\n", far,
              cy_stats.supersteps.size());
  return max_err < 1e-9 ? 0 : 1;
}
