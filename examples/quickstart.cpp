// Quickstart: build a graph, partition it, run PageRank on the Cyclops
// engine, and print the top-ranked vertices.
//
//   $ ./quickstart [path/to/edge_list.txt]
//
// Without an argument a small synthetic web graph is generated. The edge-list
// format is "src dst [weight]" per line, '#' comments allowed (SNAP format).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/graph/loader.hpp"
#include "cyclops/metrics/reporter.hpp"
#include "cyclops/partition/hash.hpp"

int main(int argc, char** argv) {
  using namespace cyclops;

  // 1. Load or generate a graph.
  graph::EdgeList edges = argc > 1 ? graph::load_edge_list_file(argv[1])
                                   : graph::gen::rmat(12, 30000, /*seed=*/7);
  const graph::Csr g = graph::Csr::build(edges);
  std::printf("graph: %u vertices, %zu edges\n", g.num_vertices(), g.num_edges());

  // 2. Partition across a simulated 4-machine cluster (hash edge-cut).
  const WorkerId workers = 8;
  const auto partition = partition::HashPartitioner{}.partition(g, workers);

  // 3. Configure and run the Cyclops engine.
  algo::PageRankCyclops pagerank;
  pagerank.epsilon = 1e-10;
  core::Config config = core::Config::cyclops(/*machines=*/4, /*workers_per_machine=*/2);
  config.max_supersteps = 100;
  core::Engine<algo::PageRankCyclops> engine(g, partition, pagerank, config);
  const metrics::RunStats stats = engine.run();

  std::printf("%s\n", metrics::run_summary("pagerank/cyclops", stats).c_str());
  std::printf("replication factor: %.2f\n",
              engine.layout().replication_factor(g.num_vertices()));

  // 4. Report the ten highest-ranked vertices.
  const std::vector<double> ranks = engine.values();
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + std::min<std::size_t>(10, order.size()),
                    order.end(),
                    [&](VertexId a, VertexId b) { return ranks[a] > ranks[b]; });
  std::puts("top-10 vertices by PageRank:");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, order.size()); ++i) {
    std::printf("  #%zu vertex %u  rank %.6g  (in-degree %zu)\n", i + 1, order[i],
                ranks[order[i]], g.in_degree(order[i]));
  }
  return 0;
}
