// Movie recommendation with ALS (§6.1, the paper's Netflix-style workload):
// trains latent factors on a synthetic users×movies ratings graph with the
// Cyclops engine, reports RMSE per training round, and prints top-5
// recommendations for a few users (excluding movies they already rated).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cyclops/algorithms/als.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/hash.hpp"

int main() {
  using namespace cyclops;

  graph::gen::BipartiteSpec spec;
  spec.users = 2000;
  spec.items = 500;
  spec.ratings_per_user = 15;
  const graph::Csr g = graph::Csr::build(graph::gen::bipartite_ratings(spec, 99));
  std::printf("ratings graph: %u users x %u movies, %zu ratings\n", spec.users, spec.items,
              g.num_edges() / 2);

  algo::AlsCyclops als;
  als.num_users = spec.users;
  als.rounds = 12;

  core::Config config = core::Config::cyclops_mt(4, 4, 2);
  config.max_supersteps = als.rounds + 1;
  core::Engine<algo::AlsCyclops> engine(
      g, partition::HashPartitioner{}.partition(g, 4), als, config);

  // RMSE after every training round via the per-superstep observer.
  engine.set_observer([&](const metrics::SuperstepStats& step,
                          const core::Engine<algo::AlsCyclops>& e) {
    const double rmse = algo::als_rmse(g, spec.users, e.values());
    std::printf("  round %2u (%s side): RMSE %.4f\n", step.superstep,
                step.superstep % 2 == 0 ? "users" : "movies", rmse);
  });
  (void)engine.run();
  const auto factors = engine.values();

  for (VertexId user : {VertexId{0}, VertexId{17}, VertexId{423}}) {
    // Score all unseen movies by predicted rating.
    std::vector<bool> seen(spec.items, false);
    for (const graph::Adj& a : g.out_neighbors(user)) seen[a.neighbor - spec.users] = true;
    std::vector<std::pair<double, VertexId>> scored;
    for (VertexId m = 0; m < spec.items; ++m) {
      if (seen[m]) continue;
      scored.emplace_back(algo::dot(factors[user], factors[spec.users + m]), m);
    }
    std::partial_sort(scored.begin(), scored.begin() + std::min<std::size_t>(5, scored.size()),
                      scored.end(), std::greater<>());
    std::printf("user %u -> recommended movies:", user);
    for (std::size_t i = 0; i < std::min<std::size_t>(5, scored.size()); ++i) {
      std::printf(" %u(%.2f)", scored[i].second, scored[i].first);
    }
    std::puts("");
  }
  return 0;
}
