// Tests for edge-cut partitioning: hash/range baselines, the multilevel
// (Metis-like) partitioner, and the quality metrics that drive Figure 11.

#include <gtest/gtest.h>

#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/ldg.hpp"
#include "cyclops/partition/multilevel.hpp"
#include "cyclops/partition/partition.hpp"
#include "test_util.hpp"

namespace cyclops::partition {
namespace {

/// Brute-force replication factor per the Cyclops rule, to validate
/// evaluate(): replica of v on p iff some out-neighbor of v lives on p.
double brute_replication(const graph::Csr& g, const EdgeCutPartition& p) {
  std::uint64_t replicas = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<bool> on(p.num_parts(), false);
    for (const graph::Adj& a : g.out_neighbors(v)) {
      const WorkerId w = p.owner(a.neighbor);
      if (w != p.owner(v)) on[w] = true;
    }
    for (bool b : on) replicas += b;
  }
  return 1.0 + static_cast<double>(replicas) / g.num_vertices();
}

TEST(HashPartition, CoversAllParts) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(1000, 4000, 3));
  const EdgeCutPartition p = HashPartitioner{}.partition(g, 8);
  std::vector<std::size_t> count(8, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) ++count[p.owner(v)];
  for (auto c : count) EXPECT_GT(c, 80u);  // roughly balanced
}

TEST(HashPartition, SinglePartTrivial) {
  const graph::Csr g = graph::Csr::build(test::figure6_graph());
  const EdgeCutPartition p = HashPartitioner{}.partition(g, 1);
  const EdgeCutQuality q = evaluate(g, p);
  EXPECT_EQ(q.cut_edges, 0u);
  EXPECT_DOUBLE_EQ(q.replication_factor, 1.0);
}

TEST(RangePartition, ContiguousBlocks) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(100, 200, 5));
  const EdgeCutPartition p = RangePartitioner{}.partition(g, 4);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_GE(p.owner(v), p.owner(v - 1));
  }
}

TEST(Evaluate, MatchesBruteForceReplication) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 4000, 9));
  for (WorkerId parts : {2u, 4u, 7u}) {
    const EdgeCutPartition p = HashPartitioner{}.partition(g, parts);
    const EdgeCutQuality q = evaluate(g, p);
    EXPECT_NEAR(q.replication_factor, brute_replication(g, p), 1e-12);
  }
}

TEST(Evaluate, CutEdgesCountsDirectedEdges) {
  const graph::Csr g = graph::Csr::build(test::figure6_graph());
  // Figure 6 placement: {0,1} w0, {2,3} w1, {4,5} w2.
  const EdgeCutPartition p = test::owners({0, 0, 1, 1, 2, 2}, 3);
  const EdgeCutQuality q = evaluate(g, p);
  // Cut edges: 0->2, 2->1, 3->1, 4->3(w2->w1? 4 on w2, 3 on w1: yes), 5->2.
  EXPECT_EQ(q.cut_edges, 5u);
  // Replicas: v0 on w1 (0->2); v2 on w0 (2->1); v3 on w0 (3->1); v4 none
  // (4->3 puts replica of 4 on w1, 4->5 local): v4 on w1; v5 on w1 (5->2).
  // Count: v0:1, v2:1, v3:1, v4:1, v5:1 = 5 replicas.
  EXPECT_EQ(q.total_replicas, 5u);
  EXPECT_NEAR(q.replication_factor, 1.0 + 5.0 / 6.0, 1e-12);
}

TEST(Multilevel, SinglePartTrivial) {
  const graph::Csr g = graph::Csr::build(test::figure6_graph());
  const EdgeCutPartition p = MultilevelPartitioner{}.partition(g, 1);
  EXPECT_EQ(evaluate(g, p).cut_edges, 0u);
}

TEST(Multilevel, RespectsBalance) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(2000, 10000, 21));
  MultilevelConfig cfg;
  cfg.balance_epsilon = 0.05;
  const EdgeCutPartition p = MultilevelPartitioner{cfg}.partition(g, 8);
  const EdgeCutQuality q = evaluate(g, p);
  EXPECT_LE(q.vertex_imbalance, 1.0 + cfg.balance_epsilon + 0.02);
}

TEST(Multilevel, BeatsHashOnCommunityGraphs) {
  // The Figure 11 claim: a Metis-like partitioner sharply reduces the cut
  // (and hence the replication factor) on structured graphs.
  graph::gen::CommunitySpec spec;
  spec.communities = 16;
  spec.group_size = 64;
  spec.degree = 8;
  spec.p_internal = 0.95;
  const graph::Csr g = graph::Csr::build(graph::gen::planted_communities(spec, 33));
  const EdgeCutQuality hash_q = evaluate(g, HashPartitioner{}.partition(g, 8));
  const EdgeCutQuality ml_q = evaluate(g, MultilevelPartitioner{}.partition(g, 8));
  EXPECT_LT(ml_q.cut_fraction, 0.5 * hash_q.cut_fraction);
  EXPECT_LT(ml_q.replication_factor, hash_q.replication_factor);
}

TEST(Multilevel, BeatsHashOnLattices) {
  graph::gen::RoadSpec spec;
  spec.rows = 40;
  spec.cols = 40;
  spec.shortcut_fraction = 0.0;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 35));
  const EdgeCutQuality hash_q = evaluate(g, HashPartitioner{}.partition(g, 4));
  const EdgeCutQuality ml_q = evaluate(g, MultilevelPartitioner{}.partition(g, 4));
  EXPECT_LT(ml_q.cut_edges, hash_q.cut_edges / 4);
}

TEST(Multilevel, DeterministicInSeed) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 3000, 41));
  const EdgeCutPartition a = MultilevelPartitioner{}.partition(g, 6);
  const EdgeCutPartition b = MultilevelPartitioner{}.partition(g, 6);
  EXPECT_EQ(a.owners(), b.owners());
}

TEST(Multilevel, HandlesDisconnectedGraphs) {
  graph::EdgeList e(40);  // two 20-vertex cliquelets, no connection
  for (VertexId v = 0; v < 19; ++v) e.add_undirected(v, v + 1);
  for (VertexId v = 20; v < 39; ++v) e.add_undirected(v, v + 1);
  const graph::Csr g = graph::Csr::build(e);
  const EdgeCutPartition p = MultilevelPartitioner{}.partition(g, 2);
  const EdgeCutQuality q = evaluate(g, p);
  EXPECT_LE(q.cut_edges, 4u);  // near-perfect split exists
  EXPECT_LE(q.vertex_imbalance, 1.15);
}

TEST(Multilevel, HandlesStarGraph) {
  // Matching stalls on stars — exercises the coarsening bail-out.
  graph::EdgeList e(101);
  for (VertexId v = 1; v <= 100; ++v) e.add_undirected(0, v);
  const graph::Csr g = graph::Csr::build(e);
  const EdgeCutPartition p = MultilevelPartitioner{}.partition(g, 4);
  EXPECT_EQ(p.num_parts(), 4u);
  const EdgeCutQuality q = evaluate(g, p);
  EXPECT_LE(q.vertex_imbalance, 1.3);
}

TEST(Ldg, RespectsCapacity) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(1500, 6000, 61));
  LdgConfig cfg;
  cfg.capacity_slack = 1.1;
  const EdgeCutPartition p = LdgPartitioner{cfg}.partition(g, 6);
  const EdgeCutQuality q = evaluate(g, p);
  EXPECT_LE(q.vertex_imbalance, cfg.capacity_slack + 0.05);
}

TEST(Ldg, BeatsHashOnCommunityGraphs) {
  graph::gen::CommunitySpec spec{12, 60, 8, 0.92};
  const graph::Csr g = graph::Csr::build(graph::gen::planted_communities(spec, 63));
  const EdgeCutQuality hash_q = evaluate(g, HashPartitioner{}.partition(g, 6));
  const EdgeCutQuality ldg_q = evaluate(g, LdgPartitioner{}.partition(g, 6));
  EXPECT_LT(ldg_q.cut_edges, hash_q.cut_edges);
  EXPECT_LT(ldg_q.replication_factor, hash_q.replication_factor);
}

TEST(Ldg, QualityBetweenHashAndMultilevel) {
  // The streaming partitioner's value proposition: one pass, quality between
  // the extremes.
  graph::gen::WebSpec spec;
  spec.scale = 12;
  spec.edges = 30000;
  const graph::Csr g = graph::Csr::build(graph::gen::web_graph(spec, 65));
  const double hash_rf = evaluate(g, HashPartitioner{}.partition(g, 8)).replication_factor;
  const double ldg_rf = evaluate(g, LdgPartitioner{}.partition(g, 8)).replication_factor;
  const double ml_rf =
      evaluate(g, MultilevelPartitioner{}.partition(g, 8)).replication_factor;
  EXPECT_LT(ldg_rf, hash_rf);
  EXPECT_LE(ml_rf, ldg_rf * 1.2);  // multilevel at least comparable
}

TEST(Ldg, DeterministicInSeed) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 3000, 67));
  const EdgeCutPartition a = LdgPartitioner{}.partition(g, 5);
  const EdgeCutPartition b = LdgPartitioner{}.partition(g, 5);
  EXPECT_EQ(a.owners(), b.owners());
}

TEST(Ldg, SinglePartTrivial) {
  const graph::Csr g = graph::Csr::build(test::figure6_graph());
  const EdgeCutPartition p = LdgPartitioner{}.partition(g, 1);
  EXPECT_EQ(evaluate(g, p).cut_edges, 0u);
}

/// Property sweep: on varied graphs and part counts the multilevel cut never
/// loses badly to hash (it is allowed to tie on unstructured graphs).
struct MlCase {
  unsigned graph_kind;
  WorkerId parts;
};

class MultilevelVsHash : public ::testing::TestWithParam<MlCase> {};

TEST_P(MultilevelVsHash, CutNotWorseThanHash) {
  const auto [kind, parts] = GetParam();
  graph::EdgeList edges;
  switch (kind) {
    case 0:
      edges = graph::gen::erdos_renyi(800, 4000, 55);
      break;
    case 1:
      edges = graph::gen::rmat(10, 4000, 55);
      break;
    case 2: {
      graph::gen::CommunitySpec cs{8, 80, 6, 0.9};
      edges = graph::gen::planted_communities(cs, 55);
      break;
    }
    default: {
      graph::gen::RoadSpec rs{25, 25, 0.01, 0.4, 1.2};
      edges = graph::gen::road_grid(rs, 55);
      break;
    }
  }
  const graph::Csr g = graph::Csr::build(edges);
  const EdgeCutQuality hash_q = evaluate(g, HashPartitioner{}.partition(g, parts));
  const EdgeCutQuality ml_q = evaluate(g, MultilevelPartitioner{}.partition(g, parts));
  EXPECT_LE(ml_q.cut_edges, static_cast<std::size_t>(1.05 * hash_q.cut_edges) + 8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultilevelVsHash,
    ::testing::Values(MlCase{0, 2}, MlCase{0, 8}, MlCase{1, 4}, MlCase{1, 12},
                      MlCase{2, 4}, MlCase{2, 8}, MlCase{3, 2}, MlCase{3, 6}));

}  // namespace
}  // namespace cyclops::partition
