// Tests for the metrics layer: phase accounting, convergence tracking,
// ranked error distributions, memory model arithmetic, reporters.

#include <gtest/gtest.h>

#include "cyclops/metrics/convergence.hpp"
#include "cyclops/metrics/memory_model.hpp"
#include "cyclops/metrics/reporter.hpp"
#include "cyclops/metrics/superstep_stats.hpp"

namespace cyclops::metrics {
namespace {

TEST(PhaseTimes, TotalsAndAccumulate) {
  PhaseTimes a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(a.total_s(), 10.0);
  PhaseTimes b{0.5, 0.5, 0.5, 0.5};
  a += b;
  EXPECT_DOUBLE_EQ(a.total_s(), 12.0);
}

TEST(RunStats, AggregatesSupersteps) {
  RunStats run;
  for (int i = 0; i < 3; ++i) {
    SuperstepStats s;
    s.superstep = static_cast<Superstep>(i);
    s.phases = PhaseTimes{0.1, 0.2, 0.3, 0.4};
    s.net.remote_messages = 10;
    s.net.remote_bytes = 100;
    s.modeled_comm_s = 0.05;
    s.modeled_barrier_s = 0.01;
    run.supersteps.push_back(s);
  }
  run.elapsed_s = 3.0;
  EXPECT_DOUBLE_EQ(run.phase_totals().total_s(), 3.0);
  EXPECT_EQ(run.net_totals().remote_messages, 30u);
  EXPECT_NEAR(run.modeled_comm_total_s(), 0.18, 1e-12);
  EXPECT_NEAR(run.total_time_s(), 3.18, 1e-12);
}

TEST(ConvergenceTracker, L1DistanceAndSampling) {
  ConvergenceTracker tracker({1.0, 2.0, 3.0});
  tracker.sample(0.0, std::vector<double>{0.0, 0.0, 0.0});
  tracker.sample(1.0, std::vector<double>{1.0, 2.0, 2.0});
  tracker.sample(2.0, std::vector<double>{1.0, 2.0, 3.0});
  ASSERT_EQ(tracker.points().size(), 3u);
  EXPECT_DOUBLE_EQ(tracker.points()[0].l1, 6.0);
  EXPECT_DOUBLE_EQ(tracker.points()[1].l1, 1.0);
  EXPECT_DOUBLE_EQ(tracker.points()[2].l1, 0.0);
}

TEST(RankedErrors, SortsByReferenceDescending) {
  const std::vector<double> reference{0.1, 0.9, 0.5};
  const std::vector<double> values{0.1, 0.8, 0.5};
  const auto ranked = ranked_errors(reference, values);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 1u);  // highest reference value first
  EXPECT_NEAR(ranked[0].second, 0.1, 1e-12);
  EXPECT_EQ(ranked[1].first, 2u);
  EXPECT_EQ(ranked[2].first, 0u);
}

TEST(MemoryReport, Arithmetic) {
  MemoryReport r;
  r.vertex_state_bytes = 1000;
  r.replica_bytes = 500;
  r.peak_message_bytes = 200;
  r.message_churn_bytes = 10000;
  EXPECT_EQ(r.resident_bytes(), 1500u);
  EXPECT_EQ(r.peak_bytes(), 1700u);
  EXPECT_DOUBLE_EQ(r.young_gc_equivalent(1000), 10.0);
  EXPECT_DOUBLE_EQ(r.young_gc_equivalent(0), 0.0);
}

TEST(Reporter, BreakdownRowFormats) {
  RunStats run;
  SuperstepStats s;
  s.phases = PhaseTimes{0.25, 0.25, 0.25, 0.25};
  run.supersteps.push_back(s);
  run.elapsed_s = 1.0;
  const std::string normalized = phase_breakdown_row("demo", run, true);
  EXPECT_NE(normalized.find("SYN"), std::string::npos);
  EXPECT_NE(normalized.find("%"), std::string::npos);
  const std::string absolute = phase_breakdown_row("demo", run, false);
  EXPECT_NE(absolute.find("total"), std::string::npos);
}

TEST(Reporter, SuperstepSeriesCsv) {
  RunStats run;
  SuperstepStats s;
  s.superstep = 3;
  s.active_vertices = 42;
  s.net.remote_messages = 7;
  run.supersteps.push_back(s);
  const std::string csv = superstep_series_csv(run);
  EXPECT_NE(csv.find("superstep,active_vertices"), std::string::npos);
  EXPECT_NE(csv.find("3,42,7"), std::string::npos);
}

TEST(Reporter, RunSummaryMentionsMessages) {
  RunStats run;
  SuperstepStats s;
  s.net.remote_messages = 123;
  run.supersteps.push_back(s);
  const std::string summary = run_summary("pr", run);
  EXPECT_NE(summary.find("123"), std::string::npos);
  EXPECT_NE(summary.find("pr"), std::string::npos);
}

// Golden-output tests: these lines are the operational interface users grep
// and scripts parse, so format drift is a breaking change, not cosmetics.
// All inputs are exactly representable in binary so %.3f rounding is stable.

TEST(Reporter, RecoverySummaryGolden) {
  RecoveryStats rec;
  rec.checkpoints_taken = 3;
  rec.checkpoint_bytes_written = 4096;
  rec.modeled_checkpoint_s = 0.25;
  rec.corrupt_checkpoints = 1;
  rec.faults_detected = 1;
  rec.recoveries = 1;
  rec.lost_supersteps = 4;
  rec.modeled_recovery_s = 0.125;
  rec.log_packages = 12;
  rec.log_bytes = 2048;
  rec.replay_verified_packages = 6;
  rec.replay_log_mismatches = 0;
  rec.dropped_packages = 7;
  rec.corrupted_packages = 2;
  rec.retransmissions = 9;
  rec.modeled_fault_overhead_s = 0.5;
  EXPECT_EQ(recovery_summary(rec),
            "recovery: 3 checkpoints (4096 bytes, 0.250s modeled write, 1 corrupt), "
            "1 faults -> 1 rollbacks, 4 supersteps replayed, 0.125s modeled "
            "recovery; log: 12 packages (2048 bytes), 6 verified, 0 mismatched; "
            "wire: 7 dropped, 2 corrupted, 9 retransmitted (+0.500s)");
}

TEST(Reporter, JobSummaryGolden) {
  JobStats job;
  job.job_id = 7;
  job.tenant = "acme";
  job.algo = "pr";
  job.engine = "cyclops";
  job.epoch = 2;
  job.priority = 1;
  job.queue_wait_s = 0.5;
  job.run_s = 1.25;
  job.modeled_comm_s = 0.75;
  job.supersteps = 12;
  job.outcome = "ok";
  EXPECT_EQ(job_summary(job),
            "job #7 [acme] cyclops/pr epoch 2 prio 1: ok; "
            "queued 0.500s, ran 1.250s (12 supersteps, 0.750s modeled comm)");
}

TEST(Reporter, JobSummaryCarriesFailureReason) {
  JobStats job;
  job.job_id = 9;
  job.tenant = "acme";
  job.algo = "cc";
  job.engine = "gas";
  job.outcome = "failed: gas engine supports pr and sssp only, not cc";
  const std::string line = job_summary(job);
  EXPECT_NE(line.find("failed: gas engine supports pr and sssp only"),
            std::string::npos);
}

}  // namespace
}  // namespace cyclops::metrics
