// Tests for the shared engine runtime layer: typed sync channels round-trip
// records through the fabric with byte counts matching the modeled traffic,
// the superstep driver owns the loop/counter/clock, exchange accounting
// centralizes the counters engines used to duplicate — and the three
// execution models, now all sitting on that runtime, still agree on results.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "cyclops/runtime/exchange_accounting.hpp"
#include "cyclops/runtime/superstep_driver.hpp"
#include "cyclops/runtime/sync_channel.hpp"
#include "test_util.hpp"

namespace cyclops {
namespace {

struct TestRecord {
  std::uint32_t id;
  double payload;
};

sim::Fabric make_fabric(WorkerId workers) {
  return sim::Fabric(sim::Topology{workers, 1}, sim::CostModel::zero());
}

TEST(SyncChannel, RoundTripPreservesRecordsAndCountsBytes) {
  using Channel = runtime::SyncChannel<TestRecord>;
  sim::Fabric fabric = make_fabric(3);

  auto sender = Channel::sender(fabric, 0);
  std::vector<TestRecord> to_one, to_two;
  for (std::uint32_t i = 0; i < 57; ++i) to_one.push_back({i, i * 1.5});
  for (std::uint32_t i = 0; i < 13; ++i) to_two.push_back({1000 + i, -1.0 * i});

  sender.reserve(1, to_one.size());
  for (const TestRecord& r : to_one) sender.send(1, r);
  sender.reserve(2, to_two.size());
  for (const TestRecord& r : to_two) sender.send(2, r);

  const sim::ExchangeStats x = fabric.exchange(3);
  const std::uint64_t n = to_one.size() + to_two.size();
  EXPECT_EQ(x.net.total_messages(), n);
  EXPECT_EQ(x.net.total_bytes(), n * sizeof(TestRecord));
  EXPECT_EQ(x.net.packages, 2u);

  std::vector<TestRecord> got_one, got_two;
  Channel::drain(fabric, 1, [&](const TestRecord& r) { got_one.push_back(r); });
  Channel::drain(fabric, 2, [&](const TestRecord& r) { got_two.push_back(r); });
  ASSERT_EQ(got_one.size(), to_one.size());
  ASSERT_EQ(got_two.size(), to_two.size());
  for (std::size_t i = 0; i < to_one.size(); ++i) {
    EXPECT_EQ(got_one[i].id, to_one[i].id);
    EXPECT_EQ(got_one[i].payload, to_one[i].payload);
  }
  for (std::size_t i = 0; i < to_two.size(); ++i) {
    EXPECT_EQ(got_two[i].id, to_two[i].id);
    EXPECT_EQ(got_two[i].payload, to_two[i].payload);
  }
  // drain() clears the inbox.
  EXPECT_TRUE(fabric.incoming(1).empty());
  EXPECT_TRUE(fabric.incoming(2).empty());
}

TEST(SyncChannel, ReserveDoesNotChangeModeledTraffic) {
  using Channel = runtime::SyncChannel<TestRecord>;
  sim::Fabric with_reserve = make_fabric(2);
  sim::Fabric without_reserve = make_fabric(2);

  auto a = Channel::sender(with_reserve, 0);
  a.reserve(1, 41);
  for (std::uint32_t i = 0; i < 41; ++i) a.send(1, {i, 2.0 * i});
  auto b = Channel::sender(without_reserve, 0);
  for (std::uint32_t i = 0; i < 41; ++i) b.send(1, {i, 2.0 * i});

  const sim::NetSnapshot na = with_reserve.exchange(2).net;
  const sim::NetSnapshot nb = without_reserve.exchange(2).net;
  EXPECT_EQ(na.total_messages(), nb.total_messages());
  EXPECT_EQ(na.total_bytes(), nb.total_bytes());
  EXPECT_EQ(na.packages, nb.packages);
}

TEST(SyncChannel, PackageReaderHandlesInterleavedRecordTypes) {
  // The GAS apply+scatter exchange interleaves two record types on one lane;
  // PackageReader is the typed escape hatch for such streams.
  struct Small {
    std::uint32_t tag;
  };
  sim::Fabric fabric = make_fabric(2);
  auto big = runtime::SyncChannel<TestRecord>::sender(fabric, 0);
  auto small = runtime::SyncChannel<Small>::sender(fabric, 0);
  for (std::uint32_t i = 0; i < 9; ++i) {
    big.send(1, {i, 0.5 * i});
    small.send(1, {i + 100});
  }
  (void)fabric.exchange(2);

  std::uint32_t seen = 0;
  for (const sim::Package& pkg : fabric.incoming(1)) {
    runtime::PackageReader reader(pkg);
    while (!reader.exhausted()) {
      const auto rec = reader.read<TestRecord>();
      const auto tag = reader.read<Small>();
      EXPECT_EQ(rec.id, seen);
      EXPECT_EQ(rec.payload, 0.5 * seen);
      EXPECT_EQ(tag.tag, seen + 100);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 9u);
}

TEST(SuperstepDriver, RunsUntilCapAndAccumulatesElapsed) {
  runtime::SuperstepDriver driver;
  runtime::ExchangeAccounting acct;
  std::vector<Superstep> notified;
  const metrics::RunStats stats = driver.run(
      5, acct,
      [&](metrics::SuperstepStats& s) {
        s.phases.cmp_s = 0.5;
        return false;  // never terminates on its own
      },
      [&](const metrics::SuperstepStats& s) { notified.push_back(s.superstep); });
  EXPECT_EQ(stats.supersteps.size(), 5u);
  EXPECT_EQ(driver.superstep(), 5u);
  EXPECT_DOUBLE_EQ(stats.elapsed_s, 2.5);
  EXPECT_EQ(notified, (std::vector<Superstep>{0, 1, 2, 3, 4}));
}

TEST(SuperstepDriver, StopsWhenStepReportsTermination) {
  runtime::SuperstepDriver driver;
  runtime::ExchangeAccounting acct;
  const metrics::RunStats stats = driver.run(
      100, acct, [&](metrics::SuperstepStats&) { return driver.superstep() == 2; },
      [](const metrics::SuperstepStats&) {});
  EXPECT_EQ(stats.supersteps.size(), 3u);
  EXPECT_EQ(driver.superstep(), 3u);
}

TEST(SuperstepDriver, SetSuperstepRepositionsForRestore) {
  runtime::SuperstepDriver driver;
  runtime::ExchangeAccounting acct;
  driver.set_superstep(7);
  EXPECT_EQ(driver.superstep(), 7u);
  const metrics::RunStats stats = driver.run(
      10, acct, [](metrics::SuperstepStats&) { return false; },
      [](const metrics::SuperstepStats&) {});
  ASSERT_EQ(stats.supersteps.size(), 3u);
  EXPECT_EQ(stats.supersteps.front().superstep, 7u);
  EXPECT_EQ(driver.superstep(), 10u);
}

TEST(ExchangeAccounting, TracksPeakChurnAndMessages) {
  runtime::ExchangeAccounting acct;
  sim::ExchangeStats x1, x2;
  x1.peak_buffered_bytes = 100;
  x2.peak_buffered_bytes = 40;
  acct.note_exchange(x1);
  acct.note_exchange(x2);
  EXPECT_EQ(acct.peak_buffered_bytes(), 100u);  // high-water mark, not sum

  sim::NetSnapshot net;
  net.remote_messages = 2;
  net.local_messages = 1;
  net.remote_bytes = 10;
  net.local_bytes = 5;
  acct.note_net(net);
  EXPECT_EQ(acct.churn_bytes(), 15u);
  EXPECT_EQ(acct.messages(), 3u);

  acct.add_churn_bytes(5);
  acct.add_messages(2);
  acct.add_staged(9);
  EXPECT_EQ(acct.churn_bytes(), 20u);
  EXPECT_EQ(acct.messages(), 5u);
  EXPECT_EQ(acct.staged_messages(), 9u);
}

// --- Engine equivalence: all three execution models share the runtime and
// must still produce identical results on the same input. ---

TEST(EngineEquivalence, PageRankAgreesAcrossAllThreeEngines) {
  const graph::EdgeList e = graph::gen::rmat(9, 3000, 77);
  const graph::Csr g = graph::Csr::build(e);
  const auto part = test::hash_partition(g, 4);

  algo::PageRankBsp pr_bsp;
  pr_bsp.epsilon = 1e-12;
  bsp::Config bsp_cfg = bsp::Config::workers(4);
  bsp_cfg.max_supersteps = 300;
  bsp::Engine<algo::PageRankBsp> bsp_engine(g, part, pr_bsp, bsp_cfg);
  (void)bsp_engine.run();
  const auto bsp_vals = bsp_engine.values();

  algo::PageRankCyclops pr_cyc;
  pr_cyc.epsilon = 1e-12;
  core::Config cyc_cfg = core::Config::cyclops(4, 1);
  cyc_cfg.max_supersteps = 300;
  core::Engine<algo::PageRankCyclops> cyc_engine(g, part, pr_cyc, cyc_cfg);
  (void)cyc_engine.run();
  const std::vector<double> cyc_vals = cyc_engine.values();

  algo::PageRankGas pr_gas;
  pr_gas.num_vertices = e.num_vertices();
  pr_gas.epsilon = 1e-12;
  gas::Config gas_cfg = gas::Config::workers(4);
  gas_cfg.max_iterations = 300;
  gas::Engine<algo::PageRankGas> gas_engine(
      g, partition::GreedyVertexCut{}.partition(g, 4), pr_gas, gas_cfg);
  (void)gas_engine.run();
  const auto gas_vals = gas_engine.values();

  double bsp_vs_cyc = 0, bsp_vs_gas = 0;
  for (VertexId v = 0; v < e.num_vertices(); ++v) {
    bsp_vs_cyc = std::max(bsp_vs_cyc, std::abs(bsp_vals[v] - cyc_vals[v]));
    bsp_vs_gas = std::max(bsp_vs_gas, std::abs(bsp_vals[v] - gas_vals[v].rank));
  }
  EXPECT_LT(bsp_vs_cyc, 1e-8);
  EXPECT_LT(bsp_vs_gas, 1e-8);
}

TEST(EngineEquivalence, SsspAgreesBetweenBspAndCyclops) {
  graph::gen::RoadSpec spec;
  spec.rows = 20;
  spec.cols = 20;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 7));
  const auto part = test::hash_partition(g, 3);
  const std::vector<double> reference = algo::sssp_reference(g, 0);

  algo::SsspBsp sssp_bsp;
  sssp_bsp.source = 0;
  bsp::Config bsp_cfg = bsp::Config::workers(3);
  bsp_cfg.max_supersteps = 500;
  bsp::Engine<algo::SsspBsp> bsp_engine(g, part, sssp_bsp, bsp_cfg);
  (void)bsp_engine.run();

  algo::SsspCyclops sssp_cyc;
  sssp_cyc.source = 0;
  core::Config cyc_cfg = core::Config::cyclops(3, 1);
  cyc_cfg.max_supersteps = 500;
  core::Engine<algo::SsspCyclops> cyc_engine(g, part, sssp_cyc, cyc_cfg);
  (void)cyc_engine.run();

  const auto bsp_vals = bsp_engine.values();
  const std::vector<double> cyc_vals = cyc_engine.values();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(bsp_vals[v], reference[v]) << "bsp vs dijkstra at " << v;
    EXPECT_DOUBLE_EQ(cyc_vals[v], reference[v]) << "cyclops vs dijkstra at " << v;
  }
}

}  // namespace
}  // namespace cyclops
