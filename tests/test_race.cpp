// Tests for the happens-before race analyzer (src/cyclops/verify/race.hpp)
// and the deterministic schedule explorer (src/cyclops/sim/sched.hpp).
//
// The centerpiece is a planted race: four logical tasks of a parallel region
// write the same cell with no synchronization. Because the analyzer tracks
// *logical* task contexts — the pool's own handoff machinery deliberately
// carries no happens-before edges — the race is detected even on a 1-thread
// pool running the tasks serially, which is exactly what makes every report
// bit-identically replayable from its (seed, schedule) pair. A SpinLock
// around the same writes restores order through the lock clock and the
// analyzer goes silent; so do back-to-back regions (fork/join edges) and a
// real PageRank/BSP run under explored schedules.
//
// Explorer-only tests (determinism, permutation validity) run in every build;
// detection tests skip without -DCYCLOPS_VERIFY, where the hooks are no-ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/spinlock.hpp"
#include "cyclops/common/thread_pool.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/sim/sched.hpp"
#include "cyclops/verify/race.hpp"
#include "test_util.hpp"

namespace cyclops::verify::race {
namespace {

#define SKIP_UNLESS_VERIFY()                                            \
  do {                                                                  \
    if (!kEnabled) GTEST_SKIP() << "built without -DCYCLOPS_VERIFY=ON"; \
  } while (0)

/// Turns detection on for one test body and always off again after, so a
/// failing test cannot leak an enabled analyzer into its neighbours.
struct Enabled {
  Enabled() { enable(true); }
  ~Enabled() { enable(false); }
};

struct Collector {
  std::vector<Report> seen;
  ReportHandler handler() {
    return [this](const Report& r) { seen.push_back(r); };
  }
};

/// The planted fixture: `tasks` unsynchronized writers to one kSlot cell,
/// scheduled by `seed`. Returns the collected reports and the explorer's
/// final digest. Serial 1-thread execution — races found here are ordering
/// facts, not lucky thread timings.
struct PlantedOutcome {
  std::vector<Report> reports;
  std::uint64_t digest = 0;
};

PlantedOutcome run_planted(std::uint64_t seed, std::size_t tasks) {
  ThreadPool pool(1);
  sim::ScheduleExplorer explorer(seed);
  pool.set_task_order(&explorer);
  Detector detector;
  Collector col;
  detector.set_handler(col.handler());
  pool.parallel_tasks(tasks, [&](std::size_t t) {
    // Two distinct source lines so a report carries two different sites.
    if (t % 2 == 0) {
      detector.on_access(CellClass::kSlot, 0, 7, 7, /*is_write=*/true, CYCLOPS_VLOC,
                         Phase::kCompute, 3, 0);
    } else {
      detector.on_access(CellClass::kSlot, 0, 7, 7, /*is_write=*/true, CYCLOPS_VLOC,
                         Phase::kCompute, 3, 0);
    }
  });
  return PlantedOutcome{std::move(col.seen), explorer.digest()};
}

TEST(Race, PlantedUnsynchronizedWriteIsDetected) {
  SKIP_UNLESS_VERIFY();
  Enabled on;
  const PlantedOutcome out = run_planted(11, 4);
  // Every write after the first is unordered against the previous stamp:
  // 4 writers, 3 write-write reports.
  ASSERT_EQ(out.reports.size(), 3u);
  for (const Report& r : out.reports) {
    EXPECT_EQ(r.kind, RaceKind::kWriteWrite);
    EXPECT_EQ(r.cell, CellClass::kSlot);
    EXPECT_EQ(r.worker, 0u);
    EXPECT_EQ(r.key, 7u);
    EXPECT_EQ(r.vertex, 7u);
    // Dual-site attribution: both the racing access and the one it raced
    // against point back into this file, with full phase/superstep context.
    ASSERT_TRUE(r.current.valid());
    ASSERT_TRUE(r.previous.valid());
    EXPECT_NE(std::string(r.current.loc.file).find("test_race.cpp"), std::string::npos);
    EXPECT_NE(std::string(r.previous.loc.file).find("test_race.cpp"), std::string::npos);
    EXPECT_GT(r.current.loc.line, 0);
    EXPECT_GT(r.previous.loc.line, 0);
    EXPECT_EQ(r.current.phase, Phase::kCompute);
    EXPECT_EQ(r.current.superstep, 3u);
    // Replay stamp: the seed that produced this schedule.
    EXPECT_EQ(r.seed, 11u);
    EXPECT_EQ(r.schedule, out.digest);
  }
}

TEST(Race, ReplayIsBitIdentical) {
  SKIP_UNLESS_VERIFY();
  Enabled on;
  const PlantedOutcome a = run_planted(42, 6);
  const PlantedOutcome b = run_planted(42, 6);
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].describe(), b.reports[i].describe());
  }
  // A different seed is a different schedule (digest), same race count.
  const PlantedOutcome c = run_planted(43, 6);
  EXPECT_NE(c.digest, a.digest);
  EXPECT_EQ(c.reports.size(), a.reports.size());
}

TEST(Race, SpinLockOrdersTheSameWrites) {
  SKIP_UNLESS_VERIFY();
  Enabled on;
  ThreadPool pool(1);
  sim::ScheduleExplorer explorer(11);
  pool.set_task_order(&explorer);
  SpinLock guard;
  Detector detector;
  Collector col;
  detector.set_handler(col.handler());
  pool.parallel_tasks(4, [&](std::size_t) {
    guard.lock();
    detector.on_access(CellClass::kSlot, 0, 7, 7, /*is_write=*/true, CYCLOPS_VLOC,
                       Phase::kCompute, 3, 0);
    guard.unlock();
  });
  EXPECT_TRUE(col.seen.empty()) << col.seen.front().describe();
  EXPECT_EQ(detector.races(), 0u);
  EXPECT_GT(detector.accesses_checked(), 0u);
}

TEST(Race, RegionJoinOrdersSequentialRegions) {
  SKIP_UNLESS_VERIFY();
  Enabled on;
  ThreadPool pool(1);
  sim::ScheduleExplorer explorer(5);
  pool.set_task_order(&explorer);
  Detector detector;
  Collector col;
  detector.set_handler(col.handler());
  // Task t writes cell t: in-region accesses never collide, and the join at
  // the end of region 1 orders every region-2 access after them.
  for (int round = 0; round < 2; ++round) {
    pool.parallel_tasks(4, [&](std::size_t t) {
      detector.on_access(CellClass::kStage, 0, t, static_cast<VertexId>(t),
                         /*is_write=*/true, CYCLOPS_VLOC, Phase::kCompute, 0, 0);
    });
  }
  EXPECT_TRUE(col.seen.empty()) << col.seen.front().describe();
}

TEST(Race, ReadersDoNotRaceWithReaders) {
  SKIP_UNLESS_VERIFY();
  Enabled on;
  ThreadPool pool(1);
  Detector detector;
  Collector col;
  detector.set_handler(col.handler());
  pool.parallel_tasks(4, [&](std::size_t) {
    detector.on_access(CellClass::kSlot, 1, 9, 9, /*is_write=*/false, CYCLOPS_VLOC,
                       Phase::kCompute, 0, 1);
  });
  EXPECT_TRUE(col.seen.empty());
  // ...but a write unordered against a concurrent read of the same cell
  // (both in one region, so no join edge orders them) is a race.
  pool.parallel_tasks(2, [&](std::size_t t) {
    detector.on_access(CellClass::kSlot, 1, 9, 9, /*is_write=*/(t == 0), CYCLOPS_VLOC,
                       Phase::kSend, 0, 1);
  });
  EXPECT_FALSE(col.seen.empty());
}

TEST(Race, DisabledAnalyzerIsSilent) {
  // No Enabled guard: detection stays off, stamps are no-ops.
  const PlantedOutcome out = run_planted(11, 4);
  EXPECT_TRUE(out.reports.empty());
}

// The real engines, instrumented end-to-end, must be race-free under explored
// schedules: the immutable-view discipline (chunk-partitioned masters, one
// receiver per replica slot, per-thread sender lanes) leaves nothing
// unordered to find.
TEST(Race, CyclopsPageRankIsRaceFreeUnderExploredSchedules) {
  SKIP_UNLESS_VERIFY();
  Enabled on;
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1200, 5));
  for (std::uint64_t seed : {0ull, 1ull, 2ull}) {
    algo::PageRankCyclops pr;
    pr.epsilon = 1e-10;
    core::Config cfg = core::Config::cyclops(2, 2);
    cfg.max_supersteps = 40;
    cfg.schedule = std::make_shared<sim::ScheduleExplorer>(seed);
    core::Engine<algo::PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
    Collector col;
    engine.verifier().racer().set_handler(col.handler());
    (void)engine.run();
    EXPECT_TRUE(col.seen.empty()) << "seed " << seed << ": "
                                  << col.seen.front().describe();
    EXPECT_GT(engine.verifier().racer().accesses_checked(), 0u);
  }
}

TEST(Race, BspPageRankIsRaceFreeUnderExploredSchedules) {
  SKIP_UNLESS_VERIFY();
  Enabled on;
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1200, 5));
  for (std::uint64_t seed : {0ull, 3ull}) {
    algo::PageRankBsp pr;
    pr.epsilon = 1e-10;
    bsp::Config cfg = bsp::Config::workers(4);
    cfg.max_supersteps = 40;
    cfg.schedule = std::make_shared<sim::ScheduleExplorer>(seed);
    bsp::Engine<algo::PageRankBsp> engine(g, test::hash_partition(g, 4), pr, cfg);
    Collector col;
    engine.verifier().racer().set_handler(col.handler());
    (void)engine.run();
    EXPECT_TRUE(col.seen.empty()) << "seed " << seed << ": "
                                  << col.seen.front().describe();
    EXPECT_GT(engine.verifier().racer().accesses_checked(), 0u);
  }
}

// ---- Explorer-only tests: run in every build (no CYCLOPS_VERIFY needed) ----

TEST(ScheduleExplorer, PlansAreValidPermutations) {
  sim::ScheduleExplorer explorer(123);
  std::vector<std::size_t> order;
  for (std::size_t tasks : {1u, 2u, 7u, 64u}) {
    order.clear();
    explorer.plan_region(tasks, order);
    ASSERT_EQ(order.size(), tasks);
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::size_t> iota(tasks);
    std::iota(iota.begin(), iota.end(), 0);
    EXPECT_EQ(sorted, iota);
  }
}

TEST(ScheduleExplorer, SameSeedSamePlan) {
  sim::ScheduleExplorer a(9), b(9), c(10);
  std::vector<std::size_t> oa, ob, oc;
  a.plan_region(16, oa);
  b.plan_region(16, ob);
  c.plan_region(16, oc);
  EXPECT_EQ(oa, ob);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_NE(oa, oc);  // 16! plans; distinct seeds virtually never coincide
}

TEST(ScheduleExplorer, ChunkPlansAreBoundedAndSeeded) {
  sim::ScheduleExplorer a(77), b(77);
  for (int i = 0; i < 20; ++i) {
    const std::size_t ca = a.plan_chunks(1000, 4, 16);
    const std::size_t cb = b.plan_chunks(1000, 4, 16);
    EXPECT_EQ(ca, cb);
    EXPECT_GE(ca, 1u);
    EXPECT_LE(ca, 16u);
  }
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(ScheduleExplorer, PermutedPoolStillRunsEveryTask) {
  ThreadPool pool(1);
  sim::ScheduleExplorer explorer(31);
  pool.set_task_order(&explorer);
  std::vector<int> hits(24, 0);
  pool.parallel_tasks(hits.size(), [&](std::size_t t) { ++hits[t]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  std::uint64_t sum = 0;
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 499500u);
  EXPECT_GT(explorer.regions(), 0u);
}

}  // namespace
}  // namespace cyclops::verify::race
