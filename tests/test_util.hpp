#pragma once
// Shared helpers for the test suite: tiny canonical graphs and engine
// convenience wrappers.

#include <vector>

#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/edge_list.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/partition.hpp"

namespace cyclops::test {

/// The 6-vertex sample graph of Figure 6 (ids shifted to 0-based):
/// 0->1, 0->2, 2->1, 2->3, 3->1, 3->2, 4->3, 4->5, 5->2, 5->4.
inline graph::EdgeList figure6_graph() {
  graph::EdgeList e(6);
  e.add(0, 1);
  e.add(0, 2);
  e.add(2, 1);
  e.add(2, 3);
  e.add(3, 1);
  e.add(3, 2);
  e.add(4, 3);
  e.add(4, 5);
  e.add(5, 2);
  e.add(5, 4);
  return e;
}

/// A 4-vertex weighted diamond for SSSP: 0->1 (1), 0->2 (4), 1->2 (1),
/// 1->3 (5), 2->3 (1). Shortest 0->3 = 3 via 0-1-2-3.
inline graph::EdgeList diamond_graph() {
  graph::EdgeList e(4);
  e.add(0, 1, 1.0);
  e.add(0, 2, 4.0);
  e.add(1, 2, 1.0);
  e.add(1, 3, 5.0);
  e.add(2, 3, 1.0);
  return e;
}

/// Explicit owner assignment helper.
inline partition::EdgeCutPartition owners(std::vector<WorkerId> o, WorkerId parts) {
  return partition::EdgeCutPartition(std::move(o), parts);
}

inline partition::EdgeCutPartition hash_partition(const graph::Csr& g, WorkerId parts) {
  return partition::HashPartitioner{}.partition(g, parts);
}

}  // namespace cyclops::test
