// Concurrency stress for the two primitives every engine leans on: the
// Table-3 SpinLock and the ThreadPool. These tests exist to run under
// ThreadSanitizer with no suppressions — the CI tsan job executes them with
// real contention, so an ordering bug in either primitive is a data-race
// report, not a flake. They also pass (quickly) without TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cyclops/common/spinlock.hpp"
#include "cyclops/common/sync.hpp"
#include "cyclops/common/thread_pool.hpp"

namespace cyclops {
namespace {

TEST(SpinLockStress, ContendedIncrementsAreAllObserved) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  SpinLock lock;
  std::uint64_t counter = 0;  // plain, unsynchronized — the lock is the fence
  std::vector<Thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (Thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
  EXPECT_EQ(lock.acquisitions(), kThreads * kPerThread);
}

TEST(SpinLockStress, HandoffPublishesNonTrivialCriticalSection) {
  // Each critical section mutates several words; TSan flags any escape of
  // the store buffer past unlock() (i.e. a missing release fence).
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kRounds = 5'000;
  SpinLock lock;
  std::vector<std::uint64_t> cells(16, 0);
  std::vector<Thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kRounds; ++i) {
        lock.lock();
        for (std::uint64_t& c : cells) ++c;
        lock.unlock();
      }
    });
  }
  for (Thread& t : threads) t.join();
  for (const std::uint64_t c : cells) EXPECT_EQ(c, kThreads * kRounds);
}

TEST(ThreadPoolStress, RepeatedParallelForBurstsComputeExactSums) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 50'000;
  constexpr int kBursts = 40;
  std::vector<std::uint64_t> data(kN);
  for (int burst = 0; burst < kBursts; ++burst) {
    pool.parallel_for(kN, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) data[i] += i;
    });
  }
  // Every index visited exactly once per burst: data[i] == kBursts * i.
  for (std::size_t i = 0; i < kN; i += 997) {
    ASSERT_EQ(data[i], static_cast<std::uint64_t>(kBursts) * i) << "index " << i;
  }
}

TEST(ThreadPoolStress, ParallelTasksRunEachTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 512;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> hits(kTasks);
    pool.parallel_tasks(kTasks, [&](std::size_t task) {
      hits[task].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "task " << i;
    }
  }
}

TEST(ThreadPoolStress, ResultsOfParallelReductionMatchSequential) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 100'000;
  std::vector<std::uint64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  // Per-chunk partials published only through the pool's completion barrier.
  Mutex mutex;
  std::uint64_t total = 0;
  pool.parallel_for(kN, [&](std::size_t lo, std::size_t hi) {
    std::uint64_t partial = 0;
    for (std::size_t i = lo; i < hi; ++i) partial += values[i];
    LockGuard<Mutex> lock(mutex);
    total += partial;
  });
  EXPECT_EQ(total, kN * (kN + 1) / 2);
}

}  // namespace
}  // namespace cyclops
