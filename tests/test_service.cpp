// Tests for the multi-tenant service layer: epoch-versioned snapshot store
// (pinning, retirement, immutability), scheduler admission/backpressure,
// priorities, per-tenant concurrency limits, cancellation, and the
// cross-epoch immutability regression the subsystem exists to guarantee —
// results on a pinned epoch are byte-identical before and after a snapshot
// transition, on every engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cyclops/common/thread_pool.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/service/service.hpp"

namespace cyclops::service {
namespace {

graph::EdgeList test_graph() { return graph::gen::rmat(7, 700, 123); }  // 128 vertices

core::TopologyDelta test_delta() {
  core::TopologyDelta delta;
  delta.add_edge(0, 100, 2.0);
  delta.add_edge(100, 3, 1.5);
  delta.remove_edge(0, 1);
  return delta;
}

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.snapshot.machines = 2;
  cfg.snapshot.workers_per_machine = 2;
  cfg.scheduler.workers = 2;
  return cfg;
}

JobSpec spec_for(Algo algo, EngineSel engine, const std::string& tenant = "t0") {
  JobSpec spec;
  spec.algo = algo;
  spec.engine = engine;
  spec.tenant = tenant;
  spec.max_supersteps = 30;
  return spec;
}

// ---- snapshot store ---------------------------------------------------------

TEST(SnapshotStore, PublishesEpochsAndRetiresUnpinned) {
  SnapshotStore store(test_graph(), SnapshotConfig{});
  EXPECT_EQ(store.current_epoch(), 0u);
  EXPECT_EQ(store.live_snapshots(), 1u);

  const auto epoch = store.apply(test_delta());
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(store.current_epoch(), 1u);
  // Nothing pinned epoch 0, so its storage is gone.
  EXPECT_EQ(store.live_snapshots(), 1u);
  EXPECT_EQ(store.stats().epochs_published, 2u);
  EXPECT_EQ(store.stats().epochs_retired, 1u);
}

TEST(SnapshotStore, PinnedEpochOutlivesTransition) {
  SnapshotStore store(test_graph(), SnapshotConfig{});
  SnapshotRef pinned = store.current();
  const std::uint32_t crc0 = pinned->edge_checksum();

  store.apply(test_delta());
  EXPECT_EQ(store.live_snapshots(), 2u);  // epoch 0 pinned + epoch 1 current
  EXPECT_EQ(pinned->epoch(), 0u);
  EXPECT_EQ(pinned->edge_checksum(), crc0);  // pinned storage untouched
  EXPECT_NE(store.current()->edge_checksum(), crc0);

  pinned.reset();
  EXPECT_EQ(store.live_snapshots(), 1u);
}

TEST(SnapshotStore, SnapshotPrebuildsAllPartitions) {
  SnapshotConfig cfg;
  cfg.machines = 2;
  cfg.workers_per_machine = 3;
  SnapshotStore store(test_graph(), cfg);
  const auto snap = store.current();
  EXPECT_EQ(snap->edge_cut().num_parts(), 6u);
  EXPECT_EQ(snap->mt_edge_cut().num_parts(), 2u);
  EXPECT_EQ(snap->vertex_cut().num_parts(), 2u);
  EXPECT_GE(snap->build_s(), 0.0);
}

// ---- scheduler --------------------------------------------------------------

TEST(JobScheduler, RunsJobAndReportsStats) {
  Service svc(test_graph(), small_config());
  const auto sub = svc.submit(spec_for(Algo::kPageRank, EngineSel::kCyclops));
  ASSERT_TRUE(sub.accepted);
  svc.scheduler().wait(sub.id);

  const auto stats = svc.scheduler().stats_for(sub.id);
  EXPECT_EQ(stats.outcome, "ok");
  EXPECT_EQ(stats.algo, "pr");
  EXPECT_EQ(stats.engine, "cyclops");
  EXPECT_EQ(stats.epoch, 0u);
  EXPECT_GT(stats.supersteps, 0u);
  EXPECT_GE(stats.finished_s, stats.started_s);

  const auto result = svc.scheduler().result_for(sub.id);
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->payload.empty());
  EXPECT_NE(result->crc, 0u);
}

TEST(JobScheduler, RejectsInvalidSpecsWithReason) {
  Service svc(test_graph(), small_config());
  // GAS has no CC program; ALS needs a bipartite split.
  const auto gas_cc = svc.submit(spec_for(Algo::kCc, EngineSel::kGas));
  EXPECT_FALSE(gas_cc.accepted);
  EXPECT_NE(gas_cc.reason.find("gas engine"), std::string::npos);
  const auto als = svc.submit(spec_for(Algo::kAls, EngineSel::kCyclops));
  EXPECT_FALSE(als.accepted);
  EXPECT_EQ(svc.scheduler().counters().rejected, 2u);
  svc.wait_all();
}

TEST(JobScheduler, BoundedQueueRejectsWithQueueFull) {
  ServiceConfig cfg = small_config();
  cfg.scheduler.max_queue = 2;
  cfg.scheduler.start_paused = true;  // nothing dispatches: queue fills
  Service svc(test_graph(), cfg);
  EXPECT_TRUE(svc.submit(spec_for(Algo::kPageRank, EngineSel::kCyclops)).accepted);
  EXPECT_TRUE(svc.submit(spec_for(Algo::kSssp, EngineSel::kHama)).accepted);
  const auto third = svc.submit(spec_for(Algo::kCc, EngineSel::kCyclops));
  EXPECT_FALSE(third.accepted);
  EXPECT_NE(third.reason.find("queue full"), std::string::npos);
  EXPECT_EQ(svc.scheduler().counters().rejected, 1u);
  svc.scheduler().resume();
  svc.wait_all();
  EXPECT_EQ(svc.scheduler().counters().completed, 2u);
}

TEST(JobScheduler, HigherPriorityDispatchesFirst) {
  ServiceConfig cfg = small_config();
  cfg.scheduler.workers = 1;  // serialize so dispatch order == run order
  cfg.scheduler.start_paused = true;
  Service svc(test_graph(), cfg);
  const auto low = svc.submit(spec_for(Algo::kPageRank, EngineSel::kCyclops, "a"));
  const auto high = svc.submit(spec_for(Algo::kSssp, EngineSel::kCyclops, "b"));
  auto urgent_spec = spec_for(Algo::kCc, EngineSel::kCyclops, "c");
  urgent_spec.priority = 5;
  const auto urgent = svc.submit(urgent_spec);
  svc.scheduler().resume();
  svc.wait_all();

  const auto s_low = svc.scheduler().stats_for(low.id);
  const auto s_high = svc.scheduler().stats_for(high.id);
  const auto s_urgent = svc.scheduler().stats_for(urgent.id);
  EXPECT_LT(s_urgent.started_s, s_low.started_s);   // priority 5 jumps the line
  EXPECT_LT(s_low.started_s, s_high.started_s);     // FIFO within priority 0
}

TEST(JobScheduler, PerTenantLimitPreventsOverlap) {
  ServiceConfig cfg = small_config();
  cfg.scheduler.workers = 4;
  cfg.scheduler.per_tenant_running = 1;
  // Stretch each job with realized wire time so overlap would be visible.
  cfg.scheduler.realize_modeled_factor = 3.0;
  Service svc(test_graph(), cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(svc.submit(spec_for(Algo::kPageRank, EngineSel::kCyclops)).id);
  }
  svc.wait_all();
  std::vector<metrics::JobStats> runs;
  for (const auto id : ids) runs.push_back(svc.scheduler().stats_for(id));
  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) { return a.started_s < b.started_s; });
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GE(runs[i].started_s, runs[i - 1].finished_s)
        << "tenant ran two jobs concurrently despite per_tenant_running=1";
  }
}

TEST(JobScheduler, CancelQueuedButNotRunning) {
  ServiceConfig cfg = small_config();
  cfg.scheduler.start_paused = true;
  Service svc(test_graph(), cfg);
  const auto a = svc.submit(spec_for(Algo::kPageRank, EngineSel::kCyclops));
  const auto b = svc.submit(spec_for(Algo::kSssp, EngineSel::kHama));
  EXPECT_TRUE(svc.scheduler().cancel(b.id));
  EXPECT_EQ(svc.scheduler().stats_for(b.id).outcome, "cancelled");
  svc.scheduler().resume();
  svc.scheduler().wait(a.id);
  EXPECT_FALSE(svc.scheduler().cancel(a.id));  // already finished
  svc.wait_all();
  const auto counters = svc.scheduler().counters();
  EXPECT_EQ(counters.cancelled, 1u);
  EXPECT_EQ(counters.completed, 1u);
}

// ---- immutability regression ------------------------------------------------

// The subsystem's core guarantee: a job pinned to epoch N produces a
// byte-identical result before and after the store publishes epoch N+1 —
// for every engine family. (Run under TSan this also proves the snapshot
// transition shares no mutable state with in-flight jobs.)
TEST(ImmutabilityRegression, PinnedEpochResultsAreByteIdenticalAcrossTransition) {
  const EngineSel engines[] = {EngineSel::kHama, EngineSel::kCyclops,
                               EngineSel::kCyclopsMT, EngineSel::kGas};
  Service svc(test_graph(), small_config());
  const SnapshotRef epoch0 = svc.snapshots().current();

  std::vector<JobResult> before;
  for (const auto engine : engines) {
    const auto sub = svc.submit(spec_for(Algo::kPageRank, engine));
    ASSERT_TRUE(sub.accepted);
    svc.scheduler().wait(sub.id);
    const auto result = svc.scheduler().result_for(sub.id);
    ASSERT_NE(result, nullptr);
    before.push_back(*result);
  }

  // Publish epoch 1 — the PageRank fixpoint genuinely changes with it.
  svc.apply_delta(test_delta());

  for (std::size_t i = 0; i < std::size(engines); ++i) {
    // Re-run pinned to epoch 0: byte-identical to the pre-transition run.
    const auto pinned = svc.submit(spec_for(Algo::kPageRank, engines[i]), epoch0);
    ASSERT_TRUE(pinned.accepted);
    svc.scheduler().wait(pinned.id);
    const auto again = svc.scheduler().result_for(pinned.id);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(again->payload, before[i].payload)
        << engine_name(engines[i]) << " epoch-0 rerun not byte-identical";
    EXPECT_EQ(again->crc, before[i].crc);
    EXPECT_EQ(svc.scheduler().stats_for(pinned.id).epoch, 0u);

    // And the fresh-epoch run must actually differ (the delta did something).
    const auto fresh = svc.submit(spec_for(Algo::kPageRank, engines[i]));
    ASSERT_TRUE(fresh.accepted);
    svc.scheduler().wait(fresh.id);
    const auto changed = svc.scheduler().result_for(fresh.id);
    ASSERT_NE(changed, nullptr);
    EXPECT_NE(changed->payload, before[i].payload)
        << engine_name(engines[i]) << " ignored the topology delta";
  }
  svc.wait_all();
}

// Jobs racing a snapshot transition: submissions pin whichever epoch is
// current at admission; every job completes against a consistent view.
TEST(ImmutabilityRegression, TransitionConcurrentWithRunningJobs) {
  ServiceConfig cfg = small_config();
  cfg.scheduler.workers = 4;
  Service svc(test_graph(), cfg);
  std::vector<std::uint64_t> ids;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 4; ++i) {
      const auto sub = svc.submit(
          spec_for(i % 2 ? Algo::kPageRank : Algo::kCc, EngineSel::kCyclops,
                   "tenant-" + std::to_string(i)));
      ASSERT_TRUE(sub.accepted);
      ids.push_back(sub.id);
    }
    core::TopologyDelta delta;
    delta.add_edge(static_cast<VertexId>(wave), static_cast<VertexId>(90 + wave));
    svc.apply_delta(delta);
  }
  svc.wait_all();
  for (const auto id : ids) {
    EXPECT_EQ(svc.scheduler().stats_for(id).outcome, "ok");
  }
  EXPECT_EQ(svc.snapshots().current_epoch(), 3u);
  EXPECT_EQ(svc.scheduler().counters().completed, ids.size());
  // Only the store's own reference should survive the drain.
  EXPECT_EQ(svc.snapshots().live_snapshots(), 1u);
}

}  // namespace
}  // namespace cyclops::service
