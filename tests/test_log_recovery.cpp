// Log-based localized recovery tests: MessageLog backings and verification
// counters, replay fidelity (bit-identical values AND bit-identical wire
// digest vs a fault-free run) across all three engines, cost-model ordering
// of the recovery modes, corrupt-checkpoint fallback accounting, retry
// exhaustion in log mode, and a double fault landing during a replay window.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/cc.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/crc32.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "cyclops/runtime/recovery.hpp"
#include "cyclops/sim/message_log.hpp"
#include "test_util.hpp"

namespace cyclops {
namespace {

template <typename Values>
void expect_bit_identical(const Values& got, const Values& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "vertex " << i;
  }
}

std::vector<std::uint8_t> payload_bytes(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

// --- MessageLog unit tests -------------------------------------------------

TEST(MessageLog, MemoryBackingVerifiesBitForBit) {
  sim::MessageLog log;
  const auto p1 = payload_bytes({1, 2, 3, 4});
  const auto p2 = payload_bytes({9, 8, 7});
  log.append(3, 1, 0, 0, 4, 2, p1, crc32(p1));
  log.append(3, 1, 4, 0, 0, 1, p2, crc32(p2));
  EXPECT_EQ(log.stats().logged_packages, 2u);
  EXPECT_EQ(log.stats().logged_messages, 3u);
  EXPECT_EQ(log.stats().logged_bytes, 7u);

  EXPECT_TRUE(log.verify_replayed(3, 1, 0, 0, 4, p1));
  EXPECT_EQ(log.stats().verified_packages, 1u);
  EXPECT_EQ(log.stats().verified_bytes, 4u);

  // A single differing byte is a mismatch, not a pass.
  auto tampered = p2;
  tampered[1] ^= 0x01;
  EXPECT_FALSE(log.verify_replayed(3, 1, 4, 0, 0, tampered));
  EXPECT_EQ(log.stats().mismatched_packages, 1u);

  // A replayed package that was never logged is "missing".
  EXPECT_FALSE(log.verify_replayed(4, 1, 0, 0, 4, p1));
  EXPECT_EQ(log.stats().missing_packages, 1u);
}

TEST(MessageLog, LanesWithSameEndpointsAreDistinctEntries) {
  // An MT engine sends one package per compute thread (= fabric lane), all
  // with the same (superstep, exchange, from, to). Each lane must be its own
  // log entry, or replay verification compares thread A's bytes against
  // thread B's package. Regression test for exactly that collision.
  sim::MessageLog log;
  const auto lane0 = payload_bytes({1, 1, 1, 1});
  const auto lane1 = payload_bytes({2, 2, 2});
  const auto lane2 = payload_bytes({3});
  log.append(5, 1, 0, 0, 2, 1, lane0, crc32(lane0));
  log.append(5, 1, 0, 1, 2, 1, lane1, crc32(lane1));
  log.append(5, 1, 0, 2, 2, 1, lane2, crc32(lane2));
  EXPECT_EQ(log.entry_count(), 3u);

  EXPECT_TRUE(log.verify_replayed(5, 1, 0, 0, 2, lane0));
  EXPECT_TRUE(log.verify_replayed(5, 1, 0, 1, 2, lane1));
  EXPECT_TRUE(log.verify_replayed(5, 1, 0, 2, 2, lane2));
  EXPECT_EQ(log.stats().verified_packages, 3u);
  EXPECT_EQ(log.stats().mismatched_packages, 0u);

  // Replaying lane 1's bytes under lane 0's key must NOT pass.
  EXPECT_FALSE(log.verify_replayed(5, 1, 0, 0, 2, lane1));
  EXPECT_EQ(log.stats().mismatched_packages, 1u);
}

TEST(MessageLog, SpillBackingRoundTrips) {
  sim::MessageLog log(sim::LogStoreKind::kSpill, ::testing::TempDir());
  EXPECT_EQ(log.kind(), sim::LogStoreKind::kSpill);
  const auto p = payload_bytes({0xde, 0xad, 0xbe, 0xef, 0x42});
  log.append(1, 1, 0, 0, 2, 1, p, crc32(p));
  log.append(2, 1, 2, 0, 0, 1, p, crc32(p));
  EXPECT_TRUE(log.verify_replayed(1, 1, 0, 0, 2, p));
  EXPECT_TRUE(log.verify_replayed(2, 1, 2, 0, 0, p));
  auto wrong = p;
  wrong[0] = 0;
  EXPECT_FALSE(log.verify_replayed(2, 1, 2, 0, 0, wrong));
  EXPECT_EQ(log.stats().verified_packages, 2u);
  EXPECT_EQ(log.stats().mismatched_packages, 1u);
}

TEST(MessageLog, TruncateDropsIndexKeepsCumulativeStats) {
  sim::MessageLog log;
  const auto p = payload_bytes({5, 5});
  for (Superstep s = 0; s < 4; ++s) log.append(s, 1, 0, 0, 1, 1, p, crc32(p));
  EXPECT_EQ(log.entry_count(), 4u);
  log.truncate_before(2);
  EXPECT_EQ(log.entry_count(), 2u);
  EXPECT_EQ(log.stats().logged_packages, 4u);  // stats stay cumulative
  EXPECT_EQ(log.find(1, 1, 0, 0, 1), nullptr);
  EXPECT_NE(log.find(2, 1, 0, 0, 1), nullptr);
}

TEST(MessageLog, RefeedPricesOnlyTrafficIntoDeadMachine) {
  // Topology 2 machines x 2 workers: workers {0,1} on machine 0, {2,3} on 1.
  sim::Topology topo;
  topo.machines = 2;
  topo.workers_per_machine = 2;
  const sim::CostModel model = sim::CostModel::hama_java();
  sim::MessageLog log;
  const auto p = payload_bytes({1, 2, 3, 4, 5, 6, 7, 8});
  log.append(5, 1, 2, 0, 0, 4, p, crc32(p));  // survivor -> dead machine 0
  log.append(5, 1, 0, 0, 2, 4, p, crc32(p));  // dead machine's own outbound
  log.append(9, 1, 2, 0, 1, 4, p, crc32(p));  // right direction, outside window

  // One qualifying package in [5,6): priced as a single bulk re-send (one
  // RPC + the logged bytes), not per-application-message marshalling.
  const double us = log.refeed_wire_us(topo, model, /*dead=*/0, 5, 6);
  EXPECT_DOUBLE_EQ(us, model.remote_cost_us(1, p.size()));
  EXPECT_EQ(log.refeed_wire_us(topo, model, 0, 6, 9), 0.0);
}

// --- Replay fidelity: values and wire digest must match a fault-free run ---

struct Fidelity {
  metrics::RecoveryStats recovery;
  std::uint64_t digest = 0;
};

void expect_faithful(const Fidelity& f, std::uint64_t clean_digest,
                     std::uint32_t expected_recoveries = 1) {
  EXPECT_EQ(f.recovery.recoveries, expected_recoveries);
  EXPECT_EQ(f.digest, clean_digest) << "wire digest diverged from fault-free run";
  EXPECT_GT(f.recovery.replay_verified_packages, 0u);
  EXPECT_EQ(f.recovery.replay_log_mismatches, 0u);
  EXPECT_GT(f.recovery.log_packages, 0u);
}

TEST(LogRecovery, CyclopsPageRankReplayIsBitFaithful) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 200;

  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 10;
  plan.crash_machine = 2;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  EXPECT_TRUE(outcome.engine->replicas_consistent());
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, CyclopsSsspParallelReplayIsBitFaithful) {
  graph::gen::RoadSpec spec;
  spec.rows = 14;
  spec.cols = 14;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  const auto part = test::hash_partition(g, 3);
  algo::SsspCyclops sssp;
  sssp.source = 0;
  core::Config cfg = core::Config::cyclops(3, 1);
  cfg.max_supersteps = 400;

  core::Engine<algo::SsspCyclops> clean(g, part, sssp, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 7;
  plan.crash_machine = 1;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 4;
  opts.recovery = runtime::RecoveryMode::kLogParallel;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::SsspCyclops>>(g, part, sssp,
                                                                 faulty);
      },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, CyclopsCcReplayIsBitFaithful) {
  // A lattice has a large diameter, so min-label propagation runs for ~28
  // supersteps — plenty of room for a mid-run crash with a non-empty window.
  graph::gen::RoadSpec spec;
  spec.rows = 14;
  spec.cols = 14;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  const auto part = test::hash_partition(g, 4);
  algo::CcCyclops cc;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 100;

  core::Engine<algo::CcCyclops> clean(g, part, cc, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 7;
  plan.crash_machine = 3;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] { return std::make_unique<core::Engine<algo::CcCyclops>>(g, part, cc, faulty); },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, CyclopsMtPageRankReplayIsBitFaithful) {
  // The MT engine sends one package per compute thread between each worker
  // pair — per-lane log keys are what keep these from colliding (see
  // MessageLog.LanesWithSameEndpointsAreDistinctEntries for the unit-level
  // version). 4 threads means 4 same-(from,to) packages per exchange.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops_mt(4, 4, 2);
  cfg.max_supersteps = 200;

  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 10;
  plan.crash_machine = 2;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  EXPECT_TRUE(outcome.engine->replicas_consistent());
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, BspPageRankReplayIsBitFaithful) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankBsp pr;
  pr.epsilon = 1e-11;
  bsp::Config cfg = bsp::Config::workers(4);
  cfg.max_supersteps = 200;

  bsp::Engine<algo::PageRankBsp> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 10;
  plan.crash_machine = 2;
  bsp::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.mode = runtime::CheckpointMode::kHeavyweight;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<bsp::Engine<algo::PageRankBsp>>(g, part, pr, faulty);
      },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, BspSsspParallelReplayIsBitFaithful) {
  graph::gen::RoadSpec spec;
  spec.rows = 14;
  spec.cols = 14;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  const auto part = test::hash_partition(g, 3);
  algo::SsspBsp sssp;
  sssp.source = 0;
  bsp::Config cfg = bsp::Config::workers(3);
  cfg.max_supersteps = 400;

  bsp::Engine<algo::SsspBsp> clean(g, part, sssp, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 6;
  plan.crash_machine = 0;
  bsp::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 4;
  opts.mode = runtime::CheckpointMode::kHeavyweight;
  opts.recovery = runtime::RecoveryMode::kLogParallel;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] { return std::make_unique<bsp::Engine<algo::SsspBsp>>(g, part, sssp, faulty); },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, BspCcReplayIsBitFaithful) {
  graph::gen::RoadSpec spec;
  spec.rows = 14;
  spec.cols = 14;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  const auto part = test::hash_partition(g, 4);
  algo::CcBsp cc;
  bsp::Config cfg = bsp::Config::workers(4);
  cfg.max_supersteps = 100;

  bsp::Engine<algo::CcBsp> clean(g, part, cc, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 7;
  plan.crash_machine = 1;
  bsp::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.mode = runtime::CheckpointMode::kHeavyweight;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] { return std::make_unique<bsp::Engine<algo::CcBsp>>(g, part, cc, faulty); },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, GasPageRankReplayIsBitFaithful) {
  const graph::EdgeList e = graph::gen::rmat(8, 1600, 2014);
  const graph::Csr g = graph::Csr::build(e);
  const auto part = partition::RandomVertexCut{}.partition(g, 4);
  algo::PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  pr.epsilon = 1e-11;
  gas::Config cfg = gas::Config::workers(4);
  cfg.max_iterations = 200;

  gas::Engine<algo::PageRankGas> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 10;
  plan.crash_machine = 2;
  gas::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 4;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<gas::Engine<algo::PageRankGas>>(g, part, pr, faulty);
      },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  const auto got = outcome.engine->values();
  const auto want = clean.values();
  ASSERT_EQ(got.size(), want.size());
  for (VertexId v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v].rank, want[v].rank) << "vertex " << v;
  }
}

TEST(LogRecovery, GasSsspReplayIsBitFaithful) {
  const graph::EdgeList e = graph::gen::rmat(8, 1600, 99);
  const graph::Csr g = graph::Csr::build(e);
  const auto part = partition::RandomVertexCut{}.partition(g, 3);
  algo::SsspGas sssp;
  sssp.source = 0;
  gas::Config cfg = gas::Config::workers(3);
  cfg.max_iterations = 200;

  gas::Engine<algo::SsspGas> clean(g, part, sssp, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 3;
  plan.crash_machine = 1;
  gas::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 2;
  opts.recovery = runtime::RecoveryMode::kLogParallel;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] { return std::make_unique<gas::Engine<algo::SsspGas>>(g, part, sssp, faulty); },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, SpillBackedLogIsBitFaithful) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 200;

  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 10;  // checkpoints at 3/6/9 -> window [9, 10) actually replays
  plan.crash_machine = 1;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>(sim::LogStoreKind::kSpill,
                                                         ::testing::TempDir());

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get());

  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

// --- Cost model: localized replay must undercut global rollback ------------

TEST(LogRecovery, LocalizedRecoveryIsCheaperThanRollback) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 12000, 5));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config base = core::Config::cyclops(4, 1);
  base.max_supersteps = 80;

  auto run_mode = [&](runtime::RecoveryMode mode) {
    sim::FaultPlan plan;
    plan.crash_at = 19;  // checkpoints at 5/10/15 -> a 4-superstep window
    plan.crash_machine = 2;
    core::Config cfg = base;
    cfg.faults = std::make_shared<sim::FaultInjector>(plan);
    std::shared_ptr<sim::MessageLog> log;
    if (mode != runtime::RecoveryMode::kRollback) {
      log = std::make_shared<sim::MessageLog>();
      cfg.message_log = log;
    }
    runtime::RecoveryOptions opts;
    opts.checkpoint_every = 5;
    opts.recovery = mode;
    opts.log = log.get();
    auto outcome = runtime::run_with_recovery(
        [&] {
          return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                       cfg);
        },
        opts, cfg.faults.get());
    EXPECT_EQ(outcome.recovery.recoveries, 1u)
        << runtime::recovery_mode_name(mode);
    return outcome.recovery;
  };

  const auto rollback = run_mode(runtime::RecoveryMode::kRollback);
  const auto logged = run_mode(runtime::RecoveryMode::kLog);
  const auto parallel = run_mode(runtime::RecoveryMode::kLogParallel);

  // Same fault, same window: all three lose the same supersteps but charge
  // them differently. Rollback redoes the whole cluster's window; log-based
  // modes charge one machine's share (+ log re-feed wire time).
  EXPECT_EQ(rollback.lost_supersteps, logged.lost_supersteps);
  EXPECT_EQ(rollback.lost_supersteps, parallel.lost_supersteps);
  EXPECT_GT(rollback.replay_window_s, 0.0);
  EXPECT_LT(logged.modeled_recovery_s, rollback.modeled_recovery_s);
  EXPECT_GT(parallel.modeled_recovery_s, 0.0);
  // Rollback modes never touch the log counters.
  EXPECT_EQ(rollback.replay_verified_packages, 0u);
  EXPECT_GT(logged.replay_verified_packages, 0u);
  EXPECT_GT(parallel.replay_verified_packages, 0u);
}

// --- Corrupt checkpoints are counted, not silently swallowed ---------------

/// Wraps MemoryCheckpointStore but hands back a bit-flipped sealed frame, so
/// every restore attempt fails its CRC and recovery must fall back to 0.
class CorruptingStore final : public runtime::CheckpointStore {
 public:
  void put(Superstep superstep, std::vector<std::uint8_t> sealed) override {
    inner_.put(superstep, std::move(sealed));
  }
  [[nodiscard]] std::optional<std::pair<Superstep, std::vector<std::uint8_t>>> latest()
      const override {
    auto snapshot = inner_.latest();
    if (snapshot && !snapshot->second.empty()) {
      snapshot->second[snapshot->second.size() / 2] ^= 0x20;
    }
    return snapshot;
  }

 private:
  runtime::MemoryCheckpointStore inner_;
};

TEST(LogRecovery, CorruptCheckpointIsCountedAndReplayedFromScratch) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(7, 600, 5));
  const auto part = test::hash_partition(g, 2);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-10;
  core::Config cfg = core::Config::cyclops(2, 1);
  cfg.max_supersteps = 60;
  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 6;
  plan.crash_machine = 1;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  CorruptingStore store;
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 2;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get(), &store);

  // The checkpoint at boundary 4 existed but was unusable: counted, and the
  // whole prefix was replayed (verified against the log) instead.
  EXPECT_EQ(outcome.recovery.corrupt_checkpoints, 1u);
  EXPECT_EQ(outcome.recovery.recoveries, 1u);
  EXPECT_EQ(outcome.recovery.lost_supersteps, 6u);
  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, LogModeStillEscalatesWhenRetriesExhausted) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(6, 300, 5));
  const auto part = test::hash_partition(g, 2);
  algo::PageRankCyclops pr;
  core::Config cfg = core::Config::cyclops(2, 1);
  cfg.max_supersteps = 30;
  sim::FaultPlan plan;
  plan.crash_at = 2;
  plan.crash_machine = 0;
  plan.crash2_at = 3;
  plan.crash2_machine = 1;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 0;
  opts.max_recoveries = 2;  // second crash exhausts the budget
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  EXPECT_THROW(
      (void)runtime::run_with_recovery(
          [&] {
            return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                         faulty);
          },
          opts, faulty.faults.get()),
      sim::FaultError);
}

// --- Double fault: a second machine dies while the first replay window is
// still the digest-suppression frontier --------------------------------------

TEST(LogRecovery, DoubleFaultDuringReplayStaysBitFaithful) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 200;

  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  // Machine 2 dies at superstep 10; the replacement resumes from 9 and
  // machine 3 dies at the very next barrier — inside the digest window the
  // first recovery armed (digest_covered_until must take the max, or the
  // second replay would double-fold the wire digest).
  sim::FaultPlan plan;
  plan.crash_at = 10;
  plan.crash_machine = 2;
  plan.crash2_at = 10;
  plan.crash2_machine = 3;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get());

  EXPECT_EQ(outcome.recovery.faults_detected, 2u);
  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest, /*expected_recoveries=*/2);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(LogRecovery, DoubleFaultAfterReplayStaysBitFaithful) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 200;

  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();
  const std::uint64_t clean_digest = clean.fabric().wire_digest();

  sim::FaultPlan plan;
  plan.crash_at = 10;
  plan.crash_machine = 1;
  plan.crash2_at = 13;
  plan.crash2_machine = 3;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  faulty.message_log = std::make_shared<sim::MessageLog>();

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.recovery = runtime::RecoveryMode::kLog;
  opts.log = faulty.message_log.get();
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get());

  EXPECT_EQ(outcome.recovery.recoveries, 2u);
  expect_faithful({outcome.recovery, outcome.engine->fabric().wire_digest()},
                  clean_digest, /*expected_recoveries=*/2);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

}  // namespace
}  // namespace cyclops
