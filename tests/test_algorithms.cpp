// Tests for the algorithm layer itself: sequential references, the ALS
// linear-algebra kernel, and the program helpers shared across engines.

#include <gtest/gtest.h>

#include <cmath>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/als.hpp"
#include "cyclops/algorithms/cd.hpp"
#include "cyclops/algorithms/datasets.hpp"
#include "cyclops/algorithms/linalg.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/graph/generators.hpp"
#include "test_util.hpp"

namespace cyclops::algo {
namespace {

TEST(Linalg, CholeskySolvesIdentity) {
  Mat<4> a;
  a.add_diagonal(1.0);
  Vec<4> b{1, 2, 3, 4};
  Vec<4> x{};
  ASSERT_TRUE(cholesky_solve(a, b, x));
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[i], b[i], 1e-12);
}

TEST(Linalg, CholeskySolvesSpdSystem) {
  // A = M^T M + I is SPD for any M.
  Mat<3> a;
  const Vec<3> rows[3] = {{2, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  for (const auto& r : rows) a.add_outer(r);
  a.add_diagonal(1.0);
  const Vec<3> truth{1.0, -2.0, 0.5};
  Vec<3> b{};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) b[r] += a(r, c) * truth[c];
  }
  Vec<3> x{};
  ASSERT_TRUE(cholesky_solve(a, b, x));
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], truth[i], 1e-10);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Mat<2> a;
  a(0, 0) = 1;
  a(1, 1) = -1;
  Vec<2> b{1, 1};
  Vec<2> x{};
  EXPECT_FALSE(cholesky_solve(a, b, x));
}

TEST(Linalg, DotAndAxpy) {
  Vec<3> a{1, 2, 3};
  const Vec<3> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  axpy(a, 2.0, b);
  EXPECT_DOUBLE_EQ(a[0], 9.0);
  EXPECT_DOUBLE_EQ(a[2], 15.0);
}

TEST(PageRankReference, SumsToOneOnStronglyConnected) {
  graph::EdgeList e(3);
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  const auto rank = pagerank_reference(graph::Csr::build(e));
  EXPECT_NEAR(rank[0] + rank[1] + rank[2], 1.0, 1e-10);
  // Symmetric cycle: all equal.
  EXPECT_NEAR(rank[0], rank[1], 1e-12);
}

TEST(PageRankReference, HubGetsHighestRank) {
  // Everyone links to vertex 0.
  graph::EdgeList e(5);
  for (VertexId v = 1; v < 5; ++v) e.add(v, 0);
  e.add(0, 1);
  const auto rank = pagerank_reference(graph::Csr::build(e));
  for (VertexId v = 1; v < 5; ++v) EXPECT_GT(rank[0], rank[v]);
}

TEST(SsspReference, KnownDistances) {
  const auto dist = sssp_reference(graph::Csr::build(test::diamond_graph()), 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
  EXPECT_DOUBLE_EQ(dist[3], 3.0);
}

TEST(CdHelpers, MajorityLabelTieBreaksSmallest) {
  std::vector<Label> labels{5, 3, 5, 3, 9};
  EXPECT_EQ(detail::majority_label(labels, 0), 3u);
  std::vector<Label> empty;
  EXPECT_EQ(detail::majority_label(empty, 7), 7u);
  std::vector<Label> single{2};
  EXPECT_EQ(detail::majority_label(single, 0), 2u);
}

TEST(CdReference, PerfectCommunitiesOnDisjointCliques) {
  graph::EdgeList e(8);
  for (VertexId v = 0; v < 4; ++v) {
    for (VertexId u = v + 1; u < 4; ++u) e.add_undirected(v, u);
  }
  for (VertexId v = 4; v < 8; ++v) {
    for (VertexId u = v + 1; u < 8; ++u) e.add_undirected(v, u);
  }
  const graph::Csr g = graph::Csr::build(e);
  const auto labels = cd_reference(g, 20);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[7]);
  EXPECT_NE(labels[0], labels[4]);
  EXPECT_DOUBLE_EQ(label_agreement(g, labels), 1.0);
}

TEST(AlsHelpers, InitFactorDeterministicAndBounded) {
  const Factor a = als_init_factor(17);
  const Factor b = als_init_factor(17);
  EXPECT_EQ(a, b);
  for (double x : a) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
  EXPECT_NE(als_init_factor(17), als_init_factor(18));
}

TEST(AlsHelpers, SolveRecoversExactFactorization) {
  // If ratings are exactly p·q for a known p, solving with those q (and tiny
  // lambda) recovers p.
  Factor p{};
  for (std::size_t k = 0; k < kAlsRank; ++k) p[k] = 0.1 * static_cast<double>(k + 1);
  std::vector<Factor> qs;
  std::vector<double> ratings;
  for (int i = 0; i < 30; ++i) {
    qs.push_back(als_init_factor(static_cast<VertexId>(100 + i)));
    ratings.push_back(dot(p, qs.back()));
  }
  const Factor solved = als_solve(qs, ratings, 1e-12);
  for (std::size_t k = 0; k < kAlsRank; ++k) EXPECT_NEAR(solved[k], p[k], 1e-6);
}

TEST(AlsReference, RmseImprovesMonotonicallyEarly) {
  graph::gen::BipartiteSpec spec{150, 50, 8};
  const graph::Csr g = graph::Csr::build(graph::gen::bipartite_ratings(spec, 3));
  double prev = 1e100;
  for (unsigned rounds : {2u, 4u, 8u}) {
    const auto factors = als_reference(g, spec.users, rounds, 0.05);
    const double rmse = als_rmse(g, spec.users, factors);
    EXPECT_LT(rmse, prev * 1.001);
    prev = rmse;
  }
  EXPECT_LT(prev, 1.0);  // 8 rounds fit 5-star ratings well
}

TEST(Datasets, AllSevenGenerated) {
  DatasetScale scale;
  scale.factor = 0.125;  // keep the test snappy
  const auto all = make_all_datasets(scale);
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0].name, "Amazon");
  EXPECT_EQ(all[4].name, "SYN-GL");
  EXPECT_EQ(all[6].name, "RoadCA");
  for (const auto& d : all) {
    EXPECT_GT(d.edges.num_edges(), 100u) << d.name;
    EXPECT_GT(d.edges.num_vertices(), 10u) << d.name;
    EXPECT_FALSE(d.describe().empty());
  }
  EXPECT_GT(all[4].num_users, 0u);
}

TEST(Datasets, ScaleFactorGrowsGraphs) {
  DatasetScale small;
  small.factor = 0.125;
  DatasetScale large;
  large.factor = 0.5;
  EXPECT_GT(make_gweb(large).edges.num_edges(), make_gweb(small).edges.num_edges());
  EXPECT_GT(make_road_ca(large).edges.num_vertices(),
            make_road_ca(small).edges.num_vertices());
}

TEST(Datasets, KeepPaperEdgeVertexRatios) {
  // The stand-ins should preserve the relative density ordering of the paper
  // datasets: Wiki densest of the web graphs, RoadCA sparsest overall.
  const auto all = make_all_datasets(DatasetScale{0.25, 99});
  auto density = [](const Dataset& d) {
    return static_cast<double>(d.edges.num_edges()) /
           static_cast<double>(d.edges.num_vertices());
  };
  EXPECT_GT(density(all[3]), density(all[1]));  // Wiki > GWeb
  EXPECT_LT(density(all[6]), 5.0);              // road lattice stays sparse
}

}  // namespace
}  // namespace cyclops::algo
