// Tests for the Cyclops engine — the paper's contribution. Covers algorithm
// correctness for all four workloads, the engine's core invariants (replica
// consistency, at most one sync message per replica per superstep, dynamic
// computation), CyclopsMT thread configurations, checkpoint/restore (masters
// only), and fine-grained convergence detection.

#include <gtest/gtest.h>

#include <cmath>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/als.hpp"
#include "cyclops/algorithms/cd.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/multilevel.hpp"
#include "test_util.hpp"

namespace cyclops::core {
namespace {

using algo::AlsCyclops;
using algo::CdCyclops;
using algo::PageRankCyclops;
using algo::SsspCyclops;

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// ---------- PageRank ----------

TEST(CyclopsPageRank, MatchesReferenceOnFigure6) {
  const graph::Csr g = graph::Csr::build(test::figure6_graph());
  PageRankCyclops pr;
  pr.epsilon = 1e-12;
  Config cfg = Config::cyclops(3, 1);
  cfg.max_supersteps = 300;
  Engine<PageRankCyclops> engine(g, test::owners({0, 0, 1, 1, 2, 2}, 3), pr, cfg);
  (void)engine.run();
  EXPECT_LT(max_abs_diff(engine.values(), algo::pagerank_reference(g)), 1e-8);
}

TEST(CyclopsPageRank, MatchesReferenceOnRmat) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 3000, 77));
  PageRankCyclops pr;
  pr.epsilon = 1e-12;
  Config cfg = Config::cyclops(2, 2);
  cfg.max_supersteps = 300;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
  (void)engine.run();
  EXPECT_LT(max_abs_diff(engine.values(), algo::pagerank_reference(g)), 1e-8);
}

TEST(CyclopsPageRank, DeterministicAcrossWorkerCounts) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1200, 5));
  auto run_with = [&](MachineId machines, WorkerId wpm) {
    PageRankCyclops pr;
    pr.epsilon = 1e-11;
    Config cfg = Config::cyclops(machines, wpm);
    cfg.max_supersteps = 200;
    Engine<PageRankCyclops> engine(
        g, test::hash_partition(g, machines * wpm), pr, cfg);
    (void)engine.run();
    return engine.values();
  };
  const auto v1 = run_with(1, 1);
  const auto v6 = run_with(3, 2);
  const auto v8 = run_with(8, 1);
  EXPECT_LT(max_abs_diff(v1, v6), 1e-9);
  EXPECT_LT(max_abs_diff(v1, v8), 1e-9);
}

TEST(CyclopsPageRank, MtThreadsDoNotChangeResults) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 2500, 7));
  auto run_mt = [&](unsigned threads, unsigned receivers) {
    PageRankCyclops pr;
    pr.epsilon = 1e-11;
    Config cfg = Config::cyclops_mt(4, threads, receivers);
    cfg.max_supersteps = 200;
    Engine<PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
    (void)engine.run();
    return engine.values();
  };
  const auto v11 = run_mt(1, 1);
  const auto v42 = run_mt(4, 2);
  const auto v88 = run_mt(8, 8);
  EXPECT_LT(max_abs_diff(v11, v42), 1e-12);
  EXPECT_LT(max_abs_diff(v11, v88), 1e-12);
}

TEST(CyclopsPageRank, DynamicComputationShrinksActiveSet) {
  // Fig 10(2): unlike BSP, the Cyclops active set decays as vertices
  // converge.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 6000, 3));
  PageRankCyclops pr;
  pr.epsilon = 1e-9;
  Config cfg = Config::cyclops(4, 1);
  cfg.max_supersteps = 60;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
  const auto stats = engine.run();
  ASSERT_GT(stats.supersteps.size(), 6u);
  const auto& first = stats.supersteps.front();
  const auto& late = stats.supersteps[stats.supersteps.size() - 2];
  EXPECT_LT(late.active_vertices, (first.active_vertices * 7) / 10);
  // ... and by termination every vertex is quiescent.
  EXPECT_EQ(stats.supersteps.back().converged_vertices, g.num_vertices());
  EXPECT_GT(stats.supersteps.back().converged_vertices,
            stats.supersteps.front().converged_vertices);
}

// ---------- Engine invariants ----------

TEST(CyclopsInvariants, AtMostOneMessagePerReplicaPerSuperstep) {
  // §3.4: "each replica only receiving at most one message".
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 3000, 11));
  PageRankCyclops pr;
  pr.epsilon = 1e-9;
  Config cfg = Config::cyclops(6, 1);
  cfg.max_supersteps = 50;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 6), pr, cfg);
  const auto stats = engine.run();
  for (const auto& s : stats.supersteps) {
    EXPECT_LE(s.net.total_messages(), engine.layout().total_replicas);
  }
}

TEST(CyclopsInvariants, ReplicasConsistentWithMastersAfterRun) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 13));
  PageRankCyclops pr;
  pr.epsilon = 1e-10;
  Config cfg = Config::cyclops(4, 1);
  cfg.max_supersteps = 100;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
  (void)engine.run();
  EXPECT_TRUE(engine.replicas_consistent());
}

TEST(CyclopsInvariants, ReplicasConsistentAtEverySuperstep) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 14));
  PageRankCyclops pr;
  pr.epsilon = 1e-9;
  Config cfg = Config::cyclops(5, 1);
  cfg.max_supersteps = 30;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 5), pr, cfg);
  bool all_consistent = true;
  engine.set_observer([&](const metrics::SuperstepStats&, const Engine<PageRankCyclops>& e) {
    all_consistent = all_consistent && e.replicas_consistent();
  });
  (void)engine.run();
  EXPECT_TRUE(all_consistent);
}

TEST(CyclopsInvariants, NoMessagesWithSinglePartition) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1200, 17));
  PageRankCyclops pr;
  Config cfg = Config::cyclops(1, 1);
  cfg.max_supersteps = 30;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 1), pr, cfg);
  const auto stats = engine.run();
  EXPECT_EQ(stats.net_totals().total_messages(), 0u);
  EXPECT_EQ(engine.layout().total_replicas, 0u);
}

TEST(CyclopsInvariants, MessagesScaleWithReplicasNotEdges) {
  // A better partition (fewer replicas) must send fewer messages — the
  // mechanism behind Figure 11(3).
  graph::gen::CommunitySpec spec{12, 60, 8, 0.95};
  const graph::Csr g = graph::Csr::build(graph::gen::planted_communities(spec, 19));
  auto run_messages = [&](const partition::EdgeCutPartition& part) {
    PageRankCyclops pr;
    pr.epsilon = 1e-9;
    Config cfg = Config::cyclops(4, 1);
    cfg.max_supersteps = 25;
    Engine<PageRankCyclops> engine(g, part, pr, cfg);
    const auto stats = engine.run();
    return std::make_pair(stats.net_totals().total_messages(),
                          engine.layout().total_replicas);
  };
  const auto [hash_msgs, hash_reps] = run_messages(test::hash_partition(g, 4));
  const auto [ml_msgs, ml_reps] =
      run_messages(partition::MultilevelPartitioner{}.partition(g, 4));
  EXPECT_LT(ml_reps, hash_reps);
  EXPECT_LT(ml_msgs, hash_msgs);
}

TEST(CyclopsInvariants, NoParsePhase) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 23));
  PageRankCyclops pr;
  Config cfg = Config::cyclops(4, 1);
  cfg.max_supersteps = 20;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
  const auto stats = engine.run();
  EXPECT_DOUBLE_EQ(stats.phase_totals().prs_s, 0.0);
}

// ---------- SSSP ----------

TEST(CyclopsSssp, MatchesDijkstraOnDiamond) {
  const graph::Csr g = graph::Csr::build(test::diamond_graph());
  SsspCyclops sssp;
  sssp.source = 0;
  Engine<SsspCyclops> engine(g, test::hash_partition(g, 2), sssp, Config::cyclops(2, 1));
  (void)engine.run();
  const auto reference = algo::sssp_reference(g, 0);
  for (VertexId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(engine.values()[v], reference[v]);
}

TEST(CyclopsSssp, MatchesDijkstraOnRoadGrid) {
  graph::gen::RoadSpec spec;
  spec.rows = 15;
  spec.cols = 15;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 7));
  SsspCyclops sssp;
  sssp.source = 0;
  Config cfg = Config::cyclops(3, 2);
  cfg.max_supersteps = 500;
  Engine<SsspCyclops> engine(g, test::hash_partition(g, 6), sssp, cfg);
  (void)engine.run();
  const auto reference = algo::sssp_reference(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(engine.values()[v], reference[v], 1e-9) << "vertex " << v;
  }
}

TEST(CyclopsSssp, PushModeTouchesOnlyFrontier) {
  graph::gen::RoadSpec spec;
  spec.rows = 12;
  spec.cols = 12;
  spec.shortcut_fraction = 0.0;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 9));
  SsspCyclops sssp;
  sssp.source = 0;
  Config cfg = Config::cyclops(2, 1);
  cfg.max_supersteps = 300;
  Engine<SsspCyclops> engine(g, test::hash_partition(g, 2), sssp, cfg);
  const auto stats = engine.run();
  EXPECT_EQ(stats.supersteps.front().active_vertices, 1u);  // just the source
  for (const auto& s : stats.supersteps) {
    EXPECT_LT(s.active_vertices, g.num_vertices());
  }
}

// ---------- Community Detection ----------

TEST(CyclopsCd, MatchesSequentialReference) {
  graph::gen::CommunitySpec spec{8, 40, 7, 0.92};
  const graph::Csr g = graph::Csr::build(graph::gen::planted_communities(spec, 29));
  CdCyclops cd;
  Config cfg = Config::cyclops(4, 1);
  cfg.max_supersteps = 40;
  Engine<CdCyclops> engine(g, test::hash_partition(g, 4), cd, cfg);
  const auto stats = engine.run();
  // Engine stopped because no vertex changed; the reference run with the
  // same number of rounds must agree exactly.
  const auto reference = algo::cd_reference(g, static_cast<unsigned>(stats.supersteps.size()));
  const auto labels = engine.values();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(labels[v], reference[v]) << "vertex " << v;
  }
}

TEST(CyclopsCd, FindsPlantedCommunities) {
  graph::gen::CommunitySpec spec{6, 50, 8, 0.95};
  const graph::Csr g = graph::Csr::build(graph::gen::planted_communities(spec, 31));
  CdCyclops cd;
  Config cfg = Config::cyclops(3, 1);
  cfg.max_supersteps = 30;
  Engine<CdCyclops> engine(g, test::hash_partition(g, 3), cd, cfg);
  (void)engine.run();
  const auto labels = engine.values();
  EXPECT_GT(algo::label_agreement(g, labels), 0.7);
}

// ---------- ALS ----------

TEST(CyclopsAls, MatchesSequentialReference) {
  graph::gen::BipartiteSpec spec{120, 40, 6};
  const graph::Csr g = graph::Csr::build(graph::gen::bipartite_ratings(spec, 37));
  AlsCyclops als;
  als.num_users = spec.users;
  als.rounds = 6;
  Config cfg = Config::cyclops(3, 1);
  cfg.max_supersteps = 10;
  Engine<AlsCyclops> engine(g, test::hash_partition(g, 3), als, cfg);
  (void)engine.run();
  const auto reference = algo::als_reference(g, spec.users, 6, als.lambda);
  const auto factors = engine.values();
  double max_diff = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t k = 0; k < algo::kAlsRank; ++k) {
      max_diff = std::max(max_diff, std::abs(factors[v][k] - reference[v][k]));
    }
  }
  EXPECT_LT(max_diff, 1e-8);
}

TEST(CyclopsAls, RmseDecreasesOverTraining) {
  graph::gen::BipartiteSpec spec{200, 60, 8};
  const graph::Csr g = graph::Csr::build(graph::gen::bipartite_ratings(spec, 41));
  std::vector<algo::Factor> init(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) init[v] = algo::als_init_factor(v);
  const double rmse0 = algo::als_rmse(g, spec.users, init);

  AlsCyclops als;
  als.num_users = spec.users;
  als.rounds = 8;
  Config cfg = Config::cyclops(2, 2);
  cfg.max_supersteps = 12;
  Engine<AlsCyclops> engine(g, test::hash_partition(g, 4), als, cfg);
  (void)engine.run();
  const auto factors = engine.values();
  const double rmse = algo::als_rmse(g, spec.users, factors);
  EXPECT_LT(rmse, 0.5 * rmse0);
}

// ---------- Checkpoint / restore ----------

TEST(CyclopsEngine, CheckpointRestoreResumesExactly) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 43));
  const auto part = test::hash_partition(g, 3);
  PageRankCyclops pr;
  pr.epsilon = 1e-11;
  Config cfg = Config::cyclops(3, 1);
  cfg.max_supersteps = 200;

  Engine<PageRankCyclops> full(g, part, pr, cfg);
  (void)full.run();

  Config cfg8 = cfg;
  cfg8.max_supersteps = 8;
  Engine<PageRankCyclops> first(g, part, pr, cfg8);
  (void)first.run();
  ByteWriter snapshot;
  first.checkpoint(snapshot);

  Engine<PageRankCyclops> resumed(g, part, pr, cfg);
  ByteReader reader(snapshot.bytes());
  resumed.restore(reader);
  EXPECT_EQ(resumed.superstep(), 8u);
  (void)resumed.run();
  EXPECT_LT(max_abs_diff(resumed.values(), full.values()), 1e-12);
}

TEST(CyclopsEngine, CheckpointOmitsReplicasAndMessages) {
  // §3.6: Cyclops checkpoints are masters-only — strictly smaller state than
  // an equivalent BSP checkpoint that also saves in-flight messages.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 4000, 47));
  PageRankCyclops pr;
  Config cfg = Config::cyclops(4, 1);
  cfg.max_supersteps = 5;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
  (void)engine.run();
  ByteWriter snap;
  engine.checkpoint(snap);
  // Upper bound: values + shared + flags + per-worker vector headers.
  const std::size_t upper =
      g.num_vertices() * (sizeof(double) * 2 + 1) + 16 * 8 * 4 + 64;
  EXPECT_LT(snap.size(), upper);
}

// ---------- Fine-grained convergence detection (§4.4) ----------

TEST(CyclopsEngine, StopsAtConvergedFraction) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 6000, 53));
  auto run_until = [&](double fraction) {
    PageRankCyclops pr;
    pr.epsilon = 1e-10;
    Config cfg = Config::cyclops(4, 1);
    cfg.max_supersteps = 200;
    cfg.stop_converged_fraction = fraction;
    Engine<PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
    const auto stats = engine.run();
    return std::make_pair(stats.supersteps.size(),
                          static_cast<double>(stats.supersteps.back().converged_vertices) /
                              g.num_vertices());
  };
  const auto [steps90, frac90] = run_until(0.90);
  const auto [steps_full, frac_full] = run_until(1.0);
  EXPECT_LT(steps90, steps_full);
  EXPECT_GE(frac90, 0.90);
  EXPECT_GT(frac_full, frac90);
}

// ---------- CyclopsMT configuration sweep ----------

struct MtCase {
  unsigned threads;
  unsigned receivers;
};

class CyclopsMtSweep : public ::testing::TestWithParam<MtCase> {};

TEST_P(CyclopsMtSweep, AllConfigsProduceCorrectPageRank) {
  const auto [threads, receivers] = GetParam();
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 2000, 59));
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  Config cfg = Config::cyclops_mt(3, threads, receivers);
  cfg.max_supersteps = 200;
  cfg.pool_threads = 2;  // really run chunks on two host threads
  Engine<algo::PageRankCyclops> engine(g, test::hash_partition(g, 3), pr, cfg);
  (void)engine.run();
  EXPECT_LT(max_abs_diff(engine.values(), algo::pagerank_reference(g)), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Configs, CyclopsMtSweep,
                         ::testing::Values(MtCase{1, 1}, MtCase{2, 1}, MtCase{4, 2},
                                           MtCase{8, 2}, MtCase{8, 8}));

// ---------- Memory report ----------

TEST(CyclopsEngine, MemoryReportAccountsReplicas) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 3000, 61));
  PageRankCyclops pr;
  Config cfg = Config::cyclops(6, 1);
  cfg.max_supersteps = 10;
  Engine<PageRankCyclops> engine(g, test::hash_partition(g, 6), pr, cfg);
  (void)engine.run();
  const auto report = engine.memory_report();
  EXPECT_EQ(report.replica_bytes, engine.layout().total_replicas * sizeof(double));
  EXPECT_GT(report.vertex_state_bytes, 0u);
  EXPECT_GT(report.message_churn_bytes, 0u);
  EXPECT_GE(report.peak_bytes(), report.resident_bytes());
}

}  // namespace
}  // namespace cyclops::core
