// Tests for the binary graph format: round-trip fidelity, error handling on
// corrupt/foreign files, and the fast-ingress property it exists for.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cyclops/common/timer.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/graph/loader.hpp"

namespace cyclops::graph {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(BinaryIo, RoundTripPreservesEverything) {
  const EdgeList original = gen::rmat(10, 4000, 77);
  const std::string path = temp_path("roundtrip.cygr");
  save_binary_file(path, original);
  const EdgeList loaded = load_binary_file(path);
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (std::size_t i = 0; i < original.num_edges(); ++i) {
    EXPECT_EQ(loaded.edges()[i], original.edges()[i]);
  }
  std::remove(path.c_str());
}

TEST(BinaryIo, PreservesWeights) {
  gen::RoadSpec spec;
  spec.rows = 8;
  spec.cols = 8;
  const EdgeList original = gen::road_grid(spec, 5);
  const std::string path = temp_path("weights.cygr");
  save_binary_file(path, original);
  const EdgeList loaded = load_binary_file(path);
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (std::size_t i = 0; i < original.num_edges(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.edges()[i].weight, original.edges()[i].weight);
  }
  std::remove(path.c_str());
}

TEST(BinaryIo, EmptyGraphRoundTrips) {
  const std::string path = temp_path("empty.cygr");
  save_binary_file(path, EdgeList{});
  const EdgeList loaded = load_binary_file(path);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsForeignFile) {
  const std::string path = temp_path("foreign.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a graph";
  }
  EXPECT_THROW((void)load_binary_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsTruncatedFile) {
  const EdgeList original = gen::erdos_renyi(50, 200, 9);
  const std::string path = temp_path("truncated.cygr");
  save_binary_file(path, original);
  // Truncate mid-records.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)load_binary_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsMissingFile) {
  EXPECT_THROW((void)load_binary_file("/nonexistent/graph.cygr"), std::runtime_error);
}

TEST(BinaryIo, RejectsOutOfRangeEdge) {
  const EdgeList original = gen::erdos_renyi(10, 20, 11);
  const std::string path = temp_path("corrupt.cygr");
  save_binary_file(path, original);
  {
    // Overwrite the first edge record's src with a huge id.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4 + 4 + 4 + 8);  // magic + version + n + m
    const std::uint32_t bogus = 0xffffff00u;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW((void)load_binary_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BinaryIo, TextAndBinaryAgree) {
  const EdgeList original = gen::rmat(9, 1500, 13);
  const std::string text_path = temp_path("agree.txt");
  const std::string bin_path = temp_path("agree.cygr");
  save_edge_list_file(text_path, original);
  save_binary_file(bin_path, original);
  const EdgeList from_text = load_edge_list_file(text_path);
  const EdgeList from_bin = load_binary_file(bin_path);
  ASSERT_EQ(from_text.num_edges(), from_bin.num_edges());
  for (std::size_t i = 0; i < from_bin.num_edges(); ++i) {
    // Text densifies ids in first-seen order == original order for rmat
    // output sorted by (src, dst) starting at 0... not guaranteed in
    // general, so compare the binary side against the original instead.
    EXPECT_EQ(from_bin.edges()[i], original.edges()[i]);
  }
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

}  // namespace
}  // namespace cyclops::graph
