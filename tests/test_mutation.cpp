// Tests for topology mutation (the §8 future-work extension): delta
// application, state carry-over across rebuilds, and end-to-end dynamic
// recomputation — after mutating, continuing the run must converge to the
// mutated graph's solution.

#include <gtest/gtest.h>

#include <cmath>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/common/crc32.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/graph/generators.hpp"
#include "test_util.hpp"

namespace cyclops::core {
namespace {

TEST(TopologyDelta, ApplyAddsAndRemoves) {
  graph::EdgeList edges = test::diamond_graph();
  TopologyDelta delta;
  delta.add_edge(3, 0, 2.0);
  delta.remove_edge(0, 2);
  EXPECT_EQ(delta.size(), 2u);
  delta.apply(edges);
  bool has_new = false;
  bool has_removed = false;
  for (const graph::Edge& e : edges.edges()) {
    if (e.src == 3 && e.dst == 0) has_new = true;
    if (e.src == 0 && e.dst == 2) has_removed = true;
  }
  EXPECT_TRUE(has_new);
  EXPECT_FALSE(has_removed);
}

TEST(TopologyDelta, RemoveAllParallelEdges) {
  graph::EdgeList edges(2);
  edges.add(0, 1, 1.0);
  edges.add(0, 1, 2.0);
  TopologyDelta delta;
  delta.remove_edge(0, 1);
  delta.apply(edges);
  EXPECT_EQ(edges.num_edges(), 0u);
}

TEST(TopologyDelta, TouchedVerticesDeduplicated) {
  TopologyDelta delta;
  delta.add_edge(1, 2);
  delta.add_edge(2, 3);
  delta.remove_edge(1, 2);
  const auto touched = delta.touched_vertices();
  EXPECT_EQ(touched, (std::vector<VertexId>{1, 2, 3}));
}

TEST(TopologyDelta, LastOpWinsAddThenRemove) {
  // Staging {add, remove} for the same pair cancels the add — and also
  // erases any pre-existing edge on that pair.
  graph::EdgeList edges(3);
  edges.add(0, 1, 1.0);
  TopologyDelta delta;
  delta.add_edge(0, 1, 5.0);
  delta.remove_edge(0, 1);
  delta.apply(edges);
  EXPECT_EQ(edges.num_edges(), 0u);
  const auto canon = delta.canonical();
  EXPECT_TRUE(canon.adds.empty());
  EXPECT_EQ(canon.removes.size(), 1u);
}

TEST(TopologyDelta, LastOpWinsRemoveThenAdd) {
  // Staging {remove, add} replaces the old edge with the new one: the remove
  // erases what existed, the later add survives it.
  graph::EdgeList edges(3);
  edges.add(0, 1, 1.0);
  TopologyDelta delta;
  delta.remove_edge(0, 1);
  delta.add_edge(0, 1, 7.0);
  delta.apply(edges);
  ASSERT_EQ(edges.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(edges.edges()[0].weight, 7.0);
  const auto canon = delta.canonical();
  ASSERT_EQ(canon.adds.size(), 1u);
  EXPECT_DOUBLE_EQ(canon.adds[0].weight, 7.0);
  EXPECT_EQ(canon.removes.size(), 1u);
}

TEST(TopologyDelta, CanonicalKeepsMultipleAddsAfterLastRemove) {
  TopologyDelta delta;
  delta.add_edge(0, 1, 1.0);  // cancelled by the remove below
  delta.remove_edge(0, 1);
  delta.add_edge(0, 1, 2.0);  // both later adds survive (multiplicity kept)
  delta.add_edge(0, 1, 3.0);
  const auto canon = delta.canonical();
  ASSERT_EQ(canon.adds.size(), 2u);
  EXPECT_DOUBLE_EQ(canon.adds[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(canon.adds[1].weight, 3.0);
  ASSERT_EQ(canon.removes.size(), 1u);
  EXPECT_EQ(canon.removes[0].src, 0u);
  EXPECT_EQ(canon.removes[0].dst, 1u);
}

TEST(TopologyDelta, CanonicalDeduplicatesRemoves) {
  TopologyDelta delta;
  delta.remove_edge(2, 3);
  delta.remove_edge(2, 3);
  delta.remove_edge(1, 4);
  const auto canon = delta.canonical();
  ASSERT_EQ(canon.removes.size(), 2u);  // one per distinct pair, pair order
  EXPECT_EQ(canon.removes[0].src, 1u);
  EXPECT_EQ(canon.removes[1].src, 2u);
}

TEST(TopologyDelta, TouchedIncludesCancelledOps) {
  // touched_vertices() is deliberately conservative: endpoints of ops that
  // cancel out still count (their state may need re-examination).
  TopologyDelta delta;
  delta.add_edge(5, 6);
  delta.remove_edge(5, 6);
  const auto touched = delta.touched_vertices();
  EXPECT_EQ(touched, (std::vector<VertexId>{5, 6}));
}

TEST(TopologyDelta, ApplyMatchesCanonicalReplay) {
  // apply() must behave exactly as canonical(): erase canonical removes,
  // append canonical adds.
  graph::EdgeList edges = test::diamond_graph();
  TopologyDelta delta;
  delta.add_edge(3, 0, 2.0);
  delta.remove_edge(3, 0);   // cancels the add and erases nothing (no (3,0))
  delta.remove_edge(0, 1);   // erases a real edge
  delta.add_edge(0, 1, 9.0); // then re-adds it heavier
  delta.add_edge(1, 3, 4.0);
  const graph::EdgeList applied = delta.applied(edges);
  const auto canon = delta.canonical();
  graph::EdgeList replay = edges;
  TopologyDelta canonical_only;
  for (const graph::Edge& e : canon.removes) canonical_only.remove_edge(e.src, e.dst);
  for (const graph::Edge& e : canon.adds) canonical_only.add_edge(e.src, e.dst, e.weight);
  canonical_only.apply(replay);
  ASSERT_EQ(applied.num_edges(), replay.num_edges());
  for (std::size_t i = 0; i < applied.num_edges(); ++i) {
    EXPECT_EQ(applied.edges()[i], replay.edges()[i]);
  }
}

TEST(TopologyDelta, AddGrowsVertexCount) {
  graph::EdgeList edges = test::diamond_graph();
  TopologyDelta delta;
  delta.add_edge(3, 9);  // brand-new vertex 9
  delta.apply(edges);
  EXPECT_EQ(edges.num_vertices(), 10u);
}

namespace {
std::uint32_t edge_crc(const graph::EdgeList& edges) {
  const auto& list = edges.edges();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(list.data());
  return crc32(std::span<const std::uint8_t>(bytes, list.size() * sizeof(graph::Edge)));
}
}  // namespace

TEST(TopologyDelta, AppliedPreservesSourceChecksum) {
  // The const-preserving path: applied() must leave the source list
  // byte-identical (the snapshot store's epoch-immutability contract) while
  // the returned list matches what the in-place apply() would produce.
  graph::EdgeList base = test::figure6_graph();
  const std::uint32_t before = edge_crc(base);

  TopologyDelta delta;
  delta.add_edge(5, 0, 2.0);
  delta.remove_edge(0, 1);
  const graph::EdgeList next = delta.applied(base);

  EXPECT_EQ(edge_crc(base), before);  // source untouched
  graph::EdgeList in_place = base;    // same delta through the mutating path
  delta.apply(in_place);
  EXPECT_EQ(edge_crc(next), edge_crc(in_place));
  EXPECT_NE(edge_crc(next), before);
}

TEST(TopologyDelta, AppliedGrowsVertexCountWithoutTouchingSource) {
  const graph::EdgeList base = test::diamond_graph();
  TopologyDelta delta;
  delta.add_edge(3, 9);
  const graph::EdgeList next = delta.applied(base);
  EXPECT_EQ(base.num_vertices(), 4u);
  EXPECT_EQ(next.num_vertices(), 10u);
}

TEST(Mutation, PageRankConvergesToMutatedFixpoint) {
  // Run PR partway, mutate the graph, continue: the final ranks must match
  // a from-scratch run on the mutated graph.
  graph::EdgeList edges = graph::gen::rmat(8, 1500, 77);
  const graph::Csr g0 = graph::Csr::build(edges);
  const auto part0 = test::hash_partition(g0, 4);

  algo::PageRankCyclops pr;
  pr.epsilon = 1e-12;
  Config cfg = Config::cyclops(4, 1);
  cfg.max_supersteps = 12;  // partway only
  Engine<algo::PageRankCyclops> engine(g0, part0, pr, cfg);
  (void)engine.run();

  // Mutate: rewire a handful of edges.
  TopologyDelta delta;
  delta.remove_edge(edges.edges()[0].src, edges.edges()[0].dst);
  delta.remove_edge(edges.edges()[5].src, edges.edges()[5].dst);
  delta.add_edge(1, 7);
  delta.add_edge(3, 11);
  graph::EdgeList mutated = edges;
  delta.apply(mutated);
  const graph::Csr g1 = graph::Csr::build(mutated);
  const auto part1 = test::hash_partition(g1, 4);

  const double rebuild_s = engine.rebuild(g1, part1);
  EXPECT_GE(rebuild_s, 0.0);
  EXPECT_TRUE(engine.replicas_consistent());
  // Wake everything: out-degrees changed, so every rank share is stale.
  for (VertexId v = 0; v < g1.num_vertices(); ++v) engine.activate(v);

  engine.extend_max_supersteps(300);
  (void)engine.run();  // continue on the mutated topology until quiescent
  const auto reference = algo::pagerank_reference(g1);
  const auto values = engine.values();
  double max_diff = 0;
  for (VertexId v = 0; v < g1.num_vertices(); ++v) {
    max_diff = std::max(max_diff, std::abs(values[v] - reference[v]));
  }
  EXPECT_LT(max_diff, 1e-6);
}

TEST(Mutation, SsspReactsToNewShortcut) {
  // Incremental SSSP: adding a shortcut edge must shorten distances without
  // recomputing from scratch (distances only improve — label-correcting).
  graph::gen::RoadSpec spec;
  spec.rows = 10;
  spec.cols = 10;
  spec.shortcut_fraction = 0.0;
  graph::EdgeList edges = graph::gen::road_grid(spec, 5);
  const graph::Csr g0 = graph::Csr::build(edges);
  const auto part0 = test::hash_partition(g0, 3);

  algo::SsspCyclops sssp;
  sssp.source = 0;
  Config cfg = Config::cyclops(3, 1);
  cfg.max_supersteps = 500;
  Engine<algo::SsspCyclops> engine(g0, part0, sssp, cfg);
  (void)engine.run();
  const double before = engine.values()[99];  // far corner
  EXPECT_TRUE(std::isfinite(before));

  // Add a cheap highway from the source to the far corner's neighborhood.
  TopologyDelta delta;
  delta.add_edge(0, 98, 0.5);
  graph::EdgeList mutated = edges;
  delta.apply(mutated);
  const graph::Csr g1 = graph::Csr::build(mutated);
  const auto part1 = test::hash_partition(g1, 3);
  (void)engine.rebuild(g1, part1);
  for (VertexId v : delta.touched_vertices()) engine.activate(v);
  // Re-publish the source's distance so the new edge's endpoint pulls it.
  (void)engine.run();

  const auto reference = algo::sssp_reference(g1, 0);
  const auto values = engine.values();
  for (VertexId v = 0; v < g1.num_vertices(); ++v) {
    EXPECT_NEAR(values[v], reference[v], 1e-9) << "vertex " << v;
  }
  EXPECT_LT(values[99], before);
}

TEST(Mutation, NewVertexGetsProgramInit) {
  graph::EdgeList edges = test::diamond_graph();
  const graph::Csr g0 = graph::Csr::build(edges);
  algo::PageRankCyclops pr;
  Config cfg = Config::cyclops(2, 1);
  cfg.max_supersteps = 3;
  Engine<algo::PageRankCyclops> engine(g0, test::hash_partition(g0, 2), pr, cfg);
  (void)engine.run();

  TopologyDelta delta;
  delta.add_edge(3, 5);  // vertices 4 (gap) and 5 appear
  graph::EdgeList mutated = edges;
  delta.apply(mutated);
  const graph::Csr g1 = graph::Csr::build(mutated);
  (void)engine.rebuild(g1, test::hash_partition(g1, 2));
  const auto values = engine.values();
  ASSERT_EQ(values.size(), 6u);
  // New vertices carry the program's init value (1/|V| of the new graph).
  EXPECT_NEAR(values[5], 1.0 / 6.0, 1e-12);
}

TEST(Ablation, ForceAllActiveComputesEveryVertexEverySuperstep) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 31));
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  Config cfg = Config::cyclops(3, 1);
  cfg.max_supersteps = 200;
  cfg.force_all_active = true;
  Engine<algo::PageRankCyclops> engine(g, test::hash_partition(g, 3), pr, cfg);
  const auto stats = engine.run();
  for (std::size_t s = 0; s + 1 < stats.supersteps.size(); ++s) {
    EXPECT_EQ(stats.supersteps[s].computed_vertices, g.num_vertices());
  }
  // ... and it still converges to the right answer.
  const auto reference = algo::pagerank_reference(g);
  const auto values = engine.values();
  double max_diff = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_diff = std::max(max_diff, std::abs(values[v] - reference[v]));
  }
  EXPECT_LT(max_diff, 1e-7);
}

TEST(Ablation, DynamicComputationSavesWork) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 3000, 37));
  auto run_with = [&](bool force) {
    algo::PageRankCyclops pr;
    pr.epsilon = 1e-9;
    Config cfg = Config::cyclops(3, 1);
    cfg.max_supersteps = 40;
    cfg.force_all_active = force;
    Engine<algo::PageRankCyclops> engine(g, test::hash_partition(g, 3), pr, cfg);
    const auto stats = engine.run();
    std::uint64_t computed = 0;
    for (const auto& s : stats.supersteps) computed += s.computed_vertices;
    return computed;
  };
  EXPECT_LT(run_with(false), run_with(true));
}

}  // namespace
}  // namespace cyclops::core
