// Tests for vertex-cut partitioning (the PowerGraph substrate): coverage,
// master designation, replication accounting, and the greedy heuristic's
// improvement over random placement.

#include <gtest/gtest.h>

#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "test_util.hpp"

namespace cyclops::partition {
namespace {

TEST(RandomVertexCut, EveryEdgePlaced) {
  const graph::EdgeList e = graph::gen::erdos_renyi(200, 1000, 3);
  const VertexCutPartition p = RandomVertexCut{}.partition(e, 5);
  for (std::size_t i = 0; i < e.num_edges(); ++i) EXPECT_LT(p.edge_owner(i), 5u);
}

TEST(RandomVertexCut, MasterIsAHostingWorker) {
  const graph::EdgeList e = graph::gen::erdos_renyi(200, 1000, 5);
  const VertexCutPartition p = RandomVertexCut{}.partition(e, 4);
  // Recompute hosting sets and check master membership.
  std::vector<std::vector<bool>> hosted(e.num_vertices(), std::vector<bool>(4, false));
  for (std::size_t i = 0; i < e.num_edges(); ++i) {
    hosted[e.edges()[i].src][p.edge_owner(i)] = true;
    hosted[e.edges()[i].dst][p.edge_owner(i)] = true;
  }
  for (VertexId v = 0; v < e.num_vertices(); ++v) {
    bool any = false;
    for (bool b : hosted[v]) any |= b;
    if (any) {
      EXPECT_TRUE(hosted[v][p.master(v)]) << "master not hosting v=" << v;
    }
  }
}

TEST(Evaluate, ReplicationLowerBoundOne) {
  const graph::EdgeList e = graph::gen::erdos_renyi(100, 300, 7);
  const VertexCutPartition p = RandomVertexCut{}.partition(e, 1);
  const VertexCutQuality q = evaluate(e, p);
  EXPECT_DOUBLE_EQ(q.replication_factor, 1.0);
}

TEST(Evaluate, CountsIsolatedVertices) {
  graph::EdgeList e(10);  // vertices 5..9 isolated
  e.add(0, 1);
  e.add(2, 3);
  e.add(3, 4);
  const VertexCutPartition p = RandomVertexCut{}.partition(e, 3);
  const VertexCutQuality q = evaluate(e, p);
  EXPECT_GE(q.total_replicas, 10u);  // every vertex has at least the master copy
}

TEST(GreedyVertexCut, LowerReplicationThanRandom) {
  const graph::EdgeList e = graph::gen::rmat(11, 12000, 9);
  const VertexCutQuality random_q = evaluate(e, RandomVertexCut{}.partition(e, 8));
  const VertexCutQuality greedy_q = evaluate(e, GreedyVertexCut{}.partition(e, 8));
  EXPECT_LT(greedy_q.replication_factor, random_q.replication_factor);
}

TEST(GreedyVertexCut, KeepsEdgeBalance) {
  const graph::EdgeList e = graph::gen::erdos_renyi(1000, 8000, 11);
  const VertexCutQuality q = evaluate(e, GreedyVertexCut{}.partition(e, 6));
  EXPECT_LT(q.edge_imbalance, 1.5);
}

TEST(GreedyVertexCut, Deterministic) {
  const graph::EdgeList e = graph::gen::rmat(9, 2000, 13);
  const VertexCutPartition a = GreedyVertexCut{}.partition(e, 4);
  const VertexCutPartition b = GreedyVertexCut{}.partition(e, 4);
  EXPECT_EQ(a.edge_owners(), b.edge_owners());
}

/// Replication factor grows with part count for both heuristics (the trend
/// behind Figure 11(1), vertex-cut flavor).
class VcutGrowth : public ::testing::TestWithParam<bool> {};

TEST_P(VcutGrowth, ReplicationMonotonicInParts) {
  const bool greedy = GetParam();
  const graph::EdgeList e = graph::gen::rmat(11, 10000, 17);
  double prev = 0;
  for (WorkerId parts : {2u, 4u, 8u, 16u}) {
    const VertexCutPartition p = greedy
                                     ? GreedyVertexCut{}.partition(e, parts)
                                     : RandomVertexCut{}.partition(e, parts);
    const double rf = evaluate(e, p).replication_factor;
    EXPECT_GE(rf, prev * 0.98);  // allow tiny non-monotonic noise
    prev = rf;
  }
}

INSTANTIATE_TEST_SUITE_P(BothHeuristics, VcutGrowth, ::testing::Bool());

}  // namespace
}  // namespace cyclops::partition
