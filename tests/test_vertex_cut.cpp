// Tests for vertex-cut partitioning (the PowerGraph substrate): coverage,
// master designation, replication accounting, and the greedy heuristic's
// improvement over random placement. Edge indices refer to the store's
// canonical enumeration order (GraphStore::for_each_edge).

#include <gtest/gtest.h>

#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "test_util.hpp"

namespace cyclops::partition {
namespace {

TEST(RandomVertexCut, EveryEdgePlaced) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(200, 1000, 3));
  const VertexCutPartition p = RandomVertexCut{}.partition(g, 5);
  for (std::size_t i = 0; i < g.num_edges(); ++i) EXPECT_LT(p.edge_owner(i), 5u);
}

TEST(RandomVertexCut, MasterIsAHostingWorker) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(200, 1000, 5));
  const VertexCutPartition p = RandomVertexCut{}.partition(g, 4);
  // Recompute hosting sets in enumeration order and check master membership.
  std::vector<std::vector<bool>> hosted(g.num_vertices(), std::vector<bool>(4, false));
  std::size_t i = 0;
  g.for_each_edge([&](VertexId src, VertexId dst, double) {
    hosted[src][p.edge_owner(i)] = true;
    hosted[dst][p.edge_owner(i)] = true;
    ++i;
  });
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool any = false;
    for (bool b : hosted[v]) any |= b;
    if (any) {
      EXPECT_TRUE(hosted[v][p.master(v)]) << "master not hosting v=" << v;
    }
  }
}

TEST(Evaluate, ReplicationLowerBoundOne) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(100, 300, 7));
  const VertexCutPartition p = RandomVertexCut{}.partition(g, 1);
  const VertexCutQuality q = evaluate(g, p);
  EXPECT_DOUBLE_EQ(q.replication_factor, 1.0);
}

TEST(Evaluate, CountsIsolatedVertices) {
  graph::EdgeList e(10);  // vertices 5..9 isolated
  e.add(0, 1);
  e.add(2, 3);
  e.add(3, 4);
  const graph::Csr g = graph::Csr::build(e);
  const VertexCutPartition p = RandomVertexCut{}.partition(g, 3);
  const VertexCutQuality q = evaluate(g, p);
  EXPECT_GE(q.total_replicas, 10u);  // every vertex has at least the master copy
}

TEST(GreedyVertexCut, LowerReplicationThanRandom) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(11, 12000, 9));
  const VertexCutQuality random_q = evaluate(g, RandomVertexCut{}.partition(g, 8));
  const VertexCutQuality greedy_q = evaluate(g, GreedyVertexCut{}.partition(g, 8));
  EXPECT_LT(greedy_q.replication_factor, random_q.replication_factor);
}

TEST(GreedyVertexCut, KeepsEdgeBalance) {
  const graph::Csr g = graph::Csr::build(graph::gen::erdos_renyi(1000, 8000, 11));
  const VertexCutQuality q = evaluate(g, GreedyVertexCut{}.partition(g, 6));
  EXPECT_LT(q.edge_imbalance, 1.5);
}

TEST(GreedyVertexCut, Deterministic) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 2000, 13));
  const VertexCutPartition a = GreedyVertexCut{}.partition(g, 4);
  const VertexCutPartition b = GreedyVertexCut{}.partition(g, 4);
  EXPECT_EQ(a.edge_owners(), b.edge_owners());
}

/// Replication factor grows with part count for both heuristics (the trend
/// behind Figure 11(1), vertex-cut flavor).
class VcutGrowth : public ::testing::TestWithParam<bool> {};

TEST_P(VcutGrowth, ReplicationMonotonicInParts) {
  const bool greedy = GetParam();
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(11, 10000, 17));
  double prev = 0;
  for (WorkerId parts : {2u, 4u, 8u, 16u}) {
    const VertexCutPartition p = greedy
                                     ? GreedyVertexCut{}.partition(g, parts)
                                     : RandomVertexCut{}.partition(g, parts);
    const double rf = evaluate(g, p).replication_factor;
    EXPECT_GE(rf, prev * 0.98);  // allow tiny non-monotonic noise
    prev = rf;
  }
}

INSTANTIATE_TEST_SUITE_P(BothHeuristics, VcutGrowth, ::testing::Bool());

}  // namespace
}  // namespace cyclops::partition
