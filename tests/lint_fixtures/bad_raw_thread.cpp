// Fixture for the `raw-thread` rule: naming the std primitives outside
// common/ is flagged; the cyclops aliases and std::this_thread are not.
// Expected findings are asserted in tests/test_lint.cpp — keep line numbers
// stable.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

void fixture_raw_thread() {
  std::mutex m;                       // line 11: std::mutex
  std::condition_variable cv;         // line 12: std::condition_variable
  std::thread t([] {});               // line 13: std::thread
  std::this_thread::yield();          // not flagged: this_thread is fine
  t.join();
  (void)m;
  (void)cv;
}
