// Fixture for the `wire-narrowing` rule: an 8/16-bit narrowing cast on the
// same line as a wire call is flagged unless suppressed. Expected findings
// are asserted in tests/test_lint.cpp — keep line numbers stable.
#include <cstdint>

struct Out {
  void write(std::uint8_t) {}
  void write(std::uint32_t) {}
  void write(std::uint64_t) {}
};

void fixture_narrowing(Out& out, std::uint64_t big, int tag) {
  out.write(static_cast<std::uint8_t>(tag));    // line 13: narrowed onto wire
  out.write(static_cast<std::uint16_t>(big));   // line 14: narrowed onto wire
  out.write(static_cast<std::uint8_t>(tag));    // cyclops-lint: allow(wire-narrowing)
  // Not flagged: the cast and the wire call live on separate lines.
  const auto flags = static_cast<std::uint8_t>(tag);
  out.write(static_cast<std::uint64_t>(flags));
  out.write(big);
}
