// Fixture for the `unordered-wire` rule: hash-order iteration feeding the
// wire is flagged; sorted drains and non-wire loop bodies are not. Expected
// findings are asserted in tests/test_lint.cpp — keep line numbers stable.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Sender {
  void send(std::uint32_t, std::uint64_t) {}
};

void fixture_unordered_wire(Sender& sender) {
  std::unordered_map<std::uint32_t, std::uint64_t> combined;
  std::unordered_set<std::uint32_t> targets;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted_records;

  for (const auto& [dst, msg] : combined) {  // line 19: feeds sender.send
    sender.send(dst, msg);
  }

  for (std::uint32_t t : targets) sender.send(t, 0);  // line 23: braceless body

  // Not flagged: drain to a vector, sort, then send — the repo's sanctioned
  // pattern (see bsp::Engine's combiner path).
  for (const auto& [dst, msg] : combined) {
    sorted_records.push_back({dst, msg});
  }
  std::sort(sorted_records.begin(), sorted_records.end());
  for (const auto& rec : sorted_records) {
    sender.send(rec.first, rec.second);
  }

  // Not flagged: unordered iteration whose body never touches the wire.
  std::uint64_t sum = 0;
  for (const auto& [dst, msg] : combined) {
    sum += msg + dst;
  }
  (void)sum;
}
