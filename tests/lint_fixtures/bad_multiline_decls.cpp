// Fixture for the scanner's former multi-line-declaration blind spot: a
// declaration is a token run, not a line. Both engines (lint_core.hpp and
// tools/analyze/) must flag these; test_lint.cpp asserts the parity.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace core {
struct TopologyDelta {
  void apply(std::vector<std::uint64_t>&) {}
};
}  // namespace core

struct Sender {
  void send(std::uint32_t, std::uint64_t) {}
};

void fixture_multiline_unordered(Sender& sender) {
  std::unordered_map<std::uint64_t,
                     std::vector<std::uint64_t>>
      ranks_by_owner;
  for (const auto& [owner, ranks] : ranks_by_owner) {  // line 22: flagged
    sender.send(0, ranks.front());
  }
}

void fixture_multiline_delta(std::vector<std::uint64_t>& edges) {
  core::TopologyDelta
      staged_delta;
  staged_delta.apply(edges);  // line 30: flagged (in-place apply)
}
