// Fixture: runtime (rank 3) including graph (rank 1) is not a declared
// dependency in the layer map — a skip-layer edge.
#pragma once
#include "cyclops/graph/topology.hpp"
