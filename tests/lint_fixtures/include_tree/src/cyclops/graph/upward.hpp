// Fixture: graph (rank 1) including runtime (rank 3) is an upward edge.
#pragma once
#include "cyclops/runtime/channel.hpp"
