#pragma once
#include "cyclops/core/cycle_a.hpp"
