// Fixture: cycle_a -> cycle_b -> cycle_a is a file-granularity cycle inside
// one layer (the layer pass stays silent; the cycle pass flags it once).
#pragma once
#include "cyclops/core/cycle_b.hpp"
