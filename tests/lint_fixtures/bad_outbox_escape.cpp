// Fixture: direct fabric outbox() access outside runtime/ and sim/. An
// engine grabbing a raw OutBox bypasses SyncChannel, so the package never
// reaches the message log and log-based recovery cannot replay it.
// Expected findings (see tests/test_lint.cpp):
//   line 12: outbox-outside-runtime  (member call via '.')
//   line 13: outbox-outside-runtime  (member call via '->')
// Line 20 is suppressed; lines 23/25 (declaration, string literal) never flag.

namespace demo {

void leak(Fabric& fabric, Fabric* pf) {
  auto& box = fabric.outbox(0);
  pf->outbox(1).send(2, msg);
  box.send(3, msg);
}

void allowed(Fabric& fabric) {
  // Suppressed: a test harness may poke the fabric directly.
  // cyclops-lint: allow(outbox-outside-runtime)
  fabric.outbox(0).send(1, msg);
  // Declaring a method named outbox (no '.' or '->') is not a direct grab:
  OutBox& outbox(WorkerId from);
  // Strings and comments never flag: "fabric.outbox(0)" / fabric.outbox(0)
  const char* doc = "call fabric.outbox(0) to grab the box";
}

}  // namespace demo
