// Fixture: a file the linter must pass with zero findings. Exercises the
// look-alikes each rule must NOT match.
#include <cstdint>
#include <map>
#include <vector>

struct Sender {
  void send(std::uint32_t, std::uint64_t) {}
};

// An ordered map may feed the wire directly: iteration order is the key
// order, identical on every run.
void fixture_clean(Sender& sender, const std::map<std::uint32_t, std::uint64_t>& combined) {
  for (const auto& [dst, msg] : combined) {
    sender.send(dst, msg);
  }
  // elapsed_time(, runtime(, strand( — identifier boundaries, not time()/rand().
  const std::uint64_t runtime_us = 0;
  auto elapsed_time = [] { return 0; };
  (void)runtime_us;
  (void)elapsed_time();
  std::vector<std::uint8_t> bytes;
  bytes.push_back(static_cast<std::uint8_t>(7));  // narrowing without a wire call
}
