// Fixture for the static frozen-view pass (tools/analyze/frozen_view.hpp),
// the compile-time mirror of the CYCLOPS_VERIFY frozen-compute-view
// invariant: writes through identifiers bound to const view references are
// flagged; reads, by-value copies, and unrelated locals reusing a name
// after the binding's scope closes are not. Token engine only — the legacy
// line scanner has no frozen-view rule.
#include <cstdint>
#include <vector>

namespace graph {
struct GraphStore {
  void clear() {}
  void set_budget(std::uint64_t) {}
  std::uint64_t num_vertices() const { return 0; }
};
}  // namespace graph

struct SnapshotRef {
  void retire() {}
  std::uint64_t epoch() const { return 0; }
};

void fixture_mutator_through_ref(const graph::GraphStore& view) {
  view.clear();  // line 24: flagged (mutating call through frozen ref)
}

void fixture_setter_through_ptr(const graph::GraphStore* view) {
  view->set_budget(64);  // line 28: flagged (set_* through frozen pointer)
}

void fixture_const_cast_on_type(const graph::GraphStore& view) {
  auto* w = const_cast<graph::GraphStore*>(&view);  // line 32: flagged
  (void)w;
}

void fixture_mutator_through_snapshot(SnapshotRef snap) {
  snap.retire();  // line 37: flagged (mutator through SnapshotRef)
}

void fixture_reads_stay_silent(const graph::GraphStore& view, SnapshotRef snap) {
  (void)view.num_vertices();  // not flagged: read-only member
  (void)snap.epoch();         // not flagged: read-only member
}

void fixture_unrelated_local_reuses_name() {
  std::vector<std::uint64_t> view;
  view.clear();  // not flagged: the frozen bindings above went out of scope
}

void fixture_value_copy_is_owned(graph::GraphStore owned) {
  owned.clear();  // not flagged: a by-value copy belongs to the callee
}
