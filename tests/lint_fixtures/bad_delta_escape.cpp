// Fixture: TopologyDelta::apply() — the in-place edge-list mutator — called
// outside core/ and ingest/. Direct mutation bypasses batched epoch
// publication: staged ops must become visible only when SnapshotStore
// publishes the epoch.
// Expected findings (see tests/test_lint.cpp):
//   line 13: delta-outside-ingest  (member call via '.')
//   line 14: delta-outside-ingest  (member call via '->')
// Lines 19/21/23 (applied() copy, other receivers) and 28 (suppressed) never flag.

namespace demo {

void leak(core::TopologyDelta& delta, core::TopologyDelta* pd, EdgeList& edges) {
  delta.apply(edges);
  pd->apply(edges);
}

void allowed(core::TopologyDelta& delta, SnapshotStore& store, EdgeList& edges) {
  // The const-preserving copy is the sanctioned path outside ingest:
  EdgeList next = delta.applied(edges);
  // SnapshotStore::apply is epoch publication, not edge-list mutation:
  store.apply(delta);
  // A method merely *named* apply on a non-delta receiver stays silent:
  program.apply(a, b);
}

void harness(core::TopologyDelta& delta, EdgeList& edges) {
  // cyclops-lint: allow(delta-outside-ingest)
  delta.apply(edges);
}

}  // namespace demo
