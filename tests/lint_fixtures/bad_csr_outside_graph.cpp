// Fixture: concrete Csr references outside src/cyclops/graph/. The linter
// must flag the qualified and unqualified exact tokens (lines 7, 12, 13, 15)
// but not identifiers that merely contain "Csr", strings, comments, or a
// suppressed line.

namespace cyclops::graph {
class Csr;  // flagged: even a forward declaration couples to the backend
class GraphStore;
}  // namespace cyclops::graph

void fixture_csr_outside_graph() {
  using cyclops::graph::Csr;
  const Csr* g = nullptr;
  (void)g;
  const cyclops::graph::Csr* h = nullptr;
  (void)h;

  // Look-alikes the rule must NOT match:
  struct CompactCsr {};    // prefix-extended identifier
  struct CsrShim {};       // suffix-extended identifier
  (void)CompactCsr{};
  (void)CsrShim{};
  const char* s = "graph::Csr";  // string literal
  (void)s;
  // a comment naming Csr is fine

  // cyclops-lint: allow(csr-outside-graph)
  const cyclops::graph::Csr* suppressed = nullptr;
  (void)suppressed;
}
