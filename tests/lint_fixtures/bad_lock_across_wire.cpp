// Fixture for the `lock-across-wire` rule: wire calls made while a lock
// guard may still be held are flagged; send-after-release and staged-drain
// patterns are not. Expected findings are asserted in tests/test_lint.cpp —
// keep line numbers stable. (Deliberately no std:: primitives here — the
// raw-thread rule has its own fixture.)
#include <cstdint>
#include <vector>

struct Sender {
  void send(std::uint32_t, std::uint64_t) {}
  void send_record(std::uint32_t, std::uint64_t) {}
};

struct Spin {
  void lock() {}
  void unlock() {}
};

template <typename M>
struct LockGuard {
  explicit LockGuard(M& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  M& m_;
};

void fixture_guard_over_send(Sender& sender, Spin& mu,
                             const std::vector<std::uint64_t>& items) {
  LockGuard<Spin> guard(mu);      // line 28: guard
  sender.send(0, items.front());  // line 29: flagged (RAII guard held)
}

void fixture_manual_lock_over_send(Sender& sender, Spin& mu,
                                   const std::vector<std::uint64_t>& items) {
  mu.lock();
  sender.send_record(1, items.back());  // line 35: flagged (.lock() held)
  mu.unlock();
}

void fixture_send_after_unlock(Sender& sender, Spin& mu,
                               const std::vector<std::uint64_t>& items) {
  mu.lock();
  const std::uint64_t payload = items.back();
  mu.unlock();
  sender.send(2, payload);  // not flagged: lock released first
}

void fixture_send_after_scope(Sender& sender, Spin& mu,
                              const std::vector<std::uint64_t>& items) {
  std::uint64_t payload = 0;
  {
    LockGuard<Spin> guard(mu);
    payload = items.front();
  }
  sender.send(3, payload);  // not flagged: guard scope closed
}

void fixture_staged_drain(Sender& sender, Spin& mu,
                          const std::vector<std::uint64_t>& items) {
  std::vector<std::uint64_t> staged;
  {
    LockGuard<Spin> guard(mu);
    staged = items;  // stage under the lock...
  }
  for (const std::uint64_t m : staged) {
    sender.send(4, m);  // ...send after releasing: the sanctioned pattern
  }
}
