// Fixture for the scanner's former 60-line caps: a lock scope and a
// range-for body both reach their wire call more than 60 lines after they
// open. Real brace tracking must carry the scan to the end of the scope,
// so both engines flag the sends; test_lint.cpp asserts the parity.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Sender {
  void send(std::uint32_t, std::uint64_t) {}
};

struct Spin {
  void lock() {}
  void unlock() {}
};

void fixture_long_lock_scope(Sender& sender, Spin& mu,
                             const std::vector<std::uint64_t>& items) {
  mu.lock();
  std::uint64_t payload = items.front();
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  payload += 1;
  sender.send(0, payload);  // flagged: the lock is still held
  mu.unlock();
}

void fixture_long_unordered_body(Sender& sender) {
  std::unordered_map<std::uint64_t, std::uint64_t> weights;
  for (const auto& [key, weight] : weights) {  // flagged at this line
    std::uint64_t acc = weight;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    acc += 1;
    sender.send(1, acc);  // the wire call the caps used to hide
  }
}
