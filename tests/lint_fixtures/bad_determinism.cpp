// Fixture: every line here that names wall-clock or global-state randomness
// must be flagged by the `determinism` rule. Expected findings are asserted
// in tests/test_lint.cpp — keep line numbers stable.
#include <cstdlib>
#include <ctime>
#include <random>

int fixture_determinism() {
  int x = rand();                        // line 9: rand()
  srand(42);                             // line 10: srand()
  long t = time(nullptr);                // line 11: time()
  std::random_device rd;                 // line 12: std::random_device
  // "rand(" inside this comment must not be flagged, nor the string below.
  const char* s = "call rand() at time()";
  long elapsed_time(long);               // not flagged: identifier boundary
  (void)s;
  (void)elapsed_time;
  return x + static_cast<int>(t) + static_cast<int>(rd.entropy());
}
