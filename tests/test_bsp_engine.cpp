// Tests for the Hama-style BSP engine: algorithm correctness against
// sequential references, Pregel semantics (vote-to-halt, message-driven
// reactivation), combiner equivalence, determinism across worker counts,
// checkpoint/restore, and the Hama-specific instrumentation (global-queue
// locking, message churn).

#include <gtest/gtest.h>

#include <cmath>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "test_util.hpp"

namespace cyclops::bsp {
namespace {

using algo::PageRankBsp;
using algo::SsspBsp;

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(BspPageRank, MatchesReferenceOnFigure6) {
  const graph::Csr g = graph::Csr::build(test::figure6_graph());
  const auto part = test::owners({0, 0, 1, 1, 2, 2}, 3);
  PageRankBsp pr;
  pr.epsilon = 1e-12;
  Config cfg = Config::workers(3);
  cfg.max_supersteps = 300;
  Engine<PageRankBsp> engine(g, part, pr, cfg);
  const auto stats = engine.run();
  const auto reference = algo::pagerank_reference(g);
  EXPECT_LT(max_abs_diff(engine.values(), reference), 1e-8);
  EXPECT_GT(stats.supersteps.size(), 5u);
}

TEST(BspPageRank, MatchesReferenceOnRmat) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 3000, 77));
  const auto part = test::hash_partition(g, 4);
  PageRankBsp pr;
  pr.epsilon = 1e-12;
  Config cfg = Config::workers(4);
  cfg.max_supersteps = 300;
  Engine<PageRankBsp> engine(g, part, pr, cfg);
  (void)engine.run();
  EXPECT_LT(max_abs_diff(engine.values(), algo::pagerank_reference(g)), 1e-8);
}

TEST(BspPageRank, RanksSumToRoughlyOneWithoutDanglingLeak) {
  // On a graph with no dangling vertices, total rank is conserved at 1.
  graph::EdgeList e(4);
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3);
  e.add(3, 0);
  const graph::Csr g = graph::Csr::build(e);
  PageRankBsp pr;
  pr.epsilon = 1e-13;
  Config cfg = Config::workers(2);
  cfg.max_supersteps = 400;
  Engine<PageRankBsp> engine(g, test::hash_partition(g, 2), pr, cfg);
  (void)engine.run();
  double sum = 0;
  for (double v : engine.values()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(BspPageRank, DeterministicAcrossWorkerCounts) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1200, 5));
  auto run_with = [&](WorkerId workers) {
    PageRankBsp pr;
    pr.epsilon = 1e-11;
    Config cfg = Config::workers(workers);
    cfg.max_supersteps = 200;
    Engine<PageRankBsp> engine(g, test::hash_partition(g, workers), pr, cfg);
    (void)engine.run();
    return std::vector<double>(engine.values().begin(), engine.values().end());
  };
  const auto v1 = run_with(1);
  const auto v4 = run_with(4);
  const auto v9 = run_with(9);
  // Message arrival order differs, but FP sums are over the same sets in
  // deterministic parse order; results agree to tight tolerance.
  EXPECT_LT(max_abs_diff(v1, v4), 1e-9);
  EXPECT_LT(max_abs_diff(v1, v9), 1e-9);
}

TEST(BspPageRank, CombinerPreservesResultAndCutsMessages) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 4000, 13));
  const auto part = test::hash_partition(g, 4);
  auto run = [&](bool combine) {
    PageRankBsp pr;
    pr.epsilon = 1e-10;
    Config cfg = Config::workers(4);
    cfg.use_combiner = combine;
    cfg.max_supersteps = 150;
    Engine<PageRankBsp> engine(g, part, pr, cfg);
    const auto stats = engine.run();
    return std::make_pair(
        std::vector<double>(engine.values().begin(), engine.values().end()),
        stats.net_totals().total_messages());
  };
  const auto [plain_values, plain_msgs] = run(false);
  const auto [combined_values, combined_msgs] = run(true);
  EXPECT_LT(max_abs_diff(plain_values, combined_values), 1e-9);
  EXPECT_LT(combined_msgs, plain_msgs);
}

TEST(BspPageRank, AllVerticesStayAliveUntilGlobalConvergence) {
  // §2.2.1: the BSP push model keeps every vertex computing while the global
  // error is above epsilon — the inefficiency Cyclops removes.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 3));
  PageRankBsp pr;
  pr.epsilon = 1e-9;
  Config cfg = Config::workers(2);
  cfg.max_supersteps = 100;
  Engine<PageRankBsp> engine(g, test::hash_partition(g, 2), pr, cfg);
  const auto stats = engine.run();
  std::size_t live_with_edges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) live_with_edges += g.in_degree(v) > 0;
  for (std::size_t s = 1; s + 2 < stats.supersteps.size(); ++s) {
    EXPECT_GE(stats.supersteps[s].active_vertices, live_with_edges);
  }
}

TEST(BspSssp, MatchesDijkstraOnDiamond) {
  const graph::Csr g = graph::Csr::build(test::diamond_graph());
  SsspBsp sssp;
  sssp.source = 0;
  Config cfg = Config::workers(2);
  Engine<SsspBsp> engine(g, test::hash_partition(g, 2), sssp, cfg);
  (void)engine.run();
  const auto reference = algo::sssp_reference(g, 0);
  ASSERT_EQ(reference.size(), 4u);
  EXPECT_DOUBLE_EQ(engine.values()[3], 3.0);
  for (VertexId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(engine.values()[v], reference[v]);
}

TEST(BspSssp, MatchesDijkstraOnRoadGrid) {
  graph::gen::RoadSpec spec;
  spec.rows = 15;
  spec.cols = 15;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 7));
  SsspBsp sssp;
  sssp.source = 0;
  Config cfg = Config::workers(4);
  cfg.max_supersteps = 500;
  Engine<SsspBsp> engine(g, test::hash_partition(g, 4), sssp, cfg);
  (void)engine.run();
  const auto reference = algo::sssp_reference(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(engine.values()[v], reference[v], 1e-9) << "vertex " << v;
  }
}

TEST(BspSssp, UnreachableVerticesStayInfinite) {
  graph::EdgeList e(3);
  e.add(0, 1, 2.0);  // vertex 2 unreachable
  const graph::Csr g = graph::Csr::build(e);
  SsspBsp sssp;
  sssp.source = 0;
  Engine<SsspBsp> engine(g, test::hash_partition(g, 2), sssp, Config::workers(2));
  (void)engine.run();
  EXPECT_TRUE(std::isinf(engine.values()[2]));
  EXPECT_DOUBLE_EQ(engine.values()[1], 2.0);
}

TEST(BspSssp, PushModeActivatesOnlyFrontier) {
  // Push-mode: active vertex count per superstep tracks the BFS frontier,
  // not the whole graph (contrast with the PR test above).
  graph::gen::RoadSpec spec;
  spec.rows = 12;
  spec.cols = 12;
  spec.shortcut_fraction = 0.0;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 9));
  SsspBsp sssp;
  sssp.source = 0;
  Config cfg = Config::workers(2);
  cfg.max_supersteps = 300;
  Engine<SsspBsp> engine(g, test::hash_partition(g, 2), sssp, cfg);
  const auto stats = engine.run();
  // After the initial all-active superstep, frontiers are small.
  for (std::size_t s = 1; s < stats.supersteps.size(); ++s) {
    EXPECT_LT(stats.supersteps[s].active_vertices, g.num_vertices());
  }
}

TEST(BspEngine, CheckpointRestoreResumesExactly) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 21));
  const auto part = test::hash_partition(g, 3);
  PageRankBsp pr;
  pr.epsilon = 1e-11;

  // Uninterrupted run.
  Config cfg = Config::workers(3);
  cfg.max_supersteps = 200;
  Engine<PageRankBsp> full(g, part, pr, cfg);
  (void)full.run();

  // Run 10 supersteps, checkpoint, restore into a fresh engine, finish.
  Config cfg10 = cfg;
  cfg10.max_supersteps = 10;
  Engine<PageRankBsp> first(g, part, pr, cfg10);
  (void)first.run();
  ByteWriter snapshot;
  first.checkpoint(snapshot);

  Engine<PageRankBsp> resumed(g, part, pr, cfg);
  ByteReader reader(snapshot.bytes());
  resumed.restore(reader);
  EXPECT_EQ(resumed.superstep(), 10u);
  (void)resumed.run();
  EXPECT_LT(max_abs_diff(resumed.values(), full.values()), 1e-12);
}

TEST(BspEngine, TracksLockAcquisitionsAndChurn) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 2000, 31));
  PageRankBsp pr;
  pr.epsilon = 1e-6;
  Config cfg = Config::workers(4);
  cfg.max_supersteps = 20;
  Engine<PageRankBsp> engine(g, test::hash_partition(g, 4), pr, cfg);
  const auto stats = engine.run();
  // Every delivered message costs one global-queue lock acquisition.
  EXPECT_EQ(engine.lock_acquisitions(), stats.net_totals().total_messages());
  EXPECT_GT(engine.mailbox_churn_bytes(), 0u);
}

TEST(BspEngine, RedundantMessageTrackingFindsConvergedSenders) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 3000, 37));
  PageRankBsp pr;
  pr.epsilon = 1e-10;
  Config cfg = Config::workers(2);
  cfg.track_redundant = true;
  cfg.max_supersteps = 40;
  Engine<PageRankBsp> engine(g, test::hash_partition(g, 2), pr, cfg);
  const auto stats = engine.run();
  std::uint64_t redundant = 0;
  for (const auto& s : stats.supersteps) redundant += s.redundant_messages;
  // Fig 3(2): late supersteps re-send identical values.
  EXPECT_GT(redundant, 0u);
}

TEST(BspEngine, MaxSuperstepsBoundsRun) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 41));
  PageRankBsp pr;
  pr.epsilon = 0.0;  // never converges on its own
  Config cfg = Config::workers(2);
  cfg.max_supersteps = 7;
  Engine<PageRankBsp> engine(g, test::hash_partition(g, 2), pr, cfg);
  const auto stats = engine.run();
  EXPECT_EQ(stats.supersteps.size(), 7u);
}

TEST(BspEngine, PhaseTimesPopulated) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 4000, 43));
  PageRankBsp pr;
  pr.epsilon = 1e-8;
  Config cfg = Config::workers(4);
  cfg.max_supersteps = 15;
  Engine<PageRankBsp> engine(g, test::hash_partition(g, 4), pr, cfg);
  const auto stats = engine.run();
  const auto phases = stats.phase_totals();
  EXPECT_GT(phases.cmp_s, 0.0);
  EXPECT_GT(phases.snd_s, 0.0);
  EXPECT_GT(phases.prs_s, 0.0);
  EXPECT_GT(stats.modeled_comm_total_s(), 0.0);
  EXPECT_GT(stats.total_time_s(), stats.elapsed_s);
}

}  // namespace
}  // namespace cyclops::bsp

namespace cyclops::bsp {
namespace {

// Probe programs (namespace scope: local classes cannot hold member
// templates).
struct AggregatorProbe {
  using Value = double;
  using Message = double;
  std::vector<double>* seen = nullptr;
  Value init(VertexId, const graph::GraphStore&) const { return 0.0; }
  template <typename Ctx>
  void compute(Ctx& ctx, std::span<const Message>) const {
    if (ctx.vertex() == 0) seen->push_back(ctx.global_error());
    ctx.aggregate_error(static_cast<double>(ctx.superstep() + 1));
    if (ctx.superstep() >= 3) {
      ctx.vote_to_halt();
    } else {
      ctx.send_to(ctx.vertex(), 0.0);  // keep self alive
    }
  }
};

struct SelfCounterProbe {
  using Value = double;
  using Message = double;
  Value init(VertexId, const graph::GraphStore&) const { return 0.0; }
  template <typename Ctx>
  void compute(Ctx& ctx, std::span<const Message> msgs) const {
    ctx.set_value(ctx.value() + static_cast<double>(msgs.size()));
    if (ctx.superstep() < 4) {
      ctx.send_to(ctx.vertex(), 1.0);
    }
    ctx.vote_to_halt();
  }
};

TEST(BspAggregator, GlobalErrorLagsBySuperstep) {
  // Pregel aggregator semantics: values aggregated in superstep s are
  // visible to compute in superstep s+1.
  graph::EdgeList e(2);
  e.add(0, 1);
  const graph::Csr g = graph::Csr::build(e);
  std::vector<double> seen;
  AggregatorProbe probe;
  probe.seen = &seen;
  Config cfg = Config::workers(1);
  cfg.max_supersteps = 6;
  Engine<AggregatorProbe> engine(g, test::hash_partition(g, 1), probe, cfg);
  (void)engine.run();
  ASSERT_GE(seen.size(), 3u);
  EXPECT_TRUE(std::isinf(seen[0]));       // nothing aggregated before superstep 0
  EXPECT_DOUBLE_EQ(seen[1], 1.0);          // superstep 0 aggregated value
  EXPECT_DOUBLE_EQ(seen[2], 2.0);          // superstep 1 aggregated value
}

TEST(BspEngine, ObserverSeesEverySuperstep) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(7, 500, 3));
  algo::PageRankBsp pr;
  pr.epsilon = 1e-6;
  Config cfg = Config::workers(2);
  cfg.max_supersteps = 9;
  Engine<algo::PageRankBsp> engine(g, test::hash_partition(g, 2), pr, cfg);
  std::vector<Superstep> observed;
  engine.set_observer([&](const metrics::SuperstepStats& s, std::span<const double>) {
    observed.push_back(s.superstep);
  });
  const auto stats = engine.run();
  ASSERT_EQ(observed.size(), stats.supersteps.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    EXPECT_EQ(observed[i], static_cast<Superstep>(i));
  }
}

TEST(BspEngine, MessagesToSelfDeliverNextSuperstep) {
  graph::EdgeList e(3);
  e.add(0, 1);
  e.add(1, 2);
  const graph::Csr g = graph::Csr::build(e);
  Engine<SelfCounterProbe> engine(g, test::hash_partition(g, 2), SelfCounterProbe{},
                                  Config::workers(2));
  (void)engine.run();
  // Supersteps 1..4 each deliver one self-message.
  for (VertexId v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(engine.values()[v], 4.0);
}

}  // namespace
}  // namespace cyclops::bsp
