// Wire-determinism regression: the traffic a seeded workload puts on the
// simulated fabric must be bit-identical across runs — content AND ordering.
// This is the runtime twin of cyclops-lint's `unordered-wire` rule: the BSP
// combiner used to drain its unordered_map straight onto the wire, which
// produced correct ranks but hash-order packages; Fabric::wire_digest()
// (an order-sensitive fold of every delivered package's src/dst/count/CRC)
// turns that into a hard test failure.
#include <gtest/gtest.h>

#include <cstdint>

#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "test_util.hpp"

namespace cyclops {
namespace {

struct RunResult {
  std::uint64_t digest = 0;
  std::vector<double> values;
};

RunResult run_bsp_pagerank(bool use_combiner) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 13));
  algo::PageRankBsp pr;
  pr.epsilon = 1e-11;
  bsp::Config cfg = bsp::Config::workers(4);
  cfg.max_supersteps = 120;
  cfg.use_combiner = use_combiner;
  bsp::Engine<algo::PageRankBsp> engine(g, test::hash_partition(g, 4), pr, cfg);
  (void)engine.run();
  const auto span = engine.values();
  return RunResult{engine.fabric().wire_digest(),
                   std::vector<double>(span.begin(), span.end())};
}

RunResult run_cyclops_sssp() {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 29));
  algo::SsspCyclops sssp;
  core::Config cfg = core::Config::cyclops(2, 2);
  cfg.max_supersteps = 200;
  core::Engine<algo::SsspCyclops> engine(g, test::hash_partition(g, 4), sssp, cfg);
  (void)engine.run();
  const auto span = engine.values();
  return RunResult{engine.fabric().wire_digest(),
                   std::vector<double>(span.begin(), span.end())};
}

// The regression that motivated the sorted combiner drain: two identical
// combiner-enabled BSP runs must emit byte-identical wire traffic in the
// same package order. Before the fix this held for results but not digests.
TEST(WireDeterminism, BspCombinerTrafficIsBitIdenticalAcrossRuns) {
  const RunResult a = run_bsp_pagerank(/*use_combiner=*/true);
  const RunResult b = run_bsp_pagerank(/*use_combiner=*/true);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.digest, 0xcbf29ce484222325ULL) << "digest never folded a package";
}

TEST(WireDeterminism, BspUncombinedTrafficIsBitIdenticalAcrossRuns) {
  const RunResult a = run_bsp_pagerank(/*use_combiner=*/false);
  const RunResult b = run_bsp_pagerank(/*use_combiner=*/false);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.values, b.values);
}

TEST(WireDeterminism, CyclopsSyncTrafficIsBitIdenticalAcrossRuns) {
  const RunResult a = run_cyclops_sssp();
  const RunResult b = run_cyclops_sssp();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.values, b.values);
}

// Combining changes the wire layout (fewer, merged records), so the combined
// and uncombined digests must differ while converged ranks agree — evidence
// the digest actually reflects wire bytes rather than results.
TEST(WireDeterminism, DigestDistinguishesCombinerWireLayout) {
  const RunResult combined = run_bsp_pagerank(/*use_combiner=*/true);
  const RunResult plain = run_bsp_pagerank(/*use_combiner=*/false);
  EXPECT_NE(combined.digest, plain.digest);
}

}  // namespace
}  // namespace cyclops
