// Wire-determinism regression: the traffic a seeded workload puts on the
// simulated fabric must be bit-identical across runs — content AND ordering.
// This is the runtime twin of cyclops-lint's `unordered-wire` rule: the BSP
// combiner used to drain its unordered_map straight onto the wire, which
// produced correct ranks but hash-order packages; Fabric::wire_digest()
// (an order-sensitive fold of every delivered package's src/dst/count/CRC)
// turns that into a hard test failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/cc.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/sim/sched.hpp"
#include "test_util.hpp"

namespace cyclops {
namespace {

struct RunResult {
  std::uint64_t digest = 0;
  std::vector<double> values;
};

RunResult run_bsp_pagerank(bool use_combiner) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 13));
  algo::PageRankBsp pr;
  pr.epsilon = 1e-11;
  bsp::Config cfg = bsp::Config::workers(4);
  cfg.max_supersteps = 120;
  cfg.use_combiner = use_combiner;
  bsp::Engine<algo::PageRankBsp> engine(g, test::hash_partition(g, 4), pr, cfg);
  (void)engine.run();
  const auto span = engine.values();
  return RunResult{engine.fabric().wire_digest(),
                   std::vector<double>(span.begin(), span.end())};
}

RunResult run_cyclops_sssp() {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 29));
  algo::SsspCyclops sssp;
  core::Config cfg = core::Config::cyclops(2, 2);
  cfg.max_supersteps = 200;
  core::Engine<algo::SsspCyclops> engine(g, test::hash_partition(g, 4), sssp, cfg);
  (void)engine.run();
  const auto span = engine.values();
  return RunResult{engine.fabric().wire_digest(),
                   std::vector<double>(span.begin(), span.end())};
}

// The regression that motivated the sorted combiner drain: two identical
// combiner-enabled BSP runs must emit byte-identical wire traffic in the
// same package order. Before the fix this held for results but not digests.
TEST(WireDeterminism, BspCombinerTrafficIsBitIdenticalAcrossRuns) {
  const RunResult a = run_bsp_pagerank(/*use_combiner=*/true);
  const RunResult b = run_bsp_pagerank(/*use_combiner=*/true);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.digest, 0xcbf29ce484222325ULL) << "digest never folded a package";
}

TEST(WireDeterminism, BspUncombinedTrafficIsBitIdenticalAcrossRuns) {
  const RunResult a = run_bsp_pagerank(/*use_combiner=*/false);
  const RunResult b = run_bsp_pagerank(/*use_combiner=*/false);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.values, b.values);
}

TEST(WireDeterminism, CyclopsSyncTrafficIsBitIdenticalAcrossRuns) {
  const RunResult a = run_cyclops_sssp();
  const RunResult b = run_cyclops_sssp();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.values, b.values);
}

// Combining changes the wire layout (fewer, merged records), so the combined
// and uncombined digests must differ while converged ranks agree — evidence
// the digest actually reflects wire bytes rather than results.
TEST(WireDeterminism, DigestDistinguishesCombinerWireLayout) {
  const RunResult combined = run_bsp_pagerank(/*use_combiner=*/true);
  const RunResult plain = run_bsp_pagerank(/*use_combiner=*/false);
  EXPECT_NE(combined.digest, plain.digest);
}

// ---- Schedule independence: the stronger claim. Not only must identical
// runs agree — runs under *different task interleavings* must too. Each seed
// pins the engine's pool to a distinct permuted schedule (and chunking) via
// sim::ScheduleExplorer; wire digest and every final value must come out
// bit-identical, or the engine's output depends on execution order. ----

constexpr std::uint64_t kSeeds[] = {0, 1, 2, 3, 4, 5, 6, 7};

/// Runs `Prog` on a Cyclops engine pinned to `seed`'s schedule.
template <typename Prog>
RunResult run_cyclops_scheduled(Prog prog, std::uint64_t seed, std::uint64_t graph_seed) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, graph_seed));
  core::Config cfg = core::Config::cyclops(2, 2);
  cfg.max_supersteps = 200;
  cfg.schedule = std::make_shared<sim::ScheduleExplorer>(seed);
  core::Engine<Prog> engine(g, test::hash_partition(g, 4), prog, cfg);
  (void)engine.run();
  const auto span = engine.values();
  return RunResult{engine.fabric().wire_digest(),
                   std::vector<double>(span.begin(), span.end())};
}

template <typename Prog>
void expect_schedule_independent(Prog prog, std::uint64_t graph_seed) {
  const RunResult base = run_cyclops_scheduled(prog, kSeeds[0], graph_seed);
  EXPECT_NE(base.digest, 0xcbf29ce484222325ULL);
  for (std::size_t i = 1; i < std::size(kSeeds); ++i) {
    const RunResult r = run_cyclops_scheduled(prog, kSeeds[i], graph_seed);
    EXPECT_EQ(r.digest, base.digest) << "wire digest diverged at seed " << kSeeds[i];
    EXPECT_EQ(r.values, base.values) << "values diverged at seed " << kSeeds[i];
  }
}

TEST(ScheduleIndependence, CyclopsPageRankIsBitIdenticalAcross8Schedules) {
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  expect_schedule_independent(pr, 13);
}

TEST(ScheduleIndependence, CyclopsSsspIsBitIdenticalAcross8Schedules) {
  expect_schedule_independent(algo::SsspCyclops{}, 29);
}

TEST(ScheduleIndependence, CyclopsCcIsBitIdenticalAcross8Schedules) {
  expect_schedule_independent(algo::CcCyclops{}, 47);
}

TEST(ScheduleIndependence, BspPageRankIsBitIdenticalAcross8Schedules) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1500, 13));
  RunResult base;
  for (std::size_t i = 0; i < std::size(kSeeds); ++i) {
    algo::PageRankBsp pr;
    pr.epsilon = 1e-11;
    bsp::Config cfg = bsp::Config::workers(4);
    cfg.max_supersteps = 120;
    cfg.use_combiner = true;
    cfg.schedule = std::make_shared<sim::ScheduleExplorer>(kSeeds[i]);
    bsp::Engine<algo::PageRankBsp> engine(g, test::hash_partition(g, 4), pr, cfg);
    (void)engine.run();
    const auto span = engine.values();
    RunResult r{engine.fabric().wire_digest(),
                std::vector<double>(span.begin(), span.end())};
    if (i == 0) {
      base = std::move(r);
      continue;
    }
    EXPECT_EQ(r.digest, base.digest) << "wire digest diverged at seed " << kSeeds[i];
    EXPECT_EQ(r.values, base.values) << "values diverged at seed " << kSeeds[i];
  }
}

}  // namespace
}  // namespace cyclops
