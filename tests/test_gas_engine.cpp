// Tests for the PowerGraph-style GAS engine: layout invariants, PageRank
// correctness, and the bidirectional message pattern (~5 messages per mirror
// per iteration) that Table 4 contrasts with Cyclops.

#include <gtest/gtest.h>

#include <cmath>

#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "test_util.hpp"

namespace cyclops::gas {
namespace {

using algo::PageRankGas;

TEST(GasLayout, EveryVertexHasExactlyOneMaster) {
  const graph::EdgeList e = graph::gen::rmat(8, 1500, 3);
  const graph::Csr g = graph::Csr::build(e);
  const auto p = partition::RandomVertexCut{}.partition(g, 4);
  const GasLayout layout = build_gas_layout(g, p);
  std::vector<int> masters(e.num_vertices(), 0);
  for (WorkerId w = 0; w < 4; ++w) {
    const GasWorkerLayout& wl = layout.workers[w];
    for (Copy c = 0; c < wl.num_copies(); ++c) {
      if (wl.is_master[c]) ++masters[wl.copy_globals[c]];
    }
  }
  for (VertexId v = 0; v < e.num_vertices(); ++v) EXPECT_EQ(masters[v], 1) << v;
}

TEST(GasLayout, EdgesPlacedWhereAssigned) {
  const graph::EdgeList e = graph::gen::erdos_renyi(100, 500, 5);
  const graph::Csr g = graph::Csr::build(e);
  const auto p = partition::GreedyVertexCut{}.partition(g, 3);
  const GasLayout layout = build_gas_layout(g, p);
  std::size_t total_local_edges = 0;
  for (WorkerId w = 0; w < 3; ++w) total_local_edges += layout.workers[w].edges.size();
  EXPECT_EQ(total_local_edges, e.num_edges());
}

TEST(GasLayout, MirrorListsInvertMasterOf) {
  const graph::EdgeList e = graph::gen::rmat(8, 1200, 7);
  const graph::Csr g = graph::Csr::build(e);
  const auto p = partition::RandomVertexCut{}.partition(g, 5);
  const GasLayout layout = build_gas_layout(g, p);
  std::size_t mirrors_total = 0;
  for (WorkerId w = 0; w < 5; ++w) {
    const GasWorkerLayout& wl = layout.workers[w];
    for (Copy c = 0; c < wl.num_copies(); ++c) {
      for (std::size_t m = wl.mirror_offsets[c]; m < wl.mirror_offsets[c + 1]; ++m) {
        const MirrorRef ref = wl.mirrors[m];
        const GasWorkerLayout& mw = layout.workers[ref.worker];
        EXPECT_EQ(mw.copy_globals[ref.copy], wl.copy_globals[c]);
        EXPECT_FALSE(mw.is_master[ref.copy]);
        ++mirrors_total;
      }
    }
  }
  EXPECT_EQ(mirrors_total + e.num_vertices(), layout.total_copies);
}

TEST(GasPageRank, MatchesReferenceOnFigure6) {
  const graph::EdgeList e = test::figure6_graph();
  const graph::Csr g = graph::Csr::build(e);
  PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  pr.epsilon = 1e-12;
  Config cfg = Config::workers(3);
  cfg.max_iterations = 300;
  Engine<PageRankGas> engine(g, partition::RandomVertexCut{}.partition(g, 3), pr, cfg);
  (void)engine.run();
  const auto reference = algo::pagerank_reference(g);
  const auto values = engine.values();
  for (VertexId v = 0; v < e.num_vertices(); ++v) {
    EXPECT_NEAR(values[v].rank, reference[v], 1e-8) << v;
  }
}

TEST(GasPageRank, MatchesReferenceOnRmat) {
  const graph::EdgeList e = graph::gen::rmat(9, 3000, 77);
  const graph::Csr g = graph::Csr::build(e);
  PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  pr.epsilon = 1e-12;
  Config cfg = Config::workers(4);
  cfg.max_iterations = 300;
  Engine<PageRankGas> engine(g, partition::GreedyVertexCut{}.partition(g, 4), pr, cfg);
  (void)engine.run();
  const auto reference = algo::pagerank_reference(g);
  const auto values = engine.values();
  double max_diff = 0;
  for (VertexId v = 0; v < e.num_vertices(); ++v) {
    max_diff = std::max(max_diff, std::abs(values[v].rank - reference[v]));
  }
  EXPECT_LT(max_diff, 1e-8);
}

TEST(GasPageRank, MessagePatternRoughlyFivePerMirror) {
  // §2.3 / Table 4: the GAS model costs ~5 messages per replica per
  // iteration (2 gather + 1 apply + 2 scatter). Check the first iteration,
  // when every vertex is active.
  const graph::EdgeList e = graph::gen::rmat(9, 4000, 11);
  const graph::Csr g = graph::Csr::build(e);
  PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  pr.epsilon = 1e-12;
  Config cfg = Config::workers(6);
  cfg.max_iterations = 3;
  Engine<PageRankGas> engine(g, partition::RandomVertexCut{}.partition(g, 6), pr, cfg);
  const auto stats = engine.run();
  const std::uint64_t mirrors = engine.layout().total_copies - e.num_vertices();
  ASSERT_GT(mirrors, 0u);
  const double per_mirror =
      static_cast<double>(stats.supersteps.front().net.total_messages()) /
      static_cast<double>(mirrors);
  EXPECT_GE(per_mirror, 4.0);
  EXPECT_LE(per_mirror, 6.5);  // + activation replies
}

TEST(GasPageRank, SingleWorkerSendsNothing) {
  const graph::EdgeList e = graph::gen::rmat(8, 1000, 13);
  const graph::Csr g = graph::Csr::build(e);
  PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  Config cfg = Config::workers(1);
  cfg.max_iterations = 10;
  Engine<PageRankGas> engine(g, partition::RandomVertexCut{}.partition(g, 1), pr, cfg);
  const auto stats = engine.run();
  EXPECT_EQ(stats.net_totals().total_messages(), 0u);
}

TEST(GasPageRank, ActiveSetShrinksWithConvergence) {
  const graph::EdgeList e = graph::gen::rmat(9, 3000, 17);
  const graph::Csr g = graph::Csr::build(e);
  PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  pr.epsilon = 1e-8;
  Config cfg = Config::workers(4);
  cfg.max_iterations = 80;
  Engine<PageRankGas> engine(g, partition::RandomVertexCut{}.partition(g, 4), pr, cfg);
  const auto stats = engine.run();
  ASSERT_GT(stats.supersteps.size(), 4u);
  EXPECT_LT(stats.supersteps[stats.supersteps.size() - 2].active_vertices,
            stats.supersteps.front().active_vertices);
}

}  // namespace
}  // namespace cyclops::gas
