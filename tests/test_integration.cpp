// Cross-engine integration tests: the same algorithm on the same graph must
// agree across BSP, Cyclops, CyclopsMT and GAS, for every partitioner and
// worker count — and the paper's headline communication claims must hold
// (Cyclops sends a fraction of BSP's messages; GAS sends a multiple of
// Cyclops').

#include <gtest/gtest.h>

#include <cmath>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/als.hpp"
#include "cyclops/algorithms/cd.hpp"
#include "cyclops/algorithms/datasets.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/partition/ldg.hpp"
#include "cyclops/partition/multilevel.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "test_util.hpp"

namespace cyclops {
namespace {

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

partition::EdgeCutPartition make_partition(const graph::Csr& g, bool multilevel,
                                           WorkerId parts) {
  if (multilevel) return partition::MultilevelPartitioner{}.partition(g, parts);
  return partition::HashPartitioner{}.partition(g, parts);
}

// ---------- PageRank across all engines ----------

struct PrCase {
  WorkerId workers;
  bool multilevel;
  unsigned mt_threads;  // 0 = plain Cyclops
};

class PageRankAllEngines : public ::testing::TestWithParam<PrCase> {};

TEST_P(PageRankAllEngines, AgreeWithReference) {
  const auto [workers, multilevel, mt_threads] = GetParam();
  const graph::EdgeList edges = graph::gen::rmat(9, 3500, 2014);
  const graph::Csr g = graph::Csr::build(edges);
  const auto reference = algo::pagerank_reference(g);
  const auto part = make_partition(g, multilevel, workers);

  {
    algo::PageRankBsp pr;
    pr.epsilon = 1e-12;
    bsp::Config cfg = bsp::Config::workers(workers);
    cfg.max_supersteps = 300;
    bsp::Engine<algo::PageRankBsp> engine(g, part, pr, cfg);
    (void)engine.run();
    EXPECT_LT(max_abs_diff(engine.values(), reference), 1e-8) << "bsp";
  }
  {
    algo::PageRankCyclops pr;
    pr.epsilon = 1e-12;
    core::Config cfg = mt_threads > 0 ? core::Config::cyclops_mt(workers, mt_threads, 2)
                                      : core::Config::cyclops(workers, 1);
    cfg.max_supersteps = 300;
    core::Engine<algo::PageRankCyclops> engine(g, part, pr, cfg);
    (void)engine.run();
    EXPECT_LT(max_abs_diff(engine.values(), reference), 1e-8) << "cyclops";
    EXPECT_TRUE(engine.replicas_consistent());
  }
  {
    algo::PageRankGas pr;
    pr.num_vertices = g.num_vertices();
    pr.epsilon = 1e-12;
    gas::Config cfg = gas::Config::workers(workers);
    cfg.max_iterations = 300;
    gas::Engine<algo::PageRankGas> engine(
        g, partition::GreedyVertexCut{}.partition(g, workers), pr, cfg);
    (void)engine.run();
    const auto values = engine.values();
    double md = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      md = std::max(md, std::abs(values[v].rank - reference[v]));
    }
    EXPECT_LT(md, 1e-8) << "gas";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PageRankAllEngines,
                         ::testing::Values(PrCase{1, false, 0}, PrCase{2, false, 0},
                                           PrCase{4, false, 0}, PrCase{4, true, 0},
                                           PrCase{6, false, 4}, PrCase{6, true, 8},
                                           PrCase{12, false, 0}, PrCase{16, true, 2}));

// ---------- SSSP: BSP vs Cyclops exact agreement ----------

class SsspEngines : public ::testing::TestWithParam<WorkerId> {};

TEST_P(SsspEngines, BspAndCyclopsMatchDijkstra) {
  const WorkerId workers = GetParam();
  graph::gen::RoadSpec spec;
  spec.rows = 18;
  spec.cols = 18;
  spec.shortcut_fraction = 0.02;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 2014));
  const auto reference = algo::sssp_reference(g, 0);
  const auto part = test::hash_partition(g, workers);

  algo::SsspBsp bsp_prog;
  bsp_prog.source = 0;
  bsp::Config bsp_cfg = bsp::Config::workers(workers);
  bsp_cfg.max_supersteps = 600;
  bsp::Engine<algo::SsspBsp> bsp_engine(g, part, bsp_prog, bsp_cfg);
  (void)bsp_engine.run();

  algo::SsspCyclops cy_prog;
  cy_prog.source = 0;
  core::Config cy_cfg = core::Config::cyclops(workers, 1);
  cy_cfg.max_supersteps = 600;
  core::Engine<algo::SsspCyclops> cy_engine(g, part, cy_prog, cy_cfg);
  (void)cy_engine.run();

  const auto cy_values = cy_engine.values();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(bsp_engine.values()[v], reference[v], 1e-9);
    EXPECT_NEAR(cy_values[v], reference[v], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, SsspEngines, ::testing::Values(1u, 2u, 5u, 8u));

// ---------- CD: BSP vs Cyclops agreement on converged graphs ----------

TEST(CdEngines, BspAndCyclopsAgreeAtConvergence) {
  graph::gen::CommunitySpec spec{6, 40, 8, 0.95};
  const graph::Csr g = graph::Csr::build(graph::gen::planted_communities(spec, 2014));
  const auto part = test::hash_partition(g, 4);

  algo::CdBsp bsp_prog;
  bsp::Config bsp_cfg = bsp::Config::workers(4);
  bsp_cfg.max_supersteps = 60;
  bsp::Engine<algo::CdBsp> bsp_engine(g, part, bsp_prog, bsp_cfg);
  (void)bsp_engine.run();

  algo::CdCyclops cy_prog;
  core::Config cy_cfg = core::Config::cyclops(4, 1);
  cy_cfg.max_supersteps = 60;
  core::Engine<algo::CdCyclops> cy_engine(g, part, cy_prog, cy_cfg);
  (void)cy_engine.run();

  const auto cy_labels = cy_engine.values();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(bsp_engine.values()[v], cy_labels[v]) << "vertex " << v;
  }
}

// ---------- ALS: BSP vs Cyclops vs reference ----------

TEST(AlsEngines, AllAgreeWithReference) {
  graph::gen::BipartiteSpec spec{100, 30, 6};
  const graph::Csr g = graph::Csr::build(graph::gen::bipartite_ratings(spec, 2014));
  const auto part = test::hash_partition(g, 3);
  const unsigned rounds = 6;
  const auto reference = algo::als_reference(g, spec.users, rounds, 0.05);

  algo::AlsBsp bsp_prog;
  bsp_prog.num_users = spec.users;
  bsp_prog.rounds = rounds;
  bsp::Config bsp_cfg = bsp::Config::workers(3);
  bsp_cfg.max_supersteps = rounds + 3;
  bsp::Engine<algo::AlsBsp> bsp_engine(g, part, bsp_prog, bsp_cfg);
  (void)bsp_engine.run();

  algo::AlsCyclops cy_prog;
  cy_prog.num_users = spec.users;
  cy_prog.rounds = rounds;
  core::Config cy_cfg = core::Config::cyclops(3, 1);
  cy_cfg.max_supersteps = rounds + 1;
  core::Engine<algo::AlsCyclops> cy_engine(g, part, cy_prog, cy_cfg);
  (void)cy_engine.run();

  const auto cy_values = cy_engine.values();
  double bsp_diff = 0;
  double cy_diff = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t k = 0; k < algo::kAlsRank; ++k) {
      bsp_diff = std::max(bsp_diff, std::abs(bsp_engine.values()[v][k] - reference[v][k]));
      cy_diff = std::max(cy_diff, std::abs(cy_values[v][k] - reference[v][k]));
    }
  }
  EXPECT_LT(bsp_diff, 1e-7);
  EXPECT_LT(cy_diff, 1e-7);
}

// ---------- Communication claims (the paper's headline) ----------

TEST(CommunicationClaims, CyclopsSendsFarFewerMessagesThanBsp) {
  // §1/§6.4: redundant-message elimination. Same graph, same partition.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 8000, 99));
  const auto part = test::hash_partition(g, 6);

  algo::PageRankBsp bsp_prog;
  bsp_prog.epsilon = 1e-9;
  bsp::Config bsp_cfg = bsp::Config::workers(6);
  bsp_cfg.max_supersteps = 60;
  bsp::Engine<algo::PageRankBsp> bsp_engine(g, part, bsp_prog, bsp_cfg);
  const auto bsp_stats = bsp_engine.run();

  algo::PageRankCyclops cy_prog;
  cy_prog.epsilon = 1e-9;
  core::Config cy_cfg = core::Config::cyclops(6, 1);
  cy_cfg.max_supersteps = 60;
  core::Engine<algo::PageRankCyclops> cy_engine(g, part, cy_prog, cy_cfg);
  const auto cy_stats = cy_engine.run();

  EXPECT_LT(cy_stats.net_totals().total_messages(),
            bsp_stats.net_totals().total_messages() / 2);
}

TEST(CommunicationClaims, GasSendsMultipleOfCyclops) {
  // §6.12: PowerGraph needs ~5 messages per replica; Cyclops at most 1.
  const graph::EdgeList edges = graph::gen::rmat(9, 5000, 101);
  const graph::Csr g = graph::Csr::build(edges);

  algo::PageRankCyclops cy_prog;
  cy_prog.epsilon = 1e-9;
  core::Config cy_cfg = core::Config::cyclops(6, 1);
  cy_cfg.max_supersteps = 40;
  core::Engine<algo::PageRankCyclops> cy_engine(g, test::hash_partition(g, 6), cy_prog,
                                                cy_cfg);
  const auto cy_stats = cy_engine.run();
  const double cy_msg_per_step =
      static_cast<double>(cy_stats.net_totals().total_messages()) /
      static_cast<double>(cy_stats.supersteps.size());

  algo::PageRankGas gas_prog;
  gas_prog.num_vertices = g.num_vertices();
  gas_prog.epsilon = 1e-9;
  gas::Config gas_cfg = gas::Config::workers(6);
  gas_cfg.max_iterations = 40;
  gas::Engine<algo::PageRankGas> gas_engine(
      g, partition::RandomVertexCut{}.partition(g, 6), gas_prog, gas_cfg);
  const auto gas_stats = gas_engine.run();
  const double gas_msg_per_step =
      static_cast<double>(gas_stats.net_totals().total_messages()) /
      static_cast<double>(gas_stats.supersteps.size());

  EXPECT_GT(gas_msg_per_step, 2.0 * cy_msg_per_step);
}

TEST(CommunicationClaims, MtReducesRemoteMessagesVsFlatWorkers) {
  // §5: one partition per machine (CyclopsMT) produces fewer replicas and
  // messages than one partition per core on the same machine count.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 8000, 103));

  algo::PageRankCyclops pr;
  pr.epsilon = 1e-9;

  core::Config flat = core::Config::cyclops(3, 4);  // 12 workers
  flat.max_supersteps = 30;
  core::Engine<algo::PageRankCyclops> flat_engine(g, test::hash_partition(g, 12), pr, flat);
  const auto flat_stats = flat_engine.run();

  core::Config mt = core::Config::cyclops_mt(3, 4, 2);  // 3 workers x 4 threads
  mt.max_supersteps = 30;
  core::Engine<algo::PageRankCyclops> mt_engine(g, test::hash_partition(g, 3), pr, mt);
  const auto mt_stats = mt_engine.run();

  EXPECT_LT(mt_engine.layout().total_replicas, flat_engine.layout().total_replicas);
  EXPECT_LT(mt_stats.net_totals().total_messages(),
            flat_stats.net_totals().total_messages());
}

// ---------- Dataset pipeline smoke: every Table 1 row runs end-to-end ----------

TEST(DatasetPipeline, EveryDatasetRunsItsWorkloadOnCyclops) {
  algo::DatasetScale scale;
  scale.factor = 0.125;
  const auto datasets = algo::make_all_datasets(scale);
  for (const auto& d : datasets) {
    const graph::Csr g = graph::Csr::build(d.edges);
    const auto part = test::hash_partition(g, 4);
    core::Config cfg = core::Config::cyclops(4, 1);
    cfg.max_supersteps = 15;
    switch (d.workload) {
      case algo::Workload::kPageRank: {
        algo::PageRankCyclops pr;
        pr.epsilon = 1e-7;
        core::Engine<algo::PageRankCyclops> engine(g, part, pr, cfg);
        const auto stats = engine.run();
        EXPECT_FALSE(stats.supersteps.empty()) << d.name;
        break;
      }
      case algo::Workload::kAls: {
        algo::AlsCyclops als;
        als.num_users = d.num_users;
        als.rounds = 4;
        core::Engine<algo::AlsCyclops> engine(g, part, als, cfg);
        (void)engine.run();
        const double rmse = algo::als_rmse(g, d.num_users, engine.values());
        EXPECT_LT(rmse, 2.0) << d.name;
        break;
      }
      case algo::Workload::kCd: {
        algo::CdCyclops cd;
        core::Engine<algo::CdCyclops> engine(g, part, cd, cfg);
        (void)engine.run();
        EXPECT_GT(algo::label_agreement(g, engine.values()), 0.3) << d.name;
        break;
      }
      case algo::Workload::kSssp: {
        algo::SsspCyclops sssp;
        sssp.source = 0;
        cfg.max_supersteps = 400;
        core::Engine<algo::SsspCyclops> engine(g, part, sssp, cfg);
        (void)engine.run();
        const auto reference = algo::sssp_reference(g, 0);
        const auto values = engine.values();
        double md = 0;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          if (std::isfinite(reference[v])) md = std::max(md, std::abs(values[v] - reference[v]));
        }
        EXPECT_LT(md, 1e-9) << d.name;
        break;
      }
    }
  }
}

}  // namespace
}  // namespace cyclops

namespace cyclops {
namespace {

TEST(LdgIntegration, PageRankCorrectUnderStreamingPartition) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 3000, 505));
  const auto part = partition::LdgPartitioner{}.partition(g, 6);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-12;
  core::Config cfg = core::Config::cyclops(6, 1);
  cfg.max_supersteps = 300;
  core::Engine<algo::PageRankCyclops> engine(g, part, pr, cfg);
  (void)engine.run();
  EXPECT_LT(max_abs_diff(engine.values(), algo::pagerank_reference(g)), 1e-8);
  EXPECT_TRUE(engine.replicas_consistent());
}

TEST(ObserverIntegration, CyclopsObserverMatchesRunStats) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1200, 7));
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-8;
  core::Config cfg = core::Config::cyclops(3, 1);
  cfg.max_supersteps = 15;
  core::Engine<algo::PageRankCyclops> engine(g, test::hash_partition(g, 3), pr, cfg);
  std::vector<std::uint64_t> observed_active;
  engine.set_observer([&](const metrics::SuperstepStats& s,
                          const core::Engine<algo::PageRankCyclops>&) {
    observed_active.push_back(s.active_vertices);
  });
  const auto stats = engine.run();
  ASSERT_EQ(observed_active.size(), stats.supersteps.size());
  for (std::size_t i = 0; i < observed_active.size(); ++i) {
    EXPECT_EQ(observed_active[i], stats.supersteps[i].active_vertices);
  }
}

TEST(DeterminismIntegration, IdenticalRunsProduceIdenticalStats) {
  // The deterministic time model's promise: two runs of the same
  // configuration report byte-identical traffic and work counters.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 2500, 909));
  auto run_once = [&] {
    algo::PageRankCyclops pr;
    pr.epsilon = 1e-9;
    core::Config cfg = core::Config::cyclops_mt(4, 4, 2);
    cfg.max_supersteps = 25;
    core::Engine<algo::PageRankCyclops> engine(g, test::hash_partition(g, 4), pr, cfg);
    return engine.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size());
  for (std::size_t i = 0; i < a.supersteps.size(); ++i) {
    EXPECT_EQ(a.supersteps[i].net.total_messages(), b.supersteps[i].net.total_messages());
    EXPECT_EQ(a.supersteps[i].active_vertices, b.supersteps[i].active_vertices);
    EXPECT_DOUBLE_EQ(a.supersteps[i].phases.cmp_s, b.supersteps[i].phases.cmp_s);
    EXPECT_DOUBLE_EQ(a.supersteps[i].phases.snd_s, b.supersteps[i].phases.snd_s);
  }
  EXPECT_DOUBLE_EQ(a.modeled_comm_total_s(), b.modeled_comm_total_s());
}

}  // namespace
}  // namespace cyclops
