// Fault-injection fabric + automated recovery runtime tests: CRC32 known
// answers, deterministic fault schedules (identical seed -> identical faults,
// identical RecoveryStats, bit-identical results), absorbed wire faults
// (drops/corruption cost time but never change results), straggler delay,
// durable checkpoint stores, and fully automated crash recovery through
// runtime::run_with_recovery for all three engines.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "cyclops/graph/csr.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/bsp/engine.hpp"
#include "cyclops/common/crc32.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/gas/engine.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/vertex_cut.hpp"
#include "cyclops/runtime/recovery.hpp"
#include "test_util.hpp"

namespace cyclops {
namespace {

TEST(Crc32, KnownAnswers) {
  EXPECT_EQ(crc32({}), 0u);
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);  // the classic CRC-32/IEEE check value
  const std::uint8_t a[] = {0x00};
  const std::uint8_t b[] = {0x01};
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(FaultInjector, IdenticalSeedsYieldIdenticalSchedules) {
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.3;
  plan.corrupt_rate = 0.2;
  auto schedule = [&plan] {
    sim::FaultInjector inj(plan);
    std::vector<int> events;
    for (Superstep s = 0; s < 6; ++s) {
      inj.begin_superstep(s);
      inj.begin_exchange();
      for (WorkerId from = 0; from < 4; ++from) {
        for (WorkerId to = 0; to < 4; ++to) {
          events.push_back(inj.roll_drop(from, to) ? 1 : 0);
          const auto flip = inj.roll_corrupt(from, to, 1024);
          events.push_back(flip ? static_cast<int>(flip->byte_index) : -1);
        }
      }
    }
    return events;
  };
  EXPECT_EQ(schedule(), schedule());

  sim::FaultPlan other = plan;
  other.seed = 43;
  sim::FaultInjector inj_a(plan), inj_b(other);
  inj_a.begin_superstep(0);
  inj_b.begin_superstep(0);
  inj_a.begin_exchange();
  inj_b.begin_exchange();
  std::vector<int> ea, eb;
  for (WorkerId from = 0; from < 8; ++from) {
    for (WorkerId to = 0; to < 8; ++to) {
      ea.push_back(inj_a.roll_drop(from, to) ? 1 : 0);
      eb.push_back(inj_b.roll_drop(from, to) ? 1 : 0);
    }
  }
  EXPECT_NE(ea, eb);  // different seed, different schedule
}

TEST(FaultInjector, CrashFiresExactlyOnce) {
  sim::FaultPlan plan;
  plan.crash_at = 3;
  plan.crash_machine = 1;
  sim::FaultInjector inj(plan);
  for (Superstep s = 0; s < 3; ++s) {
    inj.begin_superstep(s);
    inj.begin_exchange();
    EXPECT_EQ(inj.crash_now(), sim::kNoMachine) << "superstep " << s;
  }
  inj.begin_superstep(3);
  inj.begin_exchange();
  EXPECT_EQ(inj.crash_now(), 1u);  // returns the dying machine
  // Replay of the same superstep after recovery: one-shot, does not re-fire.
  inj.begin_superstep(3);
  inj.begin_exchange();
  EXPECT_EQ(inj.crash_now(), sim::kNoMachine);
  EXPECT_EQ(inj.stats().crashes, 1u);
}

TEST(FaultInjector, SecondCrashFiresIndependently) {
  sim::FaultPlan plan;
  plan.crash_at = 3;
  plan.crash_machine = 1;
  plan.crash2_at = 5;
  plan.crash2_machine = 2;
  sim::FaultInjector inj(plan);
  inj.begin_superstep(3);
  inj.begin_exchange();
  EXPECT_EQ(inj.crash_now(), 1u);
  // Replay passes superstep 3 again without re-firing, then hits crash2.
  inj.begin_superstep(3);
  inj.begin_exchange();
  EXPECT_EQ(inj.crash_now(), sim::kNoMachine);
  inj.begin_superstep(4);
  inj.begin_exchange();
  EXPECT_EQ(inj.crash_now(), sim::kNoMachine);
  inj.begin_superstep(5);
  inj.begin_exchange();
  EXPECT_EQ(inj.crash_now(), 2u);
  inj.begin_superstep(5);
  inj.begin_exchange();
  EXPECT_EQ(inj.crash_now(), sim::kNoMachine);
  EXPECT_EQ(inj.stats().crashes, 2u);
}

// Drops and corruption are absorbed by modeled retransmission: results stay
// bit-identical to the fault-free run, but FaultStats count the events and
// modeled time goes up.
TEST(WireFaults, DropsAndCorruptionAreAbsorbed) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 4000, 11));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankBsp pr;
  pr.epsilon = 1e-10;
  bsp::Config clean_cfg = bsp::Config::workers(4);
  clean_cfg.max_supersteps = 40;

  bsp::Engine<algo::PageRankBsp> clean(g, part, pr, clean_cfg);
  const auto clean_stats = clean.run();

  sim::FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 0.25;
  plan.corrupt_rate = 0.15;
  bsp::Config faulty_cfg = clean_cfg;
  faulty_cfg.faults = std::make_shared<sim::FaultInjector>(plan);
  bsp::Engine<algo::PageRankBsp> faulty(g, part, pr, faulty_cfg);
  const auto faulty_stats = faulty.run();

  // Bit-identical results despite the faulty wire.
  ASSERT_EQ(faulty.values().size(), clean.values().size());
  for (std::size_t i = 0; i < clean.values().size(); ++i) {
    EXPECT_EQ(faulty.values()[i], clean.values()[i]) << "vertex " << i;
  }

  const sim::FaultStats& fs = faulty_cfg.faults->stats();
  EXPECT_GT(fs.dropped_packages, 0u);
  EXPECT_GT(fs.corrupted_packages, 0u);
  EXPECT_EQ(fs.retransmissions, fs.dropped_packages + fs.corrupted_packages);
  EXPECT_GT(fs.modeled_fault_overhead_s, 0.0);

  // The retransmissions are charged through the cost model: same superstep
  // count, strictly more modeled communication time.
  ASSERT_EQ(faulty_stats.supersteps.size(), clean_stats.supersteps.size());
  EXPECT_GT(faulty_stats.modeled_comm_total_s(), clean_stats.modeled_comm_total_s());
}

TEST(WireFaults, StragglerStretchesModeledCommTime) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(9, 4000, 13));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-10;
  core::Config clean_cfg = core::Config::cyclops(4, 1);
  clean_cfg.max_supersteps = 30;
  core::Engine<algo::PageRankCyclops> clean(g, part, pr, clean_cfg);
  const auto clean_stats = clean.run();

  sim::FaultPlan plan;
  plan.straggler_machine = 2;
  plan.straggler_delay_us = 500.0;
  core::Config slow_cfg = clean_cfg;
  slow_cfg.faults = std::make_shared<sim::FaultInjector>(plan);
  core::Engine<algo::PageRankCyclops> slow(g, part, pr, slow_cfg);
  const auto slow_stats = slow.run();

  ASSERT_EQ(slow_stats.supersteps.size(), clean_stats.supersteps.size());
  EXPECT_GT(slow_stats.modeled_comm_total_s(), clean_stats.modeled_comm_total_s());
  EXPECT_GT(slow_cfg.faults->stats().modeled_fault_overhead_s, 0.0);
  // Results are unaffected: slow is not wrong.
  for (std::size_t i = 0; i < clean.values().size(); ++i) {
    ASSERT_EQ(slow.values()[i], clean.values()[i]);
  }
}

TEST(CheckpointStore, FileStoreRoundTripsAndPrunes) {
  const std::string dir = ::testing::TempDir();
  runtime::FileCheckpointStore store(dir);
  EXPECT_FALSE(store.latest().has_value());

  store.put(4, runtime::seal_snapshot({1, 2, 3, 4}));
  store.put(8, runtime::seal_snapshot({5, 6, 7, 8, 9}));
  const auto latest = store.latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->first, 8u);
  EXPECT_EQ(runtime::open_snapshot(latest->second),
            (std::vector<std::uint8_t>{5, 6, 7, 8, 9}));
  // The superseded snapshot file was pruned.
  std::ifstream old_file(store.path_for(4), std::ios::binary);
  EXPECT_FALSE(old_file.good());
  std::remove(store.path_for(8).c_str());
}

TEST(CheckpointStore, ManagerRejectsCorruptFrame) {
  runtime::MemoryCheckpointStore store;
  runtime::CheckpointManager manager(2, runtime::CheckpointMode::kLightweight, &store);
  manager.commit(2, {10, 20, 30, 40});
  EXPECT_EQ(manager.checkpoints_taken(), 1u);
  EXPECT_EQ(manager.last_checkpoint_bytes(), 4u);

  auto sealed = store.latest();
  ASSERT_TRUE(sealed.has_value());
  sealed->second[sealed->second.size() - 2] ^= 0x40;  // flip a payload bit at rest
  store.put(2, sealed->second);
  EXPECT_THROW((void)manager.load_latest(), SerializeError);
}

// --- Automated crash recovery: no manual save/restore anywhere below. The
// run_with_recovery loop checkpoints periodically, catches the injected
// FaultError, rolls back, replays, and the final values are bit-identical to
// a fault-free run. ---

template <typename Values>
void expect_bit_identical(const Values& got, const Values& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "vertex " << i;
  }
}

TEST(AutoRecovery, BspPageRankRecoversFromCrash) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankBsp pr;
  pr.epsilon = 1e-11;
  bsp::Config cfg = bsp::Config::workers(4);
  cfg.max_supersteps = 200;

  bsp::Engine<algo::PageRankBsp> clean(g, part, pr, cfg);
  (void)clean.run();

  sim::FaultPlan plan;
  plan.crash_at = 10;
  plan.crash_machine = 2;
  bsp::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 3;
  opts.mode = runtime::CheckpointMode::kHeavyweight;
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<bsp::Engine<algo::PageRankBsp>>(g, part, pr, faulty);
      },
      opts, faulty.faults.get());

  EXPECT_EQ(outcome.recovery.faults_detected, 1u);
  EXPECT_EQ(outcome.recovery.recoveries, 1u);
  // Checkpoints land at boundaries 3, 6, 9; the crash in superstep 10 loses
  // exactly the one superstep past the newest snapshot.
  EXPECT_EQ(outcome.recovery.lost_supersteps, 1u);
  EXPECT_GT(outcome.recovery.checkpoints_taken, 0u);
  EXPECT_GT(outcome.recovery.modeled_recovery_s, 0.0);
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(AutoRecovery, CyclopsPageRankRecoversFromCrash) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1600, 2014));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-11;
  core::Config cfg = core::Config::cyclops(4, 1);
  cfg.max_supersteps = 200;

  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();
  const auto want = clean.values();

  sim::FaultPlan plan;
  plan.crash_at = 11;
  plan.crash_machine = 0;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);

  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 4;
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get());

  EXPECT_EQ(outcome.recovery.recoveries, 1u);
  EXPECT_EQ(outcome.recovery.lost_supersteps, 11u - 8u);  // rolled back to ckpt@8
  EXPECT_TRUE(outcome.engine->replicas_consistent());
  expect_bit_identical(outcome.engine->values(), want);
}

TEST(AutoRecovery, CyclopsSsspRecoversFromCrash) {
  graph::gen::RoadSpec spec;
  spec.rows = 14;
  spec.cols = 14;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  const auto part = test::hash_partition(g, 3);
  algo::SsspCyclops sssp;
  sssp.source = 0;
  core::Config cfg = core::Config::cyclops(3, 1);
  cfg.max_supersteps = 400;

  core::Engine<algo::SsspCyclops> clean(g, part, sssp, cfg);
  (void)clean.run();
  const auto want = clean.values();

  sim::FaultPlan plan;
  plan.crash_at = 7;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 5;
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::SsspCyclops>>(g, part, sssp, faulty);
      },
      opts, faulty.faults.get());
  EXPECT_EQ(outcome.recovery.recoveries, 1u);
  expect_bit_identical(outcome.engine->values(), want);
}

TEST(AutoRecovery, BspSsspRecoversFromCrash) {
  graph::gen::RoadSpec spec;
  spec.rows = 14;
  spec.cols = 14;
  const graph::Csr g = graph::Csr::build(graph::gen::road_grid(spec, 3));
  const auto part = test::hash_partition(g, 3);
  algo::SsspBsp sssp;
  sssp.source = 0;
  bsp::Config cfg = bsp::Config::workers(3);
  cfg.max_supersteps = 400;

  bsp::Engine<algo::SsspBsp> clean(g, part, sssp, cfg);
  (void)clean.run();

  sim::FaultPlan plan;
  plan.crash_at = 6;
  bsp::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 4;
  opts.mode = runtime::CheckpointMode::kHeavyweight;
  auto outcome = runtime::run_with_recovery(
      [&] { return std::make_unique<bsp::Engine<algo::SsspBsp>>(g, part, sssp, faulty); },
      opts, faulty.faults.get());
  EXPECT_EQ(outcome.recovery.recoveries, 1u);
  expect_bit_identical(outcome.engine->values(),
                       std::span<const double>(clean.values()));
}

TEST(AutoRecovery, GasPageRankRecoversFromCrash) {
  const graph::EdgeList e = graph::gen::rmat(8, 1600, 2014);
  const graph::Csr g = graph::Csr::build(e);
  const auto part = partition::RandomVertexCut{}.partition(g, 4);
  algo::PageRankGas pr;
  pr.num_vertices = e.num_vertices();
  pr.epsilon = 1e-11;
  gas::Config cfg = gas::Config::workers(4);
  cfg.max_iterations = 200;

  gas::Engine<algo::PageRankGas> clean(g, part, pr, cfg);
  (void)clean.run();
  const auto want = clean.values();

  sim::FaultPlan plan;
  plan.crash_at = 10;
  gas::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 4;
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<gas::Engine<algo::PageRankGas>>(g, part, pr, faulty);
      },
      opts, faulty.faults.get());
  EXPECT_EQ(outcome.recovery.recoveries, 1u);
  const auto got = outcome.engine->values();
  ASSERT_EQ(got.size(), want.size());
  for (VertexId v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v].rank, want[v].rank) << "vertex " << v;
  }
}

TEST(AutoRecovery, GasSsspRecoversFromCrash) {
  const graph::EdgeList e = graph::gen::rmat(8, 1600, 99);
  const graph::Csr g = graph::Csr::build(e);
  const auto part = partition::RandomVertexCut{}.partition(g, 3);
  algo::SsspGas sssp;
  sssp.source = 0;
  gas::Config cfg = gas::Config::workers(3);
  cfg.max_iterations = 200;

  gas::Engine<algo::SsspGas> clean(g, part, sssp, cfg);
  (void)clean.run();
  const auto want = clean.values();
  // Sanity: the GAS SSSP formulation matches Dijkstra.
  const auto reference = algo::sssp_reference(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(reference[v])) {
      ASSERT_TRUE(std::isinf(want[v])) << "vertex " << v;  // both unreachable
    } else {
      ASSERT_NEAR(want[v], reference[v], 1e-9) << "vertex " << v;
    }
  }

  sim::FaultPlan plan;
  plan.crash_at = 3;
  gas::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 2;
  auto outcome = runtime::run_with_recovery(
      [&] { return std::make_unique<gas::Engine<algo::SsspGas>>(g, part, sssp, faulty); },
      opts, faulty.faults.get());
  EXPECT_EQ(outcome.recovery.recoveries, 1u);
  expect_bit_identical(outcome.engine->values(), want);
}

TEST(AutoRecovery, CrashWithoutCheckpointReplaysFromScratch) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(7, 600, 5));
  const auto part = test::hash_partition(g, 2);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-10;
  core::Config cfg = core::Config::cyclops(2, 1);
  cfg.max_supersteps = 60;
  core::Engine<algo::PageRankCyclops> clean(g, part, pr, cfg);
  (void)clean.run();

  sim::FaultPlan plan;
  plan.crash_at = 5;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 0;  // no checkpoints at all
  auto outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                     faulty);
      },
      opts, faulty.faults.get());
  EXPECT_EQ(outcome.recovery.checkpoints_taken, 0u);
  EXPECT_EQ(outcome.recovery.lost_supersteps, 5u);  // everything replayed
  expect_bit_identical(outcome.engine->values(), clean.values());
}

TEST(AutoRecovery, UnrecoverableWhenRetriesExhausted) {
  // max_recoveries caps the rollback loop; an injector that keeps crashing
  // every incarnation escalates to the caller.
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(6, 300, 5));
  const auto part = test::hash_partition(g, 2);
  algo::PageRankCyclops pr;
  core::Config cfg = core::Config::cyclops(2, 1);
  cfg.max_supersteps = 30;
  sim::FaultPlan plan;
  plan.crash_at = 2;
  core::Config faulty = cfg;
  faulty.faults = std::make_shared<sim::FaultInjector>(plan);
  runtime::RecoveryOptions opts;
  opts.checkpoint_every = 0;
  opts.max_recoveries = 1;  // first crash already exhausts the budget
  EXPECT_THROW(
      (void)runtime::run_with_recovery(
          [&] {
            return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                         faulty);
          },
          opts, faulty.faults.get()),
      sim::FaultError);
}

// Satellite: identical --fault-seed must mean identical fault schedule,
// identical RecoveryStats, and bit-identical final values.
TEST(Determinism, IdenticalSeedsIdenticalRecovery) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(8, 1800, 33));
  const auto part = test::hash_partition(g, 4);
  algo::PageRankCyclops pr;
  pr.epsilon = 1e-10;
  core::Config base = core::Config::cyclops(4, 1);
  base.max_supersteps = 80;

  auto run_once = [&](std::uint64_t seed) {
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.crash_at = 7;
    plan.crash_machine = 1;
    plan.drop_rate = 0.1;
    plan.corrupt_rate = 0.05;
    core::Config cfg = base;
    cfg.faults = std::make_shared<sim::FaultInjector>(plan);
    runtime::RecoveryOptions opts;
    opts.checkpoint_every = 3;
    auto outcome = runtime::run_with_recovery(
        [&] {
          return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, pr,
                                                                       cfg);
        },
        opts, cfg.faults.get());
    return std::make_pair(outcome.recovery, outcome.engine->values());
  };

  const auto [stats_a, values_a] = run_once(1234);
  const auto [stats_b, values_b] = run_once(1234);

  EXPECT_EQ(stats_a.checkpoints_taken, stats_b.checkpoints_taken);
  EXPECT_EQ(stats_a.checkpoint_bytes_written, stats_b.checkpoint_bytes_written);
  EXPECT_EQ(stats_a.last_checkpoint_bytes, stats_b.last_checkpoint_bytes);
  EXPECT_EQ(stats_a.modeled_checkpoint_s, stats_b.modeled_checkpoint_s);
  EXPECT_EQ(stats_a.faults_detected, stats_b.faults_detected);
  EXPECT_EQ(stats_a.recoveries, stats_b.recoveries);
  EXPECT_EQ(stats_a.lost_supersteps, stats_b.lost_supersteps);
  // modeled_recovery_s prices the replayed window from the run's *measured*
  // phase times (see recovery.hpp), so it carries host jitter; everything
  // else in RecoveryStats is schedule-derived and must match exactly.
  EXPECT_NEAR(stats_a.modeled_recovery_s, stats_b.modeled_recovery_s,
              0.1 * stats_a.modeled_recovery_s);
  EXPECT_EQ(stats_a.dropped_packages, stats_b.dropped_packages);
  EXPECT_EQ(stats_a.corrupted_packages, stats_b.corrupted_packages);
  EXPECT_EQ(stats_a.retransmissions, stats_b.retransmissions);
  EXPECT_EQ(stats_a.modeled_fault_overhead_s, stats_b.modeled_fault_overhead_s);

  ASSERT_EQ(values_a.size(), values_b.size());
  for (std::size_t i = 0; i < values_a.size(); ++i) {
    EXPECT_EQ(values_a[i], values_b[i]) << "vertex " << i;  // bit-identical
  }
}

// §3.6's measurable claim, engine-to-engine: the Cyclops lightweight
// checkpoint (masters only) is strictly smaller than the BSP heavyweight one
// (vertex state + in-flight messages) at the same mid-run boundary.
TEST(CheckpointModes, CyclopsLightweightSmallerThanBspHeavyweight) {
  const graph::Csr g = graph::Csr::build(graph::gen::rmat(10, 9000, 7));
  const auto part = test::hash_partition(g, 6);

  runtime::MemoryCheckpointStore bsp_store;
  algo::PageRankBsp bsp_pr;
  bsp_pr.epsilon = 1e-11;
  bsp::Config bsp_cfg = bsp::Config::workers(6);
  bsp_cfg.max_supersteps = 6;
  runtime::RecoveryOptions bsp_opts;
  bsp_opts.checkpoint_every = 5;
  bsp_opts.mode = runtime::CheckpointMode::kHeavyweight;
  auto bsp_outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<bsp::Engine<algo::PageRankBsp>>(g, part, bsp_pr,
                                                                bsp_cfg);
      },
      bsp_opts, nullptr, &bsp_store);

  runtime::MemoryCheckpointStore cy_store;
  algo::PageRankCyclops cy_pr;
  cy_pr.epsilon = 1e-11;
  core::Config cy_cfg = core::Config::cyclops(6, 1);
  cy_cfg.max_supersteps = 6;
  runtime::RecoveryOptions cy_opts;
  cy_opts.checkpoint_every = 5;
  cy_opts.mode = runtime::CheckpointMode::kLightweight;
  auto cy_outcome = runtime::run_with_recovery(
      [&] {
        return std::make_unique<core::Engine<algo::PageRankCyclops>>(g, part, cy_pr,
                                                                     cy_cfg);
      },
      cy_opts, nullptr, &cy_store);

  ASSERT_GT(bsp_outcome.recovery.checkpoints_taken, 0u);
  ASSERT_GT(cy_outcome.recovery.checkpoints_taken, 0u);
  EXPECT_LT(cy_outcome.recovery.last_checkpoint_bytes,
            bsp_outcome.recovery.last_checkpoint_bytes);
  EXPECT_LT(cy_outcome.recovery.modeled_checkpoint_s,
            bsp_outcome.recovery.modeled_checkpoint_s);
}

}  // namespace
}  // namespace cyclops
