// Tests for the distributed immutable view construction (core/layout):
// replica placement, in-edge slot resolution, local out-edges for
// distributed activation, and master->replica sync target inversion.
// Validated both on the paper's Figure 6 example and property-style against
// brute force on random graphs.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cyclops/graph/csr.hpp"
#include "cyclops/core/layout.hpp"
#include "cyclops/graph/generators.hpp"
#include "cyclops/partition/hash.hpp"
#include "test_util.hpp"

namespace cyclops::core {
namespace {

using test::figure6_graph;
using test::owners;

/// Figure 6 setup: vertices {0,1} on w0, {2,3} on w1, {4,5} on w2.
struct Figure6 {
  graph::Csr g = graph::Csr::build(figure6_graph());
  partition::EdgeCutPartition p = owners({0, 0, 1, 1, 2, 2}, 3);
  Layout layout = build_layout(g, p);
};

TEST(LayoutFigure6, MastersAssigned) {
  Figure6 f;
  ASSERT_EQ(f.layout.workers.size(), 3u);
  EXPECT_EQ(f.layout.workers[0].masters, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(f.layout.workers[1].masters, (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(f.layout.workers[2].masters, (std::vector<VertexId>{4, 5}));
}

TEST(LayoutFigure6, ReplicaPlacement) {
  Figure6 f;
  // Worker 0 hosts replicas of vertices with out-neighbors {0,1}: 2 (2->1),
  // 3 (3->1). Worker 1 hosts replicas of 0 (0->2), 4 (4->3), 5 (5->2).
  // Worker 2 hosts none (only 4->5, 5->4 internal).
  EXPECT_EQ(f.layout.workers[0].replica_globals, (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(f.layout.workers[1].replica_globals, (std::vector<VertexId>{0, 4, 5}));
  EXPECT_TRUE(f.layout.workers[2].replica_globals.empty());
  EXPECT_EQ(f.layout.total_replicas, 5u);
  EXPECT_NEAR(f.layout.replication_factor(6), 1.0 + 5.0 / 6.0, 1e-12);
}

TEST(LayoutFigure6, ReplicasSortedByOwnerThenId) {
  Figure6 f;
  const WorkerLayout& w1 = f.layout.workers[1];
  // Replica 0 is owned by w0; 4 and 5 by w2 — grouped by owner (§4.1).
  ASSERT_EQ(w1.replica_owner.size(), 3u);
  EXPECT_EQ(w1.replica_owner[0], 0u);
  EXPECT_EQ(w1.replica_owner[1], 2u);
  EXPECT_EQ(w1.replica_owner[2], 2u);
}

TEST(LayoutFigure6, InEdgesResolveToLocalSlots) {
  Figure6 f;
  const WorkerLayout& w1 = f.layout.workers[1];
  // Master 3 (local index 1) has in-neighbors {2, 4}: 2 is the local master
  // at slot 1; 4 is a replica.
  const std::size_t begin = w1.in_offsets[1];
  const std::size_t end = w1.in_offsets[2];
  std::set<VertexId> seen;
  for (std::size_t i = begin; i < end; ++i) {
    seen.insert(w1.slot_global(w1.in_adj[i].slot));
  }
  EXPECT_EQ(seen, (std::set<VertexId>{2, 4}));
}

TEST(LayoutFigure6, LocalOutEdgesForActivation) {
  Figure6 f;
  const WorkerLayout& w1 = f.layout.workers[1];
  // The replica of vertex 5 on w1 must activate local master 2 (edge 5->2).
  Slot rep5 = 0;
  bool found = false;
  for (Slot i = 0; i < w1.num_replicas(); ++i) {
    if (w1.replica_globals[i] == 5) {
      rep5 = w1.num_masters() + i;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  std::set<VertexId> targets;
  for (std::size_t e = w1.lout_offsets[rep5]; e < w1.lout_offsets[rep5 + 1]; ++e) {
    targets.insert(w1.masters[w1.lout_adj[e]]);
  }
  EXPECT_EQ(targets, (std::set<VertexId>{2}));
}

TEST(LayoutFigure6, SyncTargetsInverted) {
  Figure6 f;
  // Master 3 (on w1) has exactly one replica, on w0 — one sync message per
  // superstep, the Figure 6(F) "3:M to replica 3" arrow.
  const WorkerLayout& w1 = f.layout.workers[1];
  const std::uint32_t m3 = f.layout.master_index[3];
  const std::size_t begin = w1.rep_offsets[m3];
  const std::size_t end = w1.rep_offsets[m3 + 1];
  ASSERT_EQ(end - begin, 1u);
  const ReplicaRef ref = w1.rep_targets[begin];
  EXPECT_EQ(ref.worker, 0u);
  EXPECT_EQ(f.layout.workers[0].slot_global(ref.slot), 3u);
}

// ---- Property tests on random graphs. ----

struct LayoutCase {
  unsigned scale;
  std::size_t edges;
  WorkerId parts;
  std::uint64_t seed;
};

class LayoutProperties : public ::testing::TestWithParam<LayoutCase> {
 protected:
  void SetUp() override {
    const auto& c = GetParam();
    g_ = graph::Csr::build(graph::gen::rmat(c.scale, c.edges, c.seed));
    p_ = partition::HashPartitioner{}.partition(g_, c.parts);
    layout_ = build_layout(g_, p_);
  }
  graph::Csr g_;
  partition::EdgeCutPartition p_;
  Layout layout_;
};

TEST_P(LayoutProperties, EveryVertexIsMasterExactlyOnce) {
  std::vector<int> count(g_.num_vertices(), 0);
  for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
    for (VertexId v : layout_.workers[w].masters) {
      EXPECT_EQ(p_.owner(v), w);
      ++count[v];
    }
  }
  for (VertexId v = 0; v < g_.num_vertices(); ++v) EXPECT_EQ(count[v], 1);
}

TEST_P(LayoutProperties, ReplicaRuleMatchesBruteForce) {
  // replica of v on w iff v has an out-neighbor owned by w != owner(v).
  std::map<std::pair<WorkerId, VertexId>, bool> expected;
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    for (const graph::Adj& a : g_.out_neighbors(v)) {
      const WorkerId w = p_.owner(a.neighbor);
      if (w != p_.owner(v)) expected[{w, v}] = true;
    }
  }
  std::size_t actual = 0;
  for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
    for (VertexId v : layout_.workers[w].replica_globals) {
      EXPECT_TRUE(expected.count({w, v})) << "spurious replica of " << v << " on " << w;
      ++actual;
    }
  }
  EXPECT_EQ(actual, expected.size());
  EXPECT_EQ(layout_.total_replicas, expected.size());
}

TEST_P(LayoutProperties, InEdgesCompleteAndCorrect) {
  for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
    const WorkerLayout& wl = layout_.workers[w];
    for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
      const VertexId v = wl.masters[i];
      std::multiset<VertexId> expected;
      for (const graph::Adj& a : g_.in_neighbors(v)) expected.insert(a.neighbor);
      std::multiset<VertexId> actual;
      for (std::size_t e = wl.in_offsets[i]; e < wl.in_offsets[i + 1]; ++e) {
        actual.insert(wl.slot_global(wl.in_adj[e].slot));
      }
      EXPECT_EQ(actual, expected) << "vertex " << v;
    }
  }
}

TEST_P(LayoutProperties, SyncTargetsMatchReplicas) {
  // Each master's rep_targets must point at exactly its replicas.
  std::size_t total_targets = 0;
  for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
    const WorkerLayout& wl = layout_.workers[w];
    for (std::uint32_t i = 0; i < wl.num_masters(); ++i) {
      for (std::size_t t = wl.rep_offsets[i]; t < wl.rep_offsets[i + 1]; ++t) {
        const ReplicaRef ref = wl.rep_targets[t];
        const WorkerLayout& dest = layout_.workers[ref.worker];
        EXPECT_EQ(dest.slot_global(ref.slot), wl.masters[i]);
        EXPECT_GE(ref.slot, dest.num_masters());  // always a replica slot
        ++total_targets;
      }
    }
  }
  EXPECT_EQ(total_targets, layout_.total_replicas);
}

TEST_P(LayoutProperties, LocalOutEdgesPartitionOutEdges) {
  // Union over workers of each slot's local out-edges must equal the global
  // out-adjacency of the slot's vertex restricted to that worker.
  for (WorkerId w = 0; w < layout_.workers.size(); ++w) {
    const WorkerLayout& wl = layout_.workers[w];
    for (Slot s = 0; s < wl.num_slots(); ++s) {
      const VertexId v = wl.slot_global(s);
      std::multiset<VertexId> expected;
      for (const graph::Adj& a : g_.out_neighbors(v)) {
        if (p_.owner(a.neighbor) == w) expected.insert(a.neighbor);
      }
      std::multiset<VertexId> actual;
      for (std::size_t e = wl.lout_offsets[s]; e < wl.lout_offsets[s + 1]; ++e) {
        actual.insert(wl.masters[wl.lout_adj[e]]);
      }
      EXPECT_EQ(actual, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutProperties,
    ::testing::Values(LayoutCase{7, 400, 2, 1}, LayoutCase{8, 1200, 4, 2},
                      LayoutCase{9, 3000, 7, 3}, LayoutCase{8, 1000, 16, 4},
                      LayoutCase{6, 150, 3, 5}));

TEST(Layout, IngressBreakdownPopulated) {
  Figure6 f;
  EXPECT_GE(f.layout.replicate_s, 0.0);
  EXPECT_GE(f.layout.init_s, 0.0);
}

}  // namespace
}  // namespace cyclops::core
