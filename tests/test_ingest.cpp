// Tests for the streaming ingestion subsystem: MutationIngestor batching
// cadence, DeltaOverlay structural sharing (enumeration equivalence, patch-
// only memory, chaining + compaction), concurrent apply-vs-pinning under the
// schedule explorer, and the incremental-vs-from-scratch equivalence suite —
// every incremental algorithm x engine must be bit-identical (SSSP/CC) or
// within 1e-12 (PageRank at tight epsilon) to a cold run on the final
// snapshot, with the epoch registry staying clean throughout.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cyclops/algorithms/cc.hpp"
#include "cyclops/algorithms/datasets.hpp"
#include "cyclops/algorithms/pagerank.hpp"
#include "cyclops/algorithms/sssp.hpp"
#include "cyclops/common/sync.hpp"
#include "cyclops/core/engine.hpp"
#include "cyclops/core/mutation.hpp"
#include "cyclops/graph/csr.hpp"
#include "cyclops/graph/delta_overlay.hpp"
#include "cyclops/ingest/incremental.hpp"
#include "cyclops/ingest/ingestor.hpp"
#include "cyclops/ingest/trace.hpp"
#include "cyclops/partition/hash.hpp"
#include "cyclops/service/snapshot.hpp"
#include "cyclops/sim/sched.hpp"
#include "cyclops/verify/verify.hpp"

namespace cyclops {
namespace {

service::SnapshotConfig small_cfg(bool overlay) {
  service::SnapshotConfig cfg;
  cfg.machines = 2;
  cfg.workers_per_machine = 2;
  cfg.overlay_publish = overlay;
  return cfg;
}

graph::EdgeList base_graph() { return std::move(algo::make_gweb({0.05}).edges); }

/// A trace over the base graph plus a few removals of *base* edges (synthetic
/// traces only remove their own adds), so orphaned-region recovery is
/// genuinely exercised.
std::vector<ingest::MutationOp> equivalence_trace(const graph::GraphStore& g, bool undirected) {
  ingest::TraceSpec spec;
  spec.ops = 96;
  spec.num_vertices = g.num_vertices();
  spec.undirected = undirected;
  spec.seed = 7;
  std::vector<ingest::MutationOp> ops = ingest::synth_trace(spec);
  double at = ops.empty() ? 0.0 : ops.back().at_s;
  graph::AdjCursor cur;
  for (VertexId v = 1; v < g.num_vertices() && v < 40; v += 13) {
    const auto nbrs = g.out_neighbors(v, cur);
    if (nbrs.empty()) continue;
    ops.push_back(ingest::MutationOp{at, /*is_add=*/false, v, nbrs[0].neighbor, 0.0});
    if (undirected) {
      ops.push_back(ingest::MutationOp{at, /*is_add=*/false, nbrs[0].neighbor, v, 0.0});
    }
  }
  return ops;
}

// ---------------------------------------------------------------------------
// MutationIngestor cadence

TEST(Ingestor, BatchSizeBoundPublishes) {
  service::SnapshotStore store(base_graph(), small_cfg(true));
  ingest::MutationIngestor ing(store, ingest::IngestConfig{4, 1e9});
  std::vector<std::size_t> batch_sizes;
  ing.set_epoch_hook([&](service::Epoch, const core::TopologyDelta& d) {
    batch_sizes.push_back(d.size());
  });
  for (VertexId i = 0; i < 10; ++i) {
    ing.offer(ingest::MutationOp{0.0, true, i, i + 1, 1.0});
  }
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4}));
  EXPECT_EQ(ing.staged(), 2u);
  ing.flush();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4, 2}));
  EXPECT_EQ(ing.staged(), 0u);
  EXPECT_EQ(ing.stats().ops, 10u);
  EXPECT_EQ(ing.stats().batches, 3u);
  EXPECT_EQ(store.current_epoch(), 3u);
}

TEST(Ingestor, DelayBoundPublishesImmediately) {
  service::SnapshotStore store(base_graph(), small_cfg(true));
  // Zero delay budget: the oldest staged op is always "too stale", so every
  // offer publishes a single-op epoch.
  ingest::MutationIngestor ing(store, ingest::IngestConfig{1024, 0.0});
  for (VertexId i = 0; i < 3; ++i) {
    ing.offer(ingest::MutationOp{0.0, true, i, i + 1, 1.0});
  }
  EXPECT_EQ(ing.stats().batches, 3u);
  EXPECT_EQ(ing.staged(), 0u);
  EXPECT_GE(ing.stats().max_staleness_s, 0.0);
}

TEST(Ingestor, FlushOnEmptyPublishesNothing) {
  service::SnapshotStore store(base_graph(), small_cfg(true));
  ingest::MutationIngestor ing(store, ingest::IngestConfig{});
  const service::Epoch before = store.current_epoch();
  EXPECT_EQ(ing.flush(), before);
  EXPECT_EQ(ing.stats().batches, 0u);
}

// ---------------------------------------------------------------------------
// DeltaOverlay structural sharing

TEST(DeltaOverlay, MatchesFlatRebuild) {
  graph::EdgeList edges = base_graph();
  core::TopologyDelta delta;
  delta.add_edge(3, 900, 2.0);
  delta.add_edge(900, 3, 1.0);
  delta.remove_edge(0, 1);  // may or may not exist; removes are pair-wise
  delta.add_edge(edges.num_vertices(), 5, 1.0);  // grows the vertex set
  graph::AdjCursor cur;
  {
    const graph::Csr probe = graph::Csr::build(edges);
    const auto nbrs = probe.out_neighbors(2, cur);
    if (!nbrs.empty()) delta.remove_edge(2, nbrs[0].neighbor);
  }

  const graph::Csr base = graph::Csr::build(edges);
  const auto canon = delta.canonical();
  const graph::DeltaOverlay overlay(base, canon.adds, canon.removes);
  const graph::Csr flat = graph::Csr::build(delta.applied(edges));

  ASSERT_EQ(overlay.num_vertices(), flat.num_vertices());
  ASSERT_EQ(overlay.num_edges(), flat.num_edges());
  graph::AdjCursor oc, fc;
  for (VertexId v = 0; v < flat.num_vertices(); ++v) {
    EXPECT_EQ(overlay.out_degree(v), flat.out_degree(v)) << "out_degree(" << v << ")";
    EXPECT_EQ(overlay.in_degree(v), flat.in_degree(v)) << "in_degree(" << v << ")";
    const auto a = overlay.out_neighbors(v, oc);
    const auto b = flat.out_neighbors(v, fc);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "out(" << v << ")";
    const auto ai = overlay.in_neighbors(v, oc);
    const auto bi = flat.in_neighbors(v, fc);
    ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end())) << "in(" << v << ")";
  }

  // Compaction path: materializing the overlay and re-storing it must give
  // the same graph again.
  const graph::Csr compacted = graph::Csr::build(overlay.materialize());
  ASSERT_EQ(compacted.num_edges(), flat.num_edges());
  for (VertexId v = 0; v < flat.num_vertices(); ++v) {
    const auto a = compacted.out_neighbors(v, oc);
    const auto b = flat.out_neighbors(v, fc);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(DeltaOverlay, UntouchedVertexDelegatesToBaseStorage) {
  graph::EdgeList edges = base_graph();
  const graph::Csr base = graph::Csr::build(edges);
  core::TopologyDelta delta;
  delta.add_edge(1, 2, 1.0);
  const auto canon = delta.canonical();
  const graph::DeltaOverlay overlay(base, canon.adds, canon.removes);
  // Vertex 500 is untouched: the overlay must hand back the base's span —
  // same memory, not a copy. That pointer equality IS structural sharing.
  graph::AdjCursor bc, oc;
  const auto bspan = base.out_neighbors(500, bc);
  const auto ospan = overlay.out_neighbors(500, oc);
  EXPECT_EQ(ospan.data(), bspan.data());
  EXPECT_EQ(ospan.size(), bspan.size());
}

TEST(DeltaOverlay, MemoryIsPatchOnly) {
  graph::EdgeList edges = base_graph();
  const graph::Csr base = graph::Csr::build(edges);
  core::TopologyDelta delta;
  for (VertexId v = 0; v < 8; ++v) delta.add_edge(v, v + 100, 1.0);
  const auto canon = delta.canonical();
  const graph::DeltaOverlay overlay(base, canon.adds, canon.removes);
  const auto base_mem = base.memory().resident_bytes;
  const auto patch_mem = overlay.memory().resident_bytes;
  EXPECT_GT(patch_mem, 0u);
  // o(|E|): an 8-edge patch must cost well under a tenth of the flat store.
  EXPECT_LT(patch_mem * 10, base_mem);
}

TEST(SnapshotStore, OverlayPublishSharesAndChains) {
  service::SnapshotConfig cfg = small_cfg(true);
  service::SnapshotStore store(base_graph(), cfg);
  const service::SnapshotRef base = store.current();
  const auto base_checksum = base->edge_checksum();

  core::TopologyDelta d1;
  d1.add_edge(1, 2, 1.0);
  d1.add_edge(7, 9, 1.0);
  store.apply(d1);
  const service::SnapshotRef e1 = store.current();
  ASSERT_TRUE(e1->is_overlay());
  EXPECT_EQ(e1->base().get(), base.get());
  EXPECT_NE(e1->edge_checksum(), base_checksum);
  EXPECT_EQ(e1->store().num_edges(), base->store().num_edges() + 2);

  core::TopologyDelta d2;
  d2.add_edge(3, 4, 1.0);
  store.apply(d2);
  const service::SnapshotRef e2 = store.current();
  ASSERT_TRUE(e2->is_overlay());
  EXPECT_EQ(e2->overlay()->depth(), 2u);
  EXPECT_EQ(store.stats().overlay_epochs, 2u);

  // Ownership carry-forward: overlay partitions must equal what a flat
  // rebuild would hash-partition to (hash is the default partitioner).
  const graph::Csr flat = graph::Csr::build(e2->edges());
  const auto fresh = partition::HashPartitioner{}.partition(flat, cfg.edge_cut_parts());
  EXPECT_EQ(e2->edge_cut().owners(), fresh.owners());

  // Lazily materialized edge list agrees with replaying both deltas flat.
  graph::EdgeList replay = d2.applied(d1.applied(base->edges()));
  ASSERT_EQ(e2->edges().num_edges(), replay.num_edges());
}

TEST(SnapshotStore, DepthBoundTriggersCompaction) {
  service::SnapshotConfig cfg = small_cfg(true);
  cfg.max_overlay_depth = 2;
  service::SnapshotStore store(base_graph(), cfg);
  for (int i = 0; i < 3; ++i) {
    core::TopologyDelta d;
    d.add_edge(static_cast<VertexId>(i), static_cast<VertexId>(i + 50), 1.0);
    store.apply(d);
  }
  // Epochs 1 and 2 stack overlays; epoch 3 would reach depth 3 and must have
  // compacted to a flat snapshot instead.
  EXPECT_FALSE(store.current()->is_overlay());
  EXPECT_EQ(store.stats().compactions, 1u);
  EXPECT_EQ(store.stats().overlay_epochs, 2u);
}

TEST(SnapshotStore, FractionBoundTriggersCompaction) {
  service::SnapshotConfig cfg = small_cfg(true);
  cfg.compact_overlay_fraction = 0.0;  // any accumulated patch forces a flatten
  service::SnapshotStore store(base_graph(), cfg);
  core::TopologyDelta d1;
  d1.add_edge(0, 9, 1.0);
  store.apply(d1);
  EXPECT_TRUE(store.current()->is_overlay());  // first overlay over a flat base
  core::TopologyDelta d2;
  d2.add_edge(1, 9, 1.0);
  store.apply(d2);
  EXPECT_FALSE(store.current()->is_overlay());
  EXPECT_EQ(store.stats().compactions, 1u);
}

// ---------------------------------------------------------------------------
// Concurrent apply vs pinned jobs (PR-5 schedule explorer)

TEST(IngestConcurrency, PinnedRunsAreScheduleAndPublishInvariant) {
  const std::uint64_t violations_before = verify::EpochRegistry::instance().violations();
  service::SnapshotStore store(base_graph(), small_cfg(true));
  ingest::MutationIngestor ing(store, ingest::IngestConfig{2, 1e9});

  std::vector<double> reference;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    // Pin the newest epoch, then run against it while the writer publishes
    // more epochs concurrently — the pinned view must not move.
    const service::SnapshotRef snap = store.current();
    Thread writer([&ing, seed] {
      for (VertexId i = 0; i < 6; ++i) {
        ing.offer(ingest::MutationOp{0.0, true, 128 + 16 * static_cast<VertexId>(seed) + i,
                                     7 + i, 1.0});
      }
    });
    core::Config cfg = core::Config::cyclops(2, 2);
    cfg.schedule = std::make_shared<sim::ScheduleExplorer>(seed);
    algo::PageRankCyclops prog;
    core::Engine<algo::PageRankCyclops> engine(snap->store(), snap->edge_cut(), prog, cfg);
    engine.run();
    writer.join();
    const std::vector<double> values = engine.values();
    if (reference.empty()) {
      reference = values;
    } else {
      // Same pinned epoch would give identical values; later epochs pin a
      // *larger* graph, so only assert the schedule-invariance of each run
      // by re-running the same seed's snapshot without concurrent applies.
      core::Engine<algo::PageRankCyclops> again(snap->store(), snap->edge_cut(), prog, cfg);
      again.run();
      EXPECT_EQ(values, again.values()) << "seed " << seed;
    }
  }
  EXPECT_EQ(verify::EpochRegistry::instance().violations(), violations_before);
}

// ---------------------------------------------------------------------------
// Incremental-vs-from-scratch equivalence suite

/// Replays the equivalence trace through the ingestor with the given
/// incremental engine attached; returns the final snapshot.
template <typename Inc>
service::SnapshotRef replay_incremental(service::SnapshotStore& store, Inc& inc,
                                        bool undirected) {
  ingest::MutationIngestor ing(store, ingest::IngestConfig{32, 1e9});
  ing.set_epoch_hook([&](service::Epoch, const core::TopologyDelta& d) {
    inc.advance(store.current(), d);
  });
  for (const ingest::MutationOp& op :
       equivalence_trace(store.current()->store(), undirected)) {
    ing.offer(op);
  }
  ing.flush();
  return store.current();
}

void pagerank_equivalence(bool mt) {
  const std::uint64_t violations_before = verify::EpochRegistry::instance().violations();
  service::SnapshotConfig cfg = small_cfg(true);
  service::SnapshotStore store(base_graph(), cfg);
  // Tight epsilon: threshold convergence is O(epsilon x rounds) accurate, so
  // the 1e-12 equivalence bar needs epsilon well below it.
  ingest::IncrementalConfig icfg = ingest::make_incremental_config(cfg, mt, 2, 1, 2000);
  algo::PageRankCyclops prog;
  prog.epsilon = 1e-15;
  ingest::IncrementalPageRank inc(store.current(), prog, icfg);
  inc.cold_run();
  const service::SnapshotRef fin = replay_incremental(store, inc, false);

  core::Engine<algo::PageRankCyclops> cold(
      fin->store(), mt ? fin->mt_edge_cut() : fin->edge_cut(), prog, icfg.engine);
  cold.run();
  const std::vector<double> a = inc.values();
  const std::vector<double> b = cold.values();
  ASSERT_EQ(a.size(), b.size());
  double max_diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  EXPECT_LE(max_diff, 1e-12);
  EXPECT_EQ(verify::EpochRegistry::instance().violations(), violations_before);
}

void sssp_equivalence(bool mt) {
  const std::uint64_t violations_before = verify::EpochRegistry::instance().violations();
  service::SnapshotConfig cfg = small_cfg(true);
  service::SnapshotStore store(base_graph(), cfg);
  ingest::IncrementalConfig icfg = ingest::make_incremental_config(cfg, mt, 2, 1, 2000);
  algo::SsspCyclops prog;
  prog.source = 0;
  ingest::IncrementalSssp inc(store.current(), prog, icfg);
  inc.cold_run();
  const service::SnapshotRef fin = replay_incremental(store, inc, false);

  core::Engine<algo::SsspCyclops> cold(
      fin->store(), mt ? fin->mt_edge_cut() : fin->edge_cut(), prog, icfg.engine);
  cold.run();
  // Distances are identical path-weight sums: bit-identical, not just close.
  EXPECT_EQ(inc.values(), cold.values());
  EXPECT_EQ(verify::EpochRegistry::instance().violations(), violations_before);
}

void cc_equivalence(bool mt) {
  const std::uint64_t violations_before = verify::EpochRegistry::instance().violations();
  service::SnapshotConfig cfg = small_cfg(true);
  service::SnapshotStore store(base_graph(), cfg);
  ingest::IncrementalConfig icfg = ingest::make_incremental_config(cfg, mt, 2, 1, 2000);
  ingest::IncrementalCc inc(store.current(), algo::CcCyclops{}, icfg);
  inc.cold_run();
  const service::SnapshotRef fin = replay_incremental(store, inc, true);

  core::Engine<algo::CcCyclops> cold(
      fin->store(), mt ? fin->mt_edge_cut() : fin->edge_cut(), algo::CcCyclops{},
      icfg.engine);
  cold.run();
  EXPECT_EQ(inc.values(), cold.values());
  EXPECT_EQ(verify::EpochRegistry::instance().violations(), violations_before);
}

TEST(IncrementalEquivalence, PageRankCyclops) { pagerank_equivalence(false); }
TEST(IncrementalEquivalence, PageRankCyclopsMt) { pagerank_equivalence(true); }
TEST(IncrementalEquivalence, SsspCyclops) { sssp_equivalence(false); }
TEST(IncrementalEquivalence, SsspCyclopsMt) { sssp_equivalence(true); }
TEST(IncrementalEquivalence, CcCyclops) { cc_equivalence(false); }
TEST(IncrementalEquivalence, CcCyclopsMt) { cc_equivalence(true); }

// ---------------------------------------------------------------------------
// Incremental helpers

TEST(IncrementalHelpers, KhopOutCoversTheHalo) {
  graph::EdgeList edges(5);
  edges.add(0, 1, 1.0);
  edges.add(1, 2, 1.0);
  edges.add(2, 3, 1.0);
  edges.add(3, 4, 1.0);
  const graph::Csr g = graph::Csr::build(edges);
  const std::vector<VertexId> seeds{0};
  EXPECT_EQ(ingest::khop_out(g, seeds, 0), (std::vector<VertexId>{0}));
  EXPECT_EQ(ingest::khop_out(g, seeds, 2), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(ingest::khop_out(g, seeds, 9), (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(IncrementalHelpers, SsspAffectedRegionIsTheOrphanedSubtree) {
  // 0 -> 1 -> 2 -> 3, plus a backup path 0 -> 4 -> 2 of equal total weight 2.
  graph::EdgeList before(5);
  before.add(0, 1, 1.0);
  before.add(1, 2, 1.0);
  before.add(2, 3, 1.0);
  before.add(0, 4, 1.0);
  before.add(4, 2, 1.0);
  const std::vector<double> dist{0, 1, 2, 3, 1};
  core::TopologyDelta delta;
  delta.remove_edge(1, 2);
  const graph::Csr after = graph::Csr::build(delta.applied(before));
  // Removing 1->2 orphans nothing: 4->2 still supports dist[2] == 2.
  EXPECT_TRUE(ingest::sssp_affected_by_removal(after, dist, delta.canonical().removes, 0)
                  .empty());

  core::TopologyDelta both;
  both.remove_edge(1, 2);
  both.remove_edge(4, 2);
  const graph::Csr after2 = graph::Csr::build(both.applied(before));
  // Removing both supports orphans 2 and, transitively, 3 — but not 1 or 4.
  EXPECT_EQ(ingest::sssp_affected_by_removal(after2, dist, both.canonical().removes, 0),
            (std::vector<VertexId>{2, 3}));
}

}  // namespace
}  // namespace cyclops
